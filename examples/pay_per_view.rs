//! Pay-per-view broadcast: heavy periodic churn, batch rekeying.
//!
//! ```sh
//! cargo run --release --example pay_per_view
//! ```
//!
//! The paper's motivating scenario: a pay-per-view event where viewers
//! join and leave continuously. The key server batches requests per rekey
//! interval; each interval produces one rekey message delivered over the
//! lossy network. We run a dozen intervals of realistic churn and show the
//! per-interval cost the operator would actually watch: message size,
//! first-round NACKs, rounds, and the adaptive proactivity factor tracking
//! the loss conditions.

use grouprekey::driver::Group;
use grouprekey::ServerOptions;
use keytree::Batch;
use netsim::NetworkConfig;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn main() {
    let n0 = 128u32;
    let net = NetworkConfig {
        n_users: 400,
        alpha: 0.2,
        ..NetworkConfig::default()
    };
    let mut group = Group::new(n0, ServerOptions::default(), net);
    let mut rng = SmallRng::seed_from_u64(2001);
    let mut next_member = n0;

    println!("interval | members |  J  |  L  | ENC | NACKs r1 | rounds | rho");
    println!("---------+---------+-----+-----+-----+----------+--------+------");
    for interval in 1..=12 {
        // Churn: ~10% leave, a burst of new subscribers joins.
        let mut members: Vec<u32> = group.agents.keys().copied().collect();
        members.sort_unstable();
        let l = members.len() / 10;
        let mut leaves = Vec::with_capacity(l);
        for _ in 0..l {
            let idx = rng.gen_range(0..members.len());
            leaves.push(members.swap_remove(idx));
        }
        let j = rng.gen_range(5..25usize);
        let joins: Vec<_> = (0..j)
            .map(|_| {
                let m = next_member;
                next_member += 1;
                group.mint_join(m)
            })
            .collect();

        let report = group.rekey(Batch::new(joins, leaves.clone()));
        println!(
            "{:8} | {:7} | {:3} | {:3} | {:3} | {:8} | {:6} | {:.2}",
            interval,
            group.agents.len(),
            j,
            leaves.len(),
            report.enc_packets,
            report.nacks_round1,
            report.server_rounds,
            report.rho,
        );

        assert!(
            group.all_agents_synchronized(),
            "interval {interval}: a viewer lost the stream key"
        );
    }
    println!("\nall intervals delivered; viewers stayed in sync ✓");
}
