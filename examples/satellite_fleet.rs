//! Lossy-fleet scenario: most receivers behind terrible links.
//!
//! ```sh
//! cargo run --release --example satellite_fleet
//! ```
//!
//! A virtual-private-network of field terminals where *every* receiver
//! link runs at 20% burst loss (the paper's `alpha = 1` stress case). This
//! is where proactive FEC and the unicast tail earn their keep: with
//! `rho = 1` the server burns extra rounds; with adaptive `rho` the NACK
//! count is pinned near the target and almost everyone finishes in one
//! round. The example runs both configurations on identical churn and
//! prints them side by side.

use grouprekey::driver::Group;
use grouprekey::ServerOptions;
use keytree::Batch;
use netsim::NetworkConfig;
use rekeyproto::ServerConfig;

fn run(label: &str, adapt: bool) {
    let net = NetworkConfig {
        n_users: 96,
        alpha: 1.0, // the whole fleet is high-loss
        p_high: 0.20,
        seed: 77,
        ..NetworkConfig::default()
    };
    let options = ServerOptions {
        protocol: ServerConfig {
            adapt_rho: adapt,
            initial_rho: 1.0,
            initial_num_nack: 5,
            ..ServerConfig::default()
        },
        ..ServerOptions::default()
    };
    let mut group = Group::new(96, options, net);

    println!("--- {label} ---");
    println!("msg | ENC | NACKs r1 | rounds | USR pkts | rho");
    let mut join_id = 1000u32;
    for i in 0..8u32 {
        // Wide scattered churn: a quarter of the fleet turns over each
        // interval, touching subtrees all across the key tree.
        let mut alive: Vec<u32> = group.agents.keys().copied().collect();
        alive.sort_unstable();
        let leaves: Vec<u32> = alive
            .iter()
            .copied()
            .skip(i as usize % 3)
            .step_by(4)
            .take(24)
            .collect();
        let joins: Vec<_> = leaves
            .iter()
            .map(|_| {
                join_id += 1;
                group.mint_join(join_id)
            })
            .collect();
        let report = group.rekey(Batch::new(joins, leaves));
        println!(
            "{:3} | {:3} | {:8} | {:6} | {:8} | {:.2}",
            report.msg_seq,
            report.enc_packets,
            report.nacks_round1,
            report.server_rounds,
            report.usr_packets,
            report.rho
        );
        assert!(group.all_agents_synchronized());
    }
    println!();
}

fn main() {
    run("fixed rho = 1 (reactive only)", false);
    run("adaptive rho (the paper's AdjustRho)", true);
    println!("both configurations delivered every key; adaptive rho needs fewer rounds ✓");
}
