//! Watch `AdjustRho` converge at the paper's full scale (N = 4096).
//!
//! ```sh
//! cargo run --release --example adaptive_rho
//! ```
//!
//! Reproduces the dynamics of the paper's Figures 12–13 interactively:
//! 4096 users, J = 0, L = N/4 per message, numNACK = 20. The proactivity
//! factor settles within a few rekey messages and the first-round NACK
//! count hovers around the target. Runs on the high-throughput transport
//! simulator (share-count users, real server stack).

use grouprekey::experiment::{ExperimentParams, ExperimentRun};
use rekeyproto::ServerConfig;

fn main() {
    for initial_rho in [1.0, 2.0] {
        let params = ExperimentParams {
            messages: 25,
            protocol: ServerConfig {
                initial_rho,
                initial_num_nack: 20,
                adapt_num_nack: false, // isolate the rho dynamics
                ..ServerConfig::default()
            },
            ..ExperimentParams::default()
        }
        .multicast_only();

        println!("=== initial rho = {initial_rho} (N = 4096, L = N/4, k = 10, numNACK = 20) ===");
        println!("msg | rho used | NACKs r1 | bw overhead | avg rounds/user");
        let mut run = ExperimentRun::new(params);
        for _ in 0..25 {
            let r = run.step();
            println!(
                "{:3} | {:8.2} | {:8} | {:11.3} | {:.4}",
                r.msg_seq,
                r.rho,
                r.nacks_round1,
                r.bandwidth_overhead,
                r.avg_user_rounds()
            );
        }
        println!();
    }
    println!("rho settles to the same band from either starting point — the paper's Figure 12.");
}
