//! Quickstart: a secure group, one churn batch, end-to-end rekey delivery.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Builds a 64-member group over a lossy simulated network, removes three
//! members and admits two, and delivers the rekey message with the full
//! protocol stack — UKA packets, proactive FEC, NACK feedback, unicast
//! fallback — then proves every surviving member holds the new group key.

use grouprekey::driver::Group;
use grouprekey::ServerOptions;
use keytree::Batch;
use netsim::NetworkConfig;

fn main() {
    let net = NetworkConfig {
        n_users: 80, // head-room for joiners
        alpha: 0.2,  // 20% of receivers on 20%-loss links
        ..NetworkConfig::default()
    };
    let mut group = Group::new(64, ServerOptions::default(), net);
    let key0 = group.group_key().expect("bootstrap group key");
    println!("group of {} members bootstrapped", group.agents.len());

    // Two newcomers register (individual keys minted by the server's
    // registration component), three members leave.
    let joins = vec![group.mint_join(100), group.mint_join(101)];
    let leaves = vec![5, 17, 40];
    let report = group.rekey(Batch::new(joins, leaves));

    println!(
        "rekey message {}: {} ENC packets in {} blocks (rho = {:.2})",
        report.msg_seq, report.enc_packets, report.blocks, report.rho
    );
    println!(
        "delivery: {} NACKs after round 1, {} server rounds, {} USR packets",
        report.nacks_round1, report.server_rounds, report.usr_packets
    );
    println!(
        "users recovering per round: {:?} (avg {:.3} rounds/user)",
        report.rounds_histogram,
        report.avg_user_rounds()
    );

    let key1 = group.group_key().expect("new group key");
    assert_ne!(key0, key1, "group key must change");
    assert!(group.all_agents_synchronized(), "every member has the key");
    assert!(!group.agents.contains_key(&17), "departed member removed");
    println!(
        "all {} members hold the new group key ✓",
        group.agents.len()
    );
}
