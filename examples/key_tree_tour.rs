//! A guided tour of the key tree and marking algorithm, replaying the
//! paper's Section 2 example and then the trickier batch cases.
//!
//! ```sh
//! cargo run --example key_tree_tour
//! ```

use keytree::{analysis, Batch, KeyTree, Label};
use wirecrypto::KeyGen;

fn main() {
    let mut kg = KeyGen::from_seed(2001);

    // --- The paper's Figure 1: nine users, degree 3 -------------------
    println!("== Section 2.1: nine users under a degree-3 tree ==");
    let mut tree = KeyTree::balanced(9, 3, &mut kg);
    println!("{}", tree.render_ascii());

    // u9 (member 8) leaves; the paper's example rekey message follows.
    println!("-- member 8 (the paper's u9) leaves --");
    let outcome = tree.process_batch(&Batch::new(vec![], vec![8]), &mut kg);
    println!("{}", tree.render_ascii());
    println!(
        "updated k-nodes (deepest first): {:?}",
        outcome.updated_knodes
    );
    for e in &outcome.encryptions {
        println!(
            "  encryption: {{key of node {}}} sealed under key of node {}",
            e.parent, e.child
        );
    }
    println!(
        "-> the paper's message: ({{k78}}k7, {{k78}}k8, {{k1-8}}k123, {{k1-8}}k456, {{k1-8}}k78)\n"
    );

    // --- Labels on a mixed batch --------------------------------------
    println!("== A mixed batch: 2 joins, 3 leaves on a degree-4 tree ==");
    let mut tree = KeyTree::balanced(16, 4, &mut kg);
    println!("{}", tree.render_ascii());
    let joins = vec![(100, kg.next_key()), (101, kg.next_key())];
    let outcome = tree.process_batch(&Batch::new(joins, vec![0, 1, 9]), &mut kg);
    println!("-- after: members 0, 1, 9 out; members 100, 101 in --");
    println!("{}", tree.render_ascii());
    let mut labelled: Vec<_> = outcome.labels.iter().collect();
    labelled.sort_by_key(|(id, _)| **id);
    for (id, label) in labelled {
        if !matches!(label, Label::Unchanged) {
            println!("  node {id}: {label:?}");
        }
    }
    println!();

    // --- Splitting and ID rederivation ---------------------------------
    println!("== Overflow joins force node splitting ==");
    let mut tree = KeyTree::balanced(16, 4, &mut kg);
    let joins: Vec<_> = (0..5).map(|i| (200 + i, kg.next_key())).collect();
    let outcome = tree.process_batch(&Batch::new(joins, vec![]), &mut kg);
    println!("{}", tree.render_ascii());
    for mv in &outcome.moves {
        let derived = keytree::ident::derive_current_id(mv.old_id, outcome.nk.unwrap(), 4).unwrap();
        println!(
            "  member {} moved {} -> {} (Theorem 4.2 rederives {} from maxKID={} alone)",
            mv.member,
            mv.old_id,
            mv.new_id,
            derived,
            outcome.nk.unwrap()
        );
        assert_eq!(derived, mv.new_id);
    }
    println!();

    // --- The analytical cost model -------------------------------------
    println!("== Closed-form expected message size (d = 4, N = 256) ==");
    println!("{:>6} {:>12}", "L", "E[encryptions]");
    for l in [1u64, 16, 64, 128, 192, 255] {
        println!(
            "{l:>6} {:>12.1}",
            analysis::expected_encryptions_leave_only(4, 4, l)
        );
    }
    println!("(unimodal with the peak near L = N/d = 64 — the paper's Figure 6 shape)");
}
