//! The soft real-time story: application data keeps flowing during a
//! rekey, and late keys mean buffered frames.
//!
//! ```sh
//! cargo run --release --example secure_stream
//! ```
//!
//! A media server streams frames encrypted under the group key while
//! membership churns. Each rekey switches the stream to the new key
//! *immediately* (so a departed viewer is cut off mid-stream); viewers
//! that have not yet received the rekey message buffer the new-epoch
//! frames and drain them when their keys arrive. The experiment measures
//! exactly what the paper's soft real-time requirement protects: the
//! buffer high-water mark as a function of rekey delivery latency.

use grouprekey::datapath::{DataSink, DataSource, SinkResult};
use grouprekey::driver::Group;
use grouprekey::ServerOptions;
use keytree::Batch;
use netsim::NetworkConfig;

fn main() {
    let n = 48u32;
    let mut group = Group::new(
        n,
        ServerOptions::default(),
        NetworkConfig {
            n_users: 64,
            alpha: 1.0,
            p_high: 0.25,
            seed: 33,
            ..NetworkConfig::default()
        },
    );

    // Stream endpoints: the source at the server, one sink per viewer.
    let mut source = DataSource::new(group.group_key().unwrap(), 0);
    let mut sinks: Vec<(u32, DataSink)> = group
        .agents
        .keys()
        .map(|&m| (m, DataSink::new(0, group.group_key().unwrap(), 256)))
        .collect();
    sinks.sort_by_key(|(m, _)| *m);

    println!("epoch | frames in flight during rekey | max buffered | cut-off viewer locked out");
    let mut frame = 0u64;
    for epoch in 1..=6u64 {
        // Stream 20 frames in the old epoch.
        for _ in 0..20 {
            let pkt = source.encrypt(format!("frame-{frame}").as_bytes());
            frame += 1;
            for (_, sink) in sinks.iter_mut() {
                let _ = sink.receive(pkt.clone());
            }
        }

        // One viewer leaves; the server rekeys and flips the stream key
        // *before* viewers have the rekey message (worst case).
        let victim = *group.agents.keys().min().unwrap();
        let mut victim_sink = None;
        sinks.retain_mut(|(m, s)| {
            if *m == victim {
                victim_sink = Some(std::mem::replace(
                    s,
                    DataSink::new(0, source_key_placeholder(), 0),
                ));
                false
            } else {
                true
            }
        });
        let report = group.rekey(Batch::new(vec![], vec![victim]));
        source.rekeyed(group.group_key().unwrap(), epoch);

        // Frames sent while the rekey message is still being delivered.
        let in_flight = 12;
        let mut victim_buffered = 0;
        for _ in 0..in_flight {
            let pkt = source.encrypt(format!("frame-{frame}").as_bytes());
            frame += 1;
            for (_, sink) in sinks.iter_mut() {
                assert_eq!(sink.receive(pkt.clone()), SinkResult::Buffered);
            }
            if let Some(vs) = victim_sink.as_mut() {
                if vs.receive(pkt.clone()) == SinkResult::Buffered {
                    victim_buffered += 1;
                }
            }
        }

        // Rekey message arrives: everyone drains.
        let mut max_buffered = 0;
        for (m, sink) in sinks.iter_mut() {
            let key = group.agents[m].group_key().expect("agent synchronized");
            let drained = sink.install_key(epoch, key);
            assert_eq!(drained.len(), in_flight, "viewer {m} lost frames");
            max_buffered = max_buffered.max(sink.stats.max_buffered);
        }
        // The departed viewer captured all the ciphertext but holds no
        // key for the new epoch: every new frame stays stuck in its
        // buffer, undecryptable, forever.
        let locked_out = victim_buffered == in_flight
            && victim_sink
                .map(|vs| vs.buffered() == in_flight)
                .unwrap_or(false);

        println!(
            "{epoch:5} | {in_flight:30} | {max_buffered:12} | {locked_out} (rekey took {} rounds)",
            report.server_rounds
        );
    }
    println!("\nevery remaining viewer drained its buffer after each rekey ✓");
}

// The victim's sink is swapped out with a throwaway; the key it holds is
// irrelevant because it is never used again.
fn source_key_placeholder() -> wirecrypto::SymKey {
    wirecrypto::SymKey::from_bytes([0; 16])
}
