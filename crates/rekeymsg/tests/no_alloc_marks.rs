//! Dynamic half of the `// xcheck: no_alloc` contract for the
//! run-aggregated UKA planner: with a warm [`PlanScratch`] and a batch of
//! the same shape as a previous one, [`PlanScratch::compute`] — the whole
//! planning core, chain derivation and window enumeration included — must
//! perform zero heap allocations. Only materializing the output plans
//! (`plan_in`'s emit step) allocates.

use keytree::{Batch, KeyTree, MarkScratch};
use rekeymsg::{Layout, PlanScratch};
use wirecrypto::KeyGen;

#[global_allocator]
static ALLOC: xcheck_rt::CountingAlloc = xcheck_rt::CountingAlloc;

#[test]
fn plan_compute_is_allocation_free_in_steady_state() {
    xcheck_rt::assert_counting();

    let mut kg = KeyGen::from_seed(47);
    let mut tree = KeyTree::balanced(1024, 4, &mut kg);
    let mut mark = MarkScratch::new();
    let mut scratch = PlanScratch::new();
    let layout = Layout::DEFAULT;

    // Warm-up: several same-shape churn batches grow the plan scratch's
    // chain/window/packet arenas to their steady-state capacity.
    let mut next_member = 5000u32;
    let batch_at = |round: u32, kg: &mut KeyGen, next: &mut u32| {
        let leaves: Vec<u32> = (0..24).map(|i| (round * 31 + i * 17) % 1024).collect();
        let joins: Vec<_> = (0..8)
            .map(|_| {
                *next += 1;
                (*next, kg.next_key())
            })
            .collect();
        Batch::new(joins, leaves)
    };
    let mut warm_packets = 0usize;
    for round in 0..4 {
        let batch = batch_at(round, &mut kg, &mut next_member);
        let outcome = tree.process_batch_in(batch, &mut kg, &mut mark);
        warm_packets = scratch
            .compute(&tree, &outcome, &layout)
            .expect("DEFAULT layout fits a depth-5 tree");
    }
    assert!(warm_packets > 0, "warm-up batches must produce packets");

    // Steady state: a batch the scratch has already seen the shape of
    // must plan without allocating. One priming call absorbs whatever
    // capacity this batch needs beyond the warm-up rounds (compute is
    // idempotent over scratch state — a replan of the same outcome is
    // bit-identical), then the measured call must be allocation-free.
    let batch = batch_at(4, &mut kg, &mut next_member);
    let outcome = tree.process_batch_in(batch, &mut kg, &mut mark);
    scratch
        .compute(&tree, &outcome, &layout)
        .expect("DEFAULT layout fits a depth-5 tree");
    let packets = xcheck_rt::assert_zero_alloc("PlanScratch::compute", || {
        scratch.compute(&tree, &outcome, &layout)
    })
    .expect("DEFAULT layout fits a depth-5 tree");

    // The planning really ran: the plans cover every user the outcome
    // serves, identically to a cold plan of the same outcome.
    assert!(packets > 0);
    let cold = rekeymsg::plan(&tree, &outcome, &layout).expect("layout fits");
    let warm = rekeymsg::plan_in(&tree, &outcome, &layout, &mut scratch).expect("layout fits");
    assert_eq!(cold, warm);
    assert_eq!(cold.len(), packets);
}
