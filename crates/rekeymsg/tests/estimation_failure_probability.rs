//! Appendix D's claim: a user that lost its specific ENC packet `<i, j>`
//! fails to pin the block ID exactly only when all of
//! `Sl = {<i-1,k-1>, <i,0..j-1>}` or all of `Su = {<i,j+1..k-1>, <i+1,0>}`
//! are also lost; under independent loss at rate `p` that happens with
//! probability `p^(j+2) + p^(k-j+1) - p^(k+2)` (own-packet loss included).
//!
//! This test Monte-Carlo-samples independent loss over a synthetic message
//! and compares the empirical exact-pin failure rate with the formula.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rekeymsg::estimate::BlockIdEstimator;
use rekeymsg::EncPacket;
use wirecrypto::{SealedKey, SymKey};

fn synthetic_message(blocks: usize, k: usize, max_kid: u16) -> Vec<EncPacket> {
    let kek = SymKey::from_bytes([1; 16]);
    let plain = SymKey::from_bytes([2; 16]);
    (0..blocks * k)
        .map(|pi| {
            let frm = (1000 + 10 * pi) as u16;
            EncPacket {
                msg_id: 0,
                block_id: (pi / k) as u8,
                seq: (pi % k) as u8,
                duplicate: false,
                max_kid,
                frm_id: frm,
                to_id: frm + 9,
                entries: vec![(frm, SealedKey::seal(&kek, &plain, 0))],
            }
        })
        .collect()
}

/// Empirical probability that the estimator cannot pin the block exactly,
/// given the user's own packet is in the loss draw like any other.
fn empirical_failure(
    packets: &[EncPacket],
    target: usize,
    k: usize,
    p: f64,
    trials: usize,
    seed: u64,
) -> f64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    let m = packets[target].frm_id + 5; // a user ID inside the target range
    let mut failures = 0usize;
    for _ in 0..trials {
        let own_lost = rng.gen_bool(p);
        if !own_lost {
            continue; // own packet received: trivially no estimation failure
        }
        let mut est = BlockIdEstimator::new(m, k, 4);
        for (pi, pkt) in packets.iter().enumerate() {
            if pi == target {
                continue;
            }
            if !rng.gen_bool(p) {
                est.observe(pkt);
            }
        }
        if !est.is_exact() {
            failures += 1;
        }
    }
    failures as f64 / trials as f64
}

fn formula(p: f64, k: usize, j: usize) -> f64 {
    p.powi(j as i32 + 2) + p.powi((k - j + 1) as i32) - p.powi(k as i32 + 2)
}

#[test]
fn failure_rate_matches_appendix_d_formula() {
    let k = 5usize;
    let blocks = 6usize;
    let packets = synthetic_message(blocks, k, 5000);
    let trials = 120_000;

    // Interior block, several j positions.
    for j in [0usize, 2, 4] {
        let target = 2 * k + j; // block 2, seq j
        for p in [0.2f64, 0.4] {
            let measured = empirical_failure(&packets, target, k, p, trials, 42 + j as u64);
            let expect = formula(p, k, j);
            // The estimator can only do better than the two-sided rule
            // (step 6 and cross-block packets add information), so the
            // measured failure rate must not exceed the formula, and for
            // interior packets it should be close to it.
            assert!(
                measured <= expect * 1.25 + 0.003,
                "p={p}, j={j}: measured {measured:.5} >> formula {expect:.5}"
            );
            assert!(
                measured >= expect * 0.4 - 0.003,
                "p={p}, j={j}: measured {measured:.5} << formula {expect:.5} (formula wrong way)"
            );
        }
    }
}

#[test]
fn worst_case_positions_are_p_squared() {
    // Appendix D: at j = 0 or j = k-1 the failure probability is ~ p^2.
    let k = 5usize;
    let packets = synthetic_message(6, k, 5000);
    let p = 0.3f64;
    let measured = empirical_failure(&packets, 2 * k, k, p, 200_000, 7);
    let expect = formula(p, k, 0); // ~ p^2
    assert!(
        (measured - expect).abs() < 0.02,
        "measured {measured:.4} vs ~p^2 = {expect:.4}"
    );
}

#[test]
fn failure_always_leaves_a_bracketing_range() {
    // Even when the exact pin fails, the user can fall back to a range
    // that contains the truth (so its NACK still covers the right block).
    let k = 4usize;
    let packets = synthetic_message(5, k, 4000);
    let target = 2 * k + 1;
    let m = packets[target].frm_id + 5;
    let mut rng = SmallRng::seed_from_u64(99);
    let mut inexact_seen = 0;
    for _ in 0..20_000 {
        let mut est = BlockIdEstimator::new(m, k, 4);
        for (pi, pkt) in packets.iter().enumerate() {
            if pi != target && !rng.gen_bool(0.5) {
                est.observe(pkt);
            }
        }
        if !est.is_exact() {
            inexact_seen += 1;
        }
        assert!(est.low() <= 2);
        if let Some((lo, hi)) = est.range() {
            assert!(lo <= 2 && 2 <= hi, "range ({lo},{hi}) excludes block 2");
        }
    }
    assert!(inexact_seen > 0, "50% loss must produce some inexact cases");
}
