//! Property-based tests spanning the rekey-message pipeline: UKA packing
//! guarantees, wire round-trips, block partitioning, and the block-ID
//! estimator's bracketing guarantee under arbitrary loss patterns.

use std::collections::HashSet;

use keytree::{Batch, KeyTree, MemberId};
use proptest::prelude::*;
use rekeymsg::estimate::BlockIdEstimator;
use rekeymsg::{assign, BlockSet, Layout, Packet, UkaAssignment};
use wirecrypto::{KeyGen, SymKey};

/// A random single-interval workload on a balanced tree.
fn workload() -> impl Strategy<Value = (u32, u32, Vec<u32>, u32, u64)> {
    // (n, degree, leaver seeds, joins, keygen seed)
    (
        4u32..300,
        prop::sample::select(vec![2u32, 3, 4]),
        proptest::collection::vec(any::<u32>(), 0..40),
        0u32..40,
        any::<u64>(),
    )
}

fn build(
    n: u32,
    degree: u32,
    leaver_seeds: &[u32],
    joins: u32,
    seed: u64,
) -> (KeyTree, keytree::MarkOutcome) {
    let mut kg = KeyGen::from_seed(seed);
    let mut tree = KeyTree::balanced(n, degree, &mut kg);
    let mut leavers: Vec<MemberId> = leaver_seeds.iter().map(|s| s % n).collect();
    leavers.sort_unstable();
    leavers.dedup();
    let join_list: Vec<(MemberId, SymKey)> = (0..joins).map(|i| (n + i, kg.next_key())).collect();
    let outcome = tree.process_batch(&Batch::new(join_list, leavers), &mut kg);
    (tree, outcome)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// UKA: every user with needs appears in exactly one packet, that
    /// packet contains all of its encryptions, and packet ranges strictly
    /// increase.
    #[test]
    fn uka_guarantees((n, d, leavers, joins, seed) in workload()) {
        let (tree, outcome) = build(n, d, &leavers, joins, seed);
        let layout = Layout::DEFAULT;
        let plans = assign::plan(&tree, &outcome, &layout).unwrap();

        let mut seen_users = HashSet::new();
        let mut last_to: Option<u32> = None;
        for p in &plans {
            prop_assert!(p.frm_id <= p.to_id);
            if let Some(prev) = last_to {
                prop_assert!(prev < p.frm_id, "ranges overlap");
            }
            last_to = Some(p.to_id);
            prop_assert!(p.enc_indices.len() <= layout.encryptions_per_packet());
            let have: HashSet<usize> = p.enc_indices.iter().copied().collect();
            for u in p.users_iter(&tree) {
                prop_assert!(seen_users.insert(u), "user {} twice", u);
                for idx in outcome.encryptions_for_user(u, d) {
                    prop_assert!(have.contains(&idx), "user {} missing enc {}", u, idx);
                }
            }
        }
        for uid in tree.user_ids() {
            let needs = outcome.encryptions_for_user(uid, d);
            prop_assert_eq!(seen_users.contains(&uid), !needs.is_empty());
        }
    }

    /// Sealed assignment: every ENC packet survives an emit/parse wire
    /// round-trip bit-exactly.
    #[test]
    fn enc_wire_round_trip((n, d, leavers, joins, seed) in workload()) {
        let (tree, outcome) = build(n, d, &leavers, joins, seed);
        let layout = Layout::DEFAULT;
        let built = UkaAssignment::build(&tree, &outcome, seed % 1000, &layout).unwrap();
        for pkt in &built.packets {
            let bytes = pkt.emit(&layout);
            prop_assert_eq!(bytes.len(), layout.enc_packet_len);
            match Packet::parse(&bytes, &layout) {
                Ok(Packet::Enc(parsed)) => prop_assert_eq!(&parsed, pkt),
                other => prop_assert!(false, "parse failed: {:?}", other),
            }
        }
    }

    /// Block partitioning: every packet appears exactly once as a
    /// non-duplicate, block sizes are exactly k, and FEC bodies of
    /// duplicates equal their originals.
    #[test]
    fn block_partition_structure(
        (n, d, leavers, joins, seed) in workload(),
        k in 1usize..25,
    ) {
        let (tree, outcome) = build(n, d, &leavers, joins, seed);
        let layout = Layout::DEFAULT;
        let built = UkaAssignment::build(&tree, &outcome, 5, &layout).unwrap();
        let n_real = built.packets.len();
        prop_assume!(n_real > 0 && n_real.div_ceil(k) <= 256);
        let bs = BlockSet::new(built.packets.clone(), k, layout);

        prop_assert_eq!(bs.real_packet_count(), n_real);
        prop_assert_eq!(bs.block_count(), n_real.div_ceil(k));
        prop_assert_eq!(
            bs.duplicated_count(),
            bs.block_count() * k - n_real
        );
        let mut real_seen = 0;
        for b in 0..bs.block_count() {
            let blk = bs.block(b).unwrap();
            prop_assert_eq!(blk.packets.len(), k);
            for (s, p) in blk.packets.iter().enumerate() {
                prop_assert_eq!(p.block_id as usize, b);
                prop_assert_eq!(p.seq as usize, s);
                if !p.duplicate {
                    real_seen += 1;
                    prop_assert_eq!(&p.entries, &built.packets[b * k + s].entries);
                }
            }
        }
        prop_assert_eq!(real_seen, n_real);
    }

    /// Estimator bracketing: for any loss pattern over a real message,
    /// the surviving-packet estimate always contains the true block of
    /// every user's specific packet.
    #[test]
    fn estimator_always_brackets_truth(
        (n, d, leavers, joins, seed) in workload(),
        k in 1usize..12,
        pattern in any::<u64>(),
    ) {
        let (tree, outcome) = build(n, d, &leavers, joins, seed);
        let layout = Layout::DEFAULT;
        let built = UkaAssignment::build(&tree, &outcome, 3, &layout).unwrap();
        prop_assume!(built.packets.len() > 1 && built.packets.len().div_ceil(k) <= 256);
        let bs = BlockSet::new(built.packets.clone(), k, layout);

        for (uid, pi) in built.served_users(&tree).take(20) {
            let true_block = (pi / k) as u32;
            let mut est = BlockIdEstimator::new(uid as u16, k, d);
            let mut bit = 0u32;
            for b in 0..bs.block_count() {
                for pkt in &bs.block(b).unwrap().packets {
                    // Skip the user's own packet (it "lost" it) and apply
                    // the pseudo-random loss pattern to the rest.
                    let received = (pattern >> (bit % 64)) & 1 == 1;
                    bit += 1;
                    if pkt.serves(uid as u16) {
                        continue;
                    }
                    if received {
                        est.observe(pkt);
                    }
                }
            }
            prop_assert!(est.low() <= true_block,
                "user {}: low {} > true {}", uid, est.low(), true_block);
            if let Some((lo, hi)) = est.range() {
                prop_assert!(lo <= true_block && true_block <= hi,
                    "user {}: ({}, {}) excludes {}", uid, lo, hi, true_block);
            }
        }
    }

    /// USR packets for every member unseal to exactly the keys the tree
    /// holds on that member's path.
    #[test]
    fn usr_packets_complete((n, d, leavers, joins, seed) in workload()) {
        let (tree, outcome) = build(n, d, &leavers, joins, seed);
        prop_assume!(!outcome.encryptions.is_empty());
        let msg_seq = 77;
        for m in tree.member_ids().into_iter().take(10) {
            let usr = rekeymsg::build_usr_packet(&tree, &outcome, m, msg_seq)
                .expect("live member");
            let uid = tree.node_of_member(m).unwrap();
            prop_assert_eq!(usr.new_user_id as u32, uid);
            prop_assert_eq!(
                usr.sealed.len(),
                outcome.encryptions_for_user(uid, d).len()
            );
            // Wire round trip.
            let layout = Layout::DEFAULT;
            let bytes = Packet::Usr(usr.clone()).emit(&layout);
            match Packet::parse(&bytes, &layout) {
                Ok(Packet::Usr(q)) => prop_assert_eq!(q, usr),
                other => prop_assert!(false, "usr parse failed: {:?}", other),
            }
        }
    }
}
