//! Adversarial wire-format fuzzing: arbitrary bytes must never panic the
//! parser, and anything that parses must re-emit and re-parse stably.

use proptest::prelude::*;
use rekeymsg::{Layout, Packet};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary byte soup: parse either fails cleanly or succeeds.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..1200)) {
        let layout = Layout::DEFAULT;
        let _ = Packet::parse(&bytes, &layout);
    }

    /// Bytes of exactly the fixed packet length: every parse result
    /// re-emits to a packet that parses back to the same value
    /// (parse -> emit -> parse is a fixed point).
    #[test]
    fn parse_emit_parse_is_stable(mut bytes in proptest::collection::vec(any::<u8>(), 1027)) {
        let layout = Layout::DEFAULT;
        // Force a fixed-size type tag so the length matches expectations
        // (ENC = 0b00, PARITY = 0b01 in the top two bits).
        bytes[0] &= 0x7f;
        if let Ok(pkt) = Packet::parse(&bytes, &layout) {
            let emitted = pkt.emit(&layout);
            let reparsed = Packet::parse(&emitted, &layout).expect("emitted bytes parse");
            prop_assert_eq!(reparsed, pkt);
        }
    }

    /// USR/NACK variable-length packets: same stability under their type
    /// tags and any length.
    #[test]
    fn variable_packets_stable(mut bytes in proptest::collection::vec(any::<u8>(), 1..256), usr in any::<bool>()) {
        let layout = Layout::DEFAULT;
        bytes[0] = (bytes[0] & 0x3f) | if usr { 0x80 } else { 0xc0 };
        if let Ok(pkt) = Packet::parse(&bytes, &layout) {
            let emitted = pkt.emit(&layout);
            let reparsed = Packet::parse(&emitted, &layout).expect("emitted bytes parse");
            prop_assert_eq!(reparsed, pkt);
        }
    }
}
