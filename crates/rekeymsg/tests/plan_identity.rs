//! Property-based bit-identity of the run-aggregated UKA planner against
//! the user-by-user reference oracle (`rekeymsg::sanitize::reference_plan`),
//! across random populations, degrees, churn, layout capacities, and
//! compaction (relocation batches included). Runs under
//! `--features sanitize`, where the oracle is compiled into the crate.
#![cfg(feature = "sanitize")]

use keytree::{Batch, CompactionPolicy, KeyTree, MarkScratch, MemberId};
use proptest::prelude::*;
use rekeymsg::sanitize::{check_plan_identity, reference_plan};
use rekeymsg::{assign, AssignError, Layout, PlanScratch};
use wirecrypto::{KeyGen, SymKey};

/// Random two-batch churn on a random tree: the second batch plans
/// against a tree the first already churned (and possibly compacted),
/// so outcomes include moves, relocations, and sparse user zones.
fn workload() -> impl Strategy<Value = Work> {
    (
        (
            4u32..400,
            prop::sample::select(vec![2u32, 3, 4, 8]),
            proptest::collection::vec(any::<u32>(), 0..60),
            0u32..40,
        ),
        (
            proptest::collection::vec(any::<u32>(), 0..60),
            0u32..40,
            any::<u64>(),
            // Packet capacity in encryptions; small values force mid-run
            // splits and (at depth > capacity) whole-path overflows.
            prop::sample::select(vec![2usize, 3, 5, 8, 12, 46]),
            any::<bool>(),
        ),
    )
        .prop_map(
            |((n, degree, l1, j1), (l2, j2, seed, capacity, compact))| Work {
                n,
                degree,
                leaves1: l1,
                joins1: j1,
                leaves2: l2,
                joins2: j2,
                seed,
                capacity,
                compact,
            },
        )
}

#[derive(Debug, Clone)]
struct Work {
    n: u32,
    degree: u32,
    leaves1: Vec<u32>,
    joins1: u32,
    leaves2: Vec<u32>,
    joins2: u32,
    seed: u64,
    capacity: usize,
    compact: bool,
}

fn dedup_leavers(seeds: &[u32], members: &[MemberId]) -> Vec<MemberId> {
    if members.is_empty() {
        return Vec::new();
    }
    let mut leavers: Vec<MemberId> = seeds
        .iter()
        .map(|&s| members[s as usize % members.len()])
        .collect();
    leavers.sort_unstable();
    leavers.dedup();
    leavers
}

/// Plans one outcome both ways and requires identical packets — or the
/// same capacity-overflow error naming the same first user.
fn check_one(tree: &KeyTree, outcome: &keytree::MarkOutcome, layout: &Layout) {
    match assign::plan(tree, outcome, layout) {
        Ok(plans) => {
            check_plan_identity(tree, outcome, &plans, layout)
                .unwrap_or_else(|e| panic!("planner diverged from oracle: {e}"));
            // A warm scratch replans bit-identically.
            let mut scratch = PlanScratch::new();
            let w1 = assign::plan_in(tree, outcome, layout, &mut scratch).unwrap();
            let w2 = assign::plan_in(tree, outcome, layout, &mut scratch).unwrap();
            assert_eq!(plans, w1);
            assert_eq!(plans, w2);
        }
        Err(AssignError::PacketCapacity { user, .. }) => {
            let err = reference_plan(tree, outcome, layout)
                .expect_err("planner overflowed but the oracle packed successfully");
            assert!(
                err.contains(&format!("user {user} ")),
                "planner blamed user {user}, oracle said: {err}"
            );
        }
        Err(other) => panic!("unexpected planner error: {other}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn run_aggregated_plan_matches_reference(w in workload()) {
        let mut kg = KeyGen::from_seed(w.seed);
        let mut tree = KeyTree::balanced(w.n, w.degree, &mut kg);
        let mut scratch = MarkScratch::new();
        let layout = Layout::new(3 + 6 + 22 * w.capacity);
        prop_assert_eq!(layout.encryptions_per_packet(), w.capacity);
        // An aggressive policy on batch 1's mass leaves makes batch 2 a
        // relocation batch (joiner-labeled moved users, shrunken tail).
        let policy = if w.compact {
            CompactionPolicy { enabled: true, slack: 2, max_moves_per_batch: 8 }
        } else {
            CompactionPolicy::DISABLED
        };

        let mut next_member = w.n;
        for (leaf_seeds, joins) in [(&w.leaves1, w.joins1), (&w.leaves2, w.joins2)] {
            let mut members = tree.member_ids();
            members.sort_unstable();
            let leavers = dedup_leavers(leaf_seeds, &members);
            let join_list: Vec<(MemberId, SymKey)> = (0..joins)
                .map(|_| {
                    next_member += 1;
                    (next_member, kg.next_key())
                })
                .collect();
            let outcome = tree.process_batch_compacting_in(
                Batch::new(join_list, leavers),
                &mut kg,
                &mut scratch,
                &policy,
            );
            check_one(&tree, &outcome, &layout);
        }
    }
}
