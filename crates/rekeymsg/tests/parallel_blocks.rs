//! Parallel block encoding must be bit-identical to the sequential path:
//! the same message minted under one worker and under several must yield
//! byte-for-byte equal schedules, parity bodies, and sequence numbers.

use proptest::prelude::*;
use rekeymsg::{BlockSet, Layout, Packet, SendOrder};
use wirecrypto::{SealedKey, SymKey};

fn enc(i: u16) -> rekeymsg::EncPacket {
    let kek = SymKey::from_bytes([i as u8; 16]);
    let plain = SymKey::from_bytes([(i ^ 0x5A) as u8; 16]);
    rekeymsg::EncPacket {
        msg_id: 7,
        block_id: 0,
        seq: 0,
        duplicate: false,
        max_kid: 500,
        frm_id: 101 + i,
        to_id: 101 + i,
        entries: vec![(101 + i, SealedKey::seal(&kek, &plain, u64::from(i)))],
    }
}

fn packets(n: usize) -> Vec<rekeymsg::EncPacket> {
    (0..n as u16).map(enc).collect()
}

#[test]
fn round_one_schedule_is_worker_count_invariant() {
    let sequential = taskpool::with_workers(1, || {
        let mut bs = BlockSet::new(packets(23), 5, Layout::DEFAULT);
        bs.round_one_schedule(1.8).unwrap()
    });
    for workers in [2, 3, 8] {
        let parallel = taskpool::with_workers(workers, || {
            let mut bs = BlockSet::new(packets(23), 5, Layout::DEFAULT);
            bs.round_one_schedule(1.8).unwrap()
        });
        assert_eq!(sequential, parallel, "workers={workers}");
    }
}

#[test]
fn reactive_rounds_are_worker_count_invariant() {
    let amax = [3usize, 0, 1, 2, 0];
    let run = |workers: usize| {
        taskpool::with_workers(workers, || {
            let mut bs = BlockSet::new(packets(25), 5, Layout::DEFAULT);
            let r1 = bs
                .round_one_schedule_ordered(1.4, SendOrder::Sequential)
                .unwrap();
            let r2 = bs.reactive_schedule(&amax).unwrap();
            (r1, r2)
        })
    };
    assert_eq!(run(1), run(3));
}

#[test]
fn parallel_parity_bodies_match_per_block_minting() {
    // mint_parities_many under workers vs. mint_parities block by block
    // under one worker: same bodies, same sequence numbers, same order.
    let counts = [2usize, 3, 1, 0, 2];
    let many = taskpool::with_workers(4, || {
        let mut bs = BlockSet::new(packets(21), 5, Layout::DEFAULT);
        bs.mint_parities_many(&counts).unwrap()
    });
    let one_by_one = taskpool::with_workers(1, || {
        let mut bs = BlockSet::new(packets(21), 5, Layout::DEFAULT);
        counts
            .iter()
            .enumerate()
            .map(|(b, &c)| bs.mint_parities(b, c).unwrap())
            .collect::<Vec<_>>()
    });
    assert_eq!(many, one_by_one);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn arbitrary_messages_are_worker_count_invariant(
        n in 1usize..60,
        k in 1usize..12,
        workers in 2usize..6,
        rho_tenths in 10u32..25,
    ) {
        let rho = f64::from(rho_tenths) / 10.0;
        let run = |w: usize| {
            taskpool::with_workers(w, || {
                let mut bs = BlockSet::new(packets(n), k, Layout::DEFAULT);
                bs.round_one_schedule(rho).unwrap()
            })
        };
        let sequential = run(1);
        let parallel = run(workers);
        prop_assert_eq!(sequential.len(), parallel.len());
        for (s, p) in sequential.iter().zip(&parallel) {
            prop_assert_eq!(s, p);
        }
        // Parity bodies specifically (the vectorized encode output).
        let count_parity = |sched: &[Packet]| {
            sched.iter().filter(|p| matches!(p, Packet::Parity(_))).count()
        };
        prop_assert_eq!(count_parity(&sequential), count_parity(&parallel));
    }
}
