//! The User-oriented Key Assignment (UKA) algorithm.
//!
//! UKA guarantees that **all of a user's encryptions land in one ENC
//! packet**, so the vast majority of users can recover their keys from a
//! single received packet without FEC decoding. It works on the sorted
//! list of user IDs: repeatedly take the longest prefix of remaining users
//! whose union of needed encryptions still fits one packet, emit that
//! packet with the inclusive user-ID range `<frmID, toID>`, and continue.
//! Ranges never overlap and strictly increase, which block-ID estimation
//! relies on.
//!
//! The price is duplication: users in different packets that share path
//! encryptions receive copies. [`AssignmentStats::duplication_overhead`]
//! measures that cost exactly as the paper does (duplicated encryptions
//! over total encryptions in the rekey subtree).

use std::collections::{HashMap, HashSet};

use keytree::{EncEdge, KeyTree, MarkOutcome, NodeId};
use wirecrypto::SealedKey;

use crate::layout::Layout;
use crate::seal_context;
use crate::wire::EncPacket;

/// One planned ENC packet: which users it serves and which encryptions it
/// carries. No cryptography yet — experiment drivers that only need counts
/// use plans directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketPlan {
    /// First served user ID.
    pub frm_id: NodeId,
    /// Last served user ID (inclusive).
    pub to_id: NodeId,
    /// Indices into `MarkOutcome::encryptions`, ascending by encryption ID.
    pub enc_indices: Vec<usize>,
    /// The u-node IDs of the users served.
    pub users: Vec<NodeId>,
}

/// Counting statistics of one assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AssignmentStats {
    /// Number of ENC packets produced.
    pub packets: usize,
    /// Total `<encryption, ID>` entries emitted across all packets.
    pub entries_emitted: usize,
    /// Distinct encryptions in the rekey subtree.
    pub distinct_encryptions: usize,
}

impl AssignmentStats {
    /// Duplicated encryptions over total encryptions in the rekey subtree
    /// (the paper's duplication-overhead metric). Zero for an empty
    /// message.
    pub fn duplication_overhead(&self) -> f64 {
        if self.distinct_encryptions == 0 {
            0.0
        } else {
            (self.entries_emitted - self.distinct_encryptions) as f64
                / self.distinct_encryptions as f64
        }
    }
}

/// Plans the UKA packing without sealing anything.
///
/// Users that need no encryptions (their whole path is unchanged) are
/// skipped — they are vacuously satisfied by the rekey message.
pub fn plan(tree: &KeyTree, outcome: &MarkOutcome, layout: &Layout) -> Vec<PacketPlan> {
    let capacity = layout.encryptions_per_packet();
    let degree = tree.degree();
    let mut plans: Vec<PacketPlan> = Vec::new();

    let mut current_users: Vec<NodeId> = Vec::new();
    let mut current_set: HashSet<usize> = HashSet::new();
    let mut current_list: Vec<usize> = Vec::new();
    let mut needs: Vec<usize> = Vec::new();

    for uid in tree.user_ids_iter() {
        outcome.encryptions_for_user_into(uid, degree, &mut needs);
        if needs.is_empty() {
            continue;
        }
        // UKA's defining guarantee — one packet per user — requires the
        // packet to hold a whole path's worth of encryptions (h+1 <<
        // capacity for any sane layout; 46 vs ~8 in the paper's).
        assert!(
            needs.len() <= capacity,
            "user {uid} needs {} encryptions but packets hold {capacity}: \
             layout too small for this tree height",
            needs.len()
        );
        let extra = needs.iter().filter(|i| !current_set.contains(*i)).count();
        if !current_users.is_empty() && current_set.len() + extra > capacity {
            plans.push(close_plan(outcome, &mut current_users, &mut current_list));
            current_set.clear();
        }
        for &i in &needs {
            if current_set.insert(i) {
                current_list.push(i);
            }
        }
        current_users.push(uid);
    }
    if !current_users.is_empty() {
        plans.push(close_plan(outcome, &mut current_users, &mut current_list));
    }
    plans
}

fn close_plan(outcome: &MarkOutcome, users: &mut Vec<NodeId>, list: &mut Vec<usize>) -> PacketPlan {
    let mut enc_indices = std::mem::take(list);
    enc_indices.sort_by_key(|&i| outcome.encryptions[i].child);
    let users_taken = std::mem::take(users);
    // Both call sites guard on a non-empty user list; fall back to 0 so
    // this stays total.
    let (frm_id, to_id) = match (users_taken.first(), users_taken.last()) {
        (Some(&first), Some(&last)) => (first, last),
        _ => (0, 0),
    };
    PacketPlan {
        frm_id,
        to_id,
        enc_indices,
        users: users_taken,
    }
}

/// Encryption edges per parallel seal chunk. Constant (not worker-count
/// derived) so chunk boundaries — and thus the work units and the
/// first-error-wins order — are identical at any `REKEY_THREADS`. The
/// streaming pipeline defaults its `chunk_edges` to this so both paths
/// cut the edge list on the same lines.
pub const SEAL_CHUNK: usize = 64;

/// Plans the UKA packing and seals the full edge list, without
/// assembling wire packets.
///
/// This is [`UkaAssignment::build`] minus the 16-bit wire stage: no
/// `maxKID`/ID range checks and no `EncPacket` assembly, so it stays
/// total for populations whose node IDs overflow the `u16` wire space
/// (N > 2^14 at degree 4). The bench harness uses it to measure the
/// *cryptographic* cost of message build at every N; `sealed[i]` is the
/// seal of `outcome.encryptions[i]`, bit-identical to what `build`
/// produces wherever both are defined.
///
/// # Errors
///
/// Fails when an encryption edge refers to a key absent from the tree.
pub fn plan_and_seal(
    tree: &KeyTree,
    outcome: &MarkOutcome,
    msg_seq: u64,
    layout: &Layout,
) -> Result<(Vec<PacketPlan>, Vec<SealedKey>), AssignError> {
    let _span_build = obs::span("uka.build");
    let plans = plan(tree, outcome, layout);
    let span_seal = obs::span("stage.seal");
    let chunks: Vec<&[EncEdge]> = outcome.encryptions.chunks(SEAL_CHUNK).collect();
    let sealed_chunks: Vec<Result<Vec<SealedKey>, AssignError>> =
        taskpool::map(&chunks, |_, edges| {
            edges
                .iter()
                .map(|edge| {
                    let (Some(kek), Some(plain)) =
                        (tree.key_of(edge.child), tree.key_of(edge.parent))
                    else {
                        return Err(AssignError::MissingKey {
                            child: edge.child,
                            parent: edge.parent,
                        });
                    };
                    Ok(SealedKey::seal(
                        &kek,
                        &plain,
                        seal_context(msg_seq, edge.child),
                    ))
                })
                .collect()
        });
    let mut sealed: Vec<SealedKey> = Vec::with_capacity(outcome.encryptions.len());
    for chunk in sealed_chunks {
        sealed.extend(chunk?);
    }
    drop(span_seal);
    obs::counter_add("uka.keys_sealed", sealed.len() as u64);
    obs::counter_add(
        "uka.bytes_sealed",
        (sealed.len() * wirecrypto::SEALED_KEY_LEN) as u64,
    );
    Ok((plans, sealed))
}

/// Why sealing an assignment failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignError {
    /// An encryption edge refers to a key the tree no longer holds.
    MissingKey {
        /// The encrypting (child) node of the edge.
        child: NodeId,
        /// The encrypted (parent) node of the edge.
        parent: NodeId,
    },
    /// A node ID does not fit the 16-bit wire representation.
    IdOutOfRange(NodeId),
}

impl core::fmt::Display for AssignError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AssignError::MissingKey { child, parent } => {
                write!(
                    f,
                    "encryption edge {child} -> {parent} refers to a missing key"
                )
            }
            AssignError::IdOutOfRange(id) => {
                write!(f, "node ID {id} exceeds the 16-bit wire range")
            }
        }
    }
}

impl std::error::Error for AssignError {}

/// Statistics of the *naive* (non-UKA) assignment baseline: encryptions
/// packed in rekey-subtree generation order with no per-user alignment.
///
/// This is the ablation that motivates UKA. Without alignment a user's
/// encryptions scatter over several packets, so its single-round success
/// probability drops from `(1 - p)` to `(1 - p)^m` — and it must FEC-
/// decode (or re-request) *every* block its packets land in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NaiveAssignmentStats {
    /// Packets produced (no duplication, so never more than UKA's count).
    pub packets: usize,
    /// Mean number of distinct packets a user needs.
    pub avg_packets_per_user: f64,
    /// Worst-case packets a user needs.
    pub max_packets_per_user: usize,
    /// Fraction of users whose needs land in a single packet.
    pub single_packet_fraction: f64,
}

/// Computes the naive-baseline statistics for the same workload UKA would
/// pack. Encryptions are taken in `MarkOutcome::encryptions` order
/// (bottom-up rekey-subtree traversal) and cut greedily into packets of
/// `layout.encryptions_per_packet()`.
pub fn naive_plan_stats(
    tree: &KeyTree,
    outcome: &MarkOutcome,
    layout: &Layout,
) -> NaiveAssignmentStats {
    let capacity = layout.encryptions_per_packet();
    let total = outcome.encryptions.len();
    if total == 0 {
        return NaiveAssignmentStats {
            packets: 0,
            avg_packets_per_user: 0.0,
            max_packets_per_user: 0,
            single_packet_fraction: 1.0,
        };
    }
    let packets = total.div_ceil(capacity);
    let packet_of_enc = |i: usize| i / capacity;

    let degree = tree.degree();
    let mut sum = 0usize;
    let mut max = 0usize;
    let mut single = 0usize;
    let mut users = 0usize;
    let mut needs: Vec<usize> = Vec::new();
    let mut pkts: Vec<usize> = Vec::new();
    for uid in tree.user_ids_iter() {
        outcome.encryptions_for_user_into(uid, degree, &mut needs);
        if needs.is_empty() {
            continue;
        }
        users += 1;
        pkts.clear();
        pkts.extend(needs.iter().map(|&i| packet_of_enc(i)));
        pkts.sort_unstable();
        pkts.dedup();
        sum += pkts.len();
        max = max.max(pkts.len());
        if pkts.len() == 1 {
            single += 1;
        }
    }
    NaiveAssignmentStats {
        packets,
        avg_packets_per_user: if users == 0 {
            0.0
        } else {
            sum as f64 / users as f64
        },
        max_packets_per_user: max,
        single_packet_fraction: if users == 0 {
            1.0
        } else {
            single as f64 / users as f64
        },
    }
}

/// The full assignment: sealed ENC packets plus bookkeeping.
#[derive(Debug, Clone)]
pub struct UkaAssignment {
    /// The ENC packets in generation order. `block_id`/`seq` are zero here;
    /// block partitioning fills them in.
    pub packets: Vec<EncPacket>,
    /// Plans aligned with `packets`.
    pub plans: Vec<PacketPlan>,
    /// Which packet (index) serves each user ID.
    pub packet_of_user: HashMap<NodeId, usize>,
    /// Counting statistics.
    pub stats: AssignmentStats,
}

impl UkaAssignment {
    /// Runs UKA and seals every encryption (each distinct encryption is
    /// sealed once and copied wherever duplicated).
    ///
    /// # Errors
    ///
    /// Fails when an encryption edge refers to a key absent from the tree
    /// or when a node ID exceeds the 16-bit wire range — both indicate a
    /// tree/marking mismatch upstream.
    pub fn build(
        tree: &KeyTree,
        outcome: &MarkOutcome,
        msg_seq: u64,
        layout: &Layout,
    ) -> Result<UkaAssignment, AssignError> {
        let _span_build = obs::span("uka.build");
        let plans = plan(tree, outcome, layout);
        let msg_id = (msg_seq & 0x3f) as u8;
        let max_kid = outcome.nk.unwrap_or(0);
        if max_kid > u16::MAX as NodeId {
            return Err(AssignError::IdOutOfRange(max_kid));
        }

        // Seal every encryption of the rekey subtree once, index-aligned
        // with `MarkOutcome::encryptions`. Every edge is on some live
        // user's path (the orphan-key invariant: each live k-node has a
        // u-descendant), so sealing the whole edge list does exactly the
        // work the plans require — without the distinct-index set and
        // keyed cache a plan-driven walk would need. The seals are
        // mutually independent (all keys were minted before this point),
        // so fan contiguous chunks out across workers; chunk boundaries
        // are worker-count independent and results return in input order,
        // so the sealed vector — and the first failing edge — are
        // identical at any worker count.
        let span_seal = obs::span("stage.seal");
        let chunks: Vec<&[EncEdge]> = outcome.encryptions.chunks(SEAL_CHUNK).collect();
        let sealed_chunks: Vec<Result<Vec<SealedKey>, AssignError>> =
            taskpool::map(&chunks, |_, edges| {
                edges
                    .iter()
                    .map(|edge| {
                        if edge.child > u16::MAX as NodeId {
                            return Err(AssignError::IdOutOfRange(edge.child));
                        }
                        let (Some(kek), Some(plain)) =
                            (tree.key_of(edge.child), tree.key_of(edge.parent))
                        else {
                            return Err(AssignError::MissingKey {
                                child: edge.child,
                                parent: edge.parent,
                            });
                        };
                        Ok(SealedKey::seal(
                            &kek,
                            &plain,
                            seal_context(msg_seq, edge.child),
                        ))
                    })
                    .collect()
            });
        let mut sealed: Vec<SealedKey> = Vec::with_capacity(outcome.encryptions.len());
        for chunk in sealed_chunks {
            sealed.extend(chunk?);
        }
        drop(span_seal);
        obs::counter_add("uka.keys_sealed", sealed.len() as u64);
        obs::counter_add(
            "uka.bytes_sealed",
            (sealed.len() * wirecrypto::SEALED_KEY_LEN) as u64,
        );

        let mut packets = Vec::with_capacity(plans.len());
        let mut packet_of_user = HashMap::new();
        let mut entries_emitted = 0;
        for (pi, plan) in plans.iter().enumerate() {
            let mut entries: Vec<(u16, SealedKey)> = Vec::with_capacity(plan.enc_indices.len());
            for &i in &plan.enc_indices {
                let child = outcome.encryptions[i].child;
                entries.push((child as u16, sealed[i]));
            }
            entries_emitted += entries.len();
            for &u in &plan.users {
                packet_of_user.insert(u, pi);
            }
            if plan.frm_id > u16::MAX as NodeId || plan.to_id > u16::MAX as NodeId {
                return Err(AssignError::IdOutOfRange(plan.frm_id.max(plan.to_id)));
            }
            packets.push(EncPacket {
                msg_id,
                block_id: 0,
                seq: 0,
                duplicate: false,
                max_kid: max_kid as u16,
                frm_id: plan.frm_id as u16,
                to_id: plan.to_id as u16,
                entries,
            });
        }

        obs::counter_add("uka.enc_packets", packets.len() as u64);
        let stats = AssignmentStats {
            packets: plans.len(),
            entries_emitted,
            distinct_encryptions: outcome.encryptions.len(),
        };
        Ok(UkaAssignment {
            packets,
            plans,
            packet_of_user,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use keytree::Batch;
    use wirecrypto::KeyGen;

    fn setup(n: u32, leaves: u32) -> (KeyTree, MarkOutcome) {
        let mut kg = KeyGen::from_seed(5);
        let mut tree = KeyTree::balanced(n, 4, &mut kg);
        // Spread the leavers uniformly over the leaf level (contiguous
        // leavers would prune whole subtrees and shrink the message).
        let stride = (n / leaves).max(1);
        let batch = Batch::new(vec![], (0..leaves).map(|i| (i * stride) % n).collect());
        let outcome = tree.process_batch(&batch, &mut kg);
        (tree, outcome)
    }

    #[test]
    fn every_user_covered_by_exactly_one_packet() {
        let (tree, outcome) = setup(256, 64);
        let plans = plan(&tree, &outcome, &Layout::DEFAULT);
        let mut covered = HashSet::new();
        for p in &plans {
            for &u in &p.users {
                assert!(covered.insert(u), "user {u} in two packets");
            }
        }
        // Every remaining user with needs is covered.
        for uid in tree.user_ids() {
            let needs = outcome.encryptions_for_user(uid, 4);
            assert_eq!(
                covered.contains(&uid),
                !needs.is_empty(),
                "coverage mismatch for {uid}"
            );
        }
    }

    #[test]
    fn all_of_a_users_encryptions_in_its_packet() {
        let (tree, outcome) = setup(256, 64);
        let plans = plan(&tree, &outcome, &Layout::DEFAULT);
        for p in &plans {
            let have: HashSet<usize> = p.enc_indices.iter().copied().collect();
            for &u in &p.users {
                for i in outcome.encryptions_for_user(u, 4) {
                    assert!(have.contains(&i), "user {u} missing encryption {i}");
                }
            }
        }
    }

    #[test]
    fn ranges_strictly_increase() {
        let (tree, outcome) = setup(1024, 256);
        let plans = plan(&tree, &outcome, &Layout::DEFAULT);
        assert!(plans.len() > 1, "want multiple packets for this test");
        for w in plans.windows(2) {
            assert!(w[0].to_id < w[1].frm_id);
        }
        for p in &plans {
            assert!(p.frm_id <= p.to_id);
        }
    }

    #[test]
    fn capacity_respected() {
        let (tree, outcome) = setup(1024, 256);
        let layout = Layout::DEFAULT;
        for p in plan(&tree, &outcome, &layout) {
            assert!(p.enc_indices.len() <= layout.encryptions_per_packet());
        }
    }

    #[test]
    fn small_packets_force_more_duplication() {
        let (tree, outcome) = setup(256, 64);
        let big = plan(&tree, &outcome, &Layout::DEFAULT);
        let small_layout = Layout::new(3 + 6 + 22 * 12); // 12 encryptions/packet
        let small = plan(&tree, &outcome, &small_layout);
        assert!(small.len() > big.len());

        let emitted =
            |plans: &[PacketPlan]| -> usize { plans.iter().map(|p| p.enc_indices.len()).sum() };
        assert!(emitted(&small) >= emitted(&big));
    }

    #[test]
    fn empty_outcome_produces_no_packets() {
        let mut kg = KeyGen::from_seed(1);
        let mut tree = KeyTree::balanced(64, 4, &mut kg);
        let outcome = tree.process_batch(&Batch::default(), &mut kg);
        assert!(plan(&tree, &outcome, &Layout::DEFAULT).is_empty());
        let built = UkaAssignment::build(&tree, &outcome, 0, &Layout::DEFAULT).unwrap();
        assert_eq!(built.stats.packets, 0);
        assert_eq!(built.stats.duplication_overhead(), 0.0);
    }

    #[test]
    fn build_seals_decryptable_entries() {
        let (tree, outcome) = setup(64, 16);
        let msg_seq = 9;
        let built = UkaAssignment::build(&tree, &outcome, msg_seq, &Layout::DEFAULT).unwrap();
        assert_eq!(built.stats.distinct_encryptions, outcome.encryptions.len());

        // Every entry unseals under the child key with the right context.
        for pkt in &built.packets {
            for (id, sealed) in &pkt.entries {
                let child = *id as NodeId;
                let kek = tree.key_of(child).unwrap();
                let parent = keytree::ident::parent(child, 4).unwrap();
                let got = sealed
                    .unseal(&kek, crate::seal_context(msg_seq, child))
                    .expect("entry must unseal");
                assert_eq!(Some(got), tree.key_of(parent));
            }
        }
    }

    #[test]
    fn duplication_overhead_matches_hand_count() {
        let (tree, outcome) = setup(1024, 256);
        let built = UkaAssignment::build(&tree, &outcome, 0, &Layout::DEFAULT).unwrap();
        let emitted: usize = built.packets.iter().map(|p| p.entries.len()).sum();
        assert_eq!(built.stats.entries_emitted, emitted);
        let expect =
            (emitted - outcome.encryptions.len()) as f64 / outcome.encryptions.len() as f64;
        assert!((built.stats.duplication_overhead() - expect).abs() < 1e-12);
        assert!(built.stats.duplication_overhead() >= 0.0);
    }

    #[test]
    fn naive_baseline_scatters_users() {
        let (tree, outcome) = setup(1024, 256);
        let layout = Layout::DEFAULT;
        let naive = naive_plan_stats(&tree, &outcome, &layout);
        let uka = plan(&tree, &outcome, &layout);
        // Naive never duplicates, so it uses at most as many packets...
        assert!(naive.packets <= uka.len());
        // ...but scatters users across packets, which UKA never does.
        assert!(
            naive.avg_packets_per_user > 1.2,
            "naive avg {}",
            naive.avg_packets_per_user
        );
        assert!(naive.max_packets_per_user >= 2);
        assert!(naive.single_packet_fraction < 0.9);
    }

    #[test]
    fn naive_baseline_empty_message() {
        let mut kg = KeyGen::from_seed(1);
        let mut tree = KeyTree::balanced(16, 4, &mut kg);
        let outcome = tree.process_batch(&Batch::default(), &mut kg);
        let s = naive_plan_stats(&tree, &outcome, &Layout::DEFAULT);
        assert_eq!(s.packets, 0);
        assert_eq!(s.single_packet_fraction, 1.0);
    }

    #[test]
    fn packet_of_user_agrees_with_ranges() {
        let (tree, outcome) = setup(256, 64);
        let built = UkaAssignment::build(&tree, &outcome, 0, &Layout::DEFAULT).unwrap();
        for (&u, &pi) in &built.packet_of_user {
            assert!(built.packets[pi].serves(u as u16));
        }
    }
}
