//! The User-oriented Key Assignment (UKA) algorithm.
//!
//! UKA guarantees that **all of a user's encryptions land in one ENC
//! packet**, so the vast majority of users can recover their keys from a
//! single received packet without FEC decoding. It works on the sorted
//! list of user IDs: repeatedly take the longest prefix of remaining users
//! whose union of needed encryptions still fits one packet, emit that
//! packet with the inclusive user-ID range `<frmID, toID>`, and continue.
//! Ranges never overlap and strictly increase, which block-ID estimation
//! relies on.
//!
//! **Run aggregation.** The packing never needs to visit users one by
//! one: a user's need-set is exactly the encryption edges on its
//! leaf-to-root path, and that set is constant across every user under
//! the same *frontier* node — an encryption-bearing child of the rekey
//! subtree that is not itself an updated k-node. Updated k-nodes form a
//! root-connected subtree, so frontier subtrees are disjoint and every
//! served user lies in exactly one. Under BFS numbering a frontier
//! node's descendants at each level form a contiguous ID interval, and
//! all per-level intervals across frontier nodes are pairwise disjoint —
//! so the planner enumerates those intervals in ascending ID order
//! (*runs*) and packs whole runs: within a run the marginal cost of
//! every user after the first is zero, hence the greedy split points are
//! identical to the user-by-user walk, packet by packet, field by field.
//! Cost: O(E·h) for E encryption edges instead of O(N·h) for N users
//! (plus tag scans that touch only vacant window prefixes/suffixes). The
//! user-by-user walk survives as the test oracle
//! ([`crate::sanitize::reference_plan`]).
//!
//! The price of UKA is duplication: users in different packets that share
//! path encryptions receive copies. [`AssignmentStats::duplication_overhead`]
//! measures that cost exactly as the paper does (duplicated encryptions
//! over total encryptions in the rekey subtree).

use keytree::{ident, EncEdge, KeyTree, MarkOutcome, NodeId};
use wirecrypto::SealedKey;

use crate::layout::Layout;
use crate::seal_context;
use crate::wire::EncPacket;

/// An inclusive interval of node IDs served by one ENC packet, all lying
/// inside one frontier subtree. `lo` is always a genuine u-node; `hi` may
/// overshoot the last user of the interval (only u-slots in between are
/// users — vacant and out-of-range slots carry nothing). Every u-node in
/// `lo..=hi` shares the packet's need-set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UserRun {
    /// First served user ID of the run.
    pub lo: NodeId,
    /// Last slot ID of the run (inclusive; u-slots only are users).
    pub hi: NodeId,
}

/// One planned ENC packet: which users it serves and which encryptions it
/// carries. No cryptography yet — experiment drivers that only need counts
/// use plans directly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketPlan {
    /// First served user ID.
    pub frm_id: NodeId,
    /// Last served user ID (inclusive).
    pub to_id: NodeId,
    /// Indices into `MarkOutcome::encryptions`, ascending by encryption ID.
    pub enc_indices: Vec<usize>,
    /// The served users as a sorted, disjoint run list — O(runs), not
    /// O(users). Enumerate with [`PacketPlan::users_iter`].
    pub user_runs: Vec<UserRun>,
}

impl PacketPlan {
    /// Iterator over the u-node IDs this packet serves, ascending. Takes
    /// the tree the plan was built against (runs are ID intervals; the
    /// tag array says which slots inside them hold users).
    pub fn users_iter<'a>(&'a self, tree: &'a KeyTree) -> impl Iterator<Item = NodeId> + 'a {
        self.user_runs
            .iter()
            .flat_map(move |r| (r.lo..=r.hi).filter(move |&id| tree.is_u(id)))
    }

    /// True when `uid` — which must be a current u-node ID — is served by
    /// this packet. O(log runs).
    pub fn covers_user(&self, uid: NodeId) -> bool {
        self.user_runs
            .binary_search_by(|r| {
                if r.hi < uid {
                    core::cmp::Ordering::Less
                } else if r.lo > uid {
                    core::cmp::Ordering::Greater
                } else {
                    core::cmp::Ordering::Equal
                }
            })
            .is_ok()
    }
}

/// Counting statistics of one assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AssignmentStats {
    /// Number of ENC packets produced.
    pub packets: usize,
    /// Total `<encryption, ID>` entries emitted across all packets.
    pub entries_emitted: usize,
    /// Distinct encryptions in the rekey subtree.
    pub distinct_encryptions: usize,
}

impl AssignmentStats {
    /// Duplicated encryptions over total encryptions in the rekey subtree
    /// (the paper's duplication-overhead metric). Zero for an empty
    /// message.
    pub fn duplication_overhead(&self) -> f64 {
        if self.distinct_encryptions == 0 {
            0.0
        } else {
            (self.entries_emitted - self.distinct_encryptions) as f64
                / self.distinct_encryptions as f64
        }
    }
}

/// Position of `id` in the descending `updated` list, if present.
pub(crate) fn updated_pos(updated: &[NodeId], id: NodeId) -> Option<usize> {
    updated
        .binary_search_by(|&probe| probe.cmp(&id).reverse())
        .ok()
}

/// One clipped per-level frontier window awaiting packing: the IDs
/// `lo..=hi` are the descendants of one frontier node at one level,
/// intersected with the tree's user zone.
#[derive(Debug, Clone, Copy)]
struct RunWindow {
    lo: NodeId,
    hi: NodeId,
    /// Index into `MarkOutcome::encryptions` of the frontier edge.
    edge: u32,
}

/// Packed representation of one planned packet inside [`PlanScratch`]:
/// arena segment ends (starts are the previous meta's ends).
#[derive(Debug, Clone, Copy)]
struct PacketMeta {
    frm: NodeId,
    to: NodeId,
    enc_end: u32,
    run_end: u32,
}

/// Reusable scratch for the run-aggregated UKA planner: epoch-stamped
/// packet membership plus arena buffers for ancestor need-chains, sorted
/// frontier windows, and the packed plan output. With a warm scratch
/// (same batch shape as a previous call) [`PlanScratch::compute`]
/// performs zero heap allocations — the dynamic
/// `tests/no_alloc_marks.rs` harness pins that.
#[derive(Debug, Default)]
pub struct PlanScratch {
    /// Current packet stamp; bumped per packet and per `compute` call, so
    /// `in_packet[e] == stamp` means encryption `e` is in the open packet.
    stamp: u64,
    /// Per encryption index: stamp of the packet that last took it.
    in_packet: Vec<u64>,
    /// Per updated-k-node position: offset/len of its ancestor need-chain
    /// (encryption indices on the node→root path) in `chain_arena`.
    chain_off: Vec<u32>,
    chain_len: Vec<u32>,
    chain_arena: Vec<u32>,
    /// Clipped frontier windows, sorted ascending by `lo`.
    windows: Vec<RunWindow>,
    /// Packed output: one meta per packet over the two arenas.
    packets: Vec<PacketMeta>,
    enc_arena: Vec<u32>,
    run_arena: Vec<UserRun>,
}

impl PlanScratch {
    /// Fresh, cold scratch (first `compute` call sizes the buffers).
    pub fn new() -> PlanScratch {
        PlanScratch::default()
    }

    /// Derives the per-updated-node ancestor need-chains and the sorted
    /// frontier run windows for `outcome`. Returns false when there is
    /// nothing to plan (no encryptions, or no users / k-nodes).
    // xcheck: no_alloc
    fn prepare(&mut self, tree: &KeyTree, outcome: &MarkOutcome) -> bool {
        self.chain_arena.clear();
        self.chain_off.clear();
        self.chain_len.clear();
        self.windows.clear();
        if outcome.encryptions.is_empty() {
            return false;
        }
        let (Some(maxk), Some(maxu)) = (tree.max_knode_id(), tree.highest_unode_id()) else {
            return false;
        };
        let degree = tree.degree();
        let updated = &outcome.updated_knodes[..];

        // Ancestor chains: chain(p) = own edge (if any) ++ chain(parent).
        // `updated` is descending and parents have smaller IDs than
        // children, so walking positions high→low (IDs low→high) finds
        // every parent chain already built.
        self.chain_off.resize(updated.len(), 0);
        self.chain_len.resize(updated.len(), 0);
        for pos in (0..updated.len()).rev() {
            let p = updated[pos];
            let off = self.chain_arena.len() as u32;
            if let Some(i) = outcome.encryption_by_child(p) {
                self.chain_arena.push(i as u32);
            }
            if let Some(par) = ident::parent(p, degree) {
                if let Some(ppos) = updated_pos(updated, par) {
                    let poff = self.chain_off[ppos] as usize;
                    let plen = self.chain_len[ppos] as usize;
                    self.chain_arena.extend_from_within(poff..poff + plen);
                }
            }
            self.chain_off[pos] = off;
            self.chain_len[pos] = self.chain_arena.len() as u32 - off;
        }

        // Frontier windows: for every edge whose child is NOT an updated
        // k-node, the child's descendants at each level form one
        // contiguous ID interval; clip each to the user zone
        // (maxk, maxu] — Lemma 4.1 puts every u-node there — and keep the
        // non-empty clips. Frontier subtrees are disjoint and BFS levels
        // are disjoint ID bands, so the windows never overlap.
        let (maxk, maxu) = (maxk as u64, maxu as u64);
        let d = degree.max(2) as u64;
        for (i, edge) in outcome.encryptions.iter().enumerate() {
            if updated_pos(updated, edge.child).is_some() {
                continue;
            }
            let (mut lo, mut hi) = (edge.child as u64, edge.child as u64);
            while lo <= maxu {
                if hi > maxk {
                    let clo = lo.max(maxk + 1);
                    let chi = hi.min(maxu);
                    if clo <= chi {
                        self.windows.push(RunWindow {
                            lo: clo as NodeId,
                            hi: chi as NodeId,
                            edge: i as u32,
                        });
                    }
                }
                lo = d * lo + 1;
                hi = d * hi + d;
            }
        }
        self.windows.sort_unstable_by_key(|w| w.lo);
        true
    }

    /// Runs the greedy UKA packing over the prepared run windows, filling
    /// the packed-plan arenas. Returns the packet count. Bit-identical to
    /// the user-by-user reference walk: within a run every user after the
    /// first adds zero marginal cost, so the greedy split decisions — and
    /// therefore `frm_id`/`to_id`/`enc_indices` — land on the same
    /// boundaries.
    ///
    /// # Errors
    ///
    /// [`AssignError::PacketCapacity`] when one user's whole-path
    /// need-set alone exceeds the layout's packet capacity (UKA's
    /// one-packet-per-user guarantee would be unsatisfiable).
    // xcheck: no_alloc
    pub fn compute(
        &mut self,
        tree: &KeyTree,
        outcome: &MarkOutcome,
        layout: &Layout,
    ) -> Result<usize, AssignError> {
        self.packets.clear();
        self.enc_arena.clear();
        self.run_arena.clear();
        if !self.prepare(tree, outcome) {
            return Ok(0);
        }
        let capacity = layout.encryptions_per_packet();
        let updated = &outcome.updated_knodes[..];
        self.in_packet.resize(outcome.encryptions.len(), 0);
        self.stamp += 1;

        let mut enc_start = 0usize;
        let mut run_start = 0usize;
        let mut frm: NodeId = 0;
        let mut open = false;
        for wi in 0..self.windows.len() {
            let w = self.windows[wi];
            // Vacant windows (every slot an empty or relocated-away
            // u-slot) serve nobody and must not influence the packing.
            let Some(first) = tree.first_user_in(w.lo, w.hi) else {
                continue;
            };
            let parent = outcome.encryptions[w.edge as usize].parent;
            let (coff, clen) = match updated_pos(updated, parent) {
                Some(ppos) => (self.chain_off[ppos] as usize, self.chain_len[ppos] as usize),
                // Unreachable for outcomes the marking produces (edge
                // parents are always updated k-nodes); stay total.
                None => (0, 0),
            };
            let need_len = 1 + clen;
            if need_len > capacity {
                return Err(AssignError::PacketCapacity {
                    user: first,
                    needed: need_len,
                    capacity,
                });
            }
            let mut extra = usize::from(self.in_packet[w.edge as usize] != self.stamp);
            for k in 0..clen {
                let e = self.chain_arena[coff + k] as usize;
                extra += usize::from(self.in_packet[e] != self.stamp);
            }
            if open && (self.enc_arena.len() - enc_start) + extra > capacity {
                self.close_packet(tree, outcome, frm, enc_start);
                enc_start = self.enc_arena.len();
                run_start = self.run_arena.len();
                self.stamp += 1;
                open = false;
            }
            if !open {
                frm = first;
                open = true;
            }
            if self.in_packet[w.edge as usize] != self.stamp {
                self.in_packet[w.edge as usize] = self.stamp;
                self.enc_arena.push(w.edge);
            }
            for k in 0..clen {
                let e = self.chain_arena[coff + k] as usize;
                if self.in_packet[e] != self.stamp {
                    self.in_packet[e] = self.stamp;
                    self.enc_arena.push(e as u32);
                }
            }
            // Adjacent windows (same frontier node across levels, or
            // abutting siblings) merge into one stored run.
            let merged = self.run_arena.len() > run_start
                && self
                    .run_arena
                    .last()
                    .is_some_and(|last| last.hi + 1 == w.lo);
            match self.run_arena.last_mut() {
                Some(last) if merged => last.hi = w.hi,
                _ => self.run_arena.push(UserRun {
                    lo: first,
                    hi: w.hi,
                }),
            }
        }
        if open {
            self.close_packet(tree, outcome, frm, enc_start);
        }
        Ok(self.packets.len())
    }

    /// Seals the open packet: trims the final run to its last real user
    /// (the packet's `to_id`), sorts the packet's encryption segment by
    /// encryption (child) ID, and records the packet meta.
    // xcheck: no_alloc
    fn close_packet(
        &mut self,
        tree: &KeyTree,
        outcome: &MarkOutcome,
        frm: NodeId,
        enc_start: usize,
    ) {
        let to = match self.run_arena.last_mut() {
            Some(last) => {
                // The final run is non-vacant by construction; fall back
                // to its first user to stay total.
                let to = tree.last_user_in(last.lo, last.hi).unwrap_or(last.lo);
                last.hi = to;
                to
            }
            None => frm,
        };
        self.enc_arena[enc_start..]
            .sort_unstable_by_key(|&i| outcome.encryptions[i as usize].child);
        self.packets.push(PacketMeta {
            frm,
            to,
            enc_end: self.enc_arena.len() as u32,
            run_end: self.run_arena.len() as u32,
        });
    }

    /// Materializes the packed plans of the last [`PlanScratch::compute`]
    /// call (allocates the output vectors).
    fn emit(&self) -> Vec<PacketPlan> {
        let mut plans = Vec::with_capacity(self.packets.len());
        let (mut e0, mut r0) = (0usize, 0usize);
        for m in &self.packets {
            plans.push(PacketPlan {
                frm_id: m.frm,
                to_id: m.to,
                enc_indices: self.enc_arena[e0..m.enc_end as usize]
                    .iter()
                    .map(|&i| i as usize)
                    .collect(),
                user_runs: self.run_arena[r0..m.run_end as usize].to_vec(),
            });
            e0 = m.enc_end as usize;
            r0 = m.run_end as usize;
        }
        plans
    }
}

/// Plans the UKA packing without sealing anything (fresh scratch; steady
/// -state callers reuse one via [`plan_in`]).
///
/// Users that need no encryptions (their whole path is unchanged) are
/// skipped — they are vacuously satisfied by the rekey message.
///
/// # Errors
///
/// [`AssignError::PacketCapacity`] when a user's whole-path need-set
/// exceeds one packet (layout too small for this tree height).
pub fn plan(
    tree: &KeyTree,
    outcome: &MarkOutcome,
    layout: &Layout,
) -> Result<Vec<PacketPlan>, AssignError> {
    let mut scratch = PlanScratch::default();
    plan_in(tree, outcome, layout, &mut scratch)
}

/// [`plan`] with a caller-owned scratch: with a warm scratch the planning
/// core allocates nothing; only the returned plan vectors are fresh.
///
/// # Errors
///
/// As [`plan`].
pub fn plan_in(
    tree: &KeyTree,
    outcome: &MarkOutcome,
    layout: &Layout,
    scratch: &mut PlanScratch,
) -> Result<Vec<PacketPlan>, AssignError> {
    scratch.compute(tree, outcome, layout)?;
    Ok(scratch.emit())
}

/// Encryption edges per parallel seal chunk. Constant (not worker-count
/// derived) so chunk boundaries — and thus the work units and the
/// first-error-wins order — are identical at any `REKEY_THREADS`. The
/// streaming pipeline defaults its `chunk_edges` to this so both paths
/// cut the edge list on the same lines.
pub const SEAL_CHUNK: usize = 64;

/// Plans the UKA packing and seals the full edge list, without
/// assembling wire packets.
///
/// This is [`UkaAssignment::build`] minus the 16-bit wire stage: no
/// `maxKID`/ID range checks and no `EncPacket` assembly, so it stays
/// total for populations whose node IDs overflow the `u16` wire space
/// (N > 2^14 at degree 4). The bench harness uses it to measure the
/// *cryptographic* cost of message build at every N; `sealed[i]` is the
/// seal of `outcome.encryptions[i]`, bit-identical to what `build`
/// produces wherever both are defined.
///
/// # Errors
///
/// Fails when an encryption edge refers to a key absent from the tree or
/// when a need-set exceeds the packet capacity.
pub fn plan_and_seal(
    tree: &KeyTree,
    outcome: &MarkOutcome,
    msg_seq: u64,
    layout: &Layout,
) -> Result<(Vec<PacketPlan>, Vec<SealedKey>), AssignError> {
    let _span_build = obs::span("uka.build");
    let plans = plan(tree, outcome, layout)?;
    let span_seal = obs::span("stage.seal");
    let chunks: Vec<&[EncEdge]> = outcome.encryptions.chunks(SEAL_CHUNK).collect();
    let sealed_chunks: Vec<Result<Vec<SealedKey>, AssignError>> =
        taskpool::map(&chunks, |_, edges| {
            edges
                .iter()
                .map(|edge| {
                    let (Some(kek), Some(plain)) =
                        (tree.key_of(edge.child), tree.key_of(edge.parent))
                    else {
                        return Err(AssignError::MissingKey {
                            child: edge.child,
                            parent: edge.parent,
                        });
                    };
                    Ok(SealedKey::seal(
                        &kek,
                        &plain,
                        seal_context(msg_seq, edge.child),
                    ))
                })
                .collect()
        });
    let mut sealed: Vec<SealedKey> = Vec::with_capacity(outcome.encryptions.len());
    for chunk in sealed_chunks {
        sealed.extend(chunk?);
    }
    drop(span_seal);
    obs::counter_add("uka.keys_sealed", sealed.len() as u64);
    obs::counter_add(
        "uka.bytes_sealed",
        (sealed.len() * wirecrypto::SEALED_KEY_LEN) as u64,
    );
    Ok((plans, sealed))
}

/// Why building an assignment failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignError {
    /// An encryption edge refers to a key the tree no longer holds.
    MissingKey {
        /// The encrypting (child) node of the edge.
        child: NodeId,
        /// The encrypted (parent) node of the edge.
        parent: NodeId,
    },
    /// A node ID does not fit the 16-bit wire representation.
    IdOutOfRange(NodeId),
    /// A user's whole-path need-set exceeds one packet's capacity: the
    /// layout is too small for this tree height, so UKA's
    /// one-packet-per-user guarantee is unsatisfiable.
    PacketCapacity {
        /// The first (lowest-ID) user whose need-set does not fit.
        user: NodeId,
        /// Encryptions that user needs.
        needed: usize,
        /// Encryptions one packet holds under the layout.
        capacity: usize,
    },
}

impl core::fmt::Display for AssignError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AssignError::MissingKey { child, parent } => {
                write!(
                    f,
                    "encryption edge {child} -> {parent} refers to a missing key"
                )
            }
            AssignError::IdOutOfRange(id) => {
                write!(f, "node ID {id} exceeds the 16-bit wire range")
            }
            AssignError::PacketCapacity {
                user,
                needed,
                capacity,
            } => {
                write!(
                    f,
                    "user {user} needs {needed} encryptions but packets hold {capacity}: \
                     layout too small for this tree height"
                )
            }
        }
    }
}

impl std::error::Error for AssignError {}

/// Statistics of the *naive* (non-UKA) assignment baseline: encryptions
/// packed in rekey-subtree generation order with no per-user alignment.
///
/// This is the ablation that motivates UKA. Without alignment a user's
/// encryptions scatter over several packets, so its single-round success
/// probability drops from `(1 - p)` to `(1 - p)^m` — and it must FEC-
/// decode (or re-request) *every* block its packets land in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NaiveAssignmentStats {
    /// Packets produced (no duplication, so never more than UKA's count).
    pub packets: usize,
    /// Mean number of distinct packets a user needs.
    pub avg_packets_per_user: f64,
    /// Worst-case packets a user needs.
    pub max_packets_per_user: usize,
    /// Fraction of users whose needs land in a single packet.
    pub single_packet_fraction: f64,
}

/// Computes the naive-baseline statistics for the same workload UKA would
/// pack. Encryptions are taken in `MarkOutcome::encryptions` order
/// (bottom-up rekey-subtree traversal) and cut greedily into packets of
/// `layout.encryptions_per_packet()`.
///
/// Run-aggregated like [`plan`]: per-user packet spread is constant
/// across a frontier run, so each run is evaluated once and weighted by
/// its user count.
pub fn naive_plan_stats(
    tree: &KeyTree,
    outcome: &MarkOutcome,
    layout: &Layout,
) -> NaiveAssignmentStats {
    let capacity = layout.encryptions_per_packet();
    let total = outcome.encryptions.len();
    let empty = NaiveAssignmentStats {
        packets: 0,
        avg_packets_per_user: 0.0,
        max_packets_per_user: 0,
        single_packet_fraction: 1.0,
    };
    if total == 0 {
        return empty;
    }
    let mut scratch = PlanScratch::default();
    if !scratch.prepare(tree, outcome) {
        return empty;
    }
    let packets = total.div_ceil(capacity);

    let updated = &outcome.updated_knodes[..];
    let mut sum = 0usize;
    let mut max = 0usize;
    let mut single = 0usize;
    let mut users = 0usize;
    let mut pkts: Vec<usize> = Vec::new();
    for w in &scratch.windows {
        let count = tree.count_users_in(w.lo, w.hi);
        if count == 0 {
            continue;
        }
        pkts.clear();
        pkts.push(w.edge as usize / capacity);
        let parent = outcome.encryptions[w.edge as usize].parent;
        if let Some(ppos) = updated_pos(updated, parent) {
            let off = scratch.chain_off[ppos] as usize;
            let len = scratch.chain_len[ppos] as usize;
            pkts.extend(
                scratch.chain_arena[off..off + len]
                    .iter()
                    .map(|&e| e as usize / capacity),
            );
        }
        pkts.sort_unstable();
        pkts.dedup();
        users += count;
        sum += pkts.len() * count;
        max = max.max(pkts.len());
        if pkts.len() == 1 {
            single += count;
        }
    }
    NaiveAssignmentStats {
        packets,
        avg_packets_per_user: if users == 0 {
            0.0
        } else {
            sum as f64 / users as f64
        },
        max_packets_per_user: max,
        single_packet_fraction: if users == 0 {
            1.0
        } else {
            single as f64 / users as f64
        },
    }
}

/// The full assignment: sealed ENC packets plus bookkeeping.
#[derive(Debug, Clone)]
pub struct UkaAssignment {
    /// The ENC packets in generation order. `block_id`/`seq` are zero here;
    /// block partitioning fills them in.
    pub packets: Vec<EncPacket>,
    /// Plans aligned with `packets`.
    pub plans: Vec<PacketPlan>,
    /// Counting statistics.
    pub stats: AssignmentStats,
}

impl UkaAssignment {
    /// Which packet (index) serves user `uid`, or `None` when the user
    /// needs nothing from this message. `uid` must be a current u-node ID
    /// (as from [`KeyTree::node_of_member`] — non-user slot IDs inside a
    /// packet's range are not distinguished). O(log packets + log runs)
    /// by binary search over the strictly increasing packet ranges.
    pub fn packet_of_user(&self, uid: NodeId) -> Option<usize> {
        let pi = self.plans.partition_point(|p| p.to_id < uid);
        let p = self.plans.get(pi)?;
        p.covers_user(uid).then_some(pi)
    }

    /// Iterator over `(user ID, packet index)` for every served user,
    /// ascending by packet then user ID.
    pub fn served_users<'a>(
        &'a self,
        tree: &'a KeyTree,
    ) -> impl Iterator<Item = (NodeId, usize)> + 'a {
        self.plans
            .iter()
            .enumerate()
            .flat_map(move |(pi, p)| p.users_iter(tree).map(move |u| (u, pi)))
    }

    /// Runs UKA and seals every encryption (each distinct encryption is
    /// sealed once and copied wherever duplicated).
    ///
    /// # Errors
    ///
    /// Fails when an encryption edge refers to a key absent from the tree,
    /// when a node ID exceeds the 16-bit wire range, or when a need-set
    /// exceeds the packet capacity — all indicate a tree/marking/layout
    /// mismatch upstream.
    pub fn build(
        tree: &KeyTree,
        outcome: &MarkOutcome,
        msg_seq: u64,
        layout: &Layout,
    ) -> Result<UkaAssignment, AssignError> {
        let _span_build = obs::span("uka.build");
        let msg_id = (msg_seq & 0x3f) as u8;
        // The range check precedes planning so the barrier and streamed
        // paths surface errors in the same order (the streamed path
        // checks `max_kid` before phase 1 starts).
        let max_kid = outcome.nk.unwrap_or(0);
        if max_kid > u16::MAX as NodeId {
            return Err(AssignError::IdOutOfRange(max_kid));
        }
        let plans = plan(tree, outcome, layout)?;

        // Seal every encryption of the rekey subtree once, index-aligned
        // with `MarkOutcome::encryptions`. Every edge is on some live
        // user's path (the orphan-key invariant: each live k-node has a
        // u-descendant), so sealing the whole edge list does exactly the
        // work the plans require — without the distinct-index set and
        // keyed cache a plan-driven walk would need. The seals are
        // mutually independent (all keys were minted before this point),
        // so fan contiguous chunks out across workers; chunk boundaries
        // are worker-count independent and results return in input order,
        // so the sealed vector — and the first failing edge — are
        // identical at any worker count.
        let span_seal = obs::span("stage.seal");
        let chunks: Vec<&[EncEdge]> = outcome.encryptions.chunks(SEAL_CHUNK).collect();
        let sealed_chunks: Vec<Result<Vec<SealedKey>, AssignError>> =
            taskpool::map(&chunks, |_, edges| {
                edges
                    .iter()
                    .map(|edge| {
                        if edge.child > u16::MAX as NodeId {
                            return Err(AssignError::IdOutOfRange(edge.child));
                        }
                        let (Some(kek), Some(plain)) =
                            (tree.key_of(edge.child), tree.key_of(edge.parent))
                        else {
                            return Err(AssignError::MissingKey {
                                child: edge.child,
                                parent: edge.parent,
                            });
                        };
                        Ok(SealedKey::seal(
                            &kek,
                            &plain,
                            seal_context(msg_seq, edge.child),
                        ))
                    })
                    .collect()
            });
        let mut sealed: Vec<SealedKey> = Vec::with_capacity(outcome.encryptions.len());
        for chunk in sealed_chunks {
            sealed.extend(chunk?);
        }
        drop(span_seal);
        obs::counter_add("uka.keys_sealed", sealed.len() as u64);
        obs::counter_add(
            "uka.bytes_sealed",
            (sealed.len() * wirecrypto::SEALED_KEY_LEN) as u64,
        );

        let mut packets = Vec::with_capacity(plans.len());
        let mut entries_emitted = 0;
        for plan in plans.iter() {
            let mut entries: Vec<(u16, SealedKey)> = Vec::with_capacity(plan.enc_indices.len());
            for &i in &plan.enc_indices {
                let child = outcome.encryptions[i].child;
                entries.push((child as u16, sealed[i]));
            }
            entries_emitted += entries.len();
            if plan.frm_id > u16::MAX as NodeId || plan.to_id > u16::MAX as NodeId {
                return Err(AssignError::IdOutOfRange(plan.frm_id.max(plan.to_id)));
            }
            packets.push(EncPacket {
                msg_id,
                block_id: 0,
                seq: 0,
                duplicate: false,
                max_kid: max_kid as u16,
                frm_id: plan.frm_id as u16,
                to_id: plan.to_id as u16,
                entries,
            });
        }

        obs::counter_add("uka.enc_packets", packets.len() as u64);
        let stats = AssignmentStats {
            packets: plans.len(),
            entries_emitted,
            distinct_encryptions: outcome.encryptions.len(),
        };
        Ok(UkaAssignment {
            packets,
            plans,
            stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use keytree::Batch;
    use std::collections::HashSet;
    use wirecrypto::KeyGen;

    fn setup(n: u32, leaves: u32) -> (KeyTree, MarkOutcome) {
        let mut kg = KeyGen::from_seed(5);
        let mut tree = KeyTree::balanced(n, 4, &mut kg);
        // Spread the leavers uniformly over the leaf level (contiguous
        // leavers would prune whole subtrees and shrink the message).
        let stride = (n / leaves).max(1);
        let batch = Batch::new(vec![], (0..leaves).map(|i| (i * stride) % n).collect());
        let outcome = tree.process_batch(&batch, &mut kg);
        (tree, outcome)
    }

    #[test]
    fn every_user_covered_by_exactly_one_packet() {
        let (tree, outcome) = setup(256, 64);
        let plans = plan(&tree, &outcome, &Layout::DEFAULT).unwrap();
        let mut covered = HashSet::new();
        for p in &plans {
            for u in p.users_iter(&tree) {
                assert!(covered.insert(u), "user {u} in two packets");
            }
        }
        // Every remaining user with needs is covered.
        for uid in tree.user_ids() {
            let needs = outcome.encryptions_for_user(uid, 4);
            assert_eq!(
                covered.contains(&uid),
                !needs.is_empty(),
                "coverage mismatch for {uid}"
            );
        }
    }

    #[test]
    fn all_of_a_users_encryptions_in_its_packet() {
        let (tree, outcome) = setup(256, 64);
        let plans = plan(&tree, &outcome, &Layout::DEFAULT).unwrap();
        for p in &plans {
            let have: HashSet<usize> = p.enc_indices.iter().copied().collect();
            for u in p.users_iter(&tree) {
                for i in outcome.encryptions_for_user(u, 4) {
                    assert!(have.contains(&i), "user {u} missing encryption {i}");
                }
            }
        }
    }

    #[test]
    fn ranges_strictly_increase() {
        let (tree, outcome) = setup(1024, 256);
        let plans = plan(&tree, &outcome, &Layout::DEFAULT).unwrap();
        assert!(plans.len() > 1, "want multiple packets for this test");
        for w in plans.windows(2) {
            assert!(w[0].to_id < w[1].frm_id);
        }
        for p in &plans {
            assert!(p.frm_id <= p.to_id);
        }
    }

    #[test]
    fn capacity_respected() {
        let (tree, outcome) = setup(1024, 256);
        let layout = Layout::DEFAULT;
        for p in plan(&tree, &outcome, &layout).unwrap() {
            assert!(p.enc_indices.len() <= layout.encryptions_per_packet());
        }
    }

    #[test]
    fn small_packets_force_more_duplication() {
        let (tree, outcome) = setup(256, 64);
        let big = plan(&tree, &outcome, &Layout::DEFAULT).unwrap();
        let small_layout = Layout::new(3 + 6 + 22 * 12); // 12 encryptions/packet
        let small = plan(&tree, &outcome, &small_layout).unwrap();
        assert!(small.len() > big.len());

        let emitted =
            |plans: &[PacketPlan]| -> usize { plans.iter().map(|p| p.enc_indices.len()).sum() };
        assert!(emitted(&small) >= emitted(&big));
    }

    #[test]
    fn too_small_layout_is_a_typed_error() {
        let (tree, outcome) = setup(1024, 256);
        // 3 encryptions per packet < path length on a depth-5 tree.
        let tiny = Layout::new(3 + 6 + 22 * 3);
        match plan(&tree, &outcome, &tiny) {
            Err(AssignError::PacketCapacity {
                user,
                needed,
                capacity,
            }) => {
                assert_eq!(capacity, 3);
                assert!(needed > capacity);
                assert!(tree.is_u(user), "reported user {user} is a u-node");
                // The reported user is the first (lowest-ID) violator.
                let first_violator = tree
                    .user_ids_iter()
                    .find(|&u| outcome.encryptions_for_user(u, 4).len() > capacity)
                    .expect("a violator exists");
                assert_eq!(user, first_violator);
            }
            other => panic!("want PacketCapacity, got {other:?}"),
        }
        // The sealed builders surface the same error.
        let err = UkaAssignment::build(&tree, &outcome, 0, &tiny).unwrap_err();
        assert!(matches!(err, AssignError::PacketCapacity { .. }));
        let err = plan_and_seal(&tree, &outcome, 0, &tiny).unwrap_err();
        assert!(matches!(err, AssignError::PacketCapacity { .. }));
    }

    #[test]
    fn matches_reference_plan_across_layouts() {
        for (n, l) in [(64u32, 16u32), (256, 64), (1024, 256), (300, 77)] {
            let (tree, outcome) = setup(n, l);
            for cap in [5usize, 8, 12, 46] {
                let layout = Layout::new(3 + 6 + 22 * cap);
                match plan(&tree, &outcome, &layout) {
                    Ok(plans) => {
                        crate::sanitize::check_plan_identity(&tree, &outcome, &plans, &layout)
                            .unwrap_or_else(|e| panic!("n={n} l={l} cap={cap}: {e}"))
                    }
                    Err(AssignError::PacketCapacity { user, .. }) => {
                        let reference = crate::sanitize::reference_plan(&tree, &outcome, &layout);
                        let err = reference.expect_err("reference must also overflow");
                        assert!(err.contains(&format!("user {user} ")), "{err}");
                    }
                    Err(other) => panic!("unexpected {other:?}"),
                }
            }
        }
    }

    #[test]
    fn empty_outcome_produces_no_packets() {
        let mut kg = KeyGen::from_seed(1);
        let mut tree = KeyTree::balanced(64, 4, &mut kg);
        let outcome = tree.process_batch(&Batch::default(), &mut kg);
        assert!(plan(&tree, &outcome, &Layout::DEFAULT).unwrap().is_empty());
        let built = UkaAssignment::build(&tree, &outcome, 0, &Layout::DEFAULT).unwrap();
        assert_eq!(built.stats.packets, 0);
        assert_eq!(built.stats.duplication_overhead(), 0.0);
    }

    #[test]
    fn build_seals_decryptable_entries() {
        let (tree, outcome) = setup(64, 16);
        let msg_seq = 9;
        let built = UkaAssignment::build(&tree, &outcome, msg_seq, &Layout::DEFAULT).unwrap();
        assert_eq!(built.stats.distinct_encryptions, outcome.encryptions.len());

        // Every entry unseals under the child key with the right context.
        for pkt in &built.packets {
            for (id, sealed) in &pkt.entries {
                let child = *id as NodeId;
                let kek = tree.key_of(child).unwrap();
                let parent = keytree::ident::parent(child, 4).unwrap();
                let got = sealed
                    .unseal(&kek, crate::seal_context(msg_seq, child))
                    .expect("entry must unseal");
                assert_eq!(Some(got), tree.key_of(parent));
            }
        }
    }

    #[test]
    fn duplication_overhead_matches_hand_count() {
        let (tree, outcome) = setup(1024, 256);
        let built = UkaAssignment::build(&tree, &outcome, 0, &Layout::DEFAULT).unwrap();
        let emitted: usize = built.packets.iter().map(|p| p.entries.len()).sum();
        assert_eq!(built.stats.entries_emitted, emitted);
        let expect =
            (emitted - outcome.encryptions.len()) as f64 / outcome.encryptions.len() as f64;
        assert!((built.stats.duplication_overhead() - expect).abs() < 1e-12);
        assert!(built.stats.duplication_overhead() >= 0.0);
    }

    #[test]
    fn naive_baseline_scatters_users() {
        let (tree, outcome) = setup(1024, 256);
        let layout = Layout::DEFAULT;
        let naive = naive_plan_stats(&tree, &outcome, &layout);
        let uka = plan(&tree, &outcome, &layout).unwrap();
        // Naive never duplicates, so it uses at most as many packets...
        assert!(naive.packets <= uka.len());
        // ...but scatters users across packets, which UKA never does.
        assert!(
            naive.avg_packets_per_user > 1.2,
            "naive avg {}",
            naive.avg_packets_per_user
        );
        assert!(naive.max_packets_per_user >= 2);
        assert!(naive.single_packet_fraction < 0.9);
    }

    #[test]
    fn naive_baseline_matches_per_user_walk() {
        // The run-aggregated statistics equal the user-by-user
        // recomputation exactly (same per-user values, same weights).
        for (n, l) in [(64u32, 16u32), (256, 64), (1024, 256), (300, 77)] {
            let (tree, outcome) = setup(n, l);
            for cap in [5usize, 12, 46] {
                let layout = Layout::new(3 + 6 + 22 * cap);
                let fast = naive_plan_stats(&tree, &outcome, &layout);
                let capacity = layout.encryptions_per_packet();
                let (mut sum, mut max, mut single, mut users) = (0usize, 0usize, 0usize, 0usize);
                for uid in tree.user_ids_iter() {
                    let needs = outcome.encryptions_for_user(uid, tree.degree());
                    if needs.is_empty() {
                        continue;
                    }
                    let mut pkts: Vec<usize> = needs.iter().map(|&i| i / capacity).collect();
                    pkts.sort_unstable();
                    pkts.dedup();
                    users += 1;
                    sum += pkts.len();
                    max = max.max(pkts.len());
                    single += usize::from(pkts.len() == 1);
                }
                assert_eq!(fast.max_packets_per_user, max);
                let avg = if users == 0 {
                    0.0
                } else {
                    sum as f64 / users as f64
                };
                assert!((fast.avg_packets_per_user - avg).abs() < 1e-12);
                let frac = if users == 0 {
                    1.0
                } else {
                    single as f64 / users as f64
                };
                assert!((fast.single_packet_fraction - frac).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn naive_baseline_empty_message() {
        let mut kg = KeyGen::from_seed(1);
        let mut tree = KeyTree::balanced(16, 4, &mut kg);
        let outcome = tree.process_batch(&Batch::default(), &mut kg);
        let s = naive_plan_stats(&tree, &outcome, &Layout::DEFAULT);
        assert_eq!(s.packets, 0);
        assert_eq!(s.single_packet_fraction, 1.0);
    }

    #[test]
    fn packet_of_user_agrees_with_ranges() {
        let (tree, outcome) = setup(256, 64);
        let built = UkaAssignment::build(&tree, &outcome, 0, &Layout::DEFAULT).unwrap();
        let mut served = 0usize;
        for uid in tree.user_ids_iter() {
            let needs = outcome.encryptions_for_user(uid, tree.degree());
            match built.packet_of_user(uid) {
                Some(pi) => {
                    served += 1;
                    assert!(built.packets[pi].serves(uid as u16));
                    assert!(!needs.is_empty());
                }
                None => assert!(needs.is_empty(), "unserved user {uid} has needs"),
            }
        }
        assert!(served > 0);
        // served_users enumerates exactly the same mapping.
        let listed: Vec<(NodeId, usize)> = built.served_users(&tree).collect();
        assert_eq!(listed.len(), served);
        for (uid, pi) in listed {
            assert_eq!(built.packet_of_user(uid), Some(pi));
        }
    }

    #[test]
    fn warm_scratch_replans_identically() {
        let mut scratch = PlanScratch::new();
        for round in 0..3u32 {
            let (tree, outcome) = setup(512, 64 + round);
            let cold = plan(&tree, &outcome, &Layout::DEFAULT).unwrap();
            let warm = plan_in(&tree, &outcome, &Layout::DEFAULT, &mut scratch).unwrap();
            assert_eq!(cold, warm, "round {round}");
        }
    }
}
