//! Zero-copy packet views (the smoltcp idiom).
//!
//! [`wire`]'s `Repr`-style structs parse into owned values — convenient,
//! but a server forwarding packets or a user peeking at one header field
//! shouldn't have to materialise 46 sealed keys. These views wrap a byte
//! buffer and expose field accessors that read (and, for mutable buffers,
//! write) in place. `check_len` validates sizes once; accessors are then
//! panic-free on the validated buffer.
//!
//! [`wire`]: crate::wire

use crate::layout::{Layout, PAIR_LEN, PROTECTED_HEADER_LEN, UNPROTECTED_HEADER_LEN};
use crate::wire::WireError;

/// Zero-copy view of an ENC packet.
#[derive(Debug, Clone)]
pub struct EncView<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> EncView<T> {
    /// Wraps a buffer after validating its length and type tag.
    pub fn new_checked(buffer: T, layout: &Layout) -> Result<Self, WireError> {
        let len = buffer.as_ref().len();
        if len != layout.enc_packet_len {
            return Err(WireError::BadLength {
                expected: layout.enc_packet_len,
                got: len,
            });
        }
        if buffer.as_ref()[0] >> 6 != 0 {
            return Err(WireError::Truncated); // not an ENC tag
        }
        Ok(EncView { buffer })
    }

    /// Consumes the view, returning the buffer.
    pub fn into_inner(self) -> T {
        self.buffer
    }

    /// Rekey message ID (6 bits).
    pub fn msg_id(&self) -> u8 {
        self.buffer.as_ref()[0] & 0x3f
    }

    /// Block ID.
    pub fn block_id(&self) -> u8 {
        self.buffer.as_ref()[1]
    }

    /// Sequence number within the block.
    pub fn seq(&self) -> u8 {
        self.buffer.as_ref()[2] & 0x7f
    }

    /// Last-block duplicate flag.
    pub fn is_duplicate(&self) -> bool {
        self.buffer.as_ref()[2] & 0x80 != 0
    }

    /// `maxKID`.
    pub fn max_kid(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[3], b[4]])
    }

    /// First served user ID.
    pub fn frm_id(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[5], b[6]])
    }

    /// Last served user ID (inclusive).
    pub fn to_id(&self) -> u16 {
        let b = self.buffer.as_ref();
        u16::from_be_bytes([b[7], b[8]])
    }

    /// True when this packet serves user `m` — the one-field check a user
    /// performs on every arriving packet, with no allocation.
    pub fn serves(&self, m: u16) -> bool {
        self.frm_id() <= m && m <= self.to_id()
    }

    /// Number of non-padding `<encryption, ID>` pairs.
    pub fn entry_count(&self) -> usize {
        self.entry_ids().count()
    }

    /// Iterator over the encryption IDs carried, without touching the
    /// sealed bytes.
    pub fn entry_ids(&self) -> impl Iterator<Item = u16> + '_ {
        let b = self.buffer.as_ref();
        let start = UNPROTECTED_HEADER_LEN + PROTECTED_HEADER_LEN;
        b[start..]
            .chunks_exact(PAIR_LEN)
            .map(|pair| u16::from_be_bytes([pair[0], pair[1]]))
            .take_while(|&id| id != 0)
    }

    /// Borrow of the sealed bytes for encryption `enc_id`, if present.
    pub fn sealed_bytes(&self, enc_id: u16) -> Option<&[u8]> {
        let b = self.buffer.as_ref();
        let start = UNPROTECTED_HEADER_LEN + PROTECTED_HEADER_LEN;
        for (i, pair) in b[start..].chunks_exact(PAIR_LEN).enumerate() {
            let id = u16::from_be_bytes([pair[0], pair[1]]);
            if id == 0 {
                break;
            }
            if id == enc_id {
                let off = start + i * PAIR_LEN + 2;
                return Some(&b[off..off + PAIR_LEN - 2]);
            }
        }
        None
    }

    /// The FEC-protected body (borrowed).
    pub fn fec_body(&self) -> &[u8] {
        &self.buffer.as_ref()[UNPROTECTED_HEADER_LEN..]
    }
}

/// Zero-copy view of a PARITY packet.
#[derive(Debug, Clone)]
pub struct ParityView<T: AsRef<[u8]>> {
    buffer: T,
}

impl<T: AsRef<[u8]>> ParityView<T> {
    /// Wraps a buffer after validating its length and type tag.
    pub fn new_checked(buffer: T, layout: &Layout) -> Result<Self, WireError> {
        let len = buffer.as_ref().len();
        if len != layout.enc_packet_len {
            return Err(WireError::BadLength {
                expected: layout.enc_packet_len,
                got: len,
            });
        }
        if buffer.as_ref()[0] >> 6 != 1 {
            return Err(WireError::Truncated); // not a PARITY tag
        }
        Ok(ParityView { buffer })
    }

    /// Rekey message ID (6 bits).
    pub fn msg_id(&self) -> u8 {
        self.buffer.as_ref()[0] & 0x3f
    }

    /// Block ID.
    pub fn block_id(&self) -> u8 {
        self.buffer.as_ref()[1]
    }

    /// Parity index within the block.
    pub fn seq(&self) -> u8 {
        self.buffer.as_ref()[2]
    }

    /// The parity body (borrowed).
    pub fn body(&self) -> &[u8] {
        &self.buffer.as_ref()[UNPROTECTED_HEADER_LEN..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{EncPacket, Packet, ParityPacket};
    use wirecrypto::{SealedKey, SymKey};

    fn sample() -> EncPacket {
        let kek = SymKey::from_bytes([5; 16]);
        EncPacket {
            msg_id: 21,
            block_id: 3,
            seq: 7,
            duplicate: true,
            max_kid: 1365,
            frm_id: 1400,
            to_id: 1450,
            entries: vec![
                (1400, SealedKey::seal(&kek, &SymKey::from_bytes([1; 16]), 1)),
                (350, SealedKey::seal(&kek, &SymKey::from_bytes([2; 16]), 2)),
            ],
        }
    }

    #[test]
    fn view_agrees_with_parse() {
        let layout = Layout::DEFAULT;
        let pkt = sample();
        let bytes = pkt.emit(&layout);
        let view = EncView::new_checked(&bytes[..], &layout).unwrap();
        assert_eq!(view.msg_id(), pkt.msg_id);
        assert_eq!(view.block_id(), pkt.block_id);
        assert_eq!(view.seq(), pkt.seq);
        assert!(view.is_duplicate());
        assert_eq!(view.max_kid(), pkt.max_kid);
        assert_eq!(view.frm_id(), pkt.frm_id);
        assert_eq!(view.to_id(), pkt.to_id);
        assert_eq!(view.entry_count(), 2);
        assert!(view.serves(1425));
        assert!(!view.serves(1399));
        let ids: Vec<u16> = view.entry_ids().collect();
        assert_eq!(ids, vec![1400, 350]);
        // Sealed bytes line up with the owned parse.
        assert_eq!(view.sealed_bytes(350).unwrap(), pkt.entries[1].1.as_bytes());
        assert!(view.sealed_bytes(9999).is_none());
        // FEC body identical to the Repr path.
        assert_eq!(view.fec_body(), &pkt.fec_body(&layout)[..]);
    }

    #[test]
    fn view_rejects_wrong_length_and_tag() {
        let layout = Layout::DEFAULT;
        let bytes = sample().emit(&layout);
        assert!(EncView::new_checked(&bytes[..100], &layout).is_err());
        let parity = ParityPacket {
            msg_id: 1,
            block_id: 0,
            seq: 0,
            body: vec![0; layout.fec_body_len()],
        };
        let pbytes = parity.emit(&layout);
        assert!(EncView::new_checked(&pbytes[..], &layout).is_err());
        assert!(ParityView::new_checked(&pbytes[..], &layout).is_ok());
        assert!(ParityView::new_checked(&bytes[..], &layout).is_err());
    }

    #[test]
    fn parity_view_fields() {
        let layout = Layout::DEFAULT;
        let parity = ParityPacket {
            msg_id: 9,
            block_id: 4,
            seq: 200,
            body: vec![0xCD; layout.fec_body_len()],
        };
        let bytes = parity.emit(&layout);
        let view = ParityView::new_checked(&bytes[..], &layout).unwrap();
        assert_eq!(view.msg_id(), 9);
        assert_eq!(view.block_id(), 4);
        assert_eq!(view.seq(), 200);
        assert_eq!(view.body(), &parity.body[..]);
        // Round trip through the owned parser agrees.
        match Packet::parse(&bytes, &layout).unwrap() {
            Packet::Parity(p) => assert_eq!(p, parity),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn owned_buffer_views_work() {
        let layout = Layout::DEFAULT;
        let bytes = sample().emit(&layout);
        let view = EncView::new_checked(bytes.clone(), &layout).unwrap();
        assert_eq!(view.entry_count(), 2);
        assert_eq!(view.into_inner(), bytes);
    }
}
