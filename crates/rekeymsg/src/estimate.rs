//! User-side block-ID estimation (Appendix D).
//!
//! A user that lost its specific ENC packet does not directly know which
//! FEC block that packet belongs to. Every *received* ENC packet, however,
//! bounds the answer: UKA emits packets in increasing user-ID ranges, so a
//! received packet whose range lies below the user's ID must belong to an
//! earlier-or-equal block, and one whose range lies above to a
//! later-or-equal block; sequence numbers at block edges tighten the bound
//! by one. The `maxKID` field also caps how many packets can exist at all,
//! bounding the block ID from above even when nothing was received from
//! later blocks.
//!
//! Duplicated last-block packets are excluded (their ranges repeat out of
//! order).

use crate::wire::EncPacket;

/// Running `[low, high]` estimate of the block containing a user's ENC
/// packet.
#[derive(Debug, Clone)]
pub struct BlockIdEstimator {
    /// The user's (current) ID.
    m: u16,
    /// FEC block size.
    k: usize,
    /// Key-tree degree.
    d: u32,
    low: u32,
    high: Option<u32>, // None = unbounded (nothing informative seen yet)
    exact: bool,
}

impl BlockIdEstimator {
    /// Creates an estimator for user ID `m` under block size `k` and tree
    /// degree `d`.
    pub fn new(m: u16, k: usize, d: u32) -> Self {
        assert!(k >= 1);
        BlockIdEstimator {
            m,
            k,
            d,
            low: 0,
            high: None,
            exact: false,
        }
    }

    /// Feeds one received ENC packet into the estimate.
    pub fn observe(&mut self, pkt: &EncPacket) {
        if pkt.duplicate {
            return;
        }
        let m = self.m;
        let blk = pkt.block_id as u32;
        let k = self.k as u32;

        if pkt.serves(m) {
            self.low = blk;
            self.high = Some(blk);
            self.exact = true;
            return;
        }
        if m > pkt.to_id {
            // The user's packet was generated after this one.
            if u32::from(pkt.seq) == k - 1 {
                self.low = self.low.max(blk + 1);
            } else {
                self.low = self.low.max(blk);
            }
            // Step 6: maxKID caps the number of packets that can follow.
            // At worst one packet per remaining user ID: there are at most
            // d*(maxKID+1) - toID user IDs above toID, and k - 1 - seq
            // packets left in this block.
            let remaining_users = (self.d as i64) * (pkt.max_kid as i64 + 1) - pkt.to_id as i64;
            let after_this_block = remaining_users - (k as i64 - 1 - pkt.seq as i64);
            let remaining = after_this_block.max(0);
            let extra_blocks = ((remaining + k as i64 - 1) / k as i64) as u32;
            self.bound_high(blk + extra_blocks);
        } else {
            // m < pkt.frm_id: the user's packet was generated earlier.
            if pkt.seq == 0 {
                self.bound_high(blk.saturating_sub(1));
            } else {
                self.bound_high(blk);
            }
        }
    }

    fn bound_high(&mut self, candidate: u32) {
        self.high = Some(match self.high {
            Some(h) => h.min(candidate),
            None => candidate,
        });
    }

    /// True once the block ID is pinned exactly.
    pub fn is_exact(&self) -> bool {
        self.exact || matches!(self.high, Some(h) if h == self.low)
    }

    /// Current `[low, high]` range; `None` if nothing informative has been
    /// observed yet (the high end is unbounded).
    pub fn range(&self) -> Option<(u32, u32)> {
        self.high.map(|h| (self.low.min(h), h))
    }

    /// Lower bound (always defined).
    pub fn low(&self) -> u32 {
        self.low
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wirecrypto::{SealedKey, SymKey};

    /// An ENC packet stand-in with chosen range/block/seq fields.
    fn pkt(blk: u8, seq: u8, frm: u16, to: u16, max_kid: u16) -> EncPacket {
        let kek = SymKey::from_bytes([1; 16]);
        let plain = SymKey::from_bytes([2; 16]);
        EncPacket {
            msg_id: 0,
            block_id: blk,
            seq,
            duplicate: false,
            max_kid,
            frm_id: frm,
            to_id: to,
            entries: vec![(frm, SealedKey::seal(&kek, &plain, 0))],
        }
    }

    #[test]
    fn own_packet_is_exact() {
        let mut e = BlockIdEstimator::new(150, 5, 4);
        e.observe(&pkt(3, 2, 140, 160, 4000));
        assert!(e.is_exact());
        assert_eq!(e.range(), Some((3, 3)));
    }

    #[test]
    fn sandwich_determines_block() {
        // The paper's key claim: receiving one packet before and one after
        // the lost packet pins its block exactly (when they straddle it
        // tightly). User 150's packet is <2, 3> (k = 5); it receives
        // <2, 2> (range below) and <2, 4> (range above).
        let mut e = BlockIdEstimator::new(150, 5, 4);
        e.observe(&pkt(2, 2, 100, 140, 4000)); // below, seq < k-1 -> low >= 2
        e.observe(&pkt(2, 4, 160, 200, 4000)); // above, seq > 0 -> high <= 2
        assert!(e.is_exact());
        assert_eq!(e.range(), Some((2, 2)));
    }

    #[test]
    fn block_edges_tighten_by_one() {
        // A packet below with seq == k-1 pushes low past its block; one
        // above with seq == 0 pulls high below its block.
        let mut e = BlockIdEstimator::new(150, 5, 4);
        e.observe(&pkt(1, 4, 100, 140, 4000)); // last of block 1 -> low >= 2
        e.observe(&pkt(3, 0, 160, 200, 4000)); // first of block 3 -> high <= 2
        assert!(e.is_exact());
        assert_eq!(e.range(), Some((2, 2)));
    }

    #[test]
    fn duplicates_are_ignored() {
        let mut e = BlockIdEstimator::new(150, 5, 4);
        let mut p = pkt(7, 0, 160, 200, 4000);
        p.duplicate = true;
        e.observe(&p);
        assert_eq!(e.range(), None);
        assert_eq!(e.low(), 0);
    }

    #[test]
    fn max_kid_bounds_high_from_below_packets_only() {
        // Only packets below the user received; step 6 still bounds high.
        // d=4, maxKID=100 -> at most 4*101 = 404 user IDs; toID = 200,
        // so at most 204 - (k-1-seq) packets follow.
        let mut e = BlockIdEstimator::new(250, 10, 4);
        e.observe(&pkt(5, 3, 180, 200, 100));
        let (low, high) = e.range().expect("bounded");
        assert_eq!(low, 5);
        // after_this_block = 204 - 6 = 198; ceil(198/10) = 20 -> high 25.
        assert_eq!(high, 25);
    }

    #[test]
    fn bounds_always_contain_truth_for_synthetic_stream() {
        // Build a synthetic message: 30 users, one per packet entry... use
        // 30 packets with contiguous ranges [10i+10, 10i+19], k = 4.
        let k = 4usize;
        let d = 4u32;
        let max_kid = 500u16;
        let packets: Vec<EncPacket> = (0..30u16)
            .map(|i| {
                pkt(
                    (i as usize / k) as u8,
                    (i as usize % k) as u8,
                    10 * i + 10,
                    10 * i + 19,
                    max_kid,
                )
            })
            .collect();

        // For every "user" (midpoint of each packet's range) and every
        // subset pattern of received packets, the estimate contains the
        // true block.
        for target in 0..30usize {
            let m = 10 * target as u16 + 15;
            let true_block = (target / k) as u32;
            // A few deterministic loss patterns.
            for pattern in [0b1010101u64, 0b110011, 0b1, u64::MAX, 0b111000111] {
                let mut e = BlockIdEstimator::new(m, k, d);
                for (i, p) in packets.iter().enumerate() {
                    if i != target && (pattern >> (i % 60)) & 1 == 1 {
                        e.observe(p);
                    }
                }
                assert!(e.low() <= true_block, "m={m} pattern={pattern:b}");
                if let Some((lo, hi)) = e.range() {
                    assert!(
                        lo <= true_block && true_block <= hi,
                        "m={m} true={true_block} range=({lo},{hi}) pattern={pattern:b}"
                    );
                }
            }
        }
    }

    #[test]
    fn nothing_observed_is_unbounded() {
        let e = BlockIdEstimator::new(5, 10, 4);
        assert_eq!(e.range(), None);
        assert!(!e.is_exact());
        assert_eq!(e.low(), 0);
    }
}
