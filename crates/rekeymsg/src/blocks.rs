//! FEC block partitioning and parity generation.
//!
//! ENC packets are taken in generation order and cut into blocks of `k`;
//! the last block is padded by cyclically duplicating its own packets
//! (duplicates carry the duplicate flag and fresh sequence numbers, so they
//! count as FEC shares but are ignored by block-ID estimation). PARITY
//! packets for a block are generated on demand with monotonically
//! increasing sequence numbers, so proactive parities (round one) and
//! reactive parities (later rounds) are always mutually compatible shares
//! of the same Reed–Solomon block.
//!
//! Blocks share no encoder state, so body serialization and parity
//! minting fan out across a [`taskpool`] scope; results are collected in
//! block order, keeping every schedule bit-identical to a sequential run.

use rse::{BlockEncoder, RseError};

use crate::layout::Layout;
use crate::wire::{EncPacket, Packet, ParityPacket};

/// One FEC block: `k` data packets plus the machinery to mint parities.
#[derive(Debug, Clone)]
pub struct Block {
    /// Block ID.
    pub id: u8,
    /// Exactly `k` ENC packets (the tail may be duplicates).
    pub packets: Vec<EncPacket>,
    bodies: Vec<Vec<u8>>,
    encoder: BlockEncoder,
    next_parity: usize,
}

impl Block {
    /// Number of fresh parity packets still mintable.
    pub fn parities_remaining(&self) -> usize {
        self.encoder.max_parities().saturating_sub(self.next_parity)
    }

    /// Total parity packets minted so far.
    pub fn parities_minted(&self) -> usize {
        self.next_parity
    }

    /// Mints `count` fresh parities for this block, advancing the parity
    /// sequence. Blocks are independent, so the block set fans this out
    /// across workers.
    fn mint(&mut self, msg_id: u8, count: usize) -> Result<Vec<ParityPacket>, RseError> {
        if count == 0 {
            return Ok(Vec::new());
        }
        obs::counter_add("fec.parity_packets", count as u64);
        let _span_encode = obs::span("stage.encode");
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let j = self.next_parity;
            let body = self.encoder.parity(j, &self.bodies)?;
            self.next_parity += 1;
            out.push(ParityPacket {
                msg_id,
                block_id: self.id,
                seq: j as u8,
                body,
            });
        }
        Ok(out)
    }
}

/// The blocks of one rekey message.
#[derive(Debug, Clone)]
pub struct BlockSet {
    k: usize,
    layout: Layout,
    msg_id: u8,
    blocks: Vec<Block>,
    real_packets: usize,
}

/// One packet in the send schedule.
pub type SendItem = Packet;

/// Order in which a round's packets leave the server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SendOrder {
    /// Round-robin across blocks (the paper's choice): consecutive
    /// same-block packets are separated by a sweep of the other blocks,
    /// so one burst-loss period rarely takes out two shares of a block.
    #[default]
    Interleaved,
    /// Block after block — the ablation baseline that shows what
    /// interleaving buys under burst loss.
    Sequential,
}

impl BlockSet {
    /// Partitions `packets` (from UKA, in generation order) into blocks of
    /// `k`, assigning block IDs and sequence numbers.
    ///
    /// # Panics
    ///
    /// Panics when `k` is not a valid block size or when the message needs
    /// more than 256 blocks (wire limit of the 8-bit block ID).
    pub fn new(packets: Vec<EncPacket>, k: usize, layout: Layout) -> Self {
        let Ok(proto_encoder) = BlockEncoder::new(k) else {
            panic!("invalid block size {k}");
        };
        Self::with_encoder(packets, proto_encoder, layout)
    }

    /// Like [`BlockSet::new`], but cloning block state from a caller-owned
    /// prototype encoder.
    ///
    /// A long-lived server warms one encoder per block size once (the
    /// O(k²) Lagrange setup plus the proactive parity rows) and hands
    /// clones here, so that work is shared across all blocks of every
    /// rekey message instead of being redone per message.
    ///
    /// # Panics
    ///
    /// Panics when the message needs more than 256 blocks (wire limit of
    /// the 8-bit block ID).
    pub fn with_encoder(
        mut packets: Vec<EncPacket>,
        proto_encoder: BlockEncoder,
        layout: Layout,
    ) -> Self {
        let _span_build = obs::span("fec.block_build");
        let k = proto_encoder.k();
        let real_packets = packets.len();
        let block_count = packets.len().div_ceil(k);
        obs::counter_add("fec.blocks", block_count as u64);
        obs::counter_add("fec.enc_packets", real_packets as u64);
        assert!(
            block_count <= 256,
            "message needs {block_count} blocks, wire limit 256"
        );

        // Stamp block IDs / sequence numbers and pad the last (short)
        // block with cyclic duplicates.
        let mut per_block: Vec<Vec<EncPacket>> = Vec::with_capacity(block_count);
        for (b, chunk) in packets.chunks_mut(k).enumerate() {
            let mut block_packets: Vec<EncPacket> = Vec::with_capacity(k);
            for (s, pkt) in chunk.iter_mut().enumerate() {
                pkt.block_id = b as u8;
                pkt.seq = s as u8;
                pkt.duplicate = false;
                block_packets.push(pkt.clone());
            }
            let real = block_packets.len();
            let mut s = real;
            while block_packets.len() < k {
                let mut dup = block_packets[s % real].clone();
                dup.seq = s as u8;
                dup.duplicate = true;
                block_packets.push(dup);
                s += 1;
            }
            per_block.push(block_packets);
        }

        // FEC bodies are independent per block; fan the serialization out.
        // Body serialization is the data half of the encode stage (the
        // parity half lives in `Block::mint`), so it records under the
        // same span in both the barrier and streaming builds.
        let bodies_per_block: Vec<Vec<Vec<u8>>> = taskpool::map(&per_block, |_, pkts| {
            let _span_encode = obs::span("stage.encode");
            pkts.iter().map(|p| p.fec_body(&layout)).collect()
        });

        let blocks: Vec<Block> = per_block
            .into_iter()
            .zip(bodies_per_block)
            .enumerate()
            .map(|(b, (block_packets, bodies))| Block {
                id: b as u8,
                packets: block_packets,
                bodies,
                encoder: proto_encoder.clone(),
                next_parity: 0,
            })
            .collect();
        let msg_id = blocks.first().map(|b| b.packets[0].msg_id).unwrap_or(0);
        BlockSet {
            k,
            layout,
            msg_id,
            blocks,
            real_packets,
        }
    }

    /// Block size `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// ENC packets before last-block duplication.
    pub fn real_packet_count(&self) -> usize {
        self.real_packets
    }

    /// Duplicated packets added to fill the last block.
    pub fn duplicated_count(&self) -> usize {
        self.blocks.len() * self.k - self.real_packets
    }

    /// Borrow a block.
    pub fn block(&self, id: usize) -> Option<&Block> {
        self.blocks.get(id)
    }

    /// Mints `count` fresh PARITY packets for block `block_id`, advancing
    /// the parity sequence. Errors if the field limit (255 shares) is hit.
    pub fn mint_parities(
        &mut self,
        block_id: usize,
        count: usize,
    ) -> Result<Vec<ParityPacket>, RseError> {
        let msg_id = self.msg_id;
        self.blocks[block_id].mint(msg_id, count)
    }

    /// Mints `counts[b]` fresh PARITY packets for every block `b`, fanning
    /// the independent block encodes out across workers.
    ///
    /// The result (packet bytes and parity sequence numbers alike) is
    /// bit-identical to minting block by block: blocks share no encoder
    /// state and results are collected in block order. The first error in
    /// block order wins, matching the sequential path.
    ///
    /// # Panics
    ///
    /// Panics when `counts` does not have one entry per block.
    pub fn mint_parities_many(
        &mut self,
        counts: &[usize],
    ) -> Result<Vec<Vec<ParityPacket>>, RseError> {
        assert_eq!(counts.len(), self.blocks.len(), "one count entry per block");
        let msg_id = self.msg_id;
        taskpool::map_mut(&mut self.blocks, |b, block| block.mint(msg_id, counts[b]))
            .into_iter()
            .collect()
    }

    /// Mints the proactive parities for every block: `ceil((rho - 1) * k)`
    /// each, rounded as the paper specifies.
    pub fn mint_proactive(&mut self, rho: f64) -> Result<Vec<Vec<ParityPacket>>, RseError> {
        let per_block = proactive_parity_count(rho, self.k);
        let counts = vec![per_block; self.blocks.len()];
        self.mint_parities_many(&counts)
    }

    /// The round-one multicast schedule: ENC and PARITY packets ordered
    /// across blocks per `order` (interleaving is the paper's burst-loss
    /// mitigation).
    pub fn round_one_schedule_ordered(
        &mut self,
        rho: f64,
        order: SendOrder,
    ) -> Result<Vec<SendItem>, RseError> {
        let parities = self.mint_proactive(rho)?;
        let lanes: Vec<Vec<Packet>> = self
            .blocks
            .iter()
            .zip(parities)
            .map(|(b, par)| {
                b.packets
                    .iter()
                    .cloned()
                    .map(Packet::Enc)
                    .chain(par.into_iter().map(Packet::Parity))
                    .collect()
            })
            .collect();
        Ok(apply_order(lanes, order))
    }

    /// Round-one schedule in the default interleaved order.
    pub fn round_one_schedule(&mut self, rho: f64) -> Result<Vec<SendItem>, RseError> {
        self.round_one_schedule_ordered(rho, SendOrder::Interleaved)
    }

    /// Schedule for a reactive round: `amax[i]` fresh parities per block.
    pub fn reactive_schedule_ordered(
        &mut self,
        amax: &[usize],
        order: SendOrder,
    ) -> Result<Vec<SendItem>, RseError> {
        assert_eq!(amax.len(), self.blocks.len(), "one amax entry per block");
        let lanes: Vec<Vec<Packet>> = self
            .mint_parities_many(amax)?
            .into_iter()
            .map(|pars| pars.into_iter().map(Packet::Parity).collect())
            .collect();
        Ok(apply_order(lanes, order))
    }

    /// Reactive schedule in the default interleaved order.
    pub fn reactive_schedule(&mut self, amax: &[usize]) -> Result<Vec<SendItem>, RseError> {
        self.reactive_schedule_ordered(amax, SendOrder::Interleaved)
    }

    /// The layout this message was built with.
    pub fn layout(&self) -> Layout {
        self.layout
    }
}

/// Stamps one block's worth of ENC packets for the wire: assigns
/// `block_id = b` and ascending sequence numbers, and cyclically pads a
/// short (final) chunk up to `k` with flagged duplicates — exactly the
/// stamping [`BlockSet::with_encoder`] applies, factored out so the
/// streaming build can stamp blocks as their packets are assembled.
///
/// Returns an empty vector for an empty chunk (no padding is invented).
pub fn stamp_block(chunk: &[EncPacket], b: usize, k: usize) -> Vec<EncPacket> {
    if chunk.is_empty() {
        return Vec::new();
    }
    let mut block_packets: Vec<EncPacket> = Vec::with_capacity(k);
    for (s, pkt) in chunk.iter().enumerate() {
        let mut stamped = pkt.clone();
        stamped.block_id = b as u8;
        stamped.seq = s as u8;
        stamped.duplicate = false;
        block_packets.push(stamped);
    }
    let real = block_packets.len();
    let mut s = real;
    while block_packets.len() < k {
        let mut dup = block_packets[s % real].clone();
        dup.seq = s as u8;
        dup.duplicate = true;
        block_packets.push(dup);
        s += 1;
    }
    block_packets
}

/// Serializes the FEC bodies of one stamped block — the pure data half
/// of the encode stage, callable from any pipeline worker.
pub fn fec_bodies(packets: &[EncPacket], layout: &Layout) -> Vec<Vec<u8>> {
    let _span_encode = obs::span("stage.encode");
    packets.iter().map(|p| p.fec_body(layout)).collect()
}

/// Incremental [`BlockSet`] construction for the streaming build:
/// stamped blocks and their serialized FEC bodies arrive one at a time
/// (in block order — the pipeline's ordered reassembly guarantees it)
/// and [`BlockSetBuilder::finish`] yields a block set bit-identical to
/// [`BlockSet::with_encoder`] over the same packets.
///
/// The caller stamps with [`stamp_block`] and serializes with
/// [`fec_bodies`]; the builder only accounts and assembles, so the
/// expensive serialization can run on pipeline workers while later
/// blocks' packets are still being assembled.
#[derive(Debug)]
pub struct BlockSetBuilder {
    proto_encoder: BlockEncoder,
    layout: Layout,
    blocks: Vec<Block>,
    real_packets: usize,
}

impl BlockSetBuilder {
    /// Starts an empty builder cloning block state from the caller-owned
    /// warmed prototype encoder (see [`BlockSet::with_encoder`]).
    pub fn new(proto_encoder: BlockEncoder, layout: Layout) -> Self {
        BlockSetBuilder {
            proto_encoder,
            layout,
            blocks: Vec::new(),
            real_packets: 0,
        }
    }

    /// Block size `k`.
    pub fn k(&self) -> usize {
        self.proto_encoder.k()
    }

    /// Appends the next block: `packets` as stamped by [`stamp_block`]
    /// for this block index, `bodies` their [`fec_bodies`] serialization.
    ///
    /// # Panics
    ///
    /// Panics when the message would exceed 256 blocks (wire limit of
    /// the 8-bit block ID) — the same limit `with_encoder` asserts.
    pub fn push_block(&mut self, packets: Vec<EncPacket>, bodies: Vec<Vec<u8>>) {
        assert!(
            self.blocks.len() < 256,
            "message needs more than 256 blocks, wire limit 256"
        );
        // Padding duplicates carry the flag, so the pre-padding packet
        // count is recoverable exactly.
        self.real_packets += packets.iter().filter(|p| !p.duplicate).count();
        self.blocks.push(Block {
            id: self.blocks.len() as u8,
            packets,
            bodies,
            encoder: self.proto_encoder.clone(),
            next_parity: 0,
        });
    }

    /// Finishes the set. Equal (field for field) to
    /// [`BlockSet::with_encoder`] over the concatenation of the pushed
    /// blocks' real packets.
    pub fn finish(self) -> BlockSet {
        obs::counter_add("fec.blocks", self.blocks.len() as u64);
        obs::counter_add("fec.enc_packets", self.real_packets as u64);
        let msg_id = self
            .blocks
            .first()
            .map(|b| b.packets[0].msg_id)
            .unwrap_or(0);
        BlockSet {
            k: self.proto_encoder.k(),
            layout: self.layout,
            msg_id,
            blocks: self.blocks,
            real_packets: self.real_packets,
        }
    }
}

/// `ceil((rho - 1) * k)` proactive parity packets per block, clamped at
/// zero (the adaptive algorithm may drive `rho` below 1, which simply
/// means "send no proactive parity").
pub fn proactive_parity_count(rho: f64, k: usize) -> usize {
    ((rho - 1.0) * k as f64).ceil().max(0.0) as usize
}

fn apply_order<T>(lanes: Vec<Vec<T>>, order: SendOrder) -> Vec<T> {
    match order {
        SendOrder::Interleaved => interleave(lanes),
        SendOrder::Sequential => lanes.into_iter().flatten().collect(),
    }
}

/// Round-robin interleave across lanes, preserving order within a lane.
pub fn interleave<T>(lanes: Vec<Vec<T>>) -> Vec<T> {
    let total: usize = lanes.iter().map(Vec::len).sum();
    let mut iters: Vec<std::vec::IntoIter<T>> = lanes.into_iter().map(Vec::into_iter).collect();
    let mut out = Vec::with_capacity(total);
    while out.len() < total {
        for it in iters.iter_mut() {
            if let Some(x) = it.next() {
                out.push(x);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use wirecrypto::{SealedKey, SymKey};

    fn layout() -> Layout {
        Layout::DEFAULT
    }

    fn enc(i: u16) -> EncPacket {
        let kek = SymKey::from_bytes([i as u8; 16]);
        let plain = SymKey::from_bytes([(i + 1) as u8; 16]);
        EncPacket {
            msg_id: 3,
            block_id: 0,
            seq: 0,
            duplicate: false,
            max_kid: 100,
            frm_id: 101 + i,
            to_id: 101 + i,
            entries: vec![(101 + i, SealedKey::seal(&kek, &plain, i as u64))],
        }
    }

    fn packets(n: usize) -> Vec<EncPacket> {
        (0..n as u16).map(enc).collect()
    }

    #[test]
    fn exact_multiple_no_duplicates() {
        let bs = BlockSet::new(packets(20), 5, layout());
        assert_eq!(bs.block_count(), 4);
        assert_eq!(bs.duplicated_count(), 0);
        assert_eq!(bs.real_packet_count(), 20);
        for b in 0..4 {
            let blk = bs.block(b).unwrap();
            assert_eq!(blk.packets.len(), 5);
            for (s, p) in blk.packets.iter().enumerate() {
                assert_eq!(p.block_id, b as u8);
                assert_eq!(p.seq, s as u8);
                assert!(!p.duplicate);
            }
        }
    }

    #[test]
    fn short_last_block_duplicates_cyclically() {
        let bs = BlockSet::new(packets(7), 5, layout());
        assert_eq!(bs.block_count(), 2);
        assert_eq!(bs.duplicated_count(), 3);
        let last = bs.block(1).unwrap();
        assert_eq!(last.packets.len(), 5);
        // Slots 0,1 real; 2,3,4 duplicates of 0,1,0.
        assert!(!last.packets[0].duplicate);
        assert!(!last.packets[1].duplicate);
        for s in 2..5 {
            assert!(last.packets[s].duplicate);
            assert_eq!(last.packets[s].seq, s as u8);
            assert_eq!(
                last.packets[s].entries,
                last.packets[s % 2].entries,
                "duplicate content must match its original"
            );
        }
    }

    #[test]
    fn parities_decode_with_data_loss() {
        let mut bs = BlockSet::new(packets(10), 5, layout());
        let pars = bs.mint_parities(0, 2).unwrap();
        // Lose data packets 0 and 3 of block 0; decode from 1,2,4 + pars.
        let blk = bs.block(0).unwrap();
        let mut shares: Vec<rse::Share> = [1usize, 2, 4]
            .iter()
            .map(|&s| rse::Share {
                index: s,
                data: blk.packets[s].fec_body(&layout()),
            })
            .collect();
        for p in &pars {
            shares.push(rse::Share {
                index: 5 + p.seq as usize,
                data: p.body.clone(),
            });
        }
        let bodies = rse::decode(5, &shares).unwrap();
        for (s, body) in bodies.iter().enumerate() {
            let rebuilt = EncPacket::from_fec_body(body, &layout(), 3, 0, s as u8).unwrap();
            assert_eq!(rebuilt.entries, blk.packets[s].entries);
        }
    }

    #[test]
    fn parity_sequence_is_monotone_across_rounds() {
        let mut bs = BlockSet::new(packets(10), 5, layout());
        let round1 = bs.mint_parities(0, 3).unwrap();
        let round2 = bs.mint_parities(0, 2).unwrap();
        let seqs: Vec<u8> = round1.iter().chain(&round2).map(|p| p.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
        assert_eq!(bs.block(0).unwrap().parities_minted(), 5);
    }

    #[test]
    fn proactive_count_formula() {
        assert_eq!(proactive_parity_count(1.0, 10), 0);
        assert_eq!(proactive_parity_count(1.2, 10), 2);
        assert_eq!(proactive_parity_count(1.25, 10), 3); // ceil(2.5)
        assert_eq!(proactive_parity_count(2.0, 10), 10);
        assert_eq!(proactive_parity_count(1.05, 1), 1); // k=1: any rho>1 adds one
        assert_eq!(proactive_parity_count(0.9, 10), 0); // rho < 1: none
    }

    #[test]
    fn round_one_schedule_interleaves_blocks() {
        let mut bs = BlockSet::new(packets(10), 5, layout());
        let sched = bs.round_one_schedule(1.4).unwrap();
        // 10 ENC + 2 parities per block * 2 blocks = 14 packets.
        assert_eq!(sched.len(), 14);
        // First two sends come from different blocks.
        let bid = |p: &Packet| match p {
            Packet::Enc(e) => e.block_id,
            Packet::Parity(q) => q.block_id,
            _ => panic!("unexpected packet type"),
        };
        assert_ne!(bid(&sched[0]), bid(&sched[1]));
        // Adjacent same-block packets never touch while both lanes have
        // packets left.
        for w in sched.windows(2).take(12) {
            assert_ne!(bid(&w[0]), bid(&w[1]));
        }
    }

    #[test]
    fn reactive_schedule_respects_amax() {
        let mut bs = BlockSet::new(packets(15), 5, layout());
        let sched = bs.reactive_schedule(&[2, 0, 1]).unwrap();
        assert_eq!(sched.len(), 3);
        let blocks: Vec<u8> = sched
            .iter()
            .map(|p| match p {
                Packet::Parity(q) => q.block_id,
                _ => panic!("reactive round sends only parity"),
            })
            .collect();
        assert_eq!(blocks, vec![0, 2, 0]);
    }

    #[test]
    fn empty_message_yields_no_blocks() {
        let mut bs = BlockSet::new(vec![], 10, layout());
        assert_eq!(bs.block_count(), 0);
        assert!(bs.round_one_schedule(2.0).unwrap().is_empty());
    }

    #[test]
    fn single_packet_k10_is_one_block_of_duplicates() {
        let bs = BlockSet::new(packets(1), 10, layout());
        assert_eq!(bs.block_count(), 1);
        assert_eq!(bs.duplicated_count(), 9);
        let blk = bs.block(0).unwrap();
        assert!(blk.packets[1..].iter().all(|p| p.duplicate));
    }

    #[test]
    fn sequential_order_concatenates_blocks() {
        let mut bs = BlockSet::new(packets(10), 5, layout());
        let sched = bs
            .round_one_schedule_ordered(1.4, SendOrder::Sequential)
            .unwrap();
        let bid = |p: &Packet| match p {
            Packet::Enc(e) => e.block_id,
            Packet::Parity(q) => q.block_id,
            _ => unreachable!(),
        };
        // All of block 0 (5 ENC + 2 parity) before any of block 1.
        assert!(sched[..7].iter().all(|p| bid(p) == 0));
        assert!(sched[7..].iter().all(|p| bid(p) == 1));
    }

    #[test]
    fn interleave_preserves_lane_order() {
        let lanes = vec![vec![1, 4, 6], vec![2, 5], vec![3]];
        assert_eq!(interleave(lanes), vec![1, 2, 3, 4, 5, 6]);
    }
}
