//! Packet-size layout: one place that knows the byte arithmetic.

use wirecrypto::SEALED_KEY_LEN;

/// Fixed sizes of the wire format.
///
/// `ENC` and `PARITY` packets share one total length so that the FEC coder
/// operates on equal-length packet bodies. Header bytes:
///
/// ```text
/// ENC:    [type|msgid:1][blockid:1][dup|seq:1] | [maxKID:2][frm:2][to:2][pairs...][zero padding]
/// PARITY: [type|msgid:1][blockid:1][seq:1]     | [parity bytes ............................... ]
///                                              ^-- FEC covers everything right of this bar
/// ```
///
/// The FEC-protected region is fields 5–8 of the ENC packet (maxKID,
/// IDs, encryption list, padding), exactly as in the paper's Figure 23.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// Total length in bytes of an `ENC` (and `PARITY`) packet.
    pub enc_packet_len: usize,
}

/// Bytes of ENC header outside the FEC-protected body.
pub const UNPROTECTED_HEADER_LEN: usize = 3;
/// Bytes of ENC header inside the FEC-protected body (maxKID, frm, to).
pub const PROTECTED_HEADER_LEN: usize = 6;
/// Bytes per `<encryption, ID>` pair: a sealed key plus a 2-byte ID.
pub const PAIR_LEN: usize = SEALED_KEY_LEN + 2;

impl Layout {
    /// The paper's packet size: 1027 bytes, carrying 46 encryptions.
    pub const DEFAULT: Layout = Layout {
        enc_packet_len: 1027,
    };

    /// Creates a layout, validating the packet is large enough for the
    /// headers and at least one encryption pair.
    pub fn new(enc_packet_len: usize) -> Self {
        let min = UNPROTECTED_HEADER_LEN + PROTECTED_HEADER_LEN + PAIR_LEN;
        assert!(
            enc_packet_len >= min,
            "ENC packet length {enc_packet_len} below minimum {min}"
        );
        Layout { enc_packet_len }
    }

    /// Number of `<encryption, ID>` pairs an ENC packet can carry.
    pub fn encryptions_per_packet(&self) -> usize {
        (self.enc_packet_len - UNPROTECTED_HEADER_LEN - PROTECTED_HEADER_LEN) / PAIR_LEN
    }

    /// Length of the FEC-protected body (shared by ENC and PARITY).
    pub fn fec_body_len(&self) -> usize {
        self.enc_packet_len - UNPROTECTED_HEADER_LEN
    }

    /// Wire length of a USR packet carrying `n` encryptions: the paper's
    /// `3 + 20h` bound with `h` the key-tree height.
    pub fn usr_packet_len(&self, n_encryptions: usize) -> usize {
        3 + SEALED_KEY_LEN * n_encryptions
    }

    /// Wire length of a NACK packet carrying `n` block requests.
    pub fn nack_packet_len(&self, n_requests: usize) -> usize {
        1 + 2 * n_requests
    }
}

impl Default for Layout {
    fn default() -> Self {
        Layout::DEFAULT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants() {
        let l = Layout::DEFAULT;
        assert_eq!(l.encryptions_per_packet(), 46, "the paper's 46");
        assert_eq!(l.fec_body_len(), 1024);
        // USR bound 3 + 20h.
        assert_eq!(l.usr_packet_len(9), 3 + 20 * 9);
    }

    #[test]
    fn minimum_layout() {
        let l = Layout::new(UNPROTECTED_HEADER_LEN + PROTECTED_HEADER_LEN + PAIR_LEN);
        assert_eq!(l.encryptions_per_packet(), 1);
    }

    #[test]
    #[should_panic(expected = "below minimum")]
    fn too_small_rejected() {
        let _ = Layout::new(20);
    }
}
