//! Byte-level wire formats for the four protocol packet types.
//!
//! Following the smoltcp idiom, each packet type has a plain `Repr`-style
//! struct with `emit` (serialise into exact wire bytes) and `parse`
//! (validate + decode). `ENC`/`PARITY` packets always emit exactly
//! [`Layout::enc_packet_len`] bytes; `USR`/`NACK` packets are variable
//! length.

use wirecrypto::{SealedKey, SEALED_KEY_LEN};

use crate::layout::{Layout, PAIR_LEN, PROTECTED_HEADER_LEN, UNPROTECTED_HEADER_LEN};

/// Packet type discriminator (2 bits on the wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum PacketType {
    Enc = 0,
    Parity = 1,
    Usr = 2,
    Nack = 3,
}

/// Wire parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Fewer bytes than any packet header.
    Truncated,
    /// An ENC/PARITY packet whose length disagrees with the layout.
    BadLength {
        /// Expected number of bytes.
        expected: usize,
        /// Received number of bytes.
        got: usize,
    },
    /// A list field would overrun the packet.
    Overrun,
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "packet shorter than its header"),
            WireError::BadLength { expected, got } => {
                write!(f, "fixed-size packet of {got} bytes, expected {expected}")
            }
            WireError::Overrun => write!(f, "list field overruns packet"),
        }
    }
}

impl std::error::Error for WireError {}

/// An `ENC` packet: a run of `<encryption, ID>` pairs for a contiguous
/// range of user IDs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncPacket {
    /// Rekey message ID (6 bits on the wire).
    pub msg_id: u8,
    /// FEC block this packet belongs to.
    pub block_id: u8,
    /// Sequence number within the block (`0..k`).
    pub seq: u8,
    /// True for a last-block duplicate (used in FEC decoding but not in
    /// block-ID estimation). Carried in the top bit of the seq byte.
    pub duplicate: bool,
    /// Maximum current k-node ID (`maxKID`): lets each user rederive its
    /// own u-node ID via Theorem 4.2.
    pub max_kid: u16,
    /// This packet serves users with IDs in `frm_id ..= to_id`.
    pub frm_id: u16,
    /// Inclusive upper end of the served user-ID range.
    pub to_id: u16,
    /// `(encryption id, sealed key)` pairs. The encryption ID is the node
    /// ID of the encrypting (child) key; it is never zero, which is what
    /// makes zero padding unambiguous.
    pub entries: Vec<(u16, SealedKey)>,
}

impl EncPacket {
    /// Serialises to exactly `layout.enc_packet_len` bytes.
    ///
    /// # Panics
    ///
    /// Panics if there are more entries than the layout admits, if an
    /// entry has ID zero, or if `msg_id` exceeds 6 bits — all builder bugs.
    pub fn emit(&self, layout: &Layout) -> Vec<u8> {
        assert!(self.msg_id < 64, "msg_id is a 6-bit field");
        assert!(self.seq < 128, "seq 7 bits (top bit is the duplicate flag)");
        assert!(
            self.entries.len() <= layout.encryptions_per_packet(),
            "{} entries exceed packet capacity {}",
            self.entries.len(),
            layout.encryptions_per_packet()
        );
        let mut out = Vec::with_capacity(layout.enc_packet_len);
        out.push((PacketType::Enc as u8) << 6 | self.msg_id);
        out.push(self.block_id);
        out.push(self.seq | if self.duplicate { 0x80 } else { 0 });
        out.extend_from_slice(&self.max_kid.to_be_bytes());
        out.extend_from_slice(&self.frm_id.to_be_bytes());
        out.extend_from_slice(&self.to_id.to_be_bytes());
        for (id, sealed) in &self.entries {
            assert_ne!(*id, 0, "encryption ID zero is reserved for padding");
            out.extend_from_slice(&id.to_be_bytes());
            out.extend_from_slice(sealed.as_bytes());
        }
        out.resize(layout.enc_packet_len, 0);
        out
    }

    /// The FEC-protected body: everything after the 3 unprotected header
    /// bytes. All ENC packets of a message have equal-length bodies.
    pub fn fec_body(&self, layout: &Layout) -> Vec<u8> {
        self.emit(layout)[UNPROTECTED_HEADER_LEN..].to_vec()
    }

    fn parse(bytes: &[u8], layout: &Layout) -> Result<Self, WireError> {
        if bytes.len() != layout.enc_packet_len {
            return Err(WireError::BadLength {
                expected: layout.enc_packet_len,
                got: bytes.len(),
            });
        }
        let msg_id = bytes[0] & 0x3f;
        let block_id = bytes[1];
        let duplicate = bytes[2] & 0x80 != 0;
        let seq = bytes[2] & 0x7f;
        let max_kid = u16::from_be_bytes([bytes[3], bytes[4]]);
        let frm_id = u16::from_be_bytes([bytes[5], bytes[6]]);
        let to_id = u16::from_be_bytes([bytes[7], bytes[8]]);
        let mut entries = Vec::new();
        let mut off = UNPROTECTED_HEADER_LEN + PROTECTED_HEADER_LEN;
        while off + PAIR_LEN <= bytes.len() {
            let id = u16::from_be_bytes([bytes[off], bytes[off + 1]]);
            if id == 0 {
                break; // padding reached
            }
            let sealed = SealedKey::from_slice(&bytes[off + 2..off + PAIR_LEN])
                .ok_or(WireError::Truncated)?;
            entries.push((id, sealed));
            off += PAIR_LEN;
        }
        Ok(EncPacket {
            msg_id,
            block_id,
            seq,
            duplicate,
            max_kid,
            frm_id,
            to_id,
            entries,
        })
    }

    /// Reconstructs an ENC packet from a FEC-decoded body (the packet's
    /// unprotected header is re-synthesised from the known block/seq).
    pub fn from_fec_body(
        body: &[u8],
        layout: &Layout,
        msg_id: u8,
        block_id: u8,
        seq: u8,
    ) -> Result<Self, WireError> {
        if body.len() != layout.fec_body_len() {
            return Err(WireError::BadLength {
                expected: layout.fec_body_len(),
                got: body.len(),
            });
        }
        let mut bytes = Vec::with_capacity(layout.enc_packet_len);
        bytes.push((PacketType::Enc as u8) << 6 | (msg_id & 0x3f));
        bytes.push(block_id);
        bytes.push(seq & 0x7f);
        bytes.extend_from_slice(body);
        Self::parse(&bytes, layout)
    }

    /// The sealed encryption for a given encryption (child-node) ID, if
    /// this packet carries it.
    pub fn entry(&self, enc_id: u16) -> Option<&SealedKey> {
        self.entries
            .iter()
            .find(|(id, _)| *id == enc_id)
            .map(|(_, s)| s)
    }

    /// True when this packet serves user ID `m`.
    pub fn serves(&self, m: u16) -> bool {
        self.frm_id <= m && m <= self.to_id
    }
}

/// A `PARITY` packet: Reed–Solomon parity over the FEC bodies of one block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParityPacket {
    /// Rekey message ID (6 bits).
    pub msg_id: u8,
    /// Block this parity belongs to.
    pub block_id: u8,
    /// Parity index within the block (share index is `k + seq`). Grows
    /// monotonically across rounds so reactive parities are always fresh.
    pub seq: u8,
    /// Parity bytes over the block's ENC bodies.
    pub body: Vec<u8>,
}

impl ParityPacket {
    /// Serialises to exactly `layout.enc_packet_len` bytes.
    pub fn emit(&self, layout: &Layout) -> Vec<u8> {
        assert!(self.msg_id < 64);
        assert_eq!(self.body.len(), layout.fec_body_len(), "parity body length");
        let mut out = Vec::with_capacity(layout.enc_packet_len);
        out.push((PacketType::Parity as u8) << 6 | self.msg_id);
        out.push(self.block_id);
        out.push(self.seq);
        out.extend_from_slice(&self.body);
        out
    }

    fn parse(bytes: &[u8], layout: &Layout) -> Result<Self, WireError> {
        if bytes.len() != layout.enc_packet_len {
            return Err(WireError::BadLength {
                expected: layout.enc_packet_len,
                got: bytes.len(),
            });
        }
        Ok(ParityPacket {
            msg_id: bytes[0] & 0x3f,
            block_id: bytes[1],
            seq: bytes[2],
            body: bytes[UNPROTECTED_HEADER_LEN..].to_vec(),
        })
    }
}

/// A `USR` packet: one user's encryptions, unicast. Encryption IDs are
/// omitted; sealed keys are ordered by increasing encryption ID and the
/// user matches them against its own path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsrPacket {
    /// Rekey message ID (6 bits).
    pub msg_id: u8,
    /// The user's (possibly new) u-node ID, so a moved user learns it
    /// directly.
    pub new_user_id: u16,
    /// Sealed encryptions in increasing encryption-ID order.
    pub sealed: Vec<SealedKey>,
}

impl UsrPacket {
    /// Serialises; length is `3 + 20 * n`.
    pub fn emit(&self) -> Vec<u8> {
        assert!(self.msg_id < 64);
        let mut out = Vec::with_capacity(3 + SEALED_KEY_LEN * self.sealed.len());
        out.push((PacketType::Usr as u8) << 6 | self.msg_id);
        out.extend_from_slice(&self.new_user_id.to_be_bytes());
        for s in &self.sealed {
            out.extend_from_slice(s.as_bytes());
        }
        out
    }

    fn parse(bytes: &[u8]) -> Result<Self, WireError> {
        if bytes.len() < 3 {
            return Err(WireError::Truncated);
        }
        if !(bytes.len() - 3).is_multiple_of(SEALED_KEY_LEN) {
            return Err(WireError::Overrun);
        }
        let sealed = bytes[3..]
            .chunks_exact(SEALED_KEY_LEN)
            .map(|c| SealedKey::from_slice(c).ok_or(WireError::Truncated))
            .collect::<Result<_, _>>()?;
        Ok(UsrPacket {
            msg_id: bytes[0] & 0x3f,
            new_user_id: u16::from_be_bytes([bytes[1], bytes[2]]),
            sealed,
        })
    }
}

/// One per-block request inside a NACK.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NackRequest {
    /// Number of additional PARITY packets needed to decode the block
    /// (`k` minus packets received).
    pub count: u8,
    /// The block being requested.
    pub block_id: u8,
}

/// A `NACK` packet: feedback from a user that could not recover its block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NackPacket {
    /// Rekey message ID (6 bits).
    pub msg_id: u8,
    /// Per-block parity requests (a range of blocks when the user could
    /// not pin down its block ID exactly).
    pub requests: Vec<NackRequest>,
}

impl NackPacket {
    /// Serialises; length is `1 + 2 * n`.
    pub fn emit(&self) -> Vec<u8> {
        assert!(self.msg_id < 64);
        let mut out = Vec::with_capacity(1 + 2 * self.requests.len());
        out.push((PacketType::Nack as u8) << 6 | self.msg_id);
        for r in &self.requests {
            out.push(r.count);
            out.push(r.block_id);
        }
        out
    }

    fn parse(bytes: &[u8]) -> Result<Self, WireError> {
        if bytes.is_empty() {
            return Err(WireError::Truncated);
        }
        if !(bytes.len() - 1).is_multiple_of(2) {
            return Err(WireError::Overrun);
        }
        let requests = bytes[1..]
            .chunks_exact(2)
            .map(|c| NackRequest {
                count: c[0],
                block_id: c[1],
            })
            .collect();
        Ok(NackPacket {
            msg_id: bytes[0] & 0x3f,
            requests,
        })
    }
}

/// Any protocol packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Packet {
    /// Multicast encryptions.
    Enc(EncPacket),
    /// Multicast FEC parity.
    Parity(ParityPacket),
    /// Unicast per-user keys.
    Usr(UsrPacket),
    /// User feedback.
    Nack(NackPacket),
}

impl Packet {
    /// Parses any packet by its 2-bit type tag.
    pub fn parse(bytes: &[u8], layout: &Layout) -> Result<Self, WireError> {
        if bytes.is_empty() {
            return Err(WireError::Truncated);
        }
        match bytes[0] >> 6 {
            0 => EncPacket::parse(bytes, layout).map(Packet::Enc),
            1 => ParityPacket::parse(bytes, layout).map(Packet::Parity),
            2 => UsrPacket::parse(bytes).map(Packet::Usr),
            _ => NackPacket::parse(bytes).map(Packet::Nack),
        }
    }

    /// Serialises any packet.
    pub fn emit(&self, layout: &Layout) -> Vec<u8> {
        match self {
            Packet::Enc(p) => p.emit(layout),
            Packet::Parity(p) => p.emit(layout),
            Packet::Usr(p) => p.emit(),
            Packet::Nack(p) => p.emit(),
        }
    }

    /// Wire length under `layout`.
    pub fn wire_len(&self, layout: &Layout) -> usize {
        match self {
            Packet::Enc(_) | Packet::Parity(_) => layout.enc_packet_len,
            Packet::Usr(p) => 3 + SEALED_KEY_LEN * p.sealed.len(),
            Packet::Nack(p) => 1 + 2 * p.requests.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wirecrypto::SymKey;

    fn layout() -> Layout {
        Layout::DEFAULT
    }

    fn sealed(tag: u8) -> SealedKey {
        let kek = SymKey::from_bytes([tag; 16]);
        let plain = SymKey::from_bytes([tag.wrapping_add(1); 16]);
        SealedKey::seal(&kek, &plain, tag as u64)
    }

    fn sample_enc() -> EncPacket {
        EncPacket {
            msg_id: 13,
            block_id: 2,
            seq: 5,
            duplicate: false,
            max_kid: 1365,
            frm_id: 1366,
            to_id: 1412,
            entries: vec![(1366, sealed(1)), (341, sealed(2)), (85, sealed(3))],
        }
    }

    #[test]
    fn enc_round_trip() {
        let p = sample_enc();
        let bytes = p.emit(&layout());
        assert_eq!(bytes.len(), 1027);
        match Packet::parse(&bytes, &layout()).unwrap() {
            Packet::Enc(q) => assert_eq!(q, p),
            other => panic!("parsed as {other:?}"),
        }
    }

    #[test]
    fn enc_duplicate_flag_round_trip() {
        let mut p = sample_enc();
        p.duplicate = true;
        let bytes = p.emit(&layout());
        match Packet::parse(&bytes, &layout()).unwrap() {
            Packet::Enc(q) => {
                assert!(q.duplicate);
                assert_eq!(q.seq, p.seq);
            }
            other => panic!("parsed as {other:?}"),
        }
    }

    #[test]
    fn enc_full_capacity_round_trip() {
        let mut p = sample_enc();
        p.entries = (1..=46u16).map(|i| (i, sealed(i as u8))).collect();
        let bytes = p.emit(&layout());
        assert_eq!(bytes.len(), 1027);
        match Packet::parse(&bytes, &layout()).unwrap() {
            Packet::Enc(q) => assert_eq!(q.entries.len(), 46),
            other => panic!("parsed as {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "exceed packet capacity")]
    fn enc_overfull_panics() {
        let mut p = sample_enc();
        p.entries = (1..=47u16).map(|i| (i, sealed(i as u8))).collect();
        let _ = p.emit(&layout());
    }

    #[test]
    #[should_panic(expected = "reserved for padding")]
    fn enc_id_zero_rejected() {
        let mut p = sample_enc();
        p.entries.push((0, sealed(9)));
        let _ = p.emit(&layout());
    }

    #[test]
    fn fec_body_reconstruction() {
        let p = sample_enc();
        let body = p.fec_body(&layout());
        assert_eq!(body.len(), 1024);
        let q = EncPacket::from_fec_body(&body, &layout(), p.msg_id, p.block_id, p.seq).unwrap();
        assert_eq!(q, p);
    }

    #[test]
    fn parity_round_trip() {
        let p = ParityPacket {
            msg_id: 63,
            block_id: 9,
            seq: 200,
            body: vec![0xAB; layout().fec_body_len()],
        };
        let bytes = p.emit(&layout());
        assert_eq!(bytes.len(), 1027);
        match Packet::parse(&bytes, &layout()).unwrap() {
            Packet::Parity(q) => assert_eq!(q, p),
            other => panic!("parsed as {other:?}"),
        }
    }

    #[test]
    fn usr_round_trip_and_length() {
        let p = UsrPacket {
            msg_id: 1,
            new_user_id: 4000,
            sealed: vec![sealed(1), sealed(2), sealed(3)],
        };
        let bytes = p.emit();
        assert_eq!(bytes.len(), 3 + 20 * 3, "the paper's 3 + 20h bound");
        match Packet::parse(&bytes, &layout()).unwrap() {
            Packet::Usr(q) => assert_eq!(q, p),
            other => panic!("parsed as {other:?}"),
        }
    }

    #[test]
    fn nack_round_trip() {
        let p = NackPacket {
            msg_id: 7,
            requests: vec![
                NackRequest {
                    count: 2,
                    block_id: 1,
                },
                NackRequest {
                    count: 4,
                    block_id: 2,
                },
            ],
        };
        let bytes = p.emit();
        assert_eq!(bytes.len(), 5);
        match Packet::parse(&bytes, &layout()).unwrap() {
            Packet::Nack(q) => assert_eq!(q, p),
            other => panic!("parsed as {other:?}"),
        }
    }

    #[test]
    fn parse_errors() {
        assert_eq!(Packet::parse(&[], &layout()), Err(WireError::Truncated));
        // ENC with wrong length.
        let enc = sample_enc().emit(&layout());
        assert!(matches!(
            Packet::parse(&enc[..100], &layout()),
            Err(WireError::BadLength { .. })
        ));
        // USR with a ragged tail.
        let usr = UsrPacket {
            msg_id: 0,
            new_user_id: 0,
            sealed: vec![sealed(0)],
        }
        .emit();
        assert_eq!(
            Packet::parse(&usr[..usr.len() - 1], &layout()),
            Err(WireError::Overrun)
        );
    }

    #[test]
    fn serves_range() {
        let p = sample_enc();
        assert!(p.serves(1366));
        assert!(p.serves(1412));
        assert!(!p.serves(1365));
        assert!(!p.serves(1413));
    }

    #[test]
    fn entry_lookup() {
        let p = sample_enc();
        assert!(p.entry(341).is_some());
        assert!(p.entry(999).is_none());
    }

    #[test]
    fn padding_is_unambiguous() {
        // A packet with fewer entries than capacity parses back exactly,
        // with the zero padding dropped.
        let mut p = sample_enc();
        p.entries.truncate(1);
        let bytes = p.emit(&layout());
        match Packet::parse(&bytes, &layout()).unwrap() {
            Packet::Enc(q) => assert_eq!(q.entries.len(), 1),
            other => panic!("parsed as {other:?}"),
        }
    }
}
