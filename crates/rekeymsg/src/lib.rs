//! Rekey message construction and parsing.
//!
//! This crate turns the logical output of the marking algorithm (a list of
//! encryptions `{k_parent}_{k_child}`) into the four wire packet types of
//! the rekey transport protocol, and gives users the tools to consume them:
//!
//! * [`wire`] — byte-level formats for `ENC`, `PARITY`, `USR` and `NACK`
//!   packets (fixed-length `ENC`/`PARITY` packets so FEC can operate on
//!   whole packet bodies);
//! * [`assign`] — the **User-oriented Key Assignment** (UKA) algorithm: all
//!   of a user's encryptions land in a single `ENC` packet, with packets
//!   covering non-overlapping, increasing user-ID ranges;
//! * [`blocks`] — partition of the `ENC` sequence into FEC blocks of size
//!   `k`, last-block duplication, interleaved send order, and on-demand
//!   Reed–Solomon parity generation;
//! * [`estimate`] — the user-side block-ID estimation of Appendix D, for
//!   users that lost their specific `ENC` packet.
//!
//! With the default layout (1027-byte `ENC` packets, 20-byte sealed keys,
//! 2-byte encryption IDs, 9 bytes of header) a packet carries 46
//! encryptions — the constant the paper's duplication-overhead bound
//! `(log_d N - 1) / 46` refers to.

//! # Example
//!
//! ```
//! use keytree::{Batch, KeyTree};
//! use rekeymsg::{Layout, UkaAssignment};
//! use wirecrypto::KeyGen;
//!
//! let mut kg = KeyGen::from_seed(1);
//! let mut tree = KeyTree::balanced(64, 4, &mut kg);
//! let outcome = tree.process_batch(&Batch::new(vec![], vec![3, 17]), &mut kg);
//!
//! let msg = UkaAssignment::build(&tree, &outcome, 1, &Layout::DEFAULT).unwrap();
//! // Every remaining user's encryptions sit in exactly one packet.
//! for (user, pkt) in msg.served_users(&tree) {
//!     assert!(msg.packets[pkt].serves(user as u16));
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assign;
pub mod blocks;
pub mod estimate;
mod layout;
/// Deep message audits: UKA coverage, seal/unseal, wire identity
/// (tests / `--features sanitize`).
#[cfg(any(test, feature = "sanitize"))]
pub mod sanitize;
pub mod stream;
pub mod view;
pub mod wire;

pub use assign::{
    naive_plan_stats, plan, plan_and_seal, plan_in, AssignError, AssignmentStats,
    NaiveAssignmentStats, PacketPlan, PlanScratch, UkaAssignment, UserRun, SEAL_CHUNK,
};
pub use blocks::{BlockSet, BlockSetBuilder, SendItem, SendOrder};
pub use layout::Layout;
pub use stream::{StreamStats, StreamTuning};
pub use view::{EncView, ParityView};
pub use wire::{EncPacket, NackPacket, NackRequest, Packet, ParityPacket, UsrPacket, WireError};

/// Builds the USR packet for one user: the sealed encryptions it needs,
/// in increasing encryption-ID order (IDs omitted on the wire).
pub fn build_usr_packet(
    tree: &keytree::KeyTree,
    outcome: &keytree::MarkOutcome,
    member: keytree::MemberId,
    msg_seq: u64,
) -> Option<UsrPacket> {
    let uid = tree.node_of_member(member)?;
    let mut idxs = outcome.encryptions_for_user(uid, tree.degree());
    // Path order is leaf-first; wire order is increasing encryption (child)
    // ID, which is root-side first.
    idxs.sort_by_key(|&i| outcome.encryptions[i].child);
    let mut sealed = Vec::with_capacity(idxs.len());
    for &i in &idxs {
        let edge = outcome.encryptions[i];
        let kek = tree.key_of(edge.child)?;
        let plain = tree.key_of(edge.parent)?;
        sealed.push(wirecrypto::SealedKey::seal(
            &kek,
            &plain,
            seal_context(msg_seq, edge.child),
        ));
    }
    Some(UsrPacket {
        msg_id: (msg_seq & 0x3f) as u8,
        new_user_id: uid as u16,
        sealed,
    })
}

/// Nonce/context for sealing the encryption whose encrypting key is node
/// `child` within rekey message `msg_seq`.
///
/// Uses the *full* message sequence number (not the 6-bit wire ID): both
/// sides count messages, and a key that survives several intervals (an
/// Unchanged child) must never reuse a sealing context.
pub fn seal_context(msg_seq: u64, child: keytree::NodeId) -> u64 {
    (msg_seq << 20) ^ child as u64
}
