//! The streaming rekey message build: mint ∥ seal ∥ plan, then
//! assemble ∥ encode.
//!
//! The barrier path ([`UkaAssignment::build`] after
//! `process_batch_compacting_in`) runs mint → seal → assemble → encode
//! strictly in sequence; at N = 2^20 those stages sum to essentially the
//! whole batch wall. This module restructures the same work as two
//! chained [`taskpool::pipeline`]s so independent stages overlap:
//!
//! 1. **Mint ∥ seal ∥ plan** — the producer derives updated-k-node keys
//!    chunk by chunk ([`keytree::DERIVE_CHUNK`] boundaries, same as the
//!    barrier path) from the deferred [`PendingMint`] seed and resolves
//!    each completed chunk's encryption edges into seal jobs, flushed at
//!    fixed `chunk_edges` boundaries over the global edge index. Seal
//!    workers encrypt chunks as they arrive. The consumer computes the
//!    (key-free) UKA plans concurrently, then drains sealed chunks in
//!    production order.
//! 2. **Assemble ∥ encode** — the producer assembles ENC packets plan by
//!    plan and emits stamped FEC blocks of `k`; workers serialize each
//!    block's FEC bodies while later blocks are still being assembled;
//!    the consumer folds them into a [`BlockSet`] via
//!    [`BlockSetBuilder`].
//!
//! The phases chain rather than overlap because of a structural fact of
//! the message: the root is rekeyed by every non-empty batch and its
//! parent group is the *last* region of `MarkOutcome::encryptions`
//! (updated k-nodes are emitted deepest-first), so every user's plan
//! needs a seal from the final chunk — no packet can be assembled before
//! the last seal lands. Overlap therefore comes from mint ∥ seal (the
//! two dominant cryptographic stages), plan ∥ both, and assemble ∥
//! encode within the tail.
//!
//! **Identity.** Every chunk boundary is index-aligned and constant
//! (`DERIVE_CHUNK` for minting, `chunk_edges` for sealing, `k` for
//! blocks), every stage's per-item work is a pure function of the item,
//! and reassembly is strictly in production order — so the artifacts are
//! bit-identical to the barrier path at any worker count, channel
//! capacity, and schedule-perturbation seed. The resolver takes a child
//! edge's KEK from the in-flight derived keys exactly when the child is
//! itself an updated k-node: `updated_knodes` is descending and children
//! have larger IDs than parents, so an updated child always sits at a
//! smaller index than its parent and its key is already minted when the
//! parent's chunk completes.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use keytree::{KeyTree, MarkOutcome, NodeId, PendingMint, DERIVE_CHUNK};
use rse::BlockEncoder;
use wirecrypto::{SealedKey, SymKey};

use crate::assign::{
    plan, updated_pos, AssignError, AssignmentStats, PacketPlan, UkaAssignment, SEAL_CHUNK,
};
use crate::blocks::{fec_bodies, stamp_block, BlockSet, BlockSetBuilder};
use crate::layout::Layout;
use crate::seal_context;
use crate::wire::EncPacket;

/// Tuning of one streamed build. The values change wall-clock behaviour
/// only, never output — the identity tests sweep them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamTuning {
    /// Encryption edges per seal chunk. Boundaries are fixed multiples of
    /// this over the global edge index, independent of worker count.
    pub chunk_edges: usize,
    /// Bounded-channel capacity (chunks in flight per stage boundary).
    pub channel_capacity: usize,
}

impl StreamTuning {
    /// Seal chunks the size the barrier path uses, four in flight.
    pub const DEFAULT: StreamTuning = StreamTuning {
        chunk_edges: SEAL_CHUNK,
        channel_capacity: 4,
    };

    /// At least one edge per chunk, one slot per channel.
    fn clamped(self) -> StreamTuning {
        StreamTuning {
            chunk_edges: self.chunk_edges.max(1),
            channel_capacity: self.channel_capacity.max(1),
        }
    }
}

impl Default for StreamTuning {
    fn default() -> Self {
        StreamTuning::DEFAULT
    }
}

/// Per-stage busy time and overlap accounting of one streamed build.
///
/// `overlap_ns` is measured directly from per-stage activity windows —
/// the wall-clock interval from a stage's first to last unit of work —
/// as the total time at least two stages were concurrently in flight
/// (inclusion–exclusion over the window intersections). The sequential
/// one-worker path runs its stages strictly back to back, so its windows
/// are disjoint and the overlap is exactly zero; any positive value
/// certifies genuinely concurrent stage activity. Recorded in the
/// `pipeline.overlap_pct` obs gauge and reported by the scale bench.
///
/// Windows, not busy sums: at the paper's scales UKA planning dominates
/// the wide build by two orders of magnitude, so `Σ busy − wall` would
/// drown the real (milliseconds-sized) mint ∥ plan concurrency in
/// scheduling noise. Interval intersection resolves it exactly.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StreamStats {
    /// Producer time spent deriving updated-k-node keys.
    pub mint_busy_ns: u64,
    /// Worker time spent sealing edge chunks (summed across workers).
    pub seal_busy_ns: u64,
    /// Consumer time spent planning and draining (phase 1).
    pub plan_busy_ns: u64,
    /// Producer time spent assembling ENC packets (phase 2).
    pub assemble_busy_ns: u64,
    /// Worker time spent serializing FEC bodies (summed across workers).
    pub encode_busy_ns: u64,
    /// Measured time with ≥ 2 stages concurrently in flight (see type
    /// docs).
    pub overlap_ns: u64,
    /// Wall time of the whole streamed build.
    pub wall_ns: u64,
}

/// Length of the intersection of two `[start, end)` offset windows.
fn window_isect(a: (u64, u64), b: (u64, u64)) -> u64 {
    a.1.min(b.1).saturating_sub(a.0.max(b.0))
}

/// Time covered by at least two of three windows (inclusion–exclusion).
fn windows_overlap(a: (u64, u64), b: (u64, u64), c: (u64, u64)) -> u64 {
    let triple = window_isect((a.0.max(b.0), a.1.min(b.1)), c);
    (window_isect(a, b) + window_isect(a, c) + window_isect(b, c)).saturating_sub(2 * triple)
}

impl StreamStats {
    /// Total busy time across all stages.
    pub fn busy_ns(&self) -> u64 {
        self.mint_busy_ns
            + self.seal_busy_ns
            + self.plan_busy_ns
            + self.assemble_busy_ns
            + self.encode_busy_ns
    }

    /// Share of the wall with ≥ 2 stages concurrently in flight (see
    /// type docs).
    pub fn overlap_pct(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        100.0 * self.overlap_ns.min(self.wall_ns) as f64 / self.wall_ns as f64
    }

    fn publish(&self) {
        obs::gauge_set("pipeline.overlap_pct", self.overlap_pct().round() as u64);
        obs::observe("pipeline.busy_ns", self.busy_ns());
        obs::observe("pipeline.wall_ns", self.wall_ns);
    }
}

/// One resolved encryption edge, ready to seal: the resolver has already
/// picked the KEK (fresh key for an updated child, tree key otherwise)
/// and the parent's fresh key, so sealing is a pure function of the job.
struct SealJob {
    child: NodeId,
    kek: SymKey,
    plain: SymKey,
}

/// Everything phase 1 leaves behind.
struct MintSealOut {
    /// Fresh keys of `updated_knodes`, in that order — complete even on
    /// error, so callers can always install and keep tree state identical
    /// to the barrier path.
    derived: Vec<SymKey>,
    plans: Vec<PacketPlan>,
    sealed: Vec<SealedKey>,
    err: Option<AssignError>,
    mint_busy_ns: u64,
    seal_busy_ns: u64,
    plan_busy_ns: u64,
    /// Time ≥ 2 of {mint/resolve, seal, plan} were in flight at once.
    overlap_ns: u64,
}

/// Phase 1: mint ∥ seal ∥ plan. `check_wire` adds the barrier path's
/// 16-bit child-ID range check; the wide (bench) path skips it.
fn mint_seal_plan(
    tree: &KeyTree,
    outcome: &MarkOutcome,
    pending: &PendingMint,
    msg_seq: u64,
    layout: &Layout,
    tuning: StreamTuning,
    check_wire: bool,
) -> MintSealOut {
    let updated = &outcome.updated_knodes[..];
    let edges = &outcome.encryptions[..];
    let seal_busy = AtomicU64::new(0);
    // Stage activity windows as offsets from this epoch, for the overlap
    // accounting. On the sequential one-worker path the stages run back
    // to back, so the windows come out disjoint and overlap is zero.
    let epoch = Instant::now();
    let seal_w0 = AtomicU64::new(u64::MAX);
    let seal_w1 = AtomicU64::new(0);

    let (produced, consumed) = taskpool::pipeline(
        tuning.channel_capacity,
        |tx| {
            // One span over the whole producer closure: its trace-event
            // window is the mint+resolve stage's activity window (sends
            // included), mirroring `prod_window` below so event-derived
            // overlap can be cross-validated against `overlap_ns`.
            let _span_produce = obs::span("pipe.mint_resolve");
            let prod_w0 = epoch.elapsed().as_nanos() as u64;
            let mut mint_busy_ns = 0u64;
            let mut derived: Vec<SymKey> = Vec::with_capacity(updated.len());
            let mut err: Option<AssignError> = None;
            // True once a send fails: the pipeline is shutting down under
            // a stage panic. Minting continues (the caller installs the
            // complete key set either way) but resolving stops.
            let mut shut = false;
            let mut edge_ptr = 0usize;
            let mut jobs: Vec<SealJob> = Vec::with_capacity(tuning.chunk_edges);
            let mut chunk_start = 0usize;
            while chunk_start < updated.len() {
                let chunk_end = (chunk_start + DERIVE_CHUNK).min(updated.len());
                // The seed exists whenever `updated` is non-empty.
                let Some(seed) = pending.seed() else { break };
                let seg = Instant::now();
                {
                    let _span_mint = obs::span("stage.mint");
                    for &id in &updated[chunk_start..chunk_end] {
                        derived.push(keytree::derive_updated_key(seed, id));
                    }
                }
                // Resolve every edge whose parent's key is now minted.
                // Edges are grouped by parent in `updated` order, so this
                // is a single advancing pointer.
                while err.is_none() && !shut && edge_ptr < edges.len() {
                    let edge = &edges[edge_ptr];
                    let Some(ppos) = updated_pos(updated, edge.parent) else {
                        err = Some(AssignError::MissingKey {
                            child: edge.child,
                            parent: edge.parent,
                        });
                        break;
                    };
                    if ppos >= chunk_end {
                        break;
                    }
                    if check_wire && edge.child > u16::MAX as NodeId {
                        err = Some(AssignError::IdOutOfRange(edge.child));
                        break;
                    }
                    let kek = match updated_pos(updated, edge.child) {
                        // IDs descend in `updated` and a child's ID is
                        // larger than its parent's, so an updated child
                        // sits at a smaller index — already minted.
                        Some(cpos) => derived[cpos],
                        None => match tree.key_of(edge.child) {
                            Some(key) => key,
                            None => {
                                err = Some(AssignError::MissingKey {
                                    child: edge.child,
                                    parent: edge.parent,
                                });
                                break;
                            }
                        },
                    };
                    jobs.push(SealJob {
                        child: edge.child,
                        kek,
                        plain: derived[ppos],
                    });
                    edge_ptr += 1;
                    if jobs.len() == tuning.chunk_edges {
                        let full =
                            std::mem::replace(&mut jobs, Vec::with_capacity(tuning.chunk_edges));
                        // Busy time excludes the (possibly blocking) send,
                        // so overlap accounting measures active minting
                        // and resolving, not back-pressure waits. The
                        // add/sub pair may dip negative transiently, hence
                        // the wrapping arithmetic; the final segment add
                        // restores a true (positive) total.
                        mint_busy_ns = mint_busy_ns.wrapping_add(seg.elapsed().as_nanos() as u64);
                        shut = tx.send(full).is_err();
                        mint_busy_ns = mint_busy_ns.wrapping_sub(seg.elapsed().as_nanos() as u64);
                    }
                }
                mint_busy_ns = mint_busy_ns.wrapping_add(seg.elapsed().as_nanos() as u64);
                chunk_start = chunk_end;
            }
            if err.is_none() && !shut && !jobs.is_empty() {
                let _ = tx.send(jobs);
            }
            (
                derived,
                err,
                mint_busy_ns,
                (prod_w0, epoch.elapsed().as_nanos() as u64),
            )
        },
        |_, jobs: Vec<SealJob>| {
            let w0 = epoch.elapsed().as_nanos() as u64;
            let t0 = Instant::now();
            let _span_seal = obs::span("stage.seal");
            let out: Vec<SealedKey> = jobs
                .iter()
                .map(|job| SealedKey::seal(&job.kek, &job.plain, seal_context(msg_seq, job.child)))
                .collect();
            // xcheck-ordering: monotonic busy-time accumulator read once after the scope joins; no other memory is published through it
            seal_busy.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            // xcheck-ordering: min/max window bounds read once after the scope joins; no other memory is published through them
            seal_w0.fetch_min(w0, Ordering::Relaxed);
            // xcheck-ordering: as above — post-join window bound
            seal_w1.fetch_max(epoch.elapsed().as_nanos() as u64, Ordering::Relaxed);
            out
        },
        |rx| {
            let _span_build = obs::span("uka.build");
            // Plans are key-free, so they compute while the producer is
            // still minting — the plan ∥ mint overlap. Busy time covers
            // the planning only, not the recv waits.
            let plan_w0 = epoch.elapsed().as_nanos() as u64;
            let t0 = Instant::now();
            let plans = {
                // Tight span around planning only (`uka.build` above also
                // covers the channel drain): its trace events reproduce
                // the `plan_window` the overlap accounting uses.
                let _span_plan = obs::span("stage.plan");
                plan(tree, outcome, layout)
            };
            let plan_busy_ns = t0.elapsed().as_nanos() as u64;
            // Even on a plan error, drain the channel so the producer and
            // seal workers retire cleanly.
            let plan_w1 = epoch.elapsed().as_nanos() as u64;
            let mut sealed: Vec<SealedKey> = Vec::with_capacity(edges.len());
            while let Some(chunk) = rx.recv() {
                sealed.extend(chunk);
            }
            (plans, sealed, plan_busy_ns, (plan_w0, plan_w1))
        },
    );

    let (derived, err, mint_busy_ns, prod_window) = produced;
    let (plans, sealed, plan_busy_ns, plan_window) = consumed;
    // A plan error wins over a mint/resolve error: the barrier path plans
    // before it seals, so the streamed path must surface the same error.
    let (plans, err) = match plans {
        Ok(plans) => (plans, err),
        Err(plan_err) => (Vec::new(), Some(plan_err)),
    };
    let seal_window = (
        seal_w0.load(Ordering::Relaxed), // xcheck-ordering: scope already joined every worker; single post-join read of the window bound
        seal_w1.load(Ordering::Relaxed), // xcheck-ordering: scope already joined every worker; single post-join read of the window bound
    );
    let overlap_ns = windows_overlap(prod_window, seal_window, plan_window);
    obs::counter_add("uka.keys_sealed", sealed.len() as u64);
    obs::counter_add(
        "uka.bytes_sealed",
        (sealed.len() * wirecrypto::SEALED_KEY_LEN) as u64,
    );
    MintSealOut {
        derived,
        plans,
        sealed,
        err,
        mint_busy_ns,
        // xcheck-ordering: scope already joined every worker; this is the single post-join read of the accumulator
        seal_busy_ns: seal_busy.load(Ordering::Relaxed),
        plan_busy_ns,
        overlap_ns,
    }
}

/// The streamed equivalent of [`UkaAssignment::build`] +
/// [`BlockSet::with_encoder`], fed by a deferred mint.
///
/// Returns the assignment, the FEC block set, the derived fresh keys
/// (install with [`KeyTree::install_minted`] — the tree still holds the
/// previous keys), and the overlap accounting. The assignment, block
/// set, and derived keys are bit-identical to the barrier path's at any
/// worker count, tuning, and schedule seed.
///
/// # Errors
///
/// Exactly [`UkaAssignment::build`]'s errors, decided in the same input
/// order. The derived keys are complete even on error, so installing
/// them keeps tree state identical to the barrier path (which installs
/// before building).
#[allow(clippy::type_complexity)]
pub fn build_streamed(
    tree: &KeyTree,
    outcome: &MarkOutcome,
    pending: &PendingMint,
    msg_seq: u64,
    layout: &Layout,
    proto_encoder: &BlockEncoder,
    tuning: StreamTuning,
) -> (
    Vec<SymKey>,
    Result<(UkaAssignment, BlockSet, StreamStats), AssignError>,
) {
    let tuning = tuning.clamped();
    let wall0 = Instant::now();
    let msg_id = (msg_seq & 0x3f) as u8;
    let max_kid = outcome.nk.unwrap_or(0);
    if max_kid > u16::MAX as NodeId {
        // The barrier path fails here before minting; mint anyway so the
        // caller can still install and keep tree state consistent.
        let derived = derive_all(outcome, pending);
        return (derived, Err(AssignError::IdOutOfRange(max_kid)));
    }

    let phase1 = mint_seal_plan(tree, outcome, pending, msg_seq, layout, tuning, true);
    let MintSealOut {
        derived,
        plans,
        sealed,
        err,
        mint_busy_ns,
        seal_busy_ns,
        plan_busy_ns,
        overlap_ns: phase1_overlap_ns,
    } = phase1;
    if let Some(err) = err {
        return (derived, Err(err));
    }
    debug_assert_eq!(sealed.len(), outcome.encryptions.len());

    // ---- Phase 2: assemble ∥ encode ------------------------------------
    let k = proto_encoder.k();
    let encode_busy = AtomicU64::new(0);
    let epoch = Instant::now();
    let enc_w0 = AtomicU64::new(u64::MAX);
    let enc_w1 = AtomicU64::new(0);
    let (produced, consumed) = taskpool::pipeline(
        tuning.channel_capacity,
        |tx| {
            // Whole-closure span mirroring `asm_window`, so phase-2
            // assembly shows up on the flight recorder like phase 1's
            // `pipe.mint_resolve` does.
            let _span_assemble = obs::span("pipe.assemble");
            let asm_w0 = epoch.elapsed().as_nanos() as u64;
            let mut assemble_busy_ns = 0u64;
            let mut packets: Vec<EncPacket> = Vec::with_capacity(plans.len());
            let mut entries_emitted = 0usize;
            let mut err: Option<AssignError> = None;
            let mut block_index = 0usize;
            let seg = Instant::now();
            for plan in plans.iter() {
                if plan.frm_id > u16::MAX as NodeId || plan.to_id > u16::MAX as NodeId {
                    err = Some(AssignError::IdOutOfRange(plan.frm_id.max(plan.to_id)));
                    break;
                }
                let mut entries: Vec<(u16, SealedKey)> = Vec::with_capacity(plan.enc_indices.len());
                for &i in &plan.enc_indices {
                    let child = outcome.encryptions[i].child;
                    entries.push((child as u16, sealed[i]));
                }
                entries_emitted += entries.len();
                packets.push(EncPacket {
                    msg_id,
                    block_id: 0,
                    seq: 0,
                    duplicate: false,
                    max_kid: max_kid as u16,
                    frm_id: plan.frm_id as u16,
                    to_id: plan.to_id as u16,
                    entries,
                });
                // A completed block of k: stamp and stream it to the
                // encoders while later packets are still being assembled.
                // Busy time excludes the (possibly blocking) send.
                if packets.len() == (block_index + 1) * k {
                    let stamped = stamp_block(&packets[block_index * k..], block_index, k);
                    assemble_busy_ns =
                        assemble_busy_ns.wrapping_add(seg.elapsed().as_nanos() as u64);
                    let sent = tx.send(stamped);
                    assemble_busy_ns =
                        assemble_busy_ns.wrapping_sub(seg.elapsed().as_nanos() as u64);
                    if sent.is_err() {
                        break;
                    }
                    block_index += 1;
                }
            }
            if err.is_none() {
                let tail = &packets[block_index * k..];
                if !tail.is_empty() {
                    let _ = tx.send(stamp_block(tail, block_index, k));
                }
            }
            assemble_busy_ns = assemble_busy_ns.wrapping_add(seg.elapsed().as_nanos() as u64);
            (
                packets,
                entries_emitted,
                err,
                assemble_busy_ns,
                (asm_w0, epoch.elapsed().as_nanos() as u64),
            )
        },
        |_, stamped: Vec<EncPacket>| {
            let w0 = epoch.elapsed().as_nanos() as u64;
            let t0 = Instant::now();
            let _span_block = obs::span("fec.block_build");
            let bodies = fec_bodies(&stamped, layout);
            // xcheck-ordering: monotonic busy-time accumulator read once after the scope joins; no other memory is published through it
            encode_busy.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            // xcheck-ordering: min/max window bounds read once after the scope joins; no other memory is published through them
            enc_w0.fetch_min(w0, Ordering::Relaxed);
            // xcheck-ordering: as above — post-join window bound
            enc_w1.fetch_max(epoch.elapsed().as_nanos() as u64, Ordering::Relaxed);
            (stamped, bodies)
        },
        |rx| {
            // The fold window opens at the first received block, not at
            // thread start — before that the consumer is waiting, not in
            // flight.
            let mut fold_w0 = u64::MAX;
            let mut builder = BlockSetBuilder::new(proto_encoder.clone(), *layout);
            while let Some((stamped, bodies)) = rx.recv() {
                fold_w0 = fold_w0.min(epoch.elapsed().as_nanos() as u64);
                builder.push_block(stamped, bodies);
            }
            let fold_w1 = epoch.elapsed().as_nanos() as u64;
            (builder, (fold_w0.min(fold_w1), fold_w1))
        },
    );
    let (builder, fold_window) = consumed;
    let (packets, entries_emitted, err, assemble_busy_ns, asm_window) = produced;
    if let Some(err) = err {
        // The partially-fed builder is dropped; the caller never observes
        // a half-built block set.
        return (derived, Err(err));
    }
    obs::counter_add("uka.enc_packets", packets.len() as u64);
    let stats = AssignmentStats {
        packets: plans.len(),
        entries_emitted,
        distinct_encryptions: outcome.encryptions.len(),
    };
    let assignment = UkaAssignment {
        packets,
        plans,
        stats,
    };
    let blocks = builder.finish();

    let enc_window = (
        enc_w0.load(Ordering::Relaxed), // xcheck-ordering: scope already joined every worker; single post-join read of the window bound
        enc_w1.load(Ordering::Relaxed), // xcheck-ordering: scope already joined every worker; single post-join read of the window bound
    );
    let stream_stats = StreamStats {
        mint_busy_ns,
        seal_busy_ns,
        plan_busy_ns,
        assemble_busy_ns,
        // xcheck-ordering: scope already joined every worker; this is the single post-join read of the accumulator
        encode_busy_ns: encode_busy.load(Ordering::Relaxed),
        overlap_ns: phase1_overlap_ns + windows_overlap(asm_window, enc_window, fold_window),
        wall_ns: wall0.elapsed().as_nanos() as u64,
    };
    stream_stats.publish();
    (derived, Ok((assignment, blocks, stream_stats)))
}

/// The streamed equivalent of [`crate::assign::plan_and_seal`]: the wide
/// (no 16-bit wire stage) build, for measuring mint ∥ seal overlap at
/// populations beyond the `u16` ID space. Key and seal bytes are
/// bit-identical to the barrier wide path.
///
/// # Errors
///
/// As [`crate::assign::plan_and_seal`]; the derived keys are complete
/// even on error.
#[allow(clippy::type_complexity)]
pub fn plan_and_seal_streamed(
    tree: &KeyTree,
    outcome: &MarkOutcome,
    pending: &PendingMint,
    msg_seq: u64,
    layout: &Layout,
    tuning: StreamTuning,
) -> (
    Vec<SymKey>,
    Result<(Vec<PacketPlan>, Vec<SealedKey>, StreamStats), AssignError>,
) {
    let tuning = tuning.clamped();
    let wall0 = Instant::now();
    let phase1 = mint_seal_plan(tree, outcome, pending, msg_seq, layout, tuning, false);
    let MintSealOut {
        derived,
        plans,
        sealed,
        err,
        mint_busy_ns,
        seal_busy_ns,
        plan_busy_ns,
        overlap_ns,
    } = phase1;
    if let Some(err) = err {
        return (derived, Err(err));
    }
    let stats = StreamStats {
        mint_busy_ns,
        seal_busy_ns,
        plan_busy_ns,
        assemble_busy_ns: 0,
        encode_busy_ns: 0,
        overlap_ns,
        wall_ns: wall0.elapsed().as_nanos() as u64,
    };
    stats.publish();
    (derived, Ok((plans, sealed, stats)))
}

/// Derives every pending key without streaming — the error path's way of
/// keeping tree state identical to the barrier path.
fn derive_all(outcome: &MarkOutcome, pending: &PendingMint) -> Vec<SymKey> {
    let Some(seed) = pending.seed() else {
        return Vec::new();
    };
    outcome
        .updated_knodes
        .iter()
        .map(|&id| keytree::derive_updated_key(seed, id))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use keytree::{Batch, CompactionPolicy, MarkScratch};
    use wirecrypto::KeyGen;

    const SEED: u64 = 0xC0FF_EE00;

    fn make_batch(n: u32) -> Batch {
        // Joins and scattered leaves: exercises replacements, fresh joins
        // and a multi-level rekey subtree.
        let joins = (0..5u64)
            .map(|i| {
                (
                    (1000 + i) as keytree::MemberId,
                    KeyGen::from_seed(77 + i).next_key(),
                )
            })
            .collect();
        let leaves = (0..n / 7).map(|i| (i * 7) as keytree::MemberId).collect();
        Batch::new(joins, leaves)
    }

    /// The barrier reference: process + mint inline, then build + blocks.
    fn barrier_build(n: u32, d: u32, k: usize) -> (KeyTree, UkaAssignment, BlockSet) {
        let mut kg = KeyGen::from_seed(SEED);
        let mut tree = KeyTree::balanced(n, d, &mut kg);
        let mut scratch = MarkScratch::default();
        let outcome = tree.process_batch_compacting_in(
            make_batch(n),
            &mut kg,
            &mut scratch,
            &CompactionPolicy::DISABLED,
        );
        let asn = UkaAssignment::build(&tree, &outcome, 1, &Layout::DEFAULT).unwrap();
        let enc = BlockEncoder::new(k).unwrap();
        let blocks = BlockSet::with_encoder(asn.packets.clone(), enc, Layout::DEFAULT);
        (tree, asn, blocks)
    }

    /// The streamed path under one (workers, sched-seed, tuning) point.
    fn streamed_build(
        n: u32,
        d: u32,
        k: usize,
        tuning: StreamTuning,
    ) -> (KeyTree, UkaAssignment, BlockSet, StreamStats) {
        let mut kg = KeyGen::from_seed(SEED);
        let mut tree = KeyTree::balanced(n, d, &mut kg);
        let mut scratch = MarkScratch::default();
        let (outcome, pending) = tree.process_batch_deferred_in(
            make_batch(n),
            &mut kg,
            &mut scratch,
            &CompactionPolicy::DISABLED,
        );
        let enc = BlockEncoder::new(k).unwrap();
        let (derived, built) =
            build_streamed(&tree, &outcome, &pending, 1, &Layout::DEFAULT, &enc, tuning);
        tree.install_minted(&outcome.updated_knodes, &derived);
        let (asn, blocks, stats) = built.unwrap();
        (tree, asn, blocks, stats)
    }

    fn assert_blocks_eq(a: &mut BlockSet, b: &mut BlockSet) {
        assert_eq!(a.k(), b.k());
        assert_eq!(a.block_count(), b.block_count());
        assert_eq!(a.real_packet_count(), b.real_packet_count());
        assert_eq!(a.duplicated_count(), b.duplicated_count());
        for id in 0..a.block_count() {
            assert_eq!(a.block(id).unwrap().packets, b.block(id).unwrap().packets);
            // Parity bytes prove the FEC bodies fed to the encoders match.
            assert_eq!(
                a.mint_parities(id, 2).unwrap(),
                b.mint_parities(id, 2).unwrap()
            );
        }
    }

    #[test]
    fn streamed_matches_barrier_across_workers_and_tunings() {
        let (n, d, k) = (256, 4, 5);
        let (bar_tree, bar_asn, bar_blocks) = barrier_build(n, d, k);
        for workers in [1, 2, 4] {
            for tuning in [
                StreamTuning::DEFAULT,
                StreamTuning {
                    chunk_edges: 1,
                    channel_capacity: 1,
                },
                StreamTuning {
                    chunk_edges: 7,
                    channel_capacity: 2,
                },
            ] {
                let (tree, asn, mut blocks, _) = taskpool::with_workers(workers, || {
                    taskpool::with_schedule(workers as u64 * 31 + 7, || {
                        streamed_build(n, d, k, tuning)
                    })
                });
                assert_eq!(asn.packets, bar_asn.packets, "workers={workers} {tuning:?}");
                assert_eq!(asn.plans, bar_asn.plans);
                assert_eq!(asn.stats, bar_asn.stats);
                assert_eq!(tree.group_key(), bar_tree.group_key());
                // Fresh clone per comparison: minting parities advances
                // per-block sequence state.
                assert_blocks_eq(&mut blocks, &mut bar_blocks.clone());
            }
        }
    }

    #[test]
    fn streamed_wide_path_matches_plan_and_seal() {
        let (n, d) = (243, 3);
        let mut kg = KeyGen::from_seed(SEED);
        let mut tree = KeyTree::balanced(n, d, &mut kg);
        let mut scratch = MarkScratch::default();
        let outcome = tree.process_batch_compacting_in(
            make_batch(n),
            &mut kg,
            &mut scratch,
            &CompactionPolicy::DISABLED,
        );
        let (bar_plans, bar_sealed) =
            crate::assign::plan_and_seal(&tree, &outcome, 9, &Layout::DEFAULT).unwrap();

        let mut kg = KeyGen::from_seed(SEED);
        let mut tree = KeyTree::balanced(n, d, &mut kg);
        let mut scratch = MarkScratch::default();
        let (outcome, pending) = tree.process_batch_deferred_in(
            make_batch(n),
            &mut kg,
            &mut scratch,
            &CompactionPolicy::DISABLED,
        );
        let (derived, built) = taskpool::with_workers(2, || {
            plan_and_seal_streamed(&tree, &outcome, &pending, 9, &Layout::DEFAULT, {
                StreamTuning {
                    chunk_edges: 3,
                    channel_capacity: 1,
                }
            })
        });
        tree.install_minted(&outcome.updated_knodes, &derived);
        let (plans, sealed, _) = built.unwrap();
        assert_eq!(plans.len(), bar_plans.len());
        assert_eq!(sealed, bar_sealed);
        for (a, b) in plans.iter().zip(&bar_plans) {
            assert_eq!(a.enc_indices, b.enc_indices);
            assert_eq!((a.frm_id, a.to_id), (b.frm_id, b.to_id));
            assert_eq!(a.user_runs, b.user_runs);
        }
    }

    #[test]
    fn empty_batch_streams_to_empty_message() {
        let mut kg = KeyGen::from_seed(3);
        let mut tree = KeyTree::balanced(16, 4, &mut kg);
        let mut scratch = MarkScratch::default();
        let (outcome, pending) = tree.process_batch_deferred_in(
            Batch::new(vec![], vec![]),
            &mut kg,
            &mut scratch,
            &CompactionPolicy::DISABLED,
        );
        let enc = BlockEncoder::new(4).unwrap();
        let (derived, built) = build_streamed(
            &tree,
            &outcome,
            &pending,
            1,
            &Layout::DEFAULT,
            &enc,
            StreamTuning::DEFAULT,
        );
        assert!(derived.is_empty());
        let (asn, blocks, _) = built.unwrap();
        assert!(asn.packets.is_empty());
        assert_eq!(blocks.block_count(), 0);
    }
}
