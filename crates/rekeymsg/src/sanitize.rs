//! Deep rekey-message checks (tests and the `sanitize` feature).
//!
//! [`verify_message`] audits one sealed [`UkaAssignment`] against the tree
//! and marking outcome it was built from:
//!
//! * UKA coverage — every member that needs encryptions is served by
//!   exactly one packet that carries *all* of them, and the packets' user
//!   ranges strictly increase (what block-ID estimation relies on);
//! * cryptographic consistency — every `<ID, sealed key>` entry actually
//!   unseals, under the child's current key and the message's seal
//!   context, to the parent's current key;
//! * wire identity — `emit` followed by `parse` reproduces every packet
//!   exactly, and the FEC-body path ([`EncPacket::from_fec_body`]) agrees
//!   with the header path.

use std::collections::HashSet;

use keytree::{KeyTree, MarkOutcome, NodeId};

use crate::assign::{PacketPlan, UkaAssignment};
use crate::layout::Layout;
use crate::seal_context;
use crate::wire::{EncPacket, Packet};

/// One packet of the reference (user-by-user) UKA plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReferencePlan {
    /// First served user ID.
    pub frm_id: NodeId,
    /// Last served user ID.
    pub to_id: NodeId,
    /// Indices into `MarkOutcome::encryptions`, ascending by encryption ID.
    pub enc_indices: Vec<usize>,
    /// Every served user, ascending — materialized, O(N) total.
    pub users: Vec<NodeId>,
}

/// The original user-by-user UKA planner, kept verbatim as the oracle for
/// the run-aggregated production planner: walk the sorted user IDs,
/// greedily extend the open packet while the union of need-sets fits, and
/// split exactly when the next user would overflow it. O(N·h) — fine for
/// an oracle, the reason the production planner aggregates runs.
///
/// # Errors
///
/// Returns the same condition [`crate::assign::AssignError::PacketCapacity`]
/// reports — a user whose whole need-set exceeds one packet — as text,
/// naming the same (first violating) user.
pub fn reference_plan(
    tree: &KeyTree,
    outcome: &MarkOutcome,
    layout: &Layout,
) -> Result<Vec<ReferencePlan>, String> {
    let capacity = layout.encryptions_per_packet();
    let degree = tree.degree();
    let mut plans: Vec<ReferencePlan> = Vec::new();
    let mut current_users: Vec<NodeId> = Vec::new();
    let mut current_set: HashSet<usize> = HashSet::new();
    let mut current_list: Vec<usize> = Vec::new();
    let mut needs: Vec<usize> = Vec::new();
    let close = |users: &mut Vec<NodeId>, list: &mut Vec<usize>| {
        let mut enc_indices = std::mem::take(list);
        enc_indices.sort_by_key(|&i| outcome.encryptions[i].child);
        let users = std::mem::take(users);
        ReferencePlan {
            frm_id: users.first().copied().unwrap_or(0),
            to_id: users.last().copied().unwrap_or(0),
            enc_indices,
            users,
        }
    };
    for uid in tree.user_ids_iter() {
        outcome.encryptions_for_user_into(uid, degree, &mut needs);
        if needs.is_empty() {
            continue;
        }
        if needs.len() > capacity {
            return Err(format!(
                "user {uid} needs {} encryptions but packets hold {capacity}: \
                 layout too small for this tree height",
                needs.len()
            ));
        }
        let extra = needs.iter().filter(|i| !current_set.contains(*i)).count();
        if !current_users.is_empty() && current_set.len() + extra > capacity {
            plans.push(close(&mut current_users, &mut current_list));
            current_set.clear();
        }
        for &i in &needs {
            if current_set.insert(i) {
                current_list.push(i);
            }
        }
        current_users.push(uid);
    }
    if !current_users.is_empty() {
        plans.push(close(&mut current_users, &mut current_list));
    }
    Ok(plans)
}

/// Checks that `plans` (from the run-aggregated planner) are bit-identical
/// to the reference user-by-user plan: same packet count, and per packet
/// the same `frm_id`/`to_id`, the same sorted `enc_indices`, and the same
/// enumerated users. Returns the first divergence as text.
pub fn check_plan_identity(
    tree: &KeyTree,
    outcome: &MarkOutcome,
    plans: &[PacketPlan],
    layout: &Layout,
) -> Result<(), String> {
    let reference = reference_plan(tree, outcome, layout)?;
    if plans.len() != reference.len() {
        return Err(format!(
            "planner emitted {} packets, reference {}",
            plans.len(),
            reference.len()
        ));
    }
    for (pi, (got, want)) in plans.iter().zip(reference.iter()).enumerate() {
        if (got.frm_id, got.to_id) != (want.frm_id, want.to_id) {
            return Err(format!(
                "packet {pi} range <{}, {}> != reference <{}, {}>",
                got.frm_id, got.to_id, want.frm_id, want.to_id
            ));
        }
        if got.enc_indices != want.enc_indices {
            return Err(format!(
                "packet {pi} enc_indices {:?} != reference {:?}",
                got.enc_indices, want.enc_indices
            ));
        }
        let mut got_users = got.users_iter(tree);
        let mut n = 0usize;
        for &want_u in &want.users {
            match got_users.next() {
                Some(u) if u == want_u => n += 1,
                Some(u) => {
                    return Err(format!(
                        "packet {pi} user #{n} is {u}, reference has {want_u}"
                    ));
                }
                None => {
                    return Err(format!(
                        "packet {pi} enumerates {n} users, reference {}",
                        want.users.len()
                    ));
                }
            }
        }
        if let Some(u) = got_users.next() {
            return Err(format!(
                "packet {pi} enumerates extra user {u} beyond the reference's {}",
                want.users.len()
            ));
        }
    }
    Ok(())
}

/// Verifies one assignment end to end. Returns the first violation as
/// text.
pub fn verify_message(
    tree: &KeyTree,
    outcome: &MarkOutcome,
    assignment: &UkaAssignment,
    msg_seq: u64,
    layout: &Layout,
) -> Result<(), String> {
    if assignment.packets.len() != assignment.plans.len() {
        return Err(format!(
            "{} packets but {} plans",
            assignment.packets.len(),
            assignment.plans.len()
        ));
    }

    // ---- UKA ranges strictly increase and never overlap ------------
    for w in assignment.plans.windows(2) {
        if w[0].to_id >= w[1].frm_id {
            return Err(format!(
                "user ranges overlap or regress: <{}, {}> then <{}, {}>",
                w[0].frm_id, w[0].to_id, w[1].frm_id, w[1].to_id
            ));
        }
    }

    // ---- plans are bit-identical to the user-by-user oracle --------
    check_plan_identity(tree, outcome, &assignment.plans, layout)?;

    // ---- coverage: one packet per user, carrying its whole path ----
    for uid in tree.user_ids() {
        let needs = outcome.encryptions_for_user(uid, tree.degree());
        match assignment.packet_of_user(uid) {
            None => {
                if !needs.is_empty() {
                    return Err(format!(
                        "user {uid} needs {} encryptions but no packet serves it",
                        needs.len()
                    ));
                }
            }
            Some(pi) => {
                let pkt = assignment
                    .packets
                    .get(pi)
                    .ok_or_else(|| format!("user {uid} mapped to missing packet {pi}"))?;
                if !pkt.serves(uid as u16) {
                    return Err(format!(
                        "packet {pi} <{}, {}> does not serve its user {uid}",
                        pkt.frm_id, pkt.to_id
                    ));
                }
                for i in needs {
                    let child = outcome.encryptions[i].child;
                    if pkt.entry(child as u16).is_none() {
                        return Err(format!(
                            "packet {pi} serves user {uid} but lacks encryption {child}"
                        ));
                    }
                }
            }
        }
    }

    // ---- every entry unseals to the parent's current key -----------
    for (pi, pkt) in assignment.packets.iter().enumerate() {
        for &(enc_id, sealed) in &pkt.entries {
            let child = enc_id as NodeId;
            let idx = outcome
                .encryption_by_child(child)
                .ok_or_else(|| format!("packet {pi} carries unknown encryption {child}"))?;
            let edge = outcome.encryptions[idx];
            let kek = tree
                .key_of(child)
                .ok_or_else(|| format!("tree lost the key of child {child}"))?;
            let plain = tree
                .key_of(edge.parent)
                .ok_or_else(|| format!("tree lost the key of parent {}", edge.parent))?;
            match sealed.unseal(&kek, seal_context(msg_seq, child)) {
                Ok(k) if k == plain => {}
                Ok(_) => {
                    return Err(format!(
                        "entry {child} in packet {pi} unseals to the wrong key"
                    ));
                }
                Err(e) => {
                    return Err(format!("entry {child} in packet {pi} fails to unseal: {e}"));
                }
            }
        }
    }

    // ---- wire identity: emit → parse, header and FEC-body paths ----
    for (pi, pkt) in assignment.packets.iter().enumerate() {
        let bytes = pkt.emit(layout);
        match Packet::parse(&bytes, layout) {
            Ok(Packet::Enc(back)) => {
                if back != *pkt {
                    return Err(format!("packet {pi} does not survive emit/parse"));
                }
            }
            Ok(_) => return Err(format!("packet {pi} re-parsed as a non-ENC packet")),
            Err(e) => return Err(format!("packet {pi} fails to re-parse: {e}")),
        }
        let body = pkt.fec_body(layout);
        let back = EncPacket::from_fec_body(&body, layout, pkt.msg_id, pkt.block_id, pkt.seq)
            .map_err(|e| format!("packet {pi} body fails to re-parse: {e}"))?;
        if (back.max_kid, back.frm_id, back.to_id, &back.entries)
            != (pkt.max_kid, pkt.frm_id, pkt.to_id, &pkt.entries)
        {
            return Err(format!("packet {pi} body round-trip altered its fields"));
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use keytree::Batch;
    use wirecrypto::KeyGen;

    fn setup() -> (KeyTree, MarkOutcome, UkaAssignment, u64, Layout) {
        let mut kg = KeyGen::from_seed(11);
        let mut tree = KeyTree::balanced(64, 4, &mut kg);
        let leaves: Vec<u32> = vec![1, 9, 17, 33];
        let outcome = tree.process_batch(&Batch::new(vec![], leaves), &mut kg);
        let layout = Layout::DEFAULT;
        let msg_seq = 7;
        let assignment = UkaAssignment::build(&tree, &outcome, msg_seq, &layout).unwrap();
        (tree, outcome, assignment, msg_seq, layout)
    }

    #[test]
    fn well_formed_assignment_passes() {
        let (tree, outcome, assignment, msg_seq, layout) = setup();
        verify_message(&tree, &outcome, &assignment, msg_seq, &layout).unwrap();
    }

    #[test]
    fn corrupted_seal_is_detected() {
        let (tree, outcome, mut assignment, msg_seq, layout) = setup();
        // Swap two entries' sealed keys: both still parse, neither unseals
        // to the right parent under its own context.
        let pkt = &mut assignment.packets[0];
        assert!(pkt.entries.len() >= 2, "test needs two entries");
        let a = pkt.entries[0].1;
        pkt.entries[0].1 = pkt.entries[1].1;
        pkt.entries[1].1 = a;
        let err = verify_message(&tree, &outcome, &assignment, msg_seq, &layout).unwrap_err();
        assert!(err.contains("unseal"), "{err}");
    }

    #[test]
    fn dropped_entry_is_detected() {
        let (tree, outcome, mut assignment, msg_seq, layout) = setup();
        assignment.packets[0].entries.pop();
        assert!(verify_message(&tree, &outcome, &assignment, msg_seq, &layout).is_err());
    }

    #[test]
    fn wrong_msg_seq_fails_unsealing() {
        let (tree, outcome, assignment, msg_seq, layout) = setup();
        let err = verify_message(&tree, &outcome, &assignment, msg_seq + 1, &layout).unwrap_err();
        assert!(err.contains("unseal"), "{err}");
    }
}
