//! Deep rekey-message checks (tests and the `sanitize` feature).
//!
//! [`verify_message`] audits one sealed [`UkaAssignment`] against the tree
//! and marking outcome it was built from:
//!
//! * UKA coverage — every member that needs encryptions is served by
//!   exactly one packet that carries *all* of them, and the packets' user
//!   ranges strictly increase (what block-ID estimation relies on);
//! * cryptographic consistency — every `<ID, sealed key>` entry actually
//!   unseals, under the child's current key and the message's seal
//!   context, to the parent's current key;
//! * wire identity — `emit` followed by `parse` reproduces every packet
//!   exactly, and the FEC-body path ([`EncPacket::from_fec_body`]) agrees
//!   with the header path.

use keytree::{KeyTree, MarkOutcome, NodeId};

use crate::assign::UkaAssignment;
use crate::layout::Layout;
use crate::seal_context;
use crate::wire::{EncPacket, Packet};

/// Verifies one assignment end to end. Returns the first violation as
/// text.
pub fn verify_message(
    tree: &KeyTree,
    outcome: &MarkOutcome,
    assignment: &UkaAssignment,
    msg_seq: u64,
    layout: &Layout,
) -> Result<(), String> {
    if assignment.packets.len() != assignment.plans.len() {
        return Err(format!(
            "{} packets but {} plans",
            assignment.packets.len(),
            assignment.plans.len()
        ));
    }

    // ---- UKA ranges strictly increase and never overlap ------------
    for w in assignment.plans.windows(2) {
        if w[0].to_id >= w[1].frm_id {
            return Err(format!(
                "user ranges overlap or regress: <{}, {}> then <{}, {}>",
                w[0].frm_id, w[0].to_id, w[1].frm_id, w[1].to_id
            ));
        }
    }

    // ---- coverage: one packet per user, carrying its whole path ----
    for uid in tree.user_ids() {
        let needs = outcome.encryptions_for_user(uid, tree.degree());
        match assignment.packet_of_user.get(&uid) {
            None => {
                if !needs.is_empty() {
                    return Err(format!(
                        "user {uid} needs {} encryptions but no packet serves it",
                        needs.len()
                    ));
                }
            }
            Some(&pi) => {
                let pkt = assignment
                    .packets
                    .get(pi)
                    .ok_or_else(|| format!("user {uid} mapped to missing packet {pi}"))?;
                if !pkt.serves(uid as u16) {
                    return Err(format!(
                        "packet {pi} <{}, {}> does not serve its user {uid}",
                        pkt.frm_id, pkt.to_id
                    ));
                }
                for i in needs {
                    let child = outcome.encryptions[i].child;
                    if pkt.entry(child as u16).is_none() {
                        return Err(format!(
                            "packet {pi} serves user {uid} but lacks encryption {child}"
                        ));
                    }
                }
            }
        }
    }

    // ---- every entry unseals to the parent's current key -----------
    for (pi, pkt) in assignment.packets.iter().enumerate() {
        for &(enc_id, sealed) in &pkt.entries {
            let child = enc_id as NodeId;
            let idx = outcome
                .encryption_by_child(child)
                .ok_or_else(|| format!("packet {pi} carries unknown encryption {child}"))?;
            let edge = outcome.encryptions[idx];
            let kek = tree
                .key_of(child)
                .ok_or_else(|| format!("tree lost the key of child {child}"))?;
            let plain = tree
                .key_of(edge.parent)
                .ok_or_else(|| format!("tree lost the key of parent {}", edge.parent))?;
            match sealed.unseal(&kek, seal_context(msg_seq, child)) {
                Ok(k) if k == plain => {}
                Ok(_) => {
                    return Err(format!(
                        "entry {child} in packet {pi} unseals to the wrong key"
                    ));
                }
                Err(e) => {
                    return Err(format!("entry {child} in packet {pi} fails to unseal: {e}"));
                }
            }
        }
    }

    // ---- wire identity: emit → parse, header and FEC-body paths ----
    for (pi, pkt) in assignment.packets.iter().enumerate() {
        let bytes = pkt.emit(layout);
        match Packet::parse(&bytes, layout) {
            Ok(Packet::Enc(back)) => {
                if back != *pkt {
                    return Err(format!("packet {pi} does not survive emit/parse"));
                }
            }
            Ok(_) => return Err(format!("packet {pi} re-parsed as a non-ENC packet")),
            Err(e) => return Err(format!("packet {pi} fails to re-parse: {e}")),
        }
        let body = pkt.fec_body(layout);
        let back = EncPacket::from_fec_body(&body, layout, pkt.msg_id, pkt.block_id, pkt.seq)
            .map_err(|e| format!("packet {pi} body fails to re-parse: {e}"))?;
        if (back.max_kid, back.frm_id, back.to_id, &back.entries)
            != (pkt.max_kid, pkt.frm_id, pkt.to_id, &pkt.entries)
        {
            return Err(format!("packet {pi} body round-trip altered its fields"));
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use keytree::Batch;
    use wirecrypto::KeyGen;

    fn setup() -> (KeyTree, MarkOutcome, UkaAssignment, u64, Layout) {
        let mut kg = KeyGen::from_seed(11);
        let mut tree = KeyTree::balanced(64, 4, &mut kg);
        let leaves: Vec<u32> = vec![1, 9, 17, 33];
        let outcome = tree.process_batch(&Batch::new(vec![], leaves), &mut kg);
        let layout = Layout::DEFAULT;
        let msg_seq = 7;
        let assignment = UkaAssignment::build(&tree, &outcome, msg_seq, &layout).unwrap();
        (tree, outcome, assignment, msg_seq, layout)
    }

    #[test]
    fn well_formed_assignment_passes() {
        let (tree, outcome, assignment, msg_seq, layout) = setup();
        verify_message(&tree, &outcome, &assignment, msg_seq, &layout).unwrap();
    }

    #[test]
    fn corrupted_seal_is_detected() {
        let (tree, outcome, mut assignment, msg_seq, layout) = setup();
        // Swap two entries' sealed keys: both still parse, neither unseals
        // to the right parent under its own context.
        let pkt = &mut assignment.packets[0];
        assert!(pkt.entries.len() >= 2, "test needs two entries");
        let a = pkt.entries[0].1;
        pkt.entries[0].1 = pkt.entries[1].1;
        pkt.entries[1].1 = a;
        let err = verify_message(&tree, &outcome, &assignment, msg_seq, &layout).unwrap_err();
        assert!(err.contains("unseal"), "{err}");
    }

    #[test]
    fn dropped_entry_is_detected() {
        let (tree, outcome, mut assignment, msg_seq, layout) = setup();
        assignment.packets[0].entries.pop();
        assert!(verify_message(&tree, &outcome, &assignment, msg_seq, &layout).is_err());
    }

    #[test]
    fn wrong_msg_seq_fails_unsealing() {
        let (tree, outcome, assignment, msg_seq, layout) = setup();
        let err = verify_message(&tree, &outcome, &assignment, msg_seq + 1, &layout).unwrap_err();
        assert!(err.contains("unseal"), "{err}");
    }
}
