//! Property tests pinning the bulk kernels to the scalar reference.
//!
//! The bulk kernels (`MulTable::mul_acc`, `mul_acc_slice_wide`) and the
//! barycentric Lagrange rows are pure performance reformulations: they
//! must agree byte-for-byte with `Gf256::mul_acc_slice` and the textbook
//! O(k²) row construction for every coefficient and every length —
//! including the lengths around the eight-byte unroll boundary.

use gf256::{bulk, Gf256, LagrangeCtx};
use proptest::prelude::*;

/// Lengths exercising the unroll edges plus a broad random band.
fn len_strategy() -> impl Strategy<Value = usize> {
    prop_oneof![
        Just(0usize),
        Just(1usize),
        Just(7usize),
        Just(8usize),
        Just(9usize),
        2usize..2048,
    ]
}

/// Textbook O(k²) Lagrange row used as the oracle.
fn naive_lagrange_row(nodes: &[Gf256], x: Gf256) -> Vec<Gf256> {
    let k = nodes.len();
    let mut row = vec![Gf256::ZERO; k];
    for i in 0..k {
        let mut num = Gf256::ONE;
        let mut den = Gf256::ONE;
        for j in 0..k {
            if i == j {
                continue;
            }
            num *= x + nodes[j];
            den *= nodes[i] + nodes[j];
        }
        row[i] = num / den;
    }
    row
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `mul_acc_slice_wide` == scalar `mul_acc_slice` for random
    /// coefficients, random bytes, and every length class.
    #[test]
    fn wide_kernel_matches_scalar(
        coeff in any::<u8>(),
        len in len_strategy(),
        fill in proptest::collection::vec(any::<u8>(), 4096),
        seed in proptest::collection::vec(any::<u8>(), 4096),
    ) {
        let coeff = Gf256::new(coeff);
        let src = &fill[..len];
        let mut fast = seed[..len].to_vec();
        let mut slow = fast.clone();
        bulk::mul_acc_slice_wide(coeff, src, &mut fast);
        Gf256::mul_acc_slice(coeff, src, &mut slow);
        prop_assert_eq!(fast, slow, "coeff {} len {}", coeff, len);
    }

    /// `MulTable::mul_acc` == scalar `mul_acc_slice` under the same
    /// input space.
    #[test]
    fn table_kernel_matches_scalar(
        coeff in any::<u8>(),
        len in len_strategy(),
        fill in proptest::collection::vec(any::<u8>(), 4096),
        seed in proptest::collection::vec(any::<u8>(), 4096),
    ) {
        let coeff = Gf256::new(coeff);
        let table = bulk::MulTable::new(coeff);
        let src = &fill[..len];
        let mut fast = seed[..len].to_vec();
        let mut slow = fast.clone();
        table.mul_acc(src, &mut fast);
        Gf256::mul_acc_slice(coeff, src, &mut slow);
        prop_assert_eq!(fast, slow, "coeff {} len {}", coeff, len);
    }

    /// `MulTable::mul_slice` == scalar `Gf256::mul_slice`.
    #[test]
    fn table_mul_slice_matches_scalar(
        coeff in any::<u8>(),
        data in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let coeff = Gf256::new(coeff);
        let mut fast = data.clone();
        let mut slow = data;
        bulk::MulTable::new(coeff).mul_slice(&mut fast);
        Gf256::mul_slice(coeff, &mut slow);
        prop_assert_eq!(fast, slow, "coeff {}", coeff);
    }

    /// Barycentric rows == naive O(k²) rows at arbitrary evaluation
    /// points (on-node points included).
    #[test]
    fn barycentric_row_matches_naive(
        k in 1usize..=64,
        point in any::<u8>(),
    ) {
        let ctx = LagrangeCtx::alpha_consecutive(k);
        let x = Gf256::new(point);
        prop_assert_eq!(
            ctx.row(x),
            naive_lagrange_row(ctx.nodes(), x),
            "k {} x {}", k, x
        );
    }

    /// A barycentric row really evaluates the interpolating polynomial:
    /// dotting the row with data values reproduces direct polynomial
    /// interpolation through the data points.
    #[test]
    fn row_reproduces_polynomial_evaluation(
        k in 1usize..=32,
        values in proptest::collection::vec(any::<u8>(), 32),
        point in any::<u8>(),
    ) {
        let ctx = LagrangeCtx::alpha_consecutive(k);
        let data: Vec<Gf256> = values[..k].iter().map(|&v| Gf256::new(v)).collect();
        let x = Gf256::new(point);
        let via_row: Gf256 = ctx
            .row(x)
            .into_iter()
            .zip(&data)
            .map(|(c, &d)| c * d)
            .sum();
        let pts: Vec<(Gf256, Gf256)> = ctx
            .nodes()
            .iter()
            .copied()
            .zip(data.iter().copied())
            .collect();
        let poly = gf256::Poly::interpolate(&pts);
        prop_assert_eq!(via_row, poly.eval(x), "k {} x {}", k, x);
    }
}
