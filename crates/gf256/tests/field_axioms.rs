//! Property-based verification of the GF(2^8) field axioms and of the
//! linear-algebra layer built on top of them.

use gf256::{Gf256, Matrix, Poly};
use proptest::prelude::*;

fn elem() -> impl Strategy<Value = Gf256> {
    any::<u8>().prop_map(Gf256::new)
}

fn nonzero() -> impl Strategy<Value = Gf256> {
    (1u8..=255).prop_map(Gf256::new)
}

proptest! {
    #[test]
    fn addition_commutative_associative(a in elem(), b in elem(), c in elem()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
    }

    #[test]
    fn multiplication_commutative_associative(a in elem(), b in elem(), c in elem()) {
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!((a * b) * c, a * (b * c));
    }

    #[test]
    fn distributivity(a in elem(), b in elem(), c in elem()) {
        prop_assert_eq!(a * (b + c), a * b + a * c);
    }

    #[test]
    fn inverse_cancels(a in nonzero()) {
        prop_assert_eq!(a * a.inv().unwrap(), Gf256::ONE);
    }

    #[test]
    fn division_is_multiplication_by_inverse(a in elem(), b in nonzero()) {
        prop_assert_eq!(a / b, a * b.inv().unwrap());
        prop_assert_eq!((a / b) * b, a);
    }

    #[test]
    fn pow_homomorphism(a in nonzero(), e1 in 0u32..300, e2 in 0u32..300) {
        prop_assert_eq!(a.pow(e1) * a.pow(e2), a.pow(e1 + e2));
    }

    #[test]
    fn mul_acc_slice_is_linear(
        coeff in elem(),
        data in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let mut dst = vec![0u8; data.len()];
        Gf256::mul_acc_slice(coeff, &data, &mut dst);
        for (d, s) in dst.iter().zip(&data) {
            prop_assert_eq!(Gf256::new(*d), coeff * Gf256::new(*s));
        }
        // Accumulating the same thing again cancels (char 2).
        let mut dst2 = dst.clone();
        Gf256::mul_acc_slice(coeff, &data, &mut dst2);
        prop_assert!(dst2.iter().all(|&b| b == 0));
    }

    #[test]
    fn interpolation_inverts_evaluation(
        coeffs in proptest::collection::vec(any::<u8>(), 1..8),
    ) {
        let p = Poly::from_coeffs(coeffs.iter().map(|&c| Gf256::new(c)).collect());
        let n = coeffs.len();
        let points: Vec<(Gf256, Gf256)> = (0..n)
            .map(|i| {
                let x = Gf256::alpha_pow(i);
                (x, p.eval(x))
            })
            .collect();
        prop_assert_eq!(Poly::interpolate(&points), p);
    }

    #[test]
    fn square_matrix_inverse_round_trip(seed in any::<u64>(), n in 1usize..6) {
        // Derive a deterministic matrix from the seed; skip singular ones.
        let m = Matrix::from_fn(n, n, |r, c| {
            let x = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add((r * 31 + c * 17 + 1) as u64);
            Gf256::new((x >> 32) as u8)
        });
        if let Some(inv) = m.inverse() {
            prop_assert_eq!(m.mul(&inv), Matrix::identity(n));
            prop_assert_eq!(inv.mul(&m), Matrix::identity(n));
        } else {
            prop_assert!(m.rank() < n);
        }
    }

    #[test]
    fn vandermonde_subsets_invert(rows in 1usize..12, k in 1usize..8, pick in any::<u64>()) {
        prop_assume!(rows >= k);
        let m = Matrix::vandermonde(rows, k);
        // Pick k distinct rows deterministically from `pick`.
        let mut selected: Vec<usize> = (0..rows).collect();
        let mut state = pick;
        for i in (1..selected.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            selected.swap(i, j);
        }
        selected.truncate(k);
        let sub = m.select_rows(&selected);
        prop_assert!(sub.inverse().is_some(), "rows {:?} must invert", selected);
    }
}
