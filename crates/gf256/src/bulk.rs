//! Bulk (slice-at-a-time) multiply-accumulate kernels.
//!
//! [`Gf256::mul_acc_slice`](crate::Gf256::mul_acc_slice) walks the log/exp
//! tables one byte at a time — two dependent table loads plus a zero test
//! per byte. That is the textbook formulation, but it is also the inner
//! loop of Reed–Solomon encoding (`k` passes per parity packet), so the
//! server spends almost all of its FEC time there. This module provides
//! two faster formulations:
//!
//! * [`MulTable`] — a 256-byte product table built **once per multiplier**;
//!   a multiply becomes a single L1-resident lookup and the accumulate loop
//!   processes eight bytes per iteration. Best when one coefficient is
//!   reused across many bytes and the caller can cache the table.
//! * [`mul_acc_slice_wide`] — a branch-free carry-less formulation (eight
//!   shift/mask steps per byte, no table loads at all) that LLVM
//!   autovectorizes; with AVX2 it processes 32 bytes per vector op and
//!   clearly outruns both table kernels. This is what the erasure coder's
//!   hot paths call.
//!
//! Both agree byte-for-byte with the scalar path; property tests in
//! `tests/bulk_kernels.rs` pin that equivalence down, including the
//! `len ∈ {0, 1, 7, 8, 9}` edges around the eight-byte unroll.

use crate::tables::{EXP, LOG};
use crate::Gf256;

/// A per-multiplier product table: `table[x] = coeff * x` for every byte
/// `x`.
///
/// Building the table costs 255 log/exp multiplies (about 256 bytes of
/// output, so it amortizes after roughly one packet's worth of data); after
/// that every multiply by this coefficient is one table load. Callers that
/// reuse a coefficient across many packets can cache one `MulTable` per
/// coefficient; on targets without wide vector units this is the fastest
/// kernel available, while on AVX2-class hardware
/// [`mul_acc_slice_wide`] overtakes it.
#[derive(Clone)]
pub struct MulTable {
    coeff: Gf256,
    table: [u8; 256],
}

impl core::fmt::Debug for MulTable {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("MulTable")
            .field("coeff", &self.coeff)
            .finish_non_exhaustive()
    }
}

impl MulTable {
    /// Builds the product table for `coeff`.
    pub fn new(coeff: Gf256) -> Self {
        let mut table = [0u8; 256];
        if !coeff.is_zero() {
            let clog = usize::from(LOG[usize::from(coeff.value())]);
            let mut x = 1usize;
            while x < 256 {
                table[x] = EXP[clog + usize::from(LOG[x])];
                x += 1;
            }
        }
        MulTable { coeff, table }
    }

    /// The multiplier this table was built for.
    pub fn coeff(&self) -> Gf256 {
        self.coeff
    }

    /// `coeff * x` as a single table lookup.
    #[inline]
    pub fn mul(&self, x: u8) -> u8 {
        self.table[usize::from(x)]
    }

    /// Fused multiply-accumulate `dst[i] ^= coeff * src[i]`, eight bytes
    /// per iteration.
    ///
    /// # Panics
    ///
    /// Panics when the slices differ in length, mirroring
    /// [`Gf256::mul_acc_slice`].
    pub fn mul_acc(&self, src: &[u8], dst: &mut [u8]) {
        assert_eq!(src.len(), dst.len(), "mul_acc requires equal-length slices");
        if self.coeff.is_zero() {
            return;
        }
        if self.coeff == Gf256::ONE {
            xor_slice(src, dst);
            return;
        }
        let t = &self.table;
        let mut dst_chunks = dst.chunks_exact_mut(8);
        let mut src_chunks = src.chunks_exact(8);
        for (d, s) in (&mut dst_chunks).zip(&mut src_chunks) {
            d[0] ^= t[usize::from(s[0])];
            d[1] ^= t[usize::from(s[1])];
            d[2] ^= t[usize::from(s[2])];
            d[3] ^= t[usize::from(s[3])];
            d[4] ^= t[usize::from(s[4])];
            d[5] ^= t[usize::from(s[5])];
            d[6] ^= t[usize::from(s[6])];
            d[7] ^= t[usize::from(s[7])];
        }
        for (d, s) in dst_chunks
            .into_remainder()
            .iter_mut()
            .zip(src_chunks.remainder())
        {
            *d ^= t[usize::from(*s)];
        }
    }

    /// In-place multiply `data[i] = coeff * data[i]`.
    pub fn mul_slice(&self, data: &mut [u8]) {
        if self.coeff == Gf256::ONE {
            return;
        }
        for b in data.iter_mut() {
            *b = self.table[usize::from(*b)];
        }
    }
}

/// Plain slice XOR: `dst[i] ^= src[i]` — the `coeff == 1` fast path.
///
/// # Panics
///
/// Panics when the slices differ in length.
pub fn xor_slice(src: &[u8], dst: &mut [u8]) {
    assert_eq!(
        src.len(),
        dst.len(),
        "xor_slice requires equal-length slices"
    );
    for (d, s) in dst.iter_mut().zip(src) {
        *d ^= *s;
    }
}

/// Wide fused multiply-accumulate: `dst[i] ^= coeff * src[i]`, formulated
/// for autovectorization.
///
/// Instead of table lookups (which vectorize poorly — a gather per byte),
/// the product is computed as a carry-less shift-and-add over the bits of
/// `coeff`: eight branch-free steps of "conditionally accumulate, then
/// double in GF(2^8)". Every step is pure byte-wise logic, so LLVM turns
/// the loop into SIMD code (16 lanes under SSE2, 32 under AVX2) — this is
/// the fastest multiply the workspace can express without `unsafe`.
///
/// # Panics
///
/// Panics when the slices differ in length, mirroring
/// [`Gf256::mul_acc_slice`].
pub fn mul_acc_slice_wide(coeff: Gf256, src: &[u8], dst: &mut [u8]) {
    assert_eq!(
        src.len(),
        dst.len(),
        "mul_acc_slice_wide requires equal-length slices"
    );
    if coeff.is_zero() {
        return;
    }
    if coeff == Gf256::ONE {
        xor_slice(src, dst);
        return;
    }
    let c = coeff.value();
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        let mut x = *s;
        let mut acc = 0u8;
        let mut cc = c;
        // Eight unrolled "Russian peasant" steps; the masks make every
        // step branch-free so the whole body maps onto vector lanes.
        let mut step = 0;
        while step < 8 {
            acc ^= x & 0u8.wrapping_sub(cc & 1);
            let hi = 0u8.wrapping_sub(x >> 7);
            x = (x << 1) ^ (hi & 0x1d); // xtime: reduce by 0x11d
            cc >>= 1;
            step += 1;
        }
        *d ^= acc;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_mul(a: u8, b: u8) -> u8 {
        (Gf256::new(a) * Gf256::new(b)).value()
    }

    #[test]
    fn product_table_matches_field_multiply() {
        for coeff in [0u8, 1, 2, 3, 0x1d, 0x80, 0xfe, 0xff] {
            let t = MulTable::new(Gf256::new(coeff));
            assert_eq!(t.coeff().value(), coeff);
            for x in 0..=255u8 {
                assert_eq!(t.mul(x), scalar_mul(coeff, x), "coeff={coeff} x={x}");
            }
        }
    }

    #[test]
    fn table_mul_acc_matches_scalar_kernel() {
        let src: Vec<u8> = (0..=255).collect();
        for coeff in [0u8, 1, 2, 0x1d, 0xee] {
            let coeff = Gf256::new(coeff);
            let t = MulTable::new(coeff);
            let mut fast = vec![0x5Au8; src.len()];
            let mut slow = fast.clone();
            t.mul_acc(&src, &mut fast);
            Gf256::mul_acc_slice(coeff, &src, &mut slow);
            assert_eq!(fast, slow, "coeff = {coeff}");
        }
    }

    #[test]
    fn wide_mul_acc_matches_scalar_kernel() {
        let src: Vec<u8> = (0..=255).collect();
        for coeff in [0u8, 1, 2, 0x1d, 0x80, 0xee, 0xff] {
            let coeff = Gf256::new(coeff);
            let mut fast = vec![0xA5u8; src.len()];
            let mut slow = fast.clone();
            mul_acc_slice_wide(coeff, &src, &mut fast);
            Gf256::mul_acc_slice(coeff, &src, &mut slow);
            assert_eq!(fast, slow, "coeff = {coeff}");
        }
    }

    #[test]
    fn unroll_edges_are_exact() {
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17] {
            let src: Vec<u8> = (0..len).map(|i| (i * 29 + 3) as u8).collect();
            let t = MulTable::new(Gf256::new(0xc3));
            let mut a = vec![0x11u8; len];
            let mut b = a.clone();
            let mut c = a.clone();
            t.mul_acc(&src, &mut a);
            mul_acc_slice_wide(Gf256::new(0xc3), &src, &mut b);
            Gf256::mul_acc_slice(Gf256::new(0xc3), &src, &mut c);
            assert_eq!(a, c, "table kernel, len {len}");
            assert_eq!(b, c, "wide kernel, len {len}");
        }
    }

    #[test]
    fn table_mul_slice_matches_operator() {
        let t = MulTable::new(Gf256::new(0x8e));
        let mut data: Vec<u8> = (0..=255).collect();
        let orig = data.clone();
        t.mul_slice(&mut data);
        for (d, o) in data.iter().zip(&orig) {
            assert_eq!(*d, scalar_mul(0x8e, *o));
        }
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn wide_length_mismatch_panics() {
        let mut dst = [0u8; 3];
        mul_acc_slice_wide(Gf256::ONE, &[1, 2], &mut dst);
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn table_length_mismatch_panics() {
        let mut dst = [0u8; 3];
        MulTable::new(Gf256::ONE).mul_acc(&[1, 2], &mut dst);
    }
}
