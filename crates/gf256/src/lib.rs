//! Arithmetic over the finite field GF(2^8).
//!
//! This crate is the algebraic substrate for the Reed–Solomon erasure coder
//! used by the group-rekeying transport (the paper uses L. Rizzo's RSE
//! coder; this is a from-scratch equivalent). It provides:
//!
//! * [`Gf256`] — a field element with full operator overloads,
//! * [`poly`] — dense polynomials over the field (evaluation, interpolation),
//! * [`matrix`] — matrices over the field with Gaussian elimination and
//!   inversion, plus Vandermonde constructors used to build systematic
//!   erasure codes,
//! * [`bulk`] — slice-at-a-time multiply-accumulate kernels (per-multiplier
//!   product tables and an autovectorizable wide kernel) for the encode/decode
//!   hot paths,
//! * [`lagrange`] — barycentric Lagrange basis rows: O(k²) weight setup once
//!   per node set, O(k) per row thereafter.
//!
//! The field is realised as GF(2)\[x\] / (x^8 + x^4 + x^3 + x^2 + 1), i.e.
//! reduction polynomial `0x11d`, with generator `alpha = 0x02`. All
//! multiplicative arithmetic goes through compile-time log/exp tables, so a
//! multiply is two table lookups and an add; this matches the cost model the
//! paper assumes when it says parity-packet encoding time is linear in block
//! size.
//!
//! # Example
//!
//! ```
//! use gf256::Gf256;
//!
//! let a = Gf256::new(0x57);
//! let b = Gf256::new(0x83);
//! assert_eq!(a * b, b * a);
//! assert_eq!((a * b) / b, a);
//! assert_eq!(a * a.inv().unwrap(), Gf256::ONE);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod field;
mod tables;

pub mod bulk;
pub mod lagrange;
pub mod matrix;
pub mod poly;

pub use bulk::{mul_acc_slice_wide, MulTable};
pub use field::Gf256;
pub use lagrange::LagrangeCtx;
pub use matrix::Matrix;
pub use poly::Poly;

/// The reduction polynomial of the field, x^8 + x^4 + x^3 + x^2 + 1.
pub const REDUCTION_POLY: u16 = 0x11d;

/// The multiplicative generator used to build the log/exp tables.
pub const GENERATOR: u8 = 0x02;

/// Number of elements in the field.
pub const FIELD_SIZE: usize = 256;

/// Order of the multiplicative group (number of non-zero elements).
pub const GROUP_ORDER: usize = 255;
