//! Compile-time generated log/exp tables for GF(2^8).
//!
//! The tables are produced by `const fn` evaluation so there is no runtime
//! initialisation and no interior mutability anywhere in the field core.

#[cfg(test)]
use crate::GENERATOR;
use crate::REDUCTION_POLY;

/// `EXP[i] = alpha^i` for `i in 0..510`. The table is doubled so that
/// `EXP[log(a) + log(b)]` never needs a modulo reduction.
pub(crate) const EXP: [u8; 510] = build_exp();

/// `LOG[a] = i` such that `alpha^i = a`, for `a != 0`. `LOG[0]` is a
/// sentinel (unused; guarded by zero checks in the callers).
pub(crate) const LOG: [u8; 256] = build_log();

/// `INV[a] = a^{-1}` for `a != 0`; `INV[0] = 0` as a sentinel.
pub(crate) const INV: [u8; 256] = build_inv();

const fn xtime(a: u8) -> u8 {
    // Multiply by x (i.e. by the generator 0x02) with reduction by 0x11d.
    let wide = (a as u16) << 1;
    if wide & 0x100 != 0 {
        (wide ^ REDUCTION_POLY) as u8
    } else {
        wide as u8
    }
}

const fn build_exp() -> [u8; 510] {
    let mut table = [0u8; 510];
    let mut value: u8 = 1;
    let mut i = 0;
    while i < 255 {
        table[i] = value;
        table[i + 255] = value;
        value = xtime(value);
        i += 1;
    }
    // alpha^255 == 1, so the doubled table wraps correctly by construction.
    table
}

const fn build_log() -> [u8; 256] {
    let exp = build_exp();
    let mut table = [0u8; 256];
    let mut i = 0;
    while i < 255 {
        table[exp[i] as usize] = i as u8;
        i += 1;
    }
    table
}

const fn build_inv() -> [u8; 256] {
    let exp = build_exp();
    let log = build_log();
    let mut table = [0u8; 256];
    let mut a = 1usize;
    while a < 256 {
        // a^{-1} = alpha^{255 - log(a)}
        let l = log[a] as usize;
        table[a] = exp[255 - l];
        a += 1;
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Slow reference multiply: carry-less multiplication followed by
    /// polynomial reduction, no tables involved.
    pub(crate) fn slow_mul(a: u8, b: u8) -> u8 {
        let mut acc: u16 = 0;
        let mut a = a as u16;
        let mut b = b;
        while b != 0 {
            if b & 1 != 0 {
                acc ^= a;
            }
            a <<= 1;
            if a & 0x100 != 0 {
                a ^= REDUCTION_POLY;
            }
            b >>= 1;
        }
        acc as u8
    }

    #[test]
    fn exp_table_starts_at_one_and_cycles() {
        assert_eq!(EXP[0], 1);
        assert_eq!(EXP[255], 1);
        assert_eq!(EXP[254], slow_inverse_of_generator());
    }

    fn slow_inverse_of_generator() -> u8 {
        // alpha^254 = alpha^{-1}; verify alpha * alpha^254 == 1.
        for candidate in 1..=255u8 {
            if slow_mul(GENERATOR, candidate) == 1 {
                return candidate;
            }
        }
        unreachable!("generator must have an inverse");
    }

    #[test]
    fn exp_table_is_doubled_copy() {
        for i in 0..255 {
            assert_eq!(EXP[i], EXP[i + 255]);
        }
    }

    #[test]
    fn exp_hits_every_nonzero_element_exactly_once() {
        let mut seen = [false; 256];
        for (i, &e) in EXP.iter().enumerate().take(255) {
            let v = e as usize;
            assert_ne!(v, 0, "generator power must not be zero");
            assert!(!seen[v], "alpha^{i} repeats value {v}; 0x02 not primitive?");
            seen[v] = true;
        }
    }

    #[test]
    fn log_inverts_exp() {
        for i in 0..255usize {
            assert_eq!(LOG[EXP[i] as usize] as usize, i);
        }
    }

    #[test]
    fn inv_table_matches_slow_reference() {
        assert_eq!(INV[0], 0, "sentinel");
        for a in 1..=255u8 {
            assert_eq!(slow_mul(a, INV[a as usize]), 1, "a = {a}");
        }
    }

    #[test]
    fn tables_agree_with_slow_multiplication() {
        for a in 1..=255u16 {
            for b in 1..=255u16 {
                let via_tables = EXP[LOG[a as usize] as usize + LOG[b as usize] as usize];
                assert_eq!(via_tables, slow_mul(a as u8, b as u8));
            }
        }
    }
}
