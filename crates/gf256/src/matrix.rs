//! Matrices over GF(2^8): the linear algebra needed to build and decode
//! systematic Reed–Solomon erasure codes.

use crate::Gf256;

/// A dense row-major matrix over GF(2^8).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<Gf256>,
}

impl Matrix {
    /// All-zero matrix.
    pub fn zero(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![Gf256::ZERO; rows * cols],
        }
    }

    /// Identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zero(n, n);
        for i in 0..n {
            m[(i, i)] = Gf256::ONE;
        }
        m
    }

    /// Builds a matrix from a row-major closure.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Gf256) -> Self {
        let mut m = Matrix::zero(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// A `rows x cols` Vandermonde matrix whose row `r` is
    /// `[1, x_r, x_r^2, ...]` with `x_r = alpha^r`.
    ///
    /// Any `cols` rows of this matrix are linearly independent as long as
    /// `rows <= 255`, which is the property erasure codes rely on.
    pub fn vandermonde(rows: usize, cols: usize) -> Self {
        assert!(
            rows <= 255,
            "at most 255 distinct non-zero evaluation points"
        );
        let mut m = Matrix::zero(rows, cols);
        for r in 0..rows {
            let x = Gf256::alpha_pow(r);
            let mut acc = Gf256::ONE;
            for c in 0..cols {
                m[(r, c)] = acc;
                acc *= x;
            }
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of row `r`.
    pub fn row(&self, r: usize) -> &[Gf256] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    fn row_mut(&mut self, r: usize) -> &mut [Gf256] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns a new matrix consisting of the given rows, in order.
    pub fn select_rows(&self, rows: &[usize]) -> Matrix {
        let mut m = Matrix::zero(rows.len(), self.cols);
        for (dst, &src) in rows.iter().enumerate() {
            let row = self.row(src).to_vec();
            m.row_mut(dst).copy_from_slice(&row);
        }
        m
    }

    /// Matrix product `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn mul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        let mut out = Matrix::zero(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a.is_zero() {
                    continue;
                }
                for c in 0..rhs.cols {
                    out[(r, c)] += a * rhs[(k, c)];
                }
            }
        }
        out
    }

    /// Matrix–vector product.
    pub fn mul_vec(&self, v: &[Gf256]) -> Vec<Gf256> {
        assert_eq!(self.cols, v.len(), "dimension mismatch");
        (0..self.rows)
            .map(|r| {
                self.row(r)
                    .iter()
                    .zip(v)
                    .fold(Gf256::ZERO, |acc, (&a, &b)| acc + a * b)
            })
            .collect()
    }

    /// Inverts the matrix by Gauss–Jordan elimination with partial
    /// pivoting. Returns `None` if the matrix is singular.
    pub fn inverse(&self) -> Option<Matrix> {
        assert_eq!(self.rows, self.cols, "only square matrices invert");
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = Matrix::identity(n);

        for col in 0..n {
            // Find a pivot.
            let pivot = (col..n).find(|&r| !a[(r, col)].is_zero())?;
            if pivot != col {
                a.swap_rows(pivot, col);
                inv.swap_rows(pivot, col);
            }
            // Scale pivot row to 1.
            // xcheck-allow(no-unwrap-in-wire-crates): the find() above selected this row precisely because the pivot is non-zero
            let p = a[(col, col)].inv().expect("pivot is non-zero");
            for c in 0..n {
                a[(col, c)] *= p;
                inv[(col, c)] *= p;
            }
            // Eliminate the column from every other row.
            for r in 0..n {
                if r == col {
                    continue;
                }
                let factor = a[(r, col)];
                if factor.is_zero() {
                    continue;
                }
                for c in 0..n {
                    let ac = a[(col, c)];
                    let ic = inv[(col, c)];
                    a[(r, c)] += factor * ac;
                    inv[(r, c)] += factor * ic;
                }
            }
        }
        Some(inv)
    }

    /// Rank via Gaussian elimination (destroys a copy).
    pub fn rank(&self) -> usize {
        let mut a = self.clone();
        let mut rank = 0;
        let mut row = 0;
        for col in 0..a.cols {
            let Some(pivot) = (row..a.rows).find(|&r| !a[(r, col)].is_zero()) else {
                continue;
            };
            a.swap_rows(pivot, row);
            // xcheck-allow(no-unwrap-in-wire-crates): the find() above selected this row precisely because the pivot is non-zero
            let p = a[(row, col)].inv().expect("pivot non-zero");
            for c in 0..a.cols {
                a[(row, c)] *= p;
            }
            for r in 0..a.rows {
                if r != row && !a[(r, col)].is_zero() {
                    let f = a[(r, col)];
                    for c in 0..a.cols {
                        let v = a[(row, c)];
                        a[(r, c)] += f * v;
                    }
                }
            }
            rank += 1;
            row += 1;
            if row == a.rows {
                break;
            }
        }
        rank
    }

    fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        for c in 0..self.cols {
            self.data.swap(a * self.cols + c, b * self.cols + c);
        }
    }
}

impl core::ops::Index<(usize, usize)> for Matrix {
    type Output = Gf256;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &Gf256 {
        &self.data[r * self.cols + c]
    }
}

impl core::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut Gf256 {
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(v: u8) -> Gf256 {
        Gf256::new(v)
    }

    #[test]
    fn identity_is_multiplicative_identity() {
        let m = Matrix::from_fn(3, 3, |r, c| g((r * 3 + c + 1) as u8));
        let id = Matrix::identity(3);
        assert_eq!(m.mul(&id), m);
        assert_eq!(id.mul(&m), m);
    }

    #[test]
    fn vandermonde_rows_are_powers() {
        let m = Matrix::vandermonde(5, 4);
        for r in 0..5 {
            let x = Gf256::alpha_pow(r);
            for c in 0..4 {
                assert_eq!(m[(r, c)], x.pow(c as u32));
            }
        }
    }

    #[test]
    fn any_k_vandermonde_rows_are_invertible() {
        // The defining erasure-code property, checked exhaustively for a
        // small configuration: every 3-subset of 6 rows inverts.
        let k = 3;
        let m = Matrix::vandermonde(6, k);
        for a in 0..6 {
            for b in (a + 1)..6 {
                for c in (b + 1)..6 {
                    let sub = m.select_rows(&[a, b, c]);
                    let inv = sub.inverse().expect("must invert");
                    assert_eq!(sub.mul(&inv), Matrix::identity(k));
                }
            }
        }
    }

    #[test]
    fn inverse_of_singular_matrix_is_none() {
        let mut m = Matrix::identity(3);
        // Make row 2 equal to row 1.
        for c in 0..3 {
            let v = m[(1, c)];
            m[(2, c)] = v;
        }
        assert_eq!(m.inverse(), None);
        assert_eq!(m.rank(), 2);
    }

    #[test]
    fn inverse_round_trip_random_like() {
        // A fixed non-trivial matrix known to be invertible.
        let m = Matrix::from_fn(4, 4, |r, c| {
            Gf256::alpha_pow(r * 7 + c * 3) + if r == c { g(1) } else { g(0) }
        });
        if let Some(inv) = m.inverse() {
            assert_eq!(m.mul(&inv), Matrix::identity(4));
            assert_eq!(inv.mul(&m), Matrix::identity(4));
        } else {
            // If singular, rank must be deficient — consistency check.
            assert!(m.rank() < 4);
        }
    }

    #[test]
    fn mul_vec_matches_matrix_mul() {
        let m = Matrix::vandermonde(4, 3);
        let v = vec![g(7), g(11), g(13)];
        let as_vec = m.mul_vec(&v);
        let as_col = {
            let col = Matrix::from_fn(3, 1, |r, _| v[r]);
            m.mul(&col)
        };
        for r in 0..4 {
            assert_eq!(as_vec[r], as_col[(r, 0)]);
        }
    }

    #[test]
    fn rank_of_vandermonde_is_full() {
        assert_eq!(Matrix::vandermonde(8, 5).rank(), 5);
        assert_eq!(Matrix::vandermonde(5, 5).rank(), 5);
    }

    #[test]
    fn select_rows_preserves_content() {
        let m = Matrix::vandermonde(6, 3);
        let s = m.select_rows(&[5, 0, 2]);
        assert_eq!(s.row(0), m.row(5));
        assert_eq!(s.row(1), m.row(0));
        assert_eq!(s.row(2), m.row(2));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mul_dimension_mismatch_panics() {
        let a = Matrix::zero(2, 3);
        let b = Matrix::zero(2, 3);
        let _ = a.mul(&b);
    }
}
