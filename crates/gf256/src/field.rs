//! The [`Gf256`] element type and its operator implementations.

use core::fmt;
use core::iter::{Product, Sum};
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::tables::{EXP, INV, LOG};

/// An element of GF(2^8).
///
/// Addition and subtraction are XOR; multiplication and division go through
/// the compile-time log/exp tables. Division by zero panics, mirroring
/// integer division; use [`Gf256::checked_div`] or [`Gf256::inv`] where zero
/// divisors are reachable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Gf256(u8);

impl Gf256 {
    /// The additive identity.
    pub const ZERO: Gf256 = Gf256(0);
    /// The multiplicative identity.
    pub const ONE: Gf256 = Gf256(1);
    /// The multiplicative generator `alpha`.
    pub const ALPHA: Gf256 = Gf256(crate::GENERATOR);

    /// Wraps a raw byte as a field element.
    #[inline]
    pub const fn new(value: u8) -> Self {
        Gf256(value)
    }

    /// Returns the raw byte of the element.
    #[inline]
    pub const fn value(self) -> u8 {
        self.0
    }

    /// Returns true iff the element is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// `alpha^power` — the `power`-th power of the generator. Exponents are
    /// taken modulo the group order 255.
    #[inline]
    pub fn alpha_pow(power: usize) -> Self {
        Gf256(EXP[power % 255])
    }

    /// Discrete logarithm base `alpha`. Returns `None` for zero, which has
    /// no logarithm.
    #[inline]
    pub fn log(self) -> Option<u8> {
        if self.is_zero() {
            None
        } else {
            Some(LOG[self.0 as usize])
        }
    }

    /// Multiplicative inverse. Returns `None` for zero.
    #[inline]
    pub fn inv(self) -> Option<Self> {
        if self.is_zero() {
            None
        } else {
            Some(Gf256(INV[self.0 as usize]))
        }
    }

    /// Division that yields `None` when `rhs` is zero.
    #[inline]
    pub fn checked_div(self, rhs: Self) -> Option<Self> {
        rhs.inv().map(|r| self * r)
    }

    /// Raises the element to an arbitrary power. `0^0 == 1` by convention.
    pub fn pow(self, mut exp: u32) -> Self {
        if self.is_zero() {
            return if exp == 0 { Gf256::ONE } else { Gf256::ZERO };
        }
        let log = LOG[self.0 as usize] as u64;
        exp %= 255;
        let idx = (log * exp as u64) % 255;
        Gf256(EXP[idx as usize])
    }

    /// Fused multiply-add over a byte slice: `dst[i] ^= coeff * src[i]`.
    ///
    /// This is the inner loop of Reed–Solomon encoding and decoding; it is
    /// kept here so the table lookups stay private to the field crate.
    pub fn mul_acc_slice(coeff: Gf256, src: &[u8], dst: &mut [u8]) {
        assert_eq!(
            src.len(),
            dst.len(),
            "mul_acc_slice requires equal-length slices"
        );
        if coeff.is_zero() {
            return;
        }
        if coeff == Gf256::ONE {
            for (d, s) in dst.iter_mut().zip(src) {
                *d ^= *s;
            }
            return;
        }
        let clog = LOG[coeff.0 as usize] as usize;
        for (d, s) in dst.iter_mut().zip(src) {
            if *s != 0 {
                *d ^= EXP[clog + LOG[*s as usize] as usize];
            }
        }
    }

    /// Multiplies a byte slice in place by `coeff`.
    pub fn mul_slice(coeff: Gf256, data: &mut [u8]) {
        if coeff == Gf256::ONE {
            return;
        }
        if coeff.is_zero() {
            data.fill(0);
            return;
        }
        let clog = LOG[coeff.0 as usize] as usize;
        for b in data.iter_mut() {
            if *b != 0 {
                *b = EXP[clog + LOG[*b as usize] as usize];
            }
        }
    }
}

impl fmt::Debug for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf256({:#04x})", self.0)
    }
}

impl fmt::Display for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#04x}", self.0)
    }
}

impl From<u8> for Gf256 {
    #[inline]
    fn from(value: u8) -> Self {
        Gf256(value)
    }
}

impl From<Gf256> for u8 {
    #[inline]
    fn from(value: Gf256) -> Self {
        value.0
    }
}

impl Add for Gf256 {
    type Output = Gf256;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // XOR IS addition in GF(2^8)
    fn add(self, rhs: Self) -> Self {
        Gf256(self.0 ^ rhs.0)
    }
}

impl AddAssign for Gf256 {
    #[inline]
    #[allow(clippy::suspicious_op_assign_impl)] // XOR IS addition in GF(2^8)
    fn add_assign(&mut self, rhs: Self) {
        self.0 ^= rhs.0;
    }
}

impl Sub for Gf256 {
    type Output = Gf256;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // XOR IS subtraction in GF(2^8)
    fn sub(self, rhs: Self) -> Self {
        // Characteristic 2: subtraction is addition.
        Gf256(self.0 ^ rhs.0)
    }
}

impl SubAssign for Gf256 {
    #[inline]
    #[allow(clippy::suspicious_op_assign_impl)] // XOR IS subtraction in GF(2^8)
    fn sub_assign(&mut self, rhs: Self) {
        self.0 ^= rhs.0;
    }
}

impl Neg for Gf256 {
    type Output = Gf256;
    #[inline]
    fn neg(self) -> Self {
        self
    }
}

impl Mul for Gf256 {
    type Output = Gf256;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        if self.0 == 0 || rhs.0 == 0 {
            return Gf256::ZERO;
        }
        Gf256(EXP[LOG[self.0 as usize] as usize + LOG[rhs.0 as usize] as usize])
    }
}

impl MulAssign for Gf256 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Div for Gf256 {
    type Output = Gf256;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        // xcheck-allow(no-unwrap-in-wire-crates): Div mirrors integer `/` — panicking on zero divisor is the documented contract; fallible callers use checked_div
        self.checked_div(rhs).expect("division by zero in GF(2^8)")
    }
}

impl DivAssign for Gf256 {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl Sum for Gf256 {
    fn sum<I: Iterator<Item = Gf256>>(iter: I) -> Self {
        iter.fold(Gf256::ZERO, |a, b| a + b)
    }
}

impl Product for Gf256 {
    fn product<I: Iterator<Item = Gf256>>(iter: I) -> Self {
        iter.fold(Gf256::ONE, |a, b| a * b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn additive_identity_and_self_inverse() {
        for a in 0..=255u8 {
            let a = Gf256::new(a);
            assert_eq!(a + Gf256::ZERO, a);
            assert_eq!(a + a, Gf256::ZERO);
            assert_eq!(-a, a);
            assert_eq!(a - a, Gf256::ZERO);
        }
    }

    #[test]
    fn multiplicative_identity_and_zero() {
        for a in 0..=255u8 {
            let a = Gf256::new(a);
            assert_eq!(a * Gf256::ONE, a);
            assert_eq!(a * Gf256::ZERO, Gf256::ZERO);
        }
    }

    #[test]
    fn inverse_round_trip() {
        for a in 1..=255u8 {
            let a = Gf256::new(a);
            assert_eq!(a * a.inv().unwrap(), Gf256::ONE);
            assert_eq!(a / a, Gf256::ONE);
        }
        assert_eq!(Gf256::ZERO.inv(), None);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = Gf256::ONE / Gf256::ZERO;
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        for a in [0u8, 1, 2, 3, 0x53, 0xca, 0xff] {
            let a = Gf256::new(a);
            let mut acc = Gf256::ONE;
            for e in 0..600u32 {
                assert_eq!(a.pow(e), acc, "a={a}, e={e}");
                acc *= a;
            }
        }
    }

    #[test]
    fn pow_zero_conventions() {
        assert_eq!(Gf256::ZERO.pow(0), Gf256::ONE);
        assert_eq!(Gf256::ZERO.pow(5), Gf256::ZERO);
    }

    #[test]
    fn alpha_pow_wraps_at_group_order() {
        assert_eq!(Gf256::alpha_pow(0), Gf256::ONE);
        assert_eq!(Gf256::alpha_pow(255), Gf256::ONE);
        assert_eq!(Gf256::alpha_pow(256), Gf256::ALPHA);
    }

    #[test]
    fn log_is_inverse_of_alpha_pow() {
        for i in 0..255usize {
            assert_eq!(Gf256::alpha_pow(i).log().unwrap() as usize, i);
        }
        assert_eq!(Gf256::ZERO.log(), None);
    }

    #[test]
    fn mul_acc_slice_matches_scalar_path() {
        let src: Vec<u8> = (0..=255).collect();
        for coeff in [0u8, 1, 2, 0x1d, 0xee] {
            let coeff = Gf256::new(coeff);
            let mut dst = vec![0xAAu8; src.len()];
            let mut expect = dst.clone();
            Gf256::mul_acc_slice(coeff, &src, &mut dst);
            for (e, s) in expect.iter_mut().zip(&src) {
                *e = (Gf256::new(*e) + coeff * Gf256::new(*s)).value();
            }
            assert_eq!(dst, expect, "coeff = {coeff}");
        }
    }

    #[test]
    fn mul_slice_matches_scalar_path() {
        let mut data: Vec<u8> = (0..=255).collect();
        let orig = data.clone();
        let coeff = Gf256::new(0x8e);
        Gf256::mul_slice(coeff, &mut data);
        for (d, o) in data.iter().zip(&orig) {
            assert_eq!(Gf256::new(*d), coeff * Gf256::new(*o));
        }
        Gf256::mul_slice(Gf256::ZERO, &mut data);
        assert!(data.iter().all(|&b| b == 0));
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn mul_acc_slice_length_mismatch_panics() {
        let mut dst = [0u8; 3];
        Gf256::mul_acc_slice(Gf256::ONE, &[1, 2], &mut dst);
    }

    #[test]
    fn sum_and_product_fold() {
        let xs = [Gf256::new(3), Gf256::new(5), Gf256::new(6)];
        assert_eq!(xs.iter().copied().sum::<Gf256>(), Gf256::new(3 ^ 5 ^ 6));
        let p: Gf256 = xs.iter().copied().product();
        assert_eq!(p, Gf256::new(3) * Gf256::new(5) * Gf256::new(6));
    }
}
