//! Barycentric Lagrange interpolation rows over GF(2^8).
//!
//! The naive Lagrange basis row at a point `x` over `k` nodes costs
//! O(k²): every coefficient rebuilds its numerator and denominator
//! products from scratch. The barycentric form splits that work into a
//! one-time O(k²) weight precomputation per *node set* and an O(k)
//! evaluation per *row*:
//!
//! ```text
//! w_i    = 1 / prod_{j != i} (x_i - x_j)        (precomputed once)
//! l(x)   = prod_j (x - x_j)                     (O(k) per row)
//! row[i] = w_i * l(x) / (x - x_i)               (O(1) per coefficient)
//! ```
//!
//! An erasure coder asks for many rows over the same node set (one per
//! parity index, and one per surviving parity share during decode), so
//! [`LagrangeCtx`] amortizes the quadratic part across all of them. In
//! characteristic 2 every `-` above is `+` (XOR).

use crate::Gf256;

/// Precomputed barycentric weights for a fixed set of interpolation
/// nodes.
///
/// Construction is O(k²); each subsequent [`row`](LagrangeCtx::row) is
/// O(k). The produced rows are byte-for-byte identical to the textbook
/// O(k²) construction (property-tested in `tests/bulk_kernels.rs`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LagrangeCtx {
    nodes: Vec<Gf256>,
    weights: Vec<Gf256>,
}

impl LagrangeCtx {
    /// Builds the context for the given interpolation nodes.
    ///
    /// Returns `None` when two nodes coincide (the weights would divide
    /// by zero).
    pub fn new(nodes: Vec<Gf256>) -> Option<Self> {
        let mut weights = Vec::with_capacity(nodes.len());
        for (i, &xi) in nodes.iter().enumerate() {
            let mut denom = Gf256::ONE;
            for (j, &xj) in nodes.iter().enumerate() {
                if i == j {
                    continue;
                }
                let diff = xi + xj; // xi - xj in characteristic 2
                if diff.is_zero() {
                    return None;
                }
                denom *= diff;
            }
            weights.push(denom.inv()?);
        }
        Some(LagrangeCtx { nodes, weights })
    }

    /// Context over the consecutive generator powers `alpha^0 ..
    /// alpha^(k-1)` — the node set used by the systematic erasure coder.
    ///
    /// # Panics
    ///
    /// Panics when `k` exceeds the multiplicative group order (255),
    /// where the powers start repeating.
    pub fn alpha_consecutive(k: usize) -> Self {
        assert!(
            k <= crate::GROUP_ORDER,
            "alpha^0..alpha^{k} repeats beyond the group order"
        );
        let nodes: Vec<Gf256> = (0..k).map(Gf256::alpha_pow).collect();
        // Consecutive generator powers below the group order are distinct,
        // so construction cannot fail; the fallback is unreachable.
        Self::new(nodes).unwrap_or(LagrangeCtx {
            nodes: Vec::new(),
            weights: Vec::new(),
        })
    }

    /// Number of interpolation nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the context holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The interpolation nodes.
    pub fn nodes(&self) -> &[Gf256] {
        &self.nodes
    }

    /// Writes the basis row at `x` into `out`: the coefficients `c` with
    /// `value(x) = sum_i c[i] * d_i` for data `d` at the nodes. O(k).
    ///
    /// When `x` equals a node the row is the corresponding unit vector.
    ///
    /// # Panics
    ///
    /// Panics when `out.len()` differs from [`len`](LagrangeCtx::len).
    pub fn row_into(&self, x: Gf256, out: &mut [Gf256]) {
        assert_eq!(
            out.len(),
            self.nodes.len(),
            "row_into requires a k-length output slice"
        );
        if let Some(hit) = self.nodes.iter().position(|&n| n == x) {
            out.fill(Gf256::ZERO);
            out[hit] = Gf256::ONE;
            return;
        }
        let mut l = Gf256::ONE;
        for &n in &self.nodes {
            l *= x + n; // x - n in characteristic 2; nonzero (x is no node)
        }
        for ((o, &n), &w) in out.iter_mut().zip(&self.nodes).zip(&self.weights) {
            // (x + n) is nonzero here, so the inverse always exists.
            *o = match (x + n).inv() {
                Some(d) => l * w * d,
                None => Gf256::ZERO,
            };
        }
    }

    /// The basis row at `x` as a fresh vector. See
    /// [`row_into`](LagrangeCtx::row_into).
    pub fn row(&self, x: Gf256) -> Vec<Gf256> {
        let mut out = vec![Gf256::ZERO; self.nodes.len()];
        self.row_into(x, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Textbook O(k²) construction, kept as the test oracle.
    fn naive_row(nodes: &[Gf256], x: Gf256) -> Vec<Gf256> {
        let k = nodes.len();
        let mut row = vec![Gf256::ZERO; k];
        for i in 0..k {
            let mut num = Gf256::ONE;
            let mut den = Gf256::ONE;
            for j in 0..k {
                if i == j {
                    continue;
                }
                num *= x + nodes[j];
                den *= nodes[i] + nodes[j];
            }
            row[i] = num / den;
        }
        row
    }

    #[test]
    fn matches_naive_construction_off_nodes() {
        for k in [1usize, 2, 3, 8, 64] {
            let ctx = LagrangeCtx::alpha_consecutive(k);
            for extra in 0..8 {
                let x = Gf256::alpha_pow(k + extra);
                assert_eq!(ctx.row(x), naive_row(ctx.nodes(), x), "k={k} +{extra}");
            }
        }
    }

    #[test]
    fn unit_row_at_each_node() {
        let ctx = LagrangeCtx::alpha_consecutive(5);
        for (i, &node) in ctx.nodes().iter().enumerate() {
            let row = ctx.row(node);
            for (j, &c) in row.iter().enumerate() {
                let expect = if i == j { Gf256::ONE } else { Gf256::ZERO };
                assert_eq!(c, expect, "node {i}, coeff {j}");
            }
        }
    }

    #[test]
    fn row_sums_to_one() {
        // The basis rows partition unity: sum_i L_i(x) == 1 for every x.
        let ctx = LagrangeCtx::alpha_consecutive(7);
        for p in 0..20 {
            let x = Gf256::alpha_pow(p);
            let sum: Gf256 = ctx.row(x).into_iter().sum();
            assert_eq!(sum, Gf256::ONE, "x = alpha^{p}");
        }
    }

    #[test]
    fn duplicate_nodes_rejected() {
        let dup = vec![Gf256::new(3), Gf256::new(7), Gf256::new(3)];
        assert!(LagrangeCtx::new(dup).is_none());
    }

    #[test]
    fn arbitrary_node_sets_supported() {
        let nodes = vec![Gf256::new(9), Gf256::new(200), Gf256::new(0)];
        let ctx = LagrangeCtx::new(nodes.clone()).unwrap();
        assert_eq!(ctx.len(), 3);
        assert!(!ctx.is_empty());
        let x = Gf256::new(77);
        assert_eq!(ctx.row(x), naive_row(&nodes, x));
    }

    #[test]
    #[should_panic(expected = "group order")]
    fn oversized_node_count_panics() {
        let _ = LagrangeCtx::alpha_consecutive(256);
    }
}
