//! Dense polynomials over GF(2^8).
//!
//! Used by the erasure coder's tests and by Lagrange-style reconstruction
//! checks; kept general enough to be reused for Reed–Solomon variants.

use crate::Gf256;

/// A dense polynomial `c[0] + c[1] x + ... + c[n] x^n` over GF(2^8).
///
/// The coefficient vector is kept *normalised*: the highest-order
/// coefficient is non-zero, except that the zero polynomial is represented
/// by an empty vector.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct Poly {
    coeffs: Vec<Gf256>,
}

impl Poly {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Poly { coeffs: Vec::new() }
    }

    /// Constructs a polynomial from low-to-high coefficients, trimming
    /// trailing zeros.
    pub fn from_coeffs(coeffs: Vec<Gf256>) -> Self {
        let mut p = Poly { coeffs };
        p.normalise();
        p
    }

    /// The constant polynomial `c`.
    pub fn constant(c: Gf256) -> Self {
        Poly::from_coeffs(vec![c])
    }

    /// Low-to-high coefficient view.
    pub fn coeffs(&self) -> &[Gf256] {
        &self.coeffs
    }

    /// Degree of the polynomial; `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        self.coeffs.len().checked_sub(1)
    }

    /// True iff this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.coeffs.is_empty()
    }

    fn normalise(&mut self) {
        while self.coeffs.last().is_some_and(|c| c.is_zero()) {
            self.coeffs.pop();
        }
    }

    /// Horner evaluation at `x`.
    pub fn eval(&self, x: Gf256) -> Gf256 {
        let mut acc = Gf256::ZERO;
        for &c in self.coeffs.iter().rev() {
            acc = acc * x + c;
        }
        acc
    }

    /// Polynomial addition.
    pub fn add(&self, other: &Poly) -> Poly {
        let (long, short) = if self.coeffs.len() >= other.coeffs.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut coeffs = long.coeffs.clone();
        for (c, &s) in coeffs.iter_mut().zip(&short.coeffs) {
            *c += s;
        }
        Poly::from_coeffs(coeffs)
    }

    /// Polynomial multiplication (schoolbook; degrees here are tiny).
    pub fn mul(&self, other: &Poly) -> Poly {
        if self.is_zero() || other.is_zero() {
            return Poly::zero();
        }
        let mut coeffs = vec![Gf256::ZERO; self.coeffs.len() + other.coeffs.len() - 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            for (j, &b) in other.coeffs.iter().enumerate() {
                coeffs[i + j] += a * b;
            }
        }
        Poly::from_coeffs(coeffs)
    }

    /// Scales every coefficient by `s`.
    pub fn scale(&self, s: Gf256) -> Poly {
        Poly::from_coeffs(self.coeffs.iter().map(|&c| c * s).collect())
    }

    /// Lagrange interpolation through `(x_i, y_i)` points with pairwise
    /// distinct `x_i`. Returns the unique polynomial of degree `< points.len()`.
    ///
    /// # Panics
    ///
    /// Panics if two `x` values coincide.
    pub fn interpolate(points: &[(Gf256, Gf256)]) -> Poly {
        let mut acc = Poly::zero();
        for (i, &(xi, yi)) in points.iter().enumerate() {
            // Basis polynomial l_i(x) = prod_{j != i} (x - x_j) / (x_i - x_j)
            let mut basis = Poly::constant(Gf256::ONE);
            let mut denom = Gf256::ONE;
            for (j, &(xj, _)) in points.iter().enumerate() {
                if i == j {
                    continue;
                }
                assert_ne!(xi, xj, "interpolation nodes must be distinct");
                basis = basis.mul(&Poly::from_coeffs(vec![xj, Gf256::ONE]));
                denom *= xi + xj; // == xi - xj in characteristic 2
            }
            acc = acc.add(&basis.scale(yi / denom));
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(cs: &[u8]) -> Poly {
        Poly::from_coeffs(cs.iter().map(|&c| Gf256::new(c)).collect())
    }

    #[test]
    fn normalisation_trims_high_zeros() {
        assert_eq!(p(&[1, 2, 0, 0]), p(&[1, 2]));
        assert!(p(&[0, 0]).is_zero());
        assert_eq!(p(&[0]).degree(), None);
        assert_eq!(p(&[7]).degree(), Some(0));
        assert_eq!(p(&[7, 0, 9]).degree(), Some(2));
    }

    #[test]
    fn eval_constant_and_identity() {
        assert_eq!(p(&[5]).eval(Gf256::new(123)), Gf256::new(5));
        // x evaluated at x0 is x0
        assert_eq!(p(&[0, 1]).eval(Gf256::new(77)), Gf256::new(77));
        assert_eq!(Poly::zero().eval(Gf256::new(9)), Gf256::ZERO);
    }

    #[test]
    fn addition_is_xor_of_coefficients() {
        let a = p(&[1, 2, 3]);
        let b = p(&[4, 5]);
        assert_eq!(a.add(&b), p(&[1 ^ 4, 2 ^ 5, 3]));
        // Self-addition cancels (characteristic 2).
        assert!(a.add(&a).is_zero());
    }

    #[test]
    fn multiplication_degree_and_distributivity() {
        let a = p(&[1, 1]); // 1 + x
        let b = p(&[2, 0, 1]); // 2 + x^2
        let ab = a.mul(&b);
        assert_eq!(ab.degree(), Some(3));
        // (a*b)(x) == a(x)*b(x) for a sample of points.
        for x in [0u8, 1, 2, 55, 200, 255] {
            let x = Gf256::new(x);
            assert_eq!(ab.eval(x), a.eval(x) * b.eval(x));
        }
        assert!(a.mul(&Poly::zero()).is_zero());
    }

    #[test]
    fn interpolation_recovers_polynomial() {
        let target = p(&[9, 4, 0, 7]); // degree 3
        let points: Vec<(Gf256, Gf256)> = (0..4u8)
            .map(|x| {
                let x = Gf256::new(x);
                (x, target.eval(x))
            })
            .collect();
        assert_eq!(Poly::interpolate(&points), target);
    }

    #[test]
    fn interpolation_through_single_point() {
        let pts = [(Gf256::new(3), Gf256::new(99))];
        assert_eq!(Poly::interpolate(&pts), p(&[99]));
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn interpolation_rejects_duplicate_nodes() {
        let pts = [
            (Gf256::new(3), Gf256::new(1)),
            (Gf256::new(3), Gf256::new(2)),
        ];
        let _ = Poly::interpolate(&pts);
    }
}
