//! High-throughput transport simulation.
//!
//! Reproducing the paper's figures means simulating thousands of rekey
//! messages against 4096+ users. The server side here is the *real*
//! protocol stack — real marking algorithm, real UKA packets, real
//! Reed–Solomon parities, real `AdjustRho` — but each simulated user
//! tracks which FEC *shares* it received rather than their bytes: by the
//! MDS property (proven by the `rse` crate's tests), a block decodes if
//! and only if at least `k` distinct shares arrived, so delivery dynamics
//! are byte-exact while memory stays O(counts). The byte-faithful path —
//! parse, decode, unseal — is exercised end-to-end by [`crate::driver`]
//! and the integration tests.

use std::collections::HashMap;

use keytree::NodeId;
use netsim::Network;
use rekeymsg::estimate::BlockIdEstimator;
use rekeymsg::{NackPacket, NackRequest, Packet};
use rekeyproto::{RoundDecision, ServerSession};

/// Distinct FEC share indices received, per block, as fixed-width
/// bitsets.
///
/// Block IDs are `u8` and share indices stay below [`rse::MAX_SYMBOLS`]
/// (= 256), so four `u64` words cover a block exactly. The flat layout —
/// one `[u64; 4]` slot per block ID in a `Vec` that grows to the highest
/// block seen — replaces the seed's `BTreeMap<u8, BTreeSet<usize>>`,
/// turning the per-packet bookkeeping from two tree lookups plus a node
/// allocation into one indexed OR. A parallel `counts` vector caches the
/// population count so the round-boundary decode check stays O(1).
#[derive(Debug, Clone, Default)]
struct ShareTracker {
    words: Vec<[u64; 4]>,
    counts: Vec<u16>,
}

impl ShareTracker {
    /// Records share `index` of `block`; duplicates are ignored.
    fn insert(&mut self, block: u8, index: usize) {
        if index >= 256 {
            // Unreachable for shares minted by the real encoder
            // (MAX_SYMBOLS caps data + parity indices); ignore rather
            // than corrupt a neighbouring block's words.
            return;
        }
        let b = usize::from(block);
        if self.words.len() <= b {
            self.words.resize(b + 1, [0u64; 4]);
            self.counts.resize(b + 1, 0);
        }
        let word = &mut self.words[b][index / 64];
        let bit = 1u64 << (index % 64);
        if *word & bit == 0 {
            *word |= bit;
            self.counts[b] += 1;
        }
    }

    /// Number of distinct shares held for `block`.
    fn count(&self, block: u8) -> usize {
        self.counts.get(usize::from(block)).map_or(0, |&c| c.into())
    }

    /// Drops all recorded shares, keeping the allocation.
    fn clear(&mut self) {
        self.words.clear();
        self.counts.clear();
    }
}

/// One simulated user of the transport.
#[derive(Debug)]
pub struct SimUser {
    /// Index of this user's receiver link in the [`Network`].
    pub net_index: usize,
    /// The user's current u-node ID.
    pub node_id: NodeId,
    k: usize,
    d: u32,
    estimator: Option<BlockIdEstimator>,
    /// Distinct share indices received, per block.
    shares: ShareTracker,
    max_block_seen: Option<u8>,
    /// True block of the user's specific ENC packet (driver knowledge used
    /// only to shortcut the FEC decode, which is deterministic in the
    /// share set).
    true_block: Option<u8>,
    satisfied_round: Option<usize>,
}

impl SimUser {
    /// Creates a simulated user. `true_block` is the FEC block holding its
    /// specific packet (`None` for a user that needs nothing).
    pub fn new(
        net_index: usize,
        node_id: NodeId,
        k: usize,
        d: u32,
        true_block: Option<u8>,
    ) -> Self {
        SimUser {
            net_index,
            node_id,
            k,
            d,
            estimator: None,
            shares: ShareTracker::default(),
            max_block_seen: None,
            true_block,
            satisfied_round: None,
        }
    }

    /// True once the user has (or can decode) its encryptions.
    pub fn is_satisfied(&self) -> bool {
        self.satisfied_round.is_some() || self.true_block.is_none()
    }

    /// The round in which the user succeeded.
    pub fn satisfied_round(&self) -> Option<usize> {
        self.satisfied_round
    }

    /// Feeds one received packet into the user's share bookkeeping.
    /// Steady-state allocation-free: the share bitsets and the block-ID
    /// estimator reuse their capacity once a rekey message is underway
    /// (pinned by the `no_alloc_marks` integration test).
    // xcheck: no_alloc
    pub fn receive(&mut self, pkt: &Packet, round: usize) {
        if self.is_satisfied() {
            return;
        }
        match pkt {
            Packet::Enc(enc) => {
                self.max_block_seen = Some(self.max_block_seen.unwrap_or(0).max(enc.block_id));
                if enc.serves(self.node_id as u16) {
                    self.satisfied_round = Some(round);
                    self.shares.clear();
                    return;
                }
                self.estimator
                    .get_or_insert_with(|| {
                        BlockIdEstimator::new(self.node_id as u16, self.k, self.d)
                    })
                    .observe(enc);
                self.shares.insert(enc.block_id, enc.seq as usize);
            }
            Packet::Parity(par) => {
                self.max_block_seen = Some(self.max_block_seen.unwrap_or(0).max(par.block_id));
                self.shares.insert(par.block_id, self.k + par.seq as usize);
            }
            Packet::Usr(_) => {
                self.satisfied_round = Some(round);
                self.shares.clear();
            }
            Packet::Nack(_) => {}
        }
    }

    /// Round boundary: attempts FEC recovery, then returns a NACK when
    /// still unsatisfied. Mirrors `rekeyproto::UserSession::end_of_round`.
    /// Allocating convenience over [`Self::end_of_round_into`], kept for
    /// the unit tests; the transport loop uses the scratch form.
    #[cfg(test)]
    fn end_of_round(&mut self, round: usize) -> Option<NackPacket> {
        let mut nack = NackPacket {
            msg_id: 0,
            requests: Vec::new(),
        };
        self.end_of_round_into(round, &mut nack).then_some(nack)
    }

    /// Allocation-free round boundary: fills the caller's reusable
    /// `nack` (clearing any previous requests) and returns whether the
    /// user NACKs this round. Same decision logic as [`Self::end_of_round`];
    /// the transport loop threads one scratch packet through every user.
    // xcheck: no_alloc
    pub fn end_of_round_into(&mut self, round: usize, nack: &mut NackPacket) -> bool {
        nack.msg_id = 0;
        nack.requests.clear();
        if self.is_satisfied() {
            return false;
        }
        // Decode: the true block reconstructs iff k distinct shares
        // arrived (MDS); the estimator range always contains the true
        // block, so the real user would attempt exactly this decode.
        if let Some(tb) = self.true_block {
            if self.shares.count(tb) >= self.k {
                self.satisfied_round = Some(round);
                self.shares.clear();
                return false;
            }
        }
        let (low, high) = match (
            self.estimator.as_ref().and_then(|e| e.range()),
            self.max_block_seen,
        ) {
            (Some((lo, hi)), _) => (lo, hi),
            (None, Some(maxb)) => (
                self.estimator
                    .as_ref()
                    .map(|e| e.low())
                    .unwrap_or(0)
                    .min(maxb as u32),
                maxb as u32,
            ),
            (None, None) => (0, 0),
        };
        for b in low..=high.min(255) {
            let have = self.shares.count(b as u8);
            let need = self.k.saturating_sub(have);
            if need > 0 {
                nack.requests.push(NackRequest {
                    count: need.min(255) as u8,
                    block_id: b as u8,
                });
            }
        }
        if nack.requests.is_empty() {
            nack.requests.push(NackRequest {
                count: self.k.min(255) as u8,
                block_id: low as u8,
            });
        }
        true
    }
}

/// Transport-simulation knobs.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Deadline in rounds for the soft real-time requirement.
    pub deadline_rounds: usize,
    /// Safety valve on total rounds (multicast + unicast waves).
    pub max_total_rounds: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            deadline_rounds: 2,
            max_total_rounds: 64,
        }
    }
}

/// Outcome of simulating one message's delivery.
#[derive(Debug, Clone, Default)]
pub struct TransportStats {
    /// Rounds (multicast rounds plus unicast waves) used.
    pub total_rounds: usize,
    /// Per-user rounds histogram (`[r]` = users succeeding in round `r+1`).
    pub rounds_histogram: Vec<usize>,
    /// Users that missed the deadline.
    pub missed_deadline: usize,
    /// Users never served (only possible if the round cap fired).
    pub unserved: usize,
}

/// Reusable scratch buffers for [`run_message_transport_with`].
///
/// One instance per experiment (or per thread) makes the per-packet and
/// per-round paths of the transport loop allocation-free: the listener
/// list, delivery flags, net-index-to-slot table, unicast target map, and
/// the NACK packet threaded through every user at a round boundary all
/// reuse their capacity across packets, rounds, and messages.
#[derive(Debug)]
pub struct TransportScratch {
    delivered: Vec<bool>,
    listeners: Vec<usize>,
    listener_slots: Vec<usize>,
    by_node: HashMap<NodeId, usize>,
    nack: NackPacket,
}

impl TransportScratch {
    /// Empty scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        TransportScratch {
            delivered: Vec::new(),
            listeners: Vec::new(),
            listener_slots: Vec::new(),
            by_node: HashMap::new(),
            nack: NackPacket {
                msg_id: 0,
                requests: Vec::new(),
            },
        }
    }
}

impl Default for TransportScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Runs one rekey message's delivery over the network.
///
/// `session` must be freshly created (not yet started). The clock advances
/// by one send interval per packet; round boundaries add one round-trip
/// time. Allocates its scratch internally; callers simulating message
/// sequences should hold a [`TransportScratch`] and use
/// [`run_message_transport_with`].
pub fn run_message_transport(
    net: &mut Network,
    clock: &mut f64,
    session: &mut ServerSession,
    users: &mut [SimUser],
    cfg: &SimConfig,
) -> TransportStats {
    let mut scratch = TransportScratch::new();
    run_message_transport_with(net, clock, session, users, cfg, &mut scratch)
}

/// [`run_message_transport`] with caller-owned scratch buffers, the
/// allocation-free form used by [`crate::experiment::ExperimentRun`].
pub fn run_message_transport_with(
    net: &mut Network,
    clock: &mut f64,
    session: &mut ServerSession,
    users: &mut [SimUser],
    cfg: &SimConfig,
    scratch: &mut TransportScratch,
) -> TransportStats {
    let _span_msg = obs::span("transport.message");
    let send_interval = net.config().send_interval_ms;
    let rtt = 2.0 * net.config().one_way_delay_ms;
    scratch.by_node.clear();
    scratch
        .by_node
        .extend(users.iter().enumerate().map(|(i, u)| (u.node_id, i)));

    enum Action {
        Multicast(Vec<Packet>),
        Unicast(rekeyproto::UnicastSend),
    }

    let mut round = 1usize;
    let mut action = Action::Multicast(session.start());

    loop {
        let _span_round = obs::span("transport.round");
        obs::counter_add("transport.rounds", 1);
        match &action {
            Action::Multicast(schedule) => {
                for pkt in schedule {
                    *clock += send_interval;
                    scratch.listeners.clear();
                    scratch.listener_slots.clear();
                    for (slot, u) in users.iter().enumerate() {
                        if !u.is_satisfied() {
                            scratch.listeners.push(u.net_index);
                            scratch.listener_slots.push(slot);
                        }
                    }
                    if scratch.listeners.is_empty() {
                        break;
                    }
                    net.multicast_to_into(*clock, &scratch.listeners, &mut scratch.delivered);
                    for (pos, &ok) in scratch.delivered.iter().enumerate() {
                        if ok {
                            users[scratch.listener_slots[pos]].receive(pkt, round);
                        }
                    }
                }
            }
            Action::Unicast(wave) => {
                // `duplicates` copies per target; any one suffices.
                for node in &wave.targets {
                    let Some(&slot) = scratch.by_node.get(node) else {
                        continue;
                    };
                    let mut got = false;
                    for _ in 0..wave.duplicates {
                        *clock += send_interval;
                        got |= net.unicast(*clock, users[slot].net_index);
                    }
                    if got {
                        users[slot].receive(
                            &Packet::Usr(rekeymsg::UsrPacket {
                                msg_id: 0,
                                new_user_id: users[slot].node_id as u16,
                                sealed: vec![],
                            }),
                            round,
                        );
                    }
                }
            }
        }
        *clock += rtt;

        // Round boundary: every unsatisfied user NACKs (reverse path is
        // modelled lossless; see DESIGN.md).
        for u in users.iter_mut() {
            if u.end_of_round_into(round, &mut scratch.nack) {
                session.accept_nack(u.node_id, &scratch.nack);
            }
        }

        match session.end_of_round() {
            RoundDecision::Done => break,
            RoundDecision::Multicast(pkts) => {
                round += 1;
                action = Action::Multicast(pkts);
            }
            RoundDecision::Unicast(wave) => {
                round += 1;
                action = Action::Unicast(wave);
            }
        }
        if round > cfg.max_total_rounds {
            break;
        }
    }

    // Collate.
    let mut hist = Vec::new();
    let mut unserved = 0usize;
    let mut missed = 0usize;
    for u in users.iter() {
        if u.true_block.is_none() {
            continue; // vacuously served, not part of delivery stats
        }
        match u.satisfied_round() {
            Some(r) => {
                if hist.len() < r {
                    hist.resize(r, 0);
                }
                hist[r - 1] += 1;
                if r > cfg.deadline_rounds {
                    missed += 1;
                }
            }
            None => {
                unserved += 1;
                missed += 1;
            }
        }
    }
    TransportStats {
        total_rounds: round,
        rounds_histogram: hist,
        missed_deadline: missed,
        unserved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rekeymsg::{EncPacket, ParityPacket, UsrPacket};
    use wirecrypto::{SealedKey, SymKey};

    fn enc(block: u8, seq: u8, frm: u16, to: u16) -> Packet {
        let kek = SymKey::from_bytes([seq; 16]);
        Packet::Enc(EncPacket {
            msg_id: 0,
            block_id: block,
            seq,
            duplicate: false,
            max_kid: 90,
            frm_id: frm,
            to_id: to,
            entries: vec![(frm, SealedKey::seal(&kek, &SymKey::from_bytes([1; 16]), 0))],
        })
    }

    fn parity(block: u8, seq: u8) -> Packet {
        Packet::Parity(ParityPacket {
            msg_id: 0,
            block_id: block,
            seq,
            body: vec![0; 8],
        })
    }

    #[test]
    fn own_packet_satisfies_immediately() {
        let mut u = SimUser::new(0, 150, 3, 4, Some(1));
        assert!(!u.is_satisfied());
        u.receive(&enc(1, 0, 140, 160), 1);
        assert!(u.is_satisfied());
        assert_eq!(u.satisfied_round(), Some(1));
    }

    #[test]
    fn k_shares_of_true_block_decode_at_round_end() {
        let mut u = SimUser::new(0, 150, 3, 4, Some(1));
        // Three distinct shares of block 1, none its own packet.
        u.receive(&enc(1, 1, 200, 210), 1);
        u.receive(&parity(1, 0), 1);
        u.receive(&parity(1, 1), 1);
        assert!(!u.is_satisfied(), "decode happens at the boundary");
        assert_eq!(u.end_of_round(1), None);
        assert!(u.is_satisfied());
    }

    #[test]
    fn shares_of_other_blocks_do_not_satisfy() {
        let mut u = SimUser::new(0, 150, 3, 4, Some(1));
        u.receive(&parity(0, 0), 1);
        u.receive(&parity(0, 1), 1);
        u.receive(&parity(0, 2), 1);
        let nack = u.end_of_round(1).expect("still unsatisfied");
        assert!(!nack.requests.is_empty());
    }

    #[test]
    fn nack_deficit_matches_missing_shares() {
        let mut u = SimUser::new(0, 150, 3, 4, Some(1));
        // Pin the block exactly: a packet below (block 1 seq 0, range
        // below m) and one above (block 1 seq 2, range above m).
        u.receive(&enc(1, 0, 100, 140), 1);
        u.receive(&enc(1, 2, 160, 200), 1);
        let nack = u.end_of_round(1).expect("unsatisfied");
        assert_eq!(nack.requests.len(), 1);
        assert_eq!(nack.requests[0].block_id, 1);
        // Holds 2 shares of block 1, needs 1 more.
        assert_eq!(nack.requests[0].count, 1);
    }

    #[test]
    fn user_with_no_needs_is_vacuously_satisfied() {
        let u = SimUser::new(0, 150, 3, 4, None);
        assert!(u.is_satisfied());
        assert_eq!(u.satisfied_round(), None);
    }

    #[test]
    fn usr_packet_satisfies() {
        let mut u = SimUser::new(0, 150, 3, 4, Some(0));
        u.receive(
            &Packet::Usr(UsrPacket {
                msg_id: 0,
                new_user_id: 150,
                sealed: vec![],
            }),
            3,
        );
        assert_eq!(u.satisfied_round(), Some(3));
    }

    #[test]
    fn duplicate_flag_excluded_from_estimation_but_counts_as_share() {
        let mut u = SimUser::new(0, 150, 3, 4, Some(1));
        let mut dup = match enc(1, 2, 200, 210) {
            Packet::Enc(e) => e,
            _ => unreachable!(),
        };
        dup.duplicate = true;
        u.receive(&Packet::Enc(dup), 1);
        u.receive(&parity(1, 0), 1);
        u.receive(&parity(1, 1), 1);
        // Three distinct shares (dup counts) -> decodes.
        assert_eq!(u.end_of_round(1), None);
        assert!(u.is_satisfied());
    }
}
