//! High-throughput transport simulation.
//!
//! Reproducing the paper's figures means simulating thousands of rekey
//! messages against 4096+ users. The server side here is the *real*
//! protocol stack — real marking algorithm, real UKA packets, real
//! Reed–Solomon parities, real `AdjustRho` — but each simulated user
//! tracks which FEC *shares* it received rather than their bytes: by the
//! MDS property (proven by the `rse` crate's tests), a block decodes if
//! and only if at least `k` distinct shares arrived, so delivery dynamics
//! are byte-exact while memory stays O(counts). The byte-faithful path —
//! parse, decode, unseal — is exercised end-to-end by [`crate::driver`]
//! and the integration tests.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use keytree::NodeId;
use netsim::Network;
use rekeymsg::estimate::BlockIdEstimator;
use rekeymsg::{NackPacket, NackRequest, Packet};
use rekeyproto::{RoundDecision, ServerSession};

/// One simulated user of the transport.
#[derive(Debug)]
pub struct SimUser {
    /// Index of this user's receiver link in the [`Network`].
    pub net_index: usize,
    /// The user's current u-node ID.
    pub node_id: NodeId,
    k: usize,
    d: u32,
    estimator: Option<BlockIdEstimator>,
    /// Distinct share indices received, per block.
    shares: BTreeMap<u8, BTreeSet<usize>>,
    max_block_seen: Option<u8>,
    /// True block of the user's specific ENC packet (driver knowledge used
    /// only to shortcut the FEC decode, which is deterministic in the
    /// share set).
    true_block: Option<u8>,
    satisfied_round: Option<usize>,
}

impl SimUser {
    /// Creates a simulated user. `true_block` is the FEC block holding its
    /// specific packet (`None` for a user that needs nothing).
    pub fn new(
        net_index: usize,
        node_id: NodeId,
        k: usize,
        d: u32,
        true_block: Option<u8>,
    ) -> Self {
        SimUser {
            net_index,
            node_id,
            k,
            d,
            estimator: None,
            shares: BTreeMap::new(),
            max_block_seen: None,
            true_block,
            satisfied_round: None,
        }
    }

    /// True once the user has (or can decode) its encryptions.
    pub fn is_satisfied(&self) -> bool {
        self.satisfied_round.is_some() || self.true_block.is_none()
    }

    /// The round in which the user succeeded.
    pub fn satisfied_round(&self) -> Option<usize> {
        self.satisfied_round
    }

    fn receive(&mut self, pkt: &Packet, round: usize) {
        if self.is_satisfied() {
            return;
        }
        match pkt {
            Packet::Enc(enc) => {
                self.max_block_seen = Some(self.max_block_seen.unwrap_or(0).max(enc.block_id));
                if enc.serves(self.node_id as u16) {
                    self.satisfied_round = Some(round);
                    self.shares.clear();
                    return;
                }
                self.estimator
                    .get_or_insert_with(|| {
                        BlockIdEstimator::new(self.node_id as u16, self.k, self.d)
                    })
                    .observe(enc);
                self.shares
                    .entry(enc.block_id)
                    .or_default()
                    .insert(enc.seq as usize);
            }
            Packet::Parity(par) => {
                self.max_block_seen = Some(self.max_block_seen.unwrap_or(0).max(par.block_id));
                self.shares
                    .entry(par.block_id)
                    .or_default()
                    .insert(self.k + par.seq as usize);
            }
            Packet::Usr(_) => {
                self.satisfied_round = Some(round);
                self.shares.clear();
            }
            Packet::Nack(_) => {}
        }
    }

    /// Round boundary: attempts FEC recovery, then returns a NACK when
    /// still unsatisfied. Mirrors `rekeyproto::UserSession::end_of_round`.
    fn end_of_round(&mut self, round: usize) -> Option<NackPacket> {
        if self.is_satisfied() {
            return None;
        }
        // Decode: the true block reconstructs iff k distinct shares
        // arrived (MDS); the estimator range always contains the true
        // block, so the real user would attempt exactly this decode.
        if let Some(tb) = self.true_block {
            if self.shares.get(&tb).map(|s| s.len()).unwrap_or(0) >= self.k {
                self.satisfied_round = Some(round);
                self.shares.clear();
                return None;
            }
        }
        let (low, high) = match (
            self.estimator.as_ref().and_then(|e| e.range()),
            self.max_block_seen,
        ) {
            (Some((lo, hi)), _) => (lo, hi),
            (None, Some(maxb)) => (
                self.estimator
                    .as_ref()
                    .map(|e| e.low())
                    .unwrap_or(0)
                    .min(maxb as u32),
                maxb as u32,
            ),
            (None, None) => (0, 0),
        };
        let mut requests = Vec::new();
        for b in low..=high.min(255) {
            let have = self.shares.get(&(b as u8)).map(|s| s.len()).unwrap_or(0);
            let need = self.k.saturating_sub(have);
            if need > 0 {
                requests.push(NackRequest {
                    count: need.min(255) as u8,
                    block_id: b as u8,
                });
            }
        }
        if requests.is_empty() {
            requests.push(NackRequest {
                count: self.k.min(255) as u8,
                block_id: low as u8,
            });
        }
        Some(NackPacket {
            msg_id: 0,
            requests,
        })
    }
}

/// Transport-simulation knobs.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Deadline in rounds for the soft real-time requirement.
    pub deadline_rounds: usize,
    /// Safety valve on total rounds (multicast + unicast waves).
    pub max_total_rounds: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            deadline_rounds: 2,
            max_total_rounds: 64,
        }
    }
}

/// Outcome of simulating one message's delivery.
#[derive(Debug, Clone, Default)]
pub struct TransportStats {
    /// Rounds (multicast rounds plus unicast waves) used.
    pub total_rounds: usize,
    /// Per-user rounds histogram (`[r]` = users succeeding in round `r+1`).
    pub rounds_histogram: Vec<usize>,
    /// Users that missed the deadline.
    pub missed_deadline: usize,
    /// Users never served (only possible if the round cap fired).
    pub unserved: usize,
}

/// Runs one rekey message's delivery over the network.
///
/// `session` must be freshly created (not yet started). The clock advances
/// by one send interval per packet; round boundaries add one round-trip
/// time.
pub fn run_message_transport(
    net: &mut Network,
    clock: &mut f64,
    session: &mut ServerSession,
    users: &mut [SimUser],
    cfg: &SimConfig,
) -> TransportStats {
    let send_interval = net.config().send_interval_ms;
    let rtt = 2.0 * net.config().one_way_delay_ms;
    let by_node: HashMap<NodeId, usize> = users
        .iter()
        .enumerate()
        .map(|(i, u)| (u.node_id, i))
        .collect();
    let slot_of_net: HashMap<usize, usize> = users
        .iter()
        .enumerate()
        .map(|(i, u)| (u.net_index, i))
        .collect();

    enum Action {
        Multicast(Vec<Packet>),
        Unicast(rekeyproto::UnicastSend),
    }

    let mut round = 1usize;
    let mut action = Action::Multicast(session.start());

    loop {
        match &action {
            Action::Multicast(schedule) => {
                for pkt in schedule {
                    *clock += send_interval;
                    let listeners: Vec<usize> = users
                        .iter()
                        .filter(|u| !u.is_satisfied())
                        .map(|u| u.net_index)
                        .collect();
                    if listeners.is_empty() {
                        break;
                    }
                    let delivered = net.multicast_to(*clock, &listeners);
                    for (net_idx, ok) in delivered {
                        if ok {
                            let slot = slot_of_net[&net_idx];
                            users[slot].receive(pkt, round);
                        }
                    }
                }
            }
            Action::Unicast(wave) => {
                // `duplicates` copies per target; any one suffices.
                for node in &wave.targets {
                    let Some(&slot) = by_node.get(node) else {
                        continue;
                    };
                    let mut got = false;
                    for _ in 0..wave.duplicates {
                        *clock += send_interval;
                        got |= net.unicast(*clock, users[slot].net_index);
                    }
                    if got {
                        users[slot].receive(
                            &Packet::Usr(rekeymsg::UsrPacket {
                                msg_id: 0,
                                new_user_id: users[slot].node_id as u16,
                                sealed: vec![],
                            }),
                            round,
                        );
                    }
                }
            }
        }
        *clock += rtt;

        // Round boundary: every unsatisfied user NACKs (reverse path is
        // modelled lossless; see DESIGN.md).
        for u in users.iter_mut() {
            if let Some(nack) = u.end_of_round(round) {
                session.accept_nack(u.node_id, &nack);
            }
        }

        match session.end_of_round() {
            RoundDecision::Done => break,
            RoundDecision::Multicast(pkts) => {
                round += 1;
                action = Action::Multicast(pkts);
            }
            RoundDecision::Unicast(wave) => {
                round += 1;
                action = Action::Unicast(wave);
            }
        }
        if round > cfg.max_total_rounds {
            break;
        }
    }

    // Collate.
    let mut hist = Vec::new();
    let mut unserved = 0usize;
    let mut missed = 0usize;
    for u in users.iter() {
        if u.true_block.is_none() {
            continue; // vacuously served, not part of delivery stats
        }
        match u.satisfied_round() {
            Some(r) => {
                if hist.len() < r {
                    hist.resize(r, 0);
                }
                hist[r - 1] += 1;
                if r > cfg.deadline_rounds {
                    missed += 1;
                }
            }
            None => {
                unserved += 1;
                missed += 1;
            }
        }
    }
    TransportStats {
        total_rounds: round,
        rounds_histogram: hist,
        missed_deadline: missed,
        unserved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rekeymsg::{EncPacket, ParityPacket, UsrPacket};
    use wirecrypto::{SealedKey, SymKey};

    fn enc(block: u8, seq: u8, frm: u16, to: u16) -> Packet {
        let kek = SymKey::from_bytes([seq; 16]);
        Packet::Enc(EncPacket {
            msg_id: 0,
            block_id: block,
            seq,
            duplicate: false,
            max_kid: 90,
            frm_id: frm,
            to_id: to,
            entries: vec![(frm, SealedKey::seal(&kek, &SymKey::from_bytes([1; 16]), 0))],
        })
    }

    fn parity(block: u8, seq: u8) -> Packet {
        Packet::Parity(ParityPacket {
            msg_id: 0,
            block_id: block,
            seq,
            body: vec![0; 8],
        })
    }

    #[test]
    fn own_packet_satisfies_immediately() {
        let mut u = SimUser::new(0, 150, 3, 4, Some(1));
        assert!(!u.is_satisfied());
        u.receive(&enc(1, 0, 140, 160), 1);
        assert!(u.is_satisfied());
        assert_eq!(u.satisfied_round(), Some(1));
    }

    #[test]
    fn k_shares_of_true_block_decode_at_round_end() {
        let mut u = SimUser::new(0, 150, 3, 4, Some(1));
        // Three distinct shares of block 1, none its own packet.
        u.receive(&enc(1, 1, 200, 210), 1);
        u.receive(&parity(1, 0), 1);
        u.receive(&parity(1, 1), 1);
        assert!(!u.is_satisfied(), "decode happens at the boundary");
        assert_eq!(u.end_of_round(1), None);
        assert!(u.is_satisfied());
    }

    #[test]
    fn shares_of_other_blocks_do_not_satisfy() {
        let mut u = SimUser::new(0, 150, 3, 4, Some(1));
        u.receive(&parity(0, 0), 1);
        u.receive(&parity(0, 1), 1);
        u.receive(&parity(0, 2), 1);
        let nack = u.end_of_round(1).expect("still unsatisfied");
        assert!(!nack.requests.is_empty());
    }

    #[test]
    fn nack_deficit_matches_missing_shares() {
        let mut u = SimUser::new(0, 150, 3, 4, Some(1));
        // Pin the block exactly: a packet below (block 1 seq 0, range
        // below m) and one above (block 1 seq 2, range above m).
        u.receive(&enc(1, 0, 100, 140), 1);
        u.receive(&enc(1, 2, 160, 200), 1);
        let nack = u.end_of_round(1).expect("unsatisfied");
        assert_eq!(nack.requests.len(), 1);
        assert_eq!(nack.requests[0].block_id, 1);
        // Holds 2 shares of block 1, needs 1 more.
        assert_eq!(nack.requests[0].count, 1);
    }

    #[test]
    fn user_with_no_needs_is_vacuously_satisfied() {
        let u = SimUser::new(0, 150, 3, 4, None);
        assert!(u.is_satisfied());
        assert_eq!(u.satisfied_round(), None);
    }

    #[test]
    fn usr_packet_satisfies() {
        let mut u = SimUser::new(0, 150, 3, 4, Some(0));
        u.receive(
            &Packet::Usr(UsrPacket {
                msg_id: 0,
                new_user_id: 150,
                sealed: vec![],
            }),
            3,
        );
        assert_eq!(u.satisfied_round(), Some(3));
    }

    #[test]
    fn duplicate_flag_excluded_from_estimation_but_counts_as_share() {
        let mut u = SimUser::new(0, 150, 3, 4, Some(1));
        let mut dup = match enc(1, 2, 200, 210) {
            Packet::Enc(e) => e,
            _ => unreachable!(),
        };
        dup.duplicate = true;
        u.receive(&Packet::Enc(dup), 1);
        u.receive(&parity(1, 0), 1);
        u.receive(&parity(1, 1), 1);
        // Three distinct shares (dup counts) -> decodes.
        assert_eq!(u.end_of_round(1), None);
        assert!(u.is_satisfied());
    }
}
