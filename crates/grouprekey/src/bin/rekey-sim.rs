//! `rekey-sim` — command-line driver for the transport simulator.
//!
//! ```sh
//! cargo run --release -p grouprekey --bin rekey-sim -- \
//!     --n 4096 --alpha 0.2 --k 10 --messages 25 --num-nack 20
//! ```
//!
//! Simulates a sequence of rekey messages at the paper's defaults (any of
//! which can be overridden) and prints a per-message table plus summary
//! statistics: the tool an operator would use to size `k`, `rho` and
//! `numNACK` for their own loss environment.

use grouprekey::experiment::{ExperimentParams, ExperimentRun};
use netsim::NetworkConfig;
use rekeyproto::ServerConfig;

#[derive(Debug)]
struct Args {
    n: u32,
    alpha: f64,
    p_high: f64,
    p_low: f64,
    k: usize,
    rho: f64,
    adaptive: bool,
    num_nack: usize,
    messages: usize,
    leaves: Option<usize>,
    joins: usize,
    seed: u64,
    multicast_only: bool,
    csv: bool,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            n: 4096,
            alpha: 0.2,
            p_high: 0.20,
            p_low: 0.02,
            k: 10,
            rho: 1.0,
            adaptive: true,
            num_nack: 20,
            messages: 10,
            leaves: None,
            joins: 0,
            seed: 42,
            multicast_only: false,
            csv: false,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: rekey-sim [--n N] [--alpha F] [--p-high F] [--p-low F] [--k K]\n\
         \x20                [--rho F] [--fixed-rho] [--num-nack T] [--messages M]\n\
         \x20                [--leaves L] [--joins J] [--seed S] [--multicast-only] [--csv]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match flag.as_str() {
            "--n" => args.n = val("--n").parse().unwrap_or_else(|_| usage()),
            "--alpha" => args.alpha = val("--alpha").parse().unwrap_or_else(|_| usage()),
            "--p-high" => args.p_high = val("--p-high").parse().unwrap_or_else(|_| usage()),
            "--p-low" => args.p_low = val("--p-low").parse().unwrap_or_else(|_| usage()),
            "--k" => args.k = val("--k").parse().unwrap_or_else(|_| usage()),
            "--rho" => args.rho = val("--rho").parse().unwrap_or_else(|_| usage()),
            "--fixed-rho" => args.adaptive = false,
            "--num-nack" => args.num_nack = val("--num-nack").parse().unwrap_or_else(|_| usage()),
            "--messages" => args.messages = val("--messages").parse().unwrap_or_else(|_| usage()),
            "--leaves" => args.leaves = Some(val("--leaves").parse().unwrap_or_else(|_| usage())),
            "--joins" => args.joins = val("--joins").parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = val("--seed").parse().unwrap_or_else(|_| usage()),
            "--multicast-only" => args.multicast_only = true,
            "--csv" => args.csv = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    args
}

fn main() {
    let a = parse_args();
    let leaves = a.leaves.unwrap_or((a.n / 4) as usize);

    let mut params = ExperimentParams {
        n: a.n,
        degree: 4,
        joins: a.joins,
        leaves,
        protocol: ServerConfig {
            block_size: a.k,
            initial_rho: a.rho,
            initial_num_nack: a.num_nack,
            adapt_rho: a.adaptive,
            ..ServerConfig::default()
        },
        net: NetworkConfig {
            n_users: a.n as usize + a.joins,
            alpha: a.alpha,
            p_high: a.p_high,
            p_low: a.p_low,
            ..NetworkConfig::default()
        },
        messages: a.messages,
        seed: a.seed,
        ..ExperimentParams::default()
    };
    if a.multicast_only {
        params = params.multicast_only();
    }

    if a.csv {
        println!("msg,enc,rho,nacks_r1,bw_overhead,rounds_all,avg_rounds_user,usr_pkts,missed");
        let mut run = ExperimentRun::new(params);
        for _ in 0..a.messages {
            let r = run.step();
            println!(
                "{},{},{:.3},{},{:.4},{},{:.5},{},{}",
                r.msg_seq,
                r.enc_packets,
                r.rho,
                r.nacks_round1,
                r.bandwidth_overhead,
                r.rounds_all_users(),
                r.avg_user_rounds(),
                r.usr_packets,
                r.missed_deadline,
            );
        }
        return;
    }

    println!(
        "rekey-sim: N={} alpha={} p=({},{}) k={} rho={}{} numNACK={} J={} L={} seed={}",
        a.n,
        a.alpha,
        a.p_high,
        a.p_low,
        a.k,
        a.rho,
        if a.adaptive {
            " (adaptive)"
        } else {
            " (fixed)"
        },
        a.num_nack,
        a.joins,
        leaves,
        a.seed
    );
    println!(
        "{:>4} {:>5} {:>7} {:>9} {:>8} {:>7} {:>9} {:>8}",
        "msg", "ENC", "rho", "NACKs r1", "bw ovh", "rounds", "avg r/usr", "USR pkts"
    );

    let mut run = ExperimentRun::new(params);
    let mut sum_bw = 0.0;
    let mut sum_nacks = 0usize;
    let mut sum_rounds = 0.0;
    for _ in 0..a.messages {
        let r = run.step();
        println!(
            "{:>4} {:>5} {:>7.2} {:>9} {:>8.3} {:>7} {:>9.4} {:>8}",
            r.msg_seq,
            r.enc_packets,
            r.rho,
            r.nacks_round1,
            r.bandwidth_overhead,
            r.rounds_all_users(),
            r.avg_user_rounds(),
            r.usr_packets,
        );
        sum_bw += r.bandwidth_overhead;
        sum_nacks += r.nacks_round1;
        sum_rounds += r.avg_user_rounds();
    }
    let m = a.messages as f64;
    println!(
        "---- mean: bw overhead {:.3}, NACKs r1 {:.1}, rounds/user {:.4}",
        sum_bw / m,
        sum_nacks as f64 / m,
        sum_rounds / m
    );
}
