//! The key server: tree ownership, batch processing, message production.

use std::sync::Arc;

use keytree::{Batch, CompactionPolicy, KeyTree, MarkOutcome, MarkScratch, MemberId};
use rekeymsg::{build_usr_packet, Layout, StreamStats, StreamTuning, UkaAssignment, UsrPacket};
use rekeyproto::{ServerConfig, ServerController, ServerSession};
use wirecrypto::{KeyGen, SymKey};

/// Whether and how [`KeyServer::rekey`] streams the message build.
///
/// Enabled, the mint → seal → assemble → encode stages run as two chained
/// bounded-channel pipelines (see `rekeymsg::stream`) instead of strict
/// barriers. The artifacts are bit-identical either way — at any worker
/// count, chunk size, capacity, and schedule-perturbation seed — so this
/// is purely a latency/throughput knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelinePolicy {
    /// Stream the build (true) or run the legacy barrier path (false).
    pub enabled: bool,
    /// Encryption edges per seal chunk (clamped to ≥ 1).
    pub chunk_edges: usize,
    /// Bounded-channel capacity in chunks (clamped to ≥ 1).
    pub channel_capacity: usize,
}

impl PipelinePolicy {
    /// The legacy barrier path. Default: both paths produce identical
    /// bytes, and the barrier is the reference the identity gates compare
    /// against.
    pub const DISABLED: PipelinePolicy = PipelinePolicy {
        enabled: false,
        chunk_edges: rekeymsg::SEAL_CHUNK,
        channel_capacity: 4,
    };

    /// Streaming on with the default tuning.
    pub const DEFAULT_ON: PipelinePolicy = PipelinePolicy {
        enabled: true,
        ..PipelinePolicy::DISABLED
    };

    fn tuning(self) -> StreamTuning {
        StreamTuning {
            chunk_edges: self.chunk_edges,
            channel_capacity: self.channel_capacity,
        }
    }
}

impl Default for PipelinePolicy {
    fn default() -> Self {
        PipelinePolicy::DISABLED
    }
}

/// Server construction options.
#[derive(Debug, Clone, Copy)]
pub struct ServerOptions {
    /// Key-tree degree `d`.
    pub degree: u32,
    /// Transport protocol configuration.
    pub protocol: ServerConfig,
    /// Seed of the key generator.
    pub keygen_seed: u64,
    /// Amortized tail-compaction policy applied after each batch. Off by
    /// default: the paper's Poisson workloads never skew the tree, and a
    /// disabled policy is byte-identical to the pre-compaction pipeline.
    pub compaction: CompactionPolicy,
    /// Streaming message-build policy. Off by default; enabling it never
    /// changes output bytes.
    pub pipeline: PipelinePolicy,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            degree: 4,
            protocol: ServerConfig::default(),
            keygen_seed: 0x6B65_7973, // "keys"
            compaction: CompactionPolicy::DISABLED,
            pipeline: PipelinePolicy::DISABLED,
        }
    }
}

/// Everything produced for one rekey message.
#[derive(Debug)]
pub struct RekeyArtifacts {
    /// Full message sequence number (wire ID is the low 6 bits).
    pub msg_seq: u64,
    /// The marking-algorithm output, shared with the server's own record
    /// (for USR-packet derivation) instead of cloned per message.
    pub outcome: Arc<MarkOutcome>,
    /// The UKA assignment (sealed ENC packets + bookkeeping).
    pub assignment: UkaAssignment,
    /// The transport session, ready to [`ServerSession::start`].
    pub session: ServerSession,
}

/// The group key server: registration back end, key management, and rekey
/// transport front end.
#[derive(Debug)]
pub struct KeyServer {
    tree: KeyTree,
    keygen: KeyGen,
    controller: ServerController,
    layout: Layout,
    msg_seq: u64,
    last_outcome: Option<Arc<MarkOutcome>>,
    scratch: MarkScratch,
    compaction: CompactionPolicy,
    pipeline: PipelinePolicy,
    last_stream_stats: Option<StreamStats>,
}

impl KeyServer {
    /// An empty group.
    pub fn new(options: ServerOptions) -> Self {
        KeyServer {
            tree: KeyTree::new(options.degree),
            keygen: KeyGen::from_seed(options.keygen_seed),
            layout: options.protocol.layout,
            controller: ServerController::new(options.protocol),
            msg_seq: 0,
            last_outcome: None,
            scratch: MarkScratch::new(),
            compaction: options.compaction,
            pipeline: options.pipeline,
            last_stream_stats: None,
        }
    }

    /// A pre-populated full balanced group with members `0..n` — the
    /// paper's experimental starting point.
    pub fn bootstrap(n: u32, options: ServerOptions) -> Self {
        let mut server = KeyServer::new(options);
        server.tree = KeyTree::balanced(n, options.degree, &mut server.keygen);
        server
    }

    /// The key tree (read-only).
    pub fn tree(&self) -> &KeyTree {
        &self.tree
    }

    /// The transport controller (adaptive `rho`/`numNACK` state).
    pub fn controller(&self) -> &ServerController {
        &self.controller
    }

    /// Mutable access to the controller for feedback absorption.
    pub fn controller_mut(&mut self) -> &mut ServerController {
        &mut self.controller
    }

    /// Current full message sequence number (next message gets this + 1).
    pub fn msg_seq(&self) -> u64 {
        self.msg_seq
    }

    /// Mints an individual key for a joining member (the registration
    /// component's job; see `wirecrypto::registration` for the handshake
    /// that would deliver it).
    pub fn mint_individual_key(&mut self) -> SymKey {
        self.keygen.next_key()
    }

    /// Typical USR packet length for the current tree (the `3 + 20h`
    /// bound), used by the early-unicast byte rule.
    pub fn usr_len_hint(&self) -> usize {
        self.layout.usr_packet_len(self.tree.height() as usize + 1)
    }

    /// Processes one batch: updates the tree, runs UKA, and opens a
    /// transport session at the controller's current proactivity factor.
    ///
    /// With [`PipelinePolicy::enabled`] the message build streams —
    /// minting, sealing, packet assembly and FEC encoding overlap through
    /// bounded chunk channels — producing artifacts bit-identical to the
    /// barrier path; [`KeyServer::last_stream_stats`] then reports the
    /// per-stage overlap accounting.
    pub fn rekey(&mut self, batch: Batch) -> RekeyArtifacts {
        let _span = obs::span("rekey.batch");
        obs::counter_add("rekey.batches", 1);
        self.msg_seq += 1;
        let msg_seq = self.msg_seq;
        #[cfg(feature = "sanitize")]
        let tree_before = self.tree.clone();
        #[cfg(feature = "sanitize")]
        let batch_copy = batch.clone();
        if self.pipeline.enabled {
            let (outcome_raw, pending) = self.tree.process_batch_deferred_in(
                batch,
                &mut self.keygen,
                &mut self.scratch,
                &self.compaction,
            );
            let (derived, built) = rekeymsg::stream::build_streamed(
                &self.tree,
                &outcome_raw,
                &pending,
                msg_seq,
                &self.layout,
                self.controller.proto_encoder(),
                self.pipeline.tuning(),
            );
            // Install before anything can observe the tree: from here on
            // the server state is byte-identical to the barrier path's.
            self.tree
                .install_minted(&outcome_raw.updated_knodes, &derived);
            // Flight-recorder marker: the moment the new key set became
            // live — the interval boundary visible in a Perfetto trace.
            obs::trace::instant("rekey.install");
            let (assignment, blocks, stats) = built.unwrap_or_else(|e| {
                unreachable!("marking outcome always seals against its own tree: {e}")
            });
            self.last_stream_stats = Some(stats);
            let session = self
                .controller
                .begin_message_with_blocks(blocks, self.usr_len_hint());
            self.finish_rekey(
                msg_seq,
                outcome_raw,
                assignment,
                session,
                #[cfg(feature = "sanitize")]
                tree_before,
                #[cfg(feature = "sanitize")]
                batch_copy,
            )
        } else {
            let outcome = self.tree.process_batch_compacting_in(
                batch,
                &mut self.keygen,
                &mut self.scratch,
                &self.compaction,
            );
            // Same marker as the streamed path: keys are live once the
            // inline (barrier) marking pass returns.
            obs::trace::instant("rekey.install");
            let assignment = UkaAssignment::build(&self.tree, &outcome, msg_seq, &self.layout)
                .unwrap_or_else(|e| {
                    unreachable!("marking outcome always seals against its own tree: {e}")
                });
            let session = self
                .controller
                .begin_message(assignment.packets.clone(), self.usr_len_hint());
            self.finish_rekey(
                msg_seq,
                outcome,
                assignment,
                session,
                #[cfg(feature = "sanitize")]
                tree_before,
                #[cfg(feature = "sanitize")]
                batch_copy,
            )
        }
    }

    /// The shared tail of both [`KeyServer::rekey`] paths: sanitize
    /// audits (the streamed path runs the exact same checks against its
    /// already-installed tree), outcome bookkeeping, artifact packing.
    fn finish_rekey(
        &mut self,
        msg_seq: u64,
        outcome: MarkOutcome,
        assignment: UkaAssignment,
        session: ServerSession,
        #[cfg(feature = "sanitize")] tree_before: KeyTree,
        #[cfg(feature = "sanitize")] batch_copy: Batch,
    ) -> RekeyArtifacts {
        #[cfg(feature = "sanitize")]
        {
            crate::sanitize::check_batch(&tree_before, &self.tree, &batch_copy, &outcome);
            crate::sanitize::check_message(
                &self.tree,
                &outcome,
                &assignment,
                session.blocks(),
                msg_seq,
                &self.layout,
            );
        }
        let outcome = Arc::new(outcome);
        self.last_outcome = Some(Arc::clone(&outcome));
        RekeyArtifacts {
            msg_seq,
            outcome,
            assignment,
            session,
        }
    }

    /// Per-stage busy/overlap accounting of the last streamed rekey, or
    /// `None` before the first streamed batch (or with the pipeline off).
    pub fn last_stream_stats(&self) -> Option<StreamStats> {
        self.last_stream_stats
    }

    /// Builds the USR packet for `member` against the latest rekey
    /// message.
    pub fn usr_packet(&self, member: MemberId) -> Option<UsrPacket> {
        let outcome = self.last_outcome.as_ref()?;
        build_usr_packet(&self.tree, outcome, member, self.msg_seq)
    }

    /// Builds USR packets for many members at once, fanning the
    /// independent per-member key-path derivations out across workers.
    ///
    /// Each member's packet is derived from read-only tree state, so the
    /// output is exactly `members.iter().map(|&m| self.usr_packet(m))` —
    /// order preserved, one entry per requested member — for any worker
    /// count. A NACK storm after a large batch is the expected caller:
    /// thousands of members ask for their USR packet against the same
    /// message, and the derivations share nothing.
    pub fn usr_packets_bulk(&self, members: &[MemberId]) -> Vec<Option<UsrPacket>> {
        let Some(outcome) = self.last_outcome.as_ref() else {
            return vec![None; members.len()];
        };
        taskpool::map(members, |_, &member| {
            build_usr_packet(&self.tree, outcome, member, self.msg_seq)
        })
    }

    /// Serialises the server's durable state — the key tree and message
    /// sequence — for crash recovery. Transport state (`rho`, `numNACK`)
    /// is soft and re-adapts within a few messages, so it is not stored.
    ///
    /// Snapshots contain key material; encrypt them at rest.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut out = self.msg_seq.to_le_bytes().to_vec();
        out.extend_from_slice(&self.tree.snapshot());
        out
    }

    /// Restores a server from [`KeyServer::snapshot`] bytes. The keygen is
    /// reseeded (never reuse a key stream after a restart) and the
    /// controller restarts from the configured initial state.
    pub fn restore(
        bytes: &[u8],
        options: ServerOptions,
        fresh_keygen_seed: u64,
    ) -> Result<Self, keytree::SnapshotError> {
        let Some(head) = bytes.first_chunk::<8>() else {
            return Err(keytree::SnapshotError::Truncated);
        };
        let msg_seq = u64::from_le_bytes(*head);
        let tree = KeyTree::restore(&bytes[8..])?;
        Ok(KeyServer {
            tree,
            keygen: KeyGen::from_seed(fresh_keygen_seed),
            layout: options.protocol.layout,
            controller: ServerController::new(options.protocol),
            msg_seq,
            last_outcome: None,
            scratch: MarkScratch::new(),
            compaction: options.compaction,
            pipeline: options.pipeline,
            last_stream_stats: None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_builds_full_group() {
        let server = KeyServer::bootstrap(256, ServerOptions::default());
        assert_eq!(server.tree().user_count(), 256);
        assert!(server.tree().group_key().is_some());
    }

    #[test]
    fn rekey_produces_consistent_artifacts() {
        let mut server = KeyServer::bootstrap(64, ServerOptions::default());
        let a = server.rekey(Batch::new(vec![], vec![1, 2, 3]));
        assert_eq!(a.msg_seq, 1);
        assert_eq!(
            a.assignment.stats.distinct_encryptions,
            a.outcome.encryptions.len()
        );
        assert_eq!(server.tree().user_count(), 61);
        // Session sized to the assignment.
        assert_eq!(a.session.real_enc_count(), a.assignment.stats.packets);
    }

    #[test]
    fn msg_seq_monotone() {
        let mut server = KeyServer::bootstrap(16, ServerOptions::default());
        let key = server.mint_individual_key();
        let a1 = server.rekey(Batch::new(vec![], vec![0]));
        let a2 = server.rekey(Batch::new(vec![(100, key)], vec![]));
        assert_eq!(a1.msg_seq, 1);
        assert_eq!(a2.msg_seq, 2);
    }

    #[test]
    fn usr_packet_available_after_rekey() {
        let mut server = KeyServer::bootstrap(64, ServerOptions::default());
        assert!(server.usr_packet(5).is_none(), "no message yet");
        server.rekey(Batch::new(vec![], vec![1]));
        let usr = server.usr_packet(5).expect("member 5 remains");
        assert!(!usr.sealed.is_empty());
        assert!(server.usr_packet(1).is_none(), "departed member");
    }

    #[test]
    fn usr_packets_bulk_matches_per_member_derivation() {
        let mut server = KeyServer::bootstrap(64, ServerOptions::default());
        let members: Vec<MemberId> = (0..64).collect();
        assert!(
            server
                .usr_packets_bulk(&members)
                .iter()
                .all(Option::is_none),
            "no message yet"
        );
        server.rekey(Batch::new(vec![], vec![1, 2, 3]));
        let bulk = taskpool::with_workers(4, || server.usr_packets_bulk(&members));
        let one_by_one: Vec<_> = members.iter().map(|&m| server.usr_packet(m)).collect();
        assert_eq!(bulk, one_by_one);
    }

    #[test]
    fn snapshot_restore_preserves_group_state() {
        let mut server = KeyServer::bootstrap(64, ServerOptions::default());
        server.rekey(Batch::new(vec![], vec![5, 6, 7]));
        let snap = server.snapshot();

        let mut restored = KeyServer::restore(&snap, ServerOptions::default(), 0xF4E5).unwrap();
        assert_eq!(restored.msg_seq(), server.msg_seq());
        assert_eq!(restored.tree().group_key(), server.tree().group_key());
        assert_eq!(restored.tree().user_count(), 61);
        // The restored server keeps rekeying.
        let a = restored.rekey(Batch::new(vec![], vec![10]));
        assert_eq!(a.msg_seq, server.msg_seq() + 1);
        assert!(a.outcome.group_key_changed());
    }

    #[test]
    fn restore_rejects_garbage() {
        assert!(KeyServer::restore(&[1, 2, 3], ServerOptions::default(), 1).is_err());
        let mut bad = vec![0u8; 8];
        bad.extend_from_slice(b"NOPE");
        assert!(KeyServer::restore(&bad, ServerOptions::default(), 1).is_err());
    }

    #[test]
    fn usr_len_hint_matches_bound() {
        let server = KeyServer::bootstrap(256, ServerOptions::default());
        // Height 4 tree: path has 5 nodes, so bound is 3 + 20 * 5.
        assert_eq!(server.usr_len_hint(), 3 + 20 * 5);
    }
}
