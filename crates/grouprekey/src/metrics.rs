//! Per-message reporting used by experiments and examples.

/// Measurements of one rekey message's delivery.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MessageReport {
    /// Message sequence number.
    pub msg_seq: u64,
    /// Real ENC packets (`h`).
    pub enc_packets: usize,
    /// FEC blocks.
    pub blocks: usize,
    /// Proactivity factor used for this message.
    pub rho: f64,
    /// `numNACK` target in force for this message.
    pub num_nack: usize,
    /// NACKs the server received at the end of round one.
    pub nacks_round1: usize,
    /// Multicast bandwidth overhead `h'/h`.
    pub bandwidth_overhead: f64,
    /// Multicast rounds used by the server.
    pub server_rounds: usize,
    /// Per-user rounds-to-success histogram: `rounds_histogram[r]` users
    /// succeeded in round `r + 1`.
    pub rounds_histogram: Vec<usize>,
    /// Users that had not recovered when the message completed (should be
    /// zero — reliability is eventual).
    pub unserved_users: usize,
    /// Users that missed the deadline (strictly more rounds than allowed).
    pub missed_deadline: usize,
    /// USR packets unicast (with duplicates).
    pub usr_packets: usize,
    /// Unicast bytes (USR + UDP headers).
    pub usr_bytes: usize,
    /// Duplication overhead of the UKA assignment.
    pub duplication_overhead: f64,
    /// Total FEC encoding cost in the paper's abstract units
    /// (multiply-accumulate passes; `k` per parity packet).
    pub encoding_units: u64,
}

impl MessageReport {
    /// Average rounds a user needed to receive its encryptions.
    pub fn avg_user_rounds(&self) -> f64 {
        let total: usize = self.rounds_histogram.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let weighted: usize = self
            .rounds_histogram
            .iter()
            .enumerate()
            .map(|(r, &n)| (r + 1) * n)
            .sum();
        weighted as f64 / total as f64
    }

    /// Rounds needed until *every* user had its encryptions (the paper's
    /// "number of rounds for all users").
    pub fn rounds_all_users(&self) -> usize {
        self.rounds_histogram
            .iter()
            .rposition(|&n| n > 0)
            .map(|r| r + 1)
            .unwrap_or(0)
    }

    /// Fraction of users that succeeded within `r` rounds.
    pub fn fraction_within(&self, r: usize) -> f64 {
        let total: usize = self.rounds_histogram.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let within: usize = self.rounds_histogram.iter().take(r).sum();
        within as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> MessageReport {
        MessageReport {
            rounds_histogram: vec![90, 8, 2],
            ..MessageReport::default()
        }
    }

    #[test]
    fn averages() {
        let r = report();
        // (90*1 + 8*2 + 2*3) / 100 = 1.12
        assert!((r.avg_user_rounds() - 1.12).abs() < 1e-12);
        assert_eq!(r.rounds_all_users(), 3);
    }

    #[test]
    fn fraction_within_rounds() {
        let r = report();
        assert!((r.fraction_within(1) - 0.90).abs() < 1e-12);
        assert!((r.fraction_within(2) - 0.98).abs() < 1e-12);
        assert!((r.fraction_within(3) - 1.0).abs() < 1e-12);
        assert!((r.fraction_within(9) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram() {
        let r = MessageReport::default();
        assert_eq!(r.avg_user_rounds(), 0.0);
        assert_eq!(r.rounds_all_users(), 0);
        assert_eq!(r.fraction_within(1), 1.0);
    }
}
