//! Per-message reporting used by experiments and examples.
//!
//! [`MessageReport`] carries the quantities the paper's evaluation plots;
//! each field's doc names the paper symbol it reproduces, so the figure
//! code reads as a transcription of the evaluation section. The paper's
//! notation, for reference: `h` is the number of real (systematic) ENC
//! packets in a rekey message, `h'` the number actually multicast once
//! proactive FEC parity is added (so `h'/h` is the multicast bandwidth
//! overhead), `ρ` (rho) the proactivity factor `h'/h − 1` chosen before
//! sending, and `numNACK` the adaptive controller's per-message target
//! for round-one NACKs.

/// Measurements of one rekey message's delivery.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MessageReport {
    /// Message sequence number. No paper symbol; identifies the message
    /// within an experiment trace.
    pub msg_seq: u64,
    /// Real ENC packets — the paper's `h`, the systematic payload of the
    /// rekey message before any parity is added.
    pub enc_packets: usize,
    /// FEC blocks the message was split into — the paper's block count
    /// (each block holds at most `k` ENC packets and is decoded
    /// independently).
    pub blocks: usize,
    /// Proactivity factor used for this message — the paper's `ρ`: parity
    /// packets are provisioned so `h' = (1 + ρ)·h`.
    pub rho: f64,
    /// The adaptive controller's round-one NACK target in force for this
    /// message — the paper's `numNACK`.
    pub num_nack: usize,
    /// NACKs the server actually received at the end of round one — the
    /// observed quantity `numNACK` steers toward its target.
    pub nacks_round1: usize,
    /// Multicast bandwidth overhead — the paper's `h'/h` ratio (1.0 means
    /// no parity or retransmission cost at all).
    pub bandwidth_overhead: f64,
    /// Multicast rounds used by the server — the paper's "number of
    /// rounds" from the server's perspective.
    pub server_rounds: usize,
    /// Per-user rounds-to-success histogram: `rounds_histogram[r]` users
    /// succeeded in round `r + 1`. The paper's per-user "rounds needed to
    /// receive" distribution.
    pub rounds_histogram: Vec<usize>,
    /// Users that had not recovered when the message completed (should be
    /// zero — reliability is eventual).
    pub unserved_users: usize,
    /// Users that missed the deadline (strictly more rounds than allowed).
    pub missed_deadline: usize,
    /// USR packets unicast (with duplicates) — the early-unicast tail of
    /// the paper's hybrid delivery.
    pub usr_packets: usize,
    /// Unicast bytes (USR + UDP headers).
    pub usr_bytes: usize,
    /// Duplication overhead of the UKA assignment — the paper's key
    /// duplication factor (sealed copies per fresh key beyond the first).
    pub duplication_overhead: f64,
    /// Total FEC encoding cost in the paper's abstract units
    /// (multiply-accumulate passes; `k` per parity packet).
    pub encoding_units: u64,
}

impl MessageReport {
    /// Average rounds a user needed to receive its encryptions.
    pub fn avg_user_rounds(&self) -> f64 {
        let total: usize = self.rounds_histogram.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let weighted: usize = self
            .rounds_histogram
            .iter()
            .enumerate()
            .map(|(r, &n)| (r + 1) * n)
            .sum();
        weighted as f64 / total as f64
    }

    /// Rounds needed until *every* user had its encryptions (the paper's
    /// "number of rounds for all users").
    pub fn rounds_all_users(&self) -> usize {
        self.rounds_histogram
            .iter()
            .rposition(|&n| n > 0)
            .map(|r| r + 1)
            .unwrap_or(0)
    }

    /// Fraction of users that succeeded within `r` rounds.
    pub fn fraction_within(&self, r: usize) -> f64 {
        let total: usize = self.rounds_histogram.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let within: usize = self.rounds_histogram.iter().take(r).sum();
        within as f64 / total as f64
    }

    /// Serializes the report as one deterministic JSON object (no
    /// trailing newline), through the same [`obs::json::JsonWriter`] the
    /// obs snapshot uses — identical data always yields identical bytes,
    /// so experiment traces can be diffed and committed like the BENCH
    /// artifacts. Keys are the field names; floats carry three decimals.
    #[must_use]
    pub fn to_json_row(&self) -> String {
        let mut w = obs::json::JsonWriter::new();
        w.begin_object();
        w.field_u64("msg_seq", self.msg_seq);
        w.field_u64("enc_packets", self.enc_packets as u64);
        w.field_u64("blocks", self.blocks as u64);
        w.field_f64("rho", self.rho, 3);
        w.field_u64("num_nack", self.num_nack as u64);
        w.field_u64("nacks_round1", self.nacks_round1 as u64);
        w.field_f64("bandwidth_overhead", self.bandwidth_overhead, 3);
        w.field_u64("server_rounds", self.server_rounds as u64);
        w.key("rounds_histogram");
        w.begin_array();
        for &n in &self.rounds_histogram {
            w.value_u64(n as u64);
        }
        w.end_array();
        w.field_u64("unserved_users", self.unserved_users as u64);
        w.field_u64("missed_deadline", self.missed_deadline as u64);
        w.field_u64("usr_packets", self.usr_packets as u64);
        w.field_u64("usr_bytes", self.usr_bytes as u64);
        w.field_f64("duplication_overhead", self.duplication_overhead, 3);
        w.field_u64("encoding_units", self.encoding_units);
        w.end_object();
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> MessageReport {
        MessageReport {
            rounds_histogram: vec![90, 8, 2],
            ..MessageReport::default()
        }
    }

    #[test]
    fn averages() {
        let r = report();
        // (90*1 + 8*2 + 2*3) / 100 = 1.12
        assert!((r.avg_user_rounds() - 1.12).abs() < 1e-12);
        assert_eq!(r.rounds_all_users(), 3);
    }

    #[test]
    fn fraction_within_rounds() {
        let r = report();
        assert!((r.fraction_within(1) - 0.90).abs() < 1e-12);
        assert!((r.fraction_within(2) - 0.98).abs() < 1e-12);
        assert!((r.fraction_within(3) - 1.0).abs() < 1e-12);
        assert!((r.fraction_within(9) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram() {
        let r = MessageReport::default();
        assert_eq!(r.avg_user_rounds(), 0.0);
        assert_eq!(r.rounds_all_users(), 0);
        assert_eq!(r.fraction_within(1), 1.0);
    }

    #[test]
    fn json_row_is_deterministic_and_well_formed() {
        let r = MessageReport {
            msg_seq: 7,
            enc_packets: 101,
            blocks: 2,
            rho: 0.25,
            num_nack: 10,
            nacks_round1: 12,
            bandwidth_overhead: 1.25,
            server_rounds: 2,
            rounds_histogram: vec![90, 8, 2],
            unserved_users: 0,
            missed_deadline: 0,
            usr_packets: 3,
            usr_bytes: 129,
            duplication_overhead: 1.5,
            encoding_units: 4096,
        };
        let a = r.to_json_row();
        assert_eq!(a, r.clone().to_json_row());
        assert!(obs::json::well_formed(&a));
        assert!(a.contains("\"enc_packets\": 101"));
        assert!(a.contains("\"rho\": 0.250"));
        assert!(a.contains("\"bandwidth_overhead\": 1.250"));
        assert!(a.contains("\"rounds_histogram\": [90, 8, 2]"));
        assert!(!a.ends_with('\n'));
    }

    #[test]
    fn json_row_of_default_report_has_empty_histogram() {
        let text = MessageReport::default().to_json_row();
        assert!(obs::json::well_formed(&text));
        assert!(text.contains("\"rounds_histogram\": []"));
    }
}
