//! The key-management front end: authenticated join/leave requests and
//! per-interval batch collection.
//!
//! The paper's key management component "validates the requests by
//! checking whether they are encrypted by individual keys". Here a
//! request carries a MAC under the requester's individual key (leaves) or
//! the registration-granted key (joins), and the collector accumulates
//! validated requests during a rekey interval, deduplicates them, and
//! emits the [`Batch`] the marking algorithm consumes at the interval
//! boundary.

use std::collections::HashMap;

use keytree::{Batch, MemberId};
use wirecrypto::{mac, SymKey};

/// A leave request as received from the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaveRequest {
    /// Who is leaving.
    pub member: MemberId,
    /// Interval the request is bound to (replay defence).
    pub interval: u64,
    /// `mac64(individual_key, "leave" || member || interval)`.
    pub tag: u64,
}

impl LeaveRequest {
    /// Builds a request on the user side.
    pub fn sign(member: MemberId, interval: u64, individual_key: &SymKey) -> Self {
        LeaveRequest {
            member,
            interval,
            tag: mac::mac64(individual_key, &Self::payload(member, interval)),
        }
    }

    fn payload(member: MemberId, interval: u64) -> Vec<u8> {
        let mut v = b"leave".to_vec();
        v.extend_from_slice(&member.to_le_bytes());
        v.extend_from_slice(&interval.to_le_bytes());
        v
    }

    /// Server-side verification against the member's individual key.
    pub fn verify(&self, individual_key: &SymKey) -> bool {
        self.tag == mac::mac64(individual_key, &Self::payload(self.member, self.interval))
    }
}

/// A join request: the member identity plus the individual key it
/// negotiated with the registrar, authenticated by that same key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinRequest {
    /// The joining member (registration identity).
    pub member: MemberId,
    /// Interval the request is bound to.
    pub interval: u64,
    /// `mac64(individual_key, "join" || member || interval)`.
    pub tag: u64,
}

impl JoinRequest {
    /// Builds a request on the user side.
    pub fn sign(member: MemberId, interval: u64, individual_key: &SymKey) -> Self {
        JoinRequest {
            member,
            interval,
            tag: mac::mac64(individual_key, &Self::payload(member, interval)),
        }
    }

    fn payload(member: MemberId, interval: u64) -> Vec<u8> {
        let mut v = b"join".to_vec();
        v.extend_from_slice(&member.to_le_bytes());
        v.extend_from_slice(&interval.to_le_bytes());
        v
    }

    /// Server-side verification.
    pub fn verify(&self, individual_key: &SymKey) -> bool {
        self.tag == mac::mac64(individual_key, &Self::payload(self.member, self.interval))
    }
}

/// Why a request was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestError {
    /// MAC did not verify under the claimed member's key.
    BadAuthentication,
    /// Request bound to a different interval.
    WrongInterval {
        /// The collector's current interval.
        expected: u64,
        /// The interval in the request.
        got: u64,
    },
    /// Leave for a member not in the group / join for one already present
    /// or already queued.
    UnknownOrDuplicate,
}

impl core::fmt::Display for RequestError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RequestError::BadAuthentication => write!(f, "request failed authentication"),
            RequestError::WrongInterval { expected, got } => {
                write!(f, "request for interval {got}, current is {expected}")
            }
            RequestError::UnknownOrDuplicate => write!(f, "unknown member or duplicate request"),
        }
    }
}

impl std::error::Error for RequestError {}

/// Accumulates validated requests for the current rekey interval.
#[derive(Debug, Default)]
pub struct IntervalCollector {
    interval: u64,
    joins: HashMap<MemberId, SymKey>,
    join_order: Vec<MemberId>,
    leaves: Vec<MemberId>,
}

impl IntervalCollector {
    /// Starts collecting for interval 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current interval number.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Queued `(J, L)` so far.
    pub fn pending(&self) -> (usize, usize) {
        (self.join_order.len(), self.leaves.len())
    }

    /// Validates and queues a leave. `lookup_key` resolves a member's
    /// current individual key (None for members not in the group).
    pub fn submit_leave(
        &mut self,
        req: LeaveRequest,
        lookup_key: impl FnOnce(MemberId) -> Option<SymKey>,
    ) -> Result<(), RequestError> {
        if req.interval != self.interval {
            return Err(RequestError::WrongInterval {
                expected: self.interval,
                got: req.interval,
            });
        }
        let key = lookup_key(req.member).ok_or(RequestError::UnknownOrDuplicate)?;
        if !req.verify(&key) {
            return Err(RequestError::BadAuthentication);
        }
        if self.leaves.contains(&req.member) {
            return Err(RequestError::UnknownOrDuplicate);
        }
        // A member that joined and leaves within one interval simply
        // cancels out.
        if self.joins.remove(&req.member).is_some() {
            self.join_order.retain(|m| *m != req.member);
            return Ok(());
        }
        self.leaves.push(req.member);
        Ok(())
    }

    /// Validates and queues a join. `in_group` says whether the member is
    /// already a group member; `granted_key` is the individual key issued
    /// by the registrar for this member.
    pub fn submit_join(
        &mut self,
        req: JoinRequest,
        granted_key: SymKey,
        in_group: bool,
    ) -> Result<(), RequestError> {
        if req.interval != self.interval {
            return Err(RequestError::WrongInterval {
                expected: self.interval,
                got: req.interval,
            });
        }
        if !req.verify(&granted_key) {
            return Err(RequestError::BadAuthentication);
        }
        if in_group || self.joins.contains_key(&req.member) {
            return Err(RequestError::UnknownOrDuplicate);
        }
        self.joins.insert(req.member, granted_key);
        self.join_order.push(req.member);
        Ok(())
    }

    /// Closes the interval: emits the batch and advances the interval
    /// counter.
    pub fn close_interval(&mut self) -> Batch {
        self.interval += 1;
        let joins = std::mem::take(&mut self.join_order)
            .into_iter()
            .filter_map(|m| {
                // `join_order` and `joins` are kept in lockstep by
                // `submit_join`, so the key is always present.
                self.joins.remove(&m).map(|key| (m, key))
            })
            .collect();
        Batch::new(joins, std::mem::take(&mut self.leaves))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wirecrypto::KeyGen;

    fn key(b: u8) -> SymKey {
        SymKey::from_bytes([b; 16])
    }

    #[test]
    fn valid_leave_is_queued() {
        let mut c = IntervalCollector::new();
        let req = LeaveRequest::sign(7, 0, &key(7));
        c.submit_leave(req, |m| (m == 7).then(|| key(7))).unwrap();
        assert_eq!(c.pending(), (0, 1));
        let batch = c.close_interval();
        assert_eq!(batch.leaves, vec![7]);
        assert_eq!(c.interval(), 1);
    }

    #[test]
    fn forged_leave_rejected() {
        let mut c = IntervalCollector::new();
        // Attacker signs with the wrong key.
        let req = LeaveRequest::sign(7, 0, &key(99));
        assert_eq!(
            c.submit_leave(req, |_| Some(key(7))),
            Err(RequestError::BadAuthentication)
        );
        assert_eq!(c.pending(), (0, 0));
    }

    #[test]
    fn tampered_member_id_rejected() {
        let mut c = IntervalCollector::new();
        let mut req = LeaveRequest::sign(7, 0, &key(7));
        req.member = 8; // retarget the request
        assert_eq!(
            c.submit_leave(req, |_| Some(key(8))),
            Err(RequestError::BadAuthentication)
        );
    }

    #[test]
    fn replay_into_next_interval_rejected() {
        let mut c = IntervalCollector::new();
        let req = LeaveRequest::sign(7, 0, &key(7));
        c.submit_leave(req, |_| Some(key(7))).unwrap();
        c.close_interval();
        assert_eq!(
            c.submit_leave(req, |_| Some(key(7))),
            Err(RequestError::WrongInterval {
                expected: 1,
                got: 0
            })
        );
    }

    #[test]
    fn duplicate_leave_rejected() {
        let mut c = IntervalCollector::new();
        let req = LeaveRequest::sign(7, 0, &key(7));
        c.submit_leave(req, |_| Some(key(7))).unwrap();
        assert_eq!(
            c.submit_leave(req, |_| Some(key(7))),
            Err(RequestError::UnknownOrDuplicate)
        );
    }

    #[test]
    fn unknown_member_leave_rejected() {
        let mut c = IntervalCollector::new();
        let req = LeaveRequest::sign(7, 0, &key(7));
        assert_eq!(
            c.submit_leave(req, |_| None),
            Err(RequestError::UnknownOrDuplicate)
        );
    }

    #[test]
    fn join_flow_and_ordering() {
        let mut kg = KeyGen::from_seed(1);
        let mut c = IntervalCollector::new();
        for m in [30u32, 10, 20] {
            let k = kg.next_key();
            let req = JoinRequest::sign(m, 0, &k);
            c.submit_join(req, k, false).unwrap();
        }
        let batch = c.close_interval();
        let order: Vec<MemberId> = batch.joins.iter().map(|(m, _)| *m).collect();
        assert_eq!(order, vec![30, 10, 20], "admission order preserved");
    }

    #[test]
    fn join_of_existing_member_rejected() {
        let mut c = IntervalCollector::new();
        let k = key(5);
        let req = JoinRequest::sign(5, 0, &k);
        assert_eq!(
            c.submit_join(req, k, true),
            Err(RequestError::UnknownOrDuplicate)
        );
    }

    #[test]
    fn join_then_leave_within_interval_cancels() {
        let mut c = IntervalCollector::new();
        let k = key(9);
        c.submit_join(JoinRequest::sign(9, 0, &k), k, false)
            .unwrap();
        assert_eq!(c.pending(), (1, 0));
        c.submit_leave(LeaveRequest::sign(9, 0, &k), |_| Some(k))
            .unwrap();
        assert_eq!(c.pending(), (0, 0));
        let batch = c.close_interval();
        assert!(batch.is_empty());
    }

    #[test]
    fn batch_feeds_the_tree() {
        // End to end: collector output drives the marking algorithm.
        let mut kg = KeyGen::from_seed(4);
        let mut tree = keytree::KeyTree::balanced(16, 4, &mut kg);
        let mut c = IntervalCollector::new();

        let leaver_key = tree.keys_for_member(3).expect("member 3 exists")[0].1;
        c.submit_leave(LeaveRequest::sign(3, 0, &leaver_key), |m| {
            tree.node_of_member(m).and_then(|id| tree.key_of(id))
        })
        .unwrap();
        let newcomer_key = kg.next_key();
        c.submit_join(
            JoinRequest::sign(100, 0, &newcomer_key),
            newcomer_key,
            false,
        )
        .unwrap();

        let batch = c.close_interval();
        let outcome = tree.process_batch(&batch, &mut kg);
        assert!(outcome.group_key_changed());
        assert!(tree.node_of_member(100).is_some());
        assert!(tree.node_of_member(3).is_none());
    }
}
