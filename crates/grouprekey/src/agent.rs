//! The user-side key store.

use std::collections::BTreeMap;

use keytree::{ident, MemberId, NodeId};
use rekeymsg::{seal_context, EncPacket, UsrPacket};
use wirecrypto::SymKey;

/// Why applying a rekey packet failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyError {
    /// The user cannot rederive a current ID from `maxKID` — it is no
    /// longer in the group.
    NotInGroup,
    /// An encryption on the path could not be unsealed with any key the
    /// agent holds (corruption, or the agent's state is stale).
    MissingKey {
        /// The encrypting node whose key the agent lacks.
        node: NodeId,
    },
    /// A sealed blob failed authentication.
    BadSeal {
        /// The encrypting node of the offending blob.
        node: NodeId,
    },
    /// A USR packet carried a different number of encryptions than the
    /// agent's path shape admits.
    UsrShapeMismatch,
}

impl core::fmt::Display for ApplyError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ApplyError::NotInGroup => write!(f, "user is no longer in the group"),
            ApplyError::MissingKey { node } => write!(f, "no key held for node {node}"),
            ApplyError::BadSeal { node } => write!(f, "seal verification failed at node {node}"),
            ApplyError::UsrShapeMismatch => write!(f, "USR packet shape does not match path"),
        }
    }
}

impl std::error::Error for ApplyError {}

/// A user's view of the key tree: its individual key plus the path keys it
/// currently holds, updated by applying rekey packets.
#[derive(Debug, Clone)]
pub struct UserAgent {
    member: MemberId,
    node_id: NodeId,
    individual: SymKey,
    degree: u32,
    keys: BTreeMap<NodeId, SymKey>,
}

impl UserAgent {
    /// Creates an agent for a member admitted at u-node `node_id` with the
    /// given individual key.
    pub fn new(member: MemberId, node_id: NodeId, individual: SymKey, degree: u32) -> Self {
        let mut keys = BTreeMap::new();
        keys.insert(node_id, individual);
        UserAgent {
            member,
            node_id,
            individual,
            degree,
            keys,
        }
    }

    /// Creates an agent that already holds its full current path (as after
    /// a successful registration + initial rekey).
    pub fn with_path(
        member: MemberId,
        node_id: NodeId,
        individual: SymKey,
        degree: u32,
        path_keys: impl IntoIterator<Item = (NodeId, SymKey)>,
    ) -> Self {
        let mut agent = UserAgent::new(member, node_id, individual, degree);
        for (id, k) in path_keys {
            agent.keys.insert(id, k);
        }
        agent
    }

    /// The member identity.
    pub fn member(&self) -> MemberId {
        self.member
    }

    /// The u-node ID the agent believes it occupies.
    pub fn node_id(&self) -> NodeId {
        self.node_id
    }

    /// The group key, if held.
    pub fn group_key(&self) -> Option<SymKey> {
        self.keys.get(&0).copied()
    }

    /// The key held for a node, if any.
    pub fn key_of(&self, node: NodeId) -> Option<SymKey> {
        self.keys.get(&node).copied()
    }

    /// Number of keys currently held (1 individual + path keys).
    pub fn keys_held(&self) -> usize {
        self.keys.len()
    }

    /// Applies the user's specific ENC packet from rekey message
    /// `msg_seq`: rederives the current ID from `maxKID`, then walks the
    /// path leaf-to-root unsealing every encryption addressed to it.
    pub fn apply_enc(&mut self, pkt: &EncPacket, msg_seq: u64) -> Result<(), ApplyError> {
        let new_id = ident::derive_current_id(self.node_id, pkt.max_kid as NodeId, self.degree)
            .ok_or(ApplyError::NotInGroup)?;
        self.relocate(new_id);

        for c in ident::path_to_root(new_id, self.degree) {
            let c16 = u16::try_from(c).map_err(|_| ApplyError::MissingKey { node: c })?;
            let Some(sealed) = pkt.entry(c16) else {
                continue;
            };
            let kek = self
                .keys
                .get(&c)
                .copied()
                .ok_or(ApplyError::MissingKey { node: c })?;
            let Some(parent) = ident::parent(c, self.degree) else {
                // Entries never encrypt above the root; tolerate a
                // malformed packet rather than panic on hostile input.
                continue;
            };
            let key = sealed
                .unseal(&kek, seal_context(msg_seq, c))
                .map_err(|_| ApplyError::BadSeal { node: c })?;
            self.keys.insert(parent, key);
        }
        self.prune();
        Ok(())
    }

    /// Applies a USR packet: the sealed keys arrive in increasing
    /// encryption-ID order (root-side first) without explicit IDs; they
    /// correspond to the topmost `t` non-root path nodes.
    pub fn apply_usr(&mut self, pkt: &UsrPacket, msg_seq: u64) -> Result<(), ApplyError> {
        let new_id = pkt.new_user_id as NodeId;
        self.relocate(new_id);

        // Non-root path nodes in increasing-ID order (child of root first).
        let mut path = ident::path_to_root(new_id, self.degree);
        path.pop(); // drop the root
        path.reverse(); // ascending IDs
        if pkt.sealed.len() > path.len() {
            return Err(ApplyError::UsrShapeMismatch);
        }
        let children = &path[..pkt.sealed.len()];
        // Unseal bottom-up: the deepest encrypting key is one the agent
        // already holds (an unchanged auxiliary key or its individual key).
        for (c, sealed) in children.iter().zip(&pkt.sealed).rev() {
            let kek = self
                .keys
                .get(c)
                .copied()
                .ok_or(ApplyError::MissingKey { node: *c })?;
            let Some(parent) = ident::parent(*c, self.degree) else {
                // `children` excludes the root, so every entry has a
                // parent; skip rather than panic if that ever breaks.
                continue;
            };
            let key = sealed
                .unseal(&kek, seal_context(msg_seq, *c))
                .map_err(|_| ApplyError::BadSeal { node: *c })?;
            self.keys.insert(parent, key);
        }
        self.prune();
        Ok(())
    }

    /// Accepts a server-announced compaction relocation. Unlike split
    /// moves — which [`UserAgent::apply_enc`] rederives from `maxKID`
    /// alone (Theorem 4.2) — compaction moves members *downward*, outside
    /// the rederivation window, so the new ID travels explicitly (the USR
    /// `newUserID` field, or this out-of-band call in the simulator). The
    /// agent keeps its individual key and bootstraps the new path from it.
    pub fn accept_relocation(&mut self, new_id: NodeId) {
        self.relocate(new_id);
    }

    /// Moves the agent to a (possibly) new u-node ID, re-keying its
    /// individual key.
    fn relocate(&mut self, new_id: NodeId) {
        if new_id != self.node_id {
            self.keys.remove(&self.node_id);
            self.node_id = new_id;
        }
        self.keys.insert(new_id, self.individual);
    }

    /// Drops keys no longer on the agent's path.
    fn prune(&mut self) {
        let path: std::collections::BTreeSet<NodeId> =
            ident::path_to_root(self.node_id, self.degree)
                .into_iter()
                .collect();
        self.keys.retain(|id, _| path.contains(id));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use keytree::{Batch, KeyTree};
    use rekeymsg::{build_usr_packet, Layout, UkaAssignment};
    use wirecrypto::KeyGen;

    /// Builds a tree, runs a batch, and returns everything a test needs.
    fn scenario(
        n: u32,
        leaves: Vec<MemberId>,
        joins: u32,
    ) -> (KeyTree, KeyTree, keytree::MarkOutcome, UkaAssignment) {
        let mut kg = KeyGen::from_seed(3);
        let mut tree = KeyTree::balanced(n, 4, &mut kg);
        let before = tree.clone();
        let join_list: Vec<(MemberId, SymKey)> =
            (0..joins).map(|i| (n + i, kg.next_key())).collect();
        let outcome = tree.process_batch(&Batch::new(join_list, leaves), &mut kg);
        let assignment = UkaAssignment::build(&tree, &outcome, 1, &Layout::DEFAULT).unwrap();
        (before, tree, outcome, assignment)
    }

    fn agent_for(tree: &KeyTree, member: MemberId, degree: u32) -> UserAgent {
        let node = tree.node_of_member(member).unwrap();
        let path = tree.keys_for_member(member).unwrap();
        let individual = path[0].1;
        UserAgent::with_path(member, node, individual, degree, path)
    }

    #[test]
    fn surviving_user_obtains_new_group_key_from_enc() {
        let (before, after, _outcome, assignment) = scenario(64, vec![3, 9, 41], 0);
        for member in [0u32, 10, 63] {
            let mut agent = agent_for(&before, member, 4);
            let uid = after.node_of_member(member).unwrap();
            let pi = assignment.packet_of_user(uid).expect("served user");
            agent
                .apply_enc(&assignment.packets[pi], 1)
                .unwrap_or_else(|e| panic!("member {member}: {e}"));
            assert_eq!(agent.group_key(), after.group_key());
        }
    }

    #[test]
    fn usr_packet_equivalent_to_enc_packet() {
        let (before, after, outcome, assignment) = scenario(64, vec![3, 9, 41], 0);
        let member = 20u32;
        let uid = after.node_of_member(member).unwrap();

        let mut via_enc = agent_for(&before, member, 4);
        let pi = assignment.packet_of_user(uid).expect("served user");
        via_enc.apply_enc(&assignment.packets[pi], 1).unwrap();

        let mut via_usr = agent_for(&before, member, 4);
        let usr = build_usr_packet(&after, &outcome, member, 1).unwrap();
        via_usr.apply_usr(&usr, 1).unwrap();

        assert_eq!(via_enc.group_key(), via_usr.group_key());
        assert_eq!(via_enc.group_key(), after.group_key());
        assert_eq!(via_enc.keys_held(), via_usr.keys_held());
    }

    #[test]
    fn newly_joined_user_bootstraps_from_individual_key() {
        let (_before, after, _outcome, assignment) = scenario(64, vec![], 5);
        let member = 66u32; // one of the joiners
        let uid = after.node_of_member(member).unwrap();
        let individual = after.key_of(uid).unwrap();
        let mut agent = UserAgent::new(member, uid, individual, 4);
        let pi = assignment.packet_of_user(uid).expect("served user");
        agent.apply_enc(&assignment.packets[pi], 1).unwrap();
        assert_eq!(agent.group_key(), after.group_key());
    }

    #[test]
    fn moved_user_relocates_and_recovers() {
        // Full 16-user tree + 1 join forces a split; the user at node 5
        // moves to 21.
        let mut kg = KeyGen::from_seed(8);
        let mut tree = KeyTree::balanced(16, 4, &mut kg);
        let before = tree.clone();
        let moved = tree.member_at(5).unwrap();
        let outcome = tree.process_batch(&Batch::new(vec![(100, kg.next_key())], vec![]), &mut kg);
        assert_eq!(outcome.moves.len(), 1);
        let assignment = UkaAssignment::build(&tree, &outcome, 2, &Layout::DEFAULT).unwrap();

        let mut agent = agent_for(&before, moved, 4);
        assert_eq!(agent.node_id(), 5);
        let uid = tree.node_of_member(moved).unwrap();
        let pi = assignment.packet_of_user(uid).expect("served user");
        agent.apply_enc(&assignment.packets[pi], 2).unwrap();
        assert_eq!(agent.node_id(), 21);
        assert_eq!(agent.group_key(), tree.group_key());
    }

    #[test]
    fn departed_user_cannot_apply() {
        let (before, _after, _outcome, assignment) = scenario(64, vec![7], 0);
        let mut agent = agent_for(&before, 7, 4);
        // Its old packet region now serves the remaining users; applying
        // any packet must fail (bad seal or missing key), never silently
        // yield the new group key.
        let old_group_key = agent.group_key();
        for pkt in &assignment.packets {
            let _ = agent.apply_enc(pkt, 1);
        }
        assert_eq!(agent.group_key(), old_group_key, "forward secrecy violated");
    }

    #[test]
    fn wrong_msg_seq_fails_seal_check() {
        let (before, after, _outcome, assignment) = scenario(64, vec![3], 0);
        let mut agent = agent_for(&before, 0, 4);
        let uid = after.node_of_member(0).unwrap();
        let pi = assignment.packet_of_user(uid).expect("served user");
        let err = agent.apply_enc(&assignment.packets[pi], 99).unwrap_err();
        assert!(matches!(err, ApplyError::BadSeal { .. }));
    }

    #[test]
    fn keys_pruned_to_path() {
        let (before, after, _outcome, assignment) = scenario(64, vec![3], 0);
        let mut agent = agent_for(&before, 0, 4);
        let uid = after.node_of_member(0).unwrap();
        let pi = assignment.packet_of_user(uid).expect("served user");
        agent.apply_enc(&assignment.packets[pi], 1).unwrap();
        // Height-3 tree: path holds 4 keys (leaf + 2 aux + root).
        assert_eq!(agent.keys_held(), 4);
    }

    #[test]
    fn usr_shape_mismatch_rejected() {
        let (_before, after, outcome, _assignment) = scenario(64, vec![3], 0);
        let member = 0u32;
        let uid = after.node_of_member(member).unwrap();
        let individual = after.key_of(uid).unwrap();
        let mut agent = UserAgent::new(member, uid, individual, 4);
        let mut usr = build_usr_packet(&after, &outcome, member, 1).unwrap();
        // Inflate beyond the path length.
        while usr.sealed.len() <= 4 {
            usr.sealed.push(usr.sealed[0]);
        }
        assert_eq!(agent.apply_usr(&usr, 1), Err(ApplyError::UsrShapeMismatch));
    }
}
