//! Byte-faithful end-to-end driver.
//!
//! [`Group`] owns a [`KeyServer`], one [`UserAgent`] per member, and a
//! simulated lossy [`Network`]. Every packet of a rekey message is emitted
//! to wire bytes, individually subjected to link loss, parsed back at each
//! receiving user, FEC-decoded when needed, and cryptographically applied
//! (unsealing real encryptions) — the full production path. Use this for
//! correctness at realistic-but-moderate group sizes; the `sim` module
//! scales the same protocol to the paper's 4096–16384-user experiments.

use std::collections::BTreeMap;

use keytree::{Batch, MemberId, NodeId};
use netsim::{Network, NetworkConfig};
use rekeymsg::Packet;
use rekeyproto::{RoundDecision, UserOutcome, UserSession};

use crate::agent::UserAgent;
use crate::metrics::MessageReport;
use crate::server::{KeyServer, ServerOptions};

/// Unwraps a driver invariant, panicking with context on violation.
/// Centralises the "driver misuse" panics documented on [`Group::rekey`].
fn require<T>(value: Option<T>, what: &str) -> T {
    match value {
        Some(v) => v,
        None => panic!("driver invariant violated: {what}"),
    }
}

/// A complete secure group: server, members, network.
pub struct Group {
    /// The key server.
    pub server: KeyServer,
    /// Live member agents. Ordered so that every iteration over members
    /// (loss draws, outcome application) is deterministic across runs.
    pub agents: BTreeMap<MemberId, UserAgent>,
    net: Network,
    net_index: BTreeMap<MemberId, usize>,
    free_indices: Vec<usize>,
    clock: f64,
    degree: u32,
    /// Cap on delivery rounds per message (safety valve).
    pub max_rounds: usize,
}

impl Group {
    /// Builds a group of members `0..n` whose agents already hold their
    /// initial key paths (as after registration + initial distribution).
    pub fn new(n: u32, options: ServerOptions, mut net_cfg: NetworkConfig) -> Self {
        let server = KeyServer::bootstrap(n, options);
        net_cfg.n_users = net_cfg.n_users.max(n as usize);
        let net = Network::new(net_cfg);

        let mut agents = BTreeMap::new();
        let mut net_index = BTreeMap::new();
        for m in 0..n {
            let tree = server.tree();
            let node = require(tree.node_of_member(m), "bootstrap member has a node");
            let path = require(tree.keys_for_member(m), "bootstrap member has a path");
            let individual = path[0].1;
            agents.insert(
                m,
                UserAgent::with_path(m, node, individual, options.degree, path),
            );
            net_index.insert(m, m as usize);
        }
        let free_indices = (n as usize..net_cfg.n_users).rev().collect();
        Group {
            server,
            agents,
            net,
            net_index,
            free_indices,
            clock: 0.0,
            degree: options.degree,
            max_rounds: 64,
        }
    }

    /// The group key every current member should hold.
    pub fn group_key(&self) -> Option<wirecrypto::SymKey> {
        self.server.tree().group_key()
    }

    /// True when every live agent holds the server's current group key.
    pub fn all_agents_synchronized(&self) -> bool {
        let gk = self.group_key();
        self.agents.values().all(|a| a.group_key() == gk)
    }

    /// Admits a member (mints its individual key); the member enters the
    /// group at the next rekey that includes it in the batch.
    pub fn mint_join(&mut self, member: MemberId) -> (MemberId, wirecrypto::SymKey) {
        (member, self.server.mint_individual_key())
    }

    /// Admits a member via the full challenge-response registration
    /// handshake (`wirecrypto::registration`): mutual authentication
    /// against `credential`, individual key sealed in transit. Returns the
    /// join entry for the next batch, or the handshake failure.
    pub fn register_join(
        &mut self,
        member: MemberId,
        credential: wirecrypto::SymKey,
        nonce_seed: u64,
    ) -> Result<(MemberId, wirecrypto::SymKey), wirecrypto::registration::RegistrationError> {
        use wirecrypto::registration::{RegistrarSession, UserRegistration};
        let (mut user, join_req) = UserRegistration::start(credential, nonce_seed);
        let (registrar, challenge) =
            RegistrarSession::challenge(credential, join_req, nonce_seed ^ 0x5EED);
        let proof = user.prove(challenge);
        let mut keygen_proxy =
            wirecrypto::KeyGen::from_seed(nonce_seed ^ self.server.msg_seq() ^ 0xA11C_E5ED);
        let (grant, server_copy) = registrar.grant(proof, member, &mut keygen_proxy)?;
        let (granted_id, user_copy) = user.accept(grant)?;
        debug_assert_eq!(granted_id, member);
        debug_assert_eq!(user_copy, server_copy);
        Ok((member, server_copy))
    }

    /// Processes a batch and delivers the rekey message end-to-end over
    /// the lossy network. Returns the delivery report.
    ///
    /// # Panics
    ///
    /// Panics if the network has no free receiver link for a joiner, or if
    /// delivery fails to complete within `max_rounds` (both indicate
    /// driver misuse).
    pub fn rekey(&mut self, batch: Batch) -> MessageReport {
        // Snapshot pre-batch node IDs (the "old IDs" users hold).
        let old_ids: BTreeMap<MemberId, NodeId> = self
            .agents
            .keys()
            .map(|&m| (m, self.agents[&m].node_id()))
            .collect();
        let joins: Vec<(MemberId, wirecrypto::SymKey)> = batch.joins.clone();
        let leaves: Vec<MemberId> = batch.leaves.clone();

        let mut artifacts = self.server.rekey(batch);
        let msg_seq = artifacts.msg_seq;
        let layout = artifacts.session.blocks().layout();

        // Compaction relocations are announced out of band (the USR
        // `newUserID` field carries them on the wire): a relocated member
        // moves *down*, outside the maxKID rederivation window, so its
        // agent must learn the new ID before it can place this message's
        // ENC entries. Its session below starts from the new ID for the
        // same reason.
        let mut old_ids = old_ids;
        for rl in &artifacts.outcome.relocations {
            if let Some(agent) = self.agents.get_mut(&rl.member) {
                agent.accept_relocation(rl.new_id);
            }
            old_ids.insert(rl.member, rl.new_id);
        }

        // Membership bookkeeping.
        for m in &leaves {
            self.agents.remove(m);
            if let Some(idx) = self.net_index.remove(m) {
                self.free_indices.push(idx);
            }
        }
        for (m, key) in &joins {
            let node = require(
                self.server.tree().node_of_member(*m),
                "joined member placed by the batch",
            );
            self.agents
                .insert(*m, UserAgent::new(*m, node, *key, self.degree));
            let idx = require(
                self.free_indices.pop(),
                "network has a free receiver link for the joiner",
            );
            self.net_index.insert(*m, idx);
        }

        // One transport session per member.
        let k = self.server.controller().config().block_size;
        let mut sessions: BTreeMap<MemberId, UserSession> = self
            .agents
            .keys()
            .map(|&m| {
                let old = old_ids.get(&m).copied().unwrap_or_else(|| {
                    require(self.server.tree().node_of_member(m), "joiner has a node")
                });
                let session = UserSession::new(old, self.degree, k, layout)
                    .expect_msg_id((msg_seq & 0x3f) as u8);
                (m, session)
            })
            .collect();
        let member_of_node: BTreeMap<NodeId, MemberId> = self
            .agents
            .keys()
            .map(|&m| {
                (
                    require(
                        self.server.tree().node_of_member(m),
                        "live member has a node",
                    ),
                    m,
                )
            })
            .collect();

        let send_interval = self.net.config().send_interval_ms;
        let rtt = 2.0 * self.net.config().one_way_delay_ms;
        let mut round = 1usize;
        let mut action = RoundDecision::Multicast(artifacts.session.start());
        // Per-packet scratch, reused across the whole message.
        let mut members: Vec<MemberId> = Vec::new();
        let mut listeners: Vec<usize> = Vec::new();
        let mut delivered: Vec<bool> = Vec::new();

        loop {
            match &action {
                RoundDecision::Multicast(schedule) => {
                    for pkt in schedule {
                        self.clock += send_interval;
                        let bytes = pkt.emit(&layout);
                        members.clear();
                        members.extend(
                            sessions
                                .iter()
                                .filter(|(_, s)| !s.is_satisfied())
                                .map(|(&m, _)| m),
                        );
                        listeners.clear();
                        listeners.extend(members.iter().map(|m| self.net_index[m]));
                        if listeners.is_empty() {
                            break;
                        }
                        self.net
                            .multicast_to_into(self.clock, &listeners, &mut delivered);
                        for (pos, &ok) in delivered.iter().enumerate() {
                            if ok {
                                let parsed = Packet::parse(&bytes, &layout)
                                    .unwrap_or_else(|e| panic!("wire round-trip: {e:?}"));
                                require(sessions.get_mut(&members[pos]), "member session")
                                    .receive(&parsed);
                            }
                        }
                    }
                }
                RoundDecision::Unicast(wave) => {
                    for node in &wave.targets {
                        let Some(&m) = member_of_node.get(node) else {
                            continue;
                        };
                        let usr = require(self.server.usr_packet(m), "usr packet for live member");
                        let bytes = Packet::Usr(usr).emit(&layout);
                        for _ in 0..wave.duplicates {
                            self.clock += send_interval;
                            if self.net.unicast(self.clock, self.net_index[&m]) {
                                let parsed = Packet::parse(&bytes, &layout)
                                    .unwrap_or_else(|e| panic!("wire round-trip: {e:?}"));
                                require(sessions.get_mut(&m), "member session").receive(&parsed);
                            }
                        }
                    }
                }
                RoundDecision::Done => {}
            }
            self.clock += rtt;

            // Round boundary: NACKs over the (lossless) reverse path.
            let mut boundary: Vec<MemberId> = sessions.keys().copied().collect();
            boundary.sort_unstable();
            for m in boundary {
                let s = require(sessions.get_mut(&m), "member session");
                if let Some(nack) = s.end_of_round() {
                    let bytes = Packet::Nack(nack).emit(&layout);
                    let Ok(Packet::Nack(parsed)) = Packet::parse(&bytes, &layout) else {
                        unreachable!("a NACK emits and parses back as a NACK")
                    };
                    let node = require(
                        self.server.tree().node_of_member(m),
                        "NACKing member has a node",
                    );
                    artifacts.session.accept_nack(node, &parsed);
                }
            }

            action = artifacts.session.end_of_round();
            if matches!(action, RoundDecision::Done) {
                break;
            }
            round += 1;
            assert!(
                round <= self.max_rounds,
                "delivery did not complete within {} rounds",
                self.max_rounds
            );
        }

        // Apply outcomes cryptographically.
        let mut hist: Vec<usize> = Vec::new();
        for (m, s) in &sessions {
            let agent = require(self.agents.get_mut(m), "live member has an agent");
            match s.outcome() {
                UserOutcome::Enc(pkt) => agent
                    .apply_enc(pkt, msg_seq)
                    .unwrap_or_else(|e| panic!("member {m}: apply_enc: {e}")),
                UserOutcome::Usr(pkt) => agent
                    .apply_usr(pkt, msg_seq)
                    .unwrap_or_else(|e| panic!("member {m}: apply_usr: {e}")),
                UserOutcome::Pending => {
                    // Only possible when the member needed nothing.
                    assert!(
                        artifacts
                            .outcome
                            .encryptions_for_user(agent.node_id(), self.degree)
                            .is_empty(),
                        "member {m} pending but needed encryptions"
                    );
                }
            }
            if let Some(r) = s.rounds_to_success() {
                if hist.len() < r {
                    hist.resize(r, 0);
                }
                hist[r - 1] += 1;
            }
        }

        MessageReport {
            msg_seq,
            enc_packets: artifacts.session.real_enc_count(),
            blocks: artifacts.session.blocks().block_count(),
            rho: artifacts.session.rho(),
            num_nack: self.server.controller().num_nack,
            nacks_round1: artifacts.session.first_round_nack_count(),
            bandwidth_overhead: artifacts.session.bandwidth_overhead(),
            server_rounds: artifacts.session.stats.multicast_rounds,
            rounds_histogram: hist,
            unserved_users: 0,
            missed_deadline: 0,
            usr_packets: artifacts.session.stats.usr_sent,
            usr_bytes: artifacts.session.stats.usr_bytes,
            duplication_overhead: artifacts.assignment.stats.duplication_overhead(),
            encoding_units: rse::cost::total_encoding_units(
                k,
                &[artifacts.session.stats.parity_multicast as u64],
            ),
        }
    }
}
