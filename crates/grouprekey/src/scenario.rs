//! Trace-driven scenario engine: deterministic, seeded membership traces
//! driven through [`KeyServer::rekey`].
//!
//! The paper's analysis only exercises Poisson-style `(J, L)` batch
//! arrivals. This module generates the workload classes that stress an
//! LKH tree in ways Poisson churn never does:
//!
//! * [`ScenarioKind::FlashCrowd`] — a pay-per-view kickoff: a short
//!   window of very large join bursts onto a small steady group, then
//!   trickle churn (generalizes `examples/pay_per_view.rs`).
//! * [`ScenarioKind::Diurnal`] — triangle-wave join/leave cycles, joins
//!   peaking half a cycle before leaves, as in a daily audience curve.
//! * [`ScenarioKind::MassDeparture`] — steady state until half-time,
//!   then 90% of the group leaves in one batch; the long tail afterwards
//!   is what exposes monotonic memory growth and skewed depth.
//! * [`ScenarioKind::Oscillation`] — a rejoin-heavy cohort that
//!   repeatedly drains and refills: departed members return (fresh
//!   individual keys, same member IDs), oscillating the tree between two
//!   shapes.
//! * [`ScenarioKind::Storm`] — CKCS-style simultaneous join/leave storms
//!   (arXiv 1208.5558): every interval carries both a large `J` and a
//!   large `L`.
//!
//! Traces are pure functions of `(kind, seed, initial_users, intervals)`
//! — the engine uses a private splitmix64 stream, so a run is replayable
//! bit for bit at any worker count. Each interval's [`IntervalStats`]
//! records the tree-shape and cost metrics the churn bench sweeps, and a
//! running [`ScenarioReport::digest`] folds every outcome so bit-identity
//! gates can compare whole runs in O(1).
//!
//! With `--features sanitize` every generated batch passes the full
//! marking/message oracles inside [`KeyServer::rekey`]; with
//! `--features obs` the engine tags each interval with `scenario.*`
//! spans, counters, and gauges.

use keytree::{Batch, MemberId};
use wirecrypto::SymKey;

use crate::{KeyServer, ServerOptions};

/// The five adversarial trace families.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// Flash-crowd join burst (pay-per-view kickoff).
    FlashCrowd,
    /// Diurnal join/leave cycles (daily audience curve).
    Diurnal,
    /// Correlated mass departure at half-time.
    MassDeparture,
    /// Rejoin-heavy cohort oscillation.
    Oscillation,
    /// CKCS-style simultaneous join/leave storms.
    Storm,
}

impl ScenarioKind {
    /// Every trace family, in catalog order.
    pub const ALL: [ScenarioKind; 5] = [
        ScenarioKind::FlashCrowd,
        ScenarioKind::Diurnal,
        ScenarioKind::MassDeparture,
        ScenarioKind::Oscillation,
        ScenarioKind::Storm,
    ];

    /// Stable snake_case name (bench JSON key, obs gauge suffix).
    pub fn name(&self) -> &'static str {
        match self {
            ScenarioKind::FlashCrowd => "flash_crowd",
            ScenarioKind::Diurnal => "diurnal",
            ScenarioKind::MassDeparture => "mass_departure",
            ScenarioKind::Oscillation => "oscillation",
            ScenarioKind::Storm => "storm",
        }
    }
}

/// One scenario run's parameters. The trace is a pure function of this
/// struct (given the same [`ServerOptions`]).
#[derive(Debug, Clone, Copy)]
pub struct ScenarioConfig {
    /// Trace family.
    pub kind: ScenarioKind,
    /// Seed of the trace's private splitmix64 stream.
    pub seed: u64,
    /// Group size the server bootstraps with.
    pub initial_users: u32,
    /// Number of rekey intervals (batches) to run.
    pub intervals: usize,
    /// Server construction options (degree, layout, compaction policy).
    pub options: ServerOptions,
}

impl ScenarioConfig {
    /// A small default: 1024 users, 96 intervals, compaction off.
    pub fn new(kind: ScenarioKind) -> Self {
        ScenarioConfig {
            kind,
            seed: 0x5CE7_A210,
            initial_users: 1024,
            intervals: 96,
            options: ServerOptions::default(),
        }
    }
}

/// Tree-shape and cost metrics after one interval's batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntervalStats {
    /// Interval index (0-based).
    pub interval: usize,
    /// Members in the group after the batch.
    pub users: usize,
    /// Joins in this interval's batch.
    pub joins: usize,
    /// Leaves in this interval's batch.
    pub leaves: usize,
    /// Compaction relocations announced this batch.
    pub relocations: usize,
    /// Distinct encryptions in the rekey subtree.
    pub encryptions: usize,
    /// Encryptions per current member (0 for an empty group).
    pub enc_per_member: f64,
    /// ENC bytes multicast for this message (packets x packet length).
    pub bytes_on_wire: usize,
    /// Deepest u-node level after the batch.
    pub max_depth: u32,
    /// Mean u-node level after the batch.
    pub mean_depth: f64,
    /// Heap bytes resident in the tree's arrays after the batch.
    pub resident_bytes: usize,
    /// Maximum k-node ID (`maxKID`) after the batch, `u64::MAX` if none.
    pub nk: u64,
}

/// A finished scenario run: the per-interval trajectory plus a digest of
/// every outcome for whole-run bit-identity comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// The configuration that produced this run.
    pub kind: ScenarioKind,
    /// Per-interval metrics, in order.
    pub stats: Vec<IntervalStats>,
    /// splitmix64 fold of every interval's group key, `nk`, membership
    /// count, encryption count, and relocation list. Two runs are the
    /// same rekey stream iff their digests match.
    pub digest: u64,
}

impl ScenarioReport {
    /// Deepest u-node level seen across the run.
    pub fn max_depth(&self) -> u32 {
        self.stats.iter().map(|s| s.max_depth).max().unwrap_or(0)
    }

    /// Peak resident bytes across the run.
    pub fn peak_resident_bytes(&self) -> usize {
        self.stats
            .iter()
            .map(|s| s.resident_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Resident bytes after the final interval.
    pub fn final_resident_bytes(&self) -> usize {
        self.stats.last().map_or(0, |s| s.resident_bytes)
    }

    /// Mean encryptions per member over intervals with a non-empty group.
    pub fn mean_enc_per_member(&self) -> f64 {
        let live: Vec<f64> = self
            .stats
            .iter()
            .filter(|s| s.users > 0)
            .map(|s| s.enc_per_member)
            .collect();
        if live.is_empty() {
            0.0
        } else {
            live.iter().sum::<f64>() / live.len() as f64
        }
    }

    /// Total ENC bytes multicast over the run.
    pub fn total_bytes_on_wire(&self) -> usize {
        self.stats.iter().map(|s| s.bytes_on_wire).sum()
    }

    /// Total compaction relocations over the run.
    pub fn total_relocations(&self) -> usize {
        self.stats.iter().map(|s| s.relocations).sum()
    }
}

/// splitmix64: the same tiny deterministic generator `taskpool` uses for
/// schedule perturbation. Private stream per engine, so scenario traces
/// never interact with key generation.
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..bound` (`0` for an empty range).
    fn below(&mut self, bound: usize) -> usize {
        if bound == 0 {
            0
        } else {
            (self.next() % bound as u64) as usize
        }
    }
}

fn mix(acc: u64, v: u64) -> u64 {
    SplitMix64::new(acc ^ v).next()
}

/// The engine: owns the server, the live-member roster, and the rejoin
/// pool, and steps one interval at a time so callers (the soak test, the
/// churn bench) can interleave their own checks.
#[derive(Debug)]
pub struct ScenarioEngine {
    config: ScenarioConfig,
    server: KeyServer,
    rng: SplitMix64,
    /// Current members, in engine order (deterministically permuted by
    /// leave selection; never sorted, never hashed).
    live: Vec<MemberId>,
    /// Members that left and may rejoin (oscillation / rejoin traffic).
    departed: Vec<MemberId>,
    next_member: MemberId,
    interval: usize,
    digest: u64,
}

impl ScenarioEngine {
    /// Bootstraps a full balanced group of `config.initial_users`.
    pub fn new(config: ScenarioConfig) -> Self {
        let server = KeyServer::bootstrap(config.initial_users, config.options);
        ScenarioEngine {
            server,
            rng: SplitMix64::new(config.seed ^ 0xC0FF_EE00),
            live: (0..config.initial_users).collect(),
            departed: Vec::new(),
            next_member: config.initial_users,
            interval: 0,
            digest: config.seed,
            config,
        }
    }

    /// The server (read-only), e.g. for invariant checks between steps.
    pub fn server(&self) -> &KeyServer {
        &self.server
    }

    /// Intervals stepped so far.
    pub fn interval(&self) -> usize {
        self.interval
    }

    /// Running outcome digest (see [`ScenarioReport::digest`]).
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Draws the next interval's `(joins, leaves)` sizes from the trace
    /// shape. Leave count is clamped to the live population later.
    fn plan(&mut self) -> (usize, usize) {
        let n = self.config.initial_users as usize;
        let t = self.interval;
        let total = self.config.intervals.max(1);
        match self.config.kind {
            ScenarioKind::FlashCrowd => {
                // Kickoff window: the first eighth of the horizon carries
                // join bursts an order of magnitude above steady churn.
                let kick = (total / 8).max(2);
                if t < kick {
                    ((n / kick).max(8), self.rng.below(n / 128 + 1))
                } else {
                    (self.rng.below(4), 1 + self.rng.below((n / 64).max(2)))
                }
            }
            ScenarioKind::Diurnal => {
                // Triangle wave of period C; leaves lag joins by half a
                // cycle, so the group swells by day and drains by night.
                let c = (total / 4).max(8);
                let tri = |phase: usize| -> usize {
                    let half = c / 2;
                    let p = phase % c;
                    if p < half {
                        p
                    } else {
                        c - p
                    }
                };
                let amp = (n / 8).max(4);
                let j = amp * tri(t) / (c / 2).max(1);
                let l = amp * tri(t + c / 2) / (c / 2).max(1);
                (j + self.rng.below(3), l + self.rng.below(3))
            }
            ScenarioKind::MassDeparture => {
                if t == total / 2 {
                    // The correlated event: 90% of the group walks out.
                    (0, self.live.len() * 9 / 10)
                } else {
                    (self.rng.below(3), self.rng.below(3))
                }
            }
            ScenarioKind::Oscillation => {
                // Phases of length P alternate between draining and
                // refilling seven eighths of the group, rejoin-first —
                // deep enough that the drained tree is far sparser than
                // any compaction slack tolerates.
                let p = (total / 8).max(4);
                let cohort = (n * 7 / 8).max(2);
                let step = (cohort / p).max(1);
                if (t / p).is_multiple_of(2) {
                    (0, step)
                } else {
                    (step, 0)
                }
            }
            ScenarioKind::Storm => {
                // CKCS simultaneous storms: both sides large, every
                // interval.
                let burst = (n / 16).max(8);
                (
                    burst + self.rng.below(burst / 2 + 1),
                    burst + self.rng.below(burst / 2 + 1),
                )
            }
        }
    }

    /// Selects `count` distinct leaving members by partial Fisher–Yates
    /// over the live roster, removing them from it.
    fn pick_leaves(&mut self, count: usize) -> Vec<MemberId> {
        let count = count.min(self.live.len());
        for i in 0..count {
            let j = i + self.rng.below(self.live.len() - i);
            self.live.swap(i, j);
        }
        let picked: Vec<MemberId> = self.live.drain(..count).collect();
        self.departed.extend_from_slice(&picked);
        picked
    }

    /// Builds `count` join entries: rejoin-heavy traces take from the
    /// departed pool first (same member ID, fresh individual key — a
    /// returning member never reuses key material), the rest are brand
    /// new registrations.
    fn pick_joins(&mut self, count: usize) -> Vec<(MemberId, SymKey)> {
        let mut joins = Vec::with_capacity(count);
        let rejoin_first = matches!(self.config.kind, ScenarioKind::Oscillation);
        for _ in 0..count {
            let member = if rejoin_first && !self.departed.is_empty() {
                let i = self.rng.below(self.departed.len());
                self.departed.swap_remove(i)
            } else {
                let m = self.next_member;
                self.next_member += 1;
                m
            };
            joins.push((member, self.server.mint_individual_key()));
            self.live.push(member);
        }
        joins
    }

    /// Runs one interval: plans the batch, rekeys, folds the outcome into
    /// the digest, and returns the interval's metrics.
    pub fn step(&mut self) -> IntervalStats {
        let _span = obs::span("scenario.interval");
        let (j, l) = self.plan();
        let leaves = self.pick_leaves(l);
        let joins = self.pick_joins(j);
        let (joins_n, leaves_n) = (joins.len(), leaves.len());
        obs::counter_add("scenario.joins", joins_n as u64);
        obs::counter_add("scenario.leaves", leaves_n as u64);

        let artifacts = self.server.rekey(Batch::new(joins, leaves));
        let outcome = &artifacts.outcome;
        obs::counter_add("scenario.relocations", outcome.relocations.len() as u64);

        // Fold the batch's observable result into the running digest.
        let mut d = self.digest;
        if let Some(gk) = self.server.tree().group_key() {
            for chunk in gk.as_bytes().chunks(8) {
                let mut buf = [0u8; 8];
                buf[..chunk.len()].copy_from_slice(chunk);
                d = mix(d, u64::from_le_bytes(buf));
            }
        }
        d = mix(d, outcome.nk.map_or(u64::MAX, u64::from));
        d = mix(d, self.server.tree().user_count() as u64);
        d = mix(d, outcome.encryptions.len() as u64);
        for rl in &outcome.relocations {
            d = mix(d, u64::from(rl.member));
            d = mix(d, u64::from(rl.old_id));
            d = mix(d, u64::from(rl.new_id));
        }
        self.digest = d;

        let tree = self.server.tree();
        let users = tree.user_count();
        let layout = self.config.options.protocol.layout;
        let stats = IntervalStats {
            interval: self.interval,
            users,
            joins: joins_n,
            leaves: leaves_n,
            relocations: outcome.relocations.len(),
            encryptions: outcome.encryptions.len(),
            enc_per_member: if users == 0 {
                0.0
            } else {
                outcome.encryptions.len() as f64 / users as f64
            },
            bytes_on_wire: artifacts.assignment.stats.packets * layout.enc_packet_len,
            max_depth: tree.height(),
            mean_depth: tree.mean_user_depth(),
            resident_bytes: tree.resident_bytes(),
            nk: outcome.nk.map_or(u64::MAX, u64::from),
        };
        obs::gauge_set("scenario.users", users as u64);
        obs::gauge_set("scenario.max_depth", u64::from(stats.max_depth));
        obs::gauge_set("scenario.resident_bytes", stats.resident_bytes as u64);
        self.interval += 1;
        stats
    }

    /// Runs the remaining intervals and returns the full report.
    pub fn run(mut self) -> ScenarioReport {
        let mut stats = Vec::with_capacity(self.config.intervals);
        while self.interval < self.config.intervals {
            stats.push(self.step());
        }
        ScenarioReport {
            kind: self.config.kind,
            stats,
            digest: self.digest,
        }
    }

    /// Like [`ScenarioEngine::run`], but also records every interval
    /// into `series`: the explicit [`IntervalStats`] columns plus, in
    /// obs-enabled builds, the per-interval stage-wall and counter
    /// deltas ([`obs::series::SeriesRecorder::snapshot_deltas`]).
    pub fn run_recorded(mut self, series: &mut obs::series::SeriesRecorder) -> ScenarioReport {
        let mut stats = Vec::with_capacity(self.config.intervals);
        while self.interval < self.config.intervals {
            let interval = self.step();
            record_interval(series, &interval);
            stats.push(interval);
        }
        ScenarioReport {
            kind: self.config.kind,
            stats,
            digest: self.digest,
        }
    }
}

/// Appends one scenario interval to `series` as an `obs_series/v1` row:
/// the churn/size/cost columns of [`IntervalStats`] plus whatever the
/// obs span totals and counters advanced by during the interval.
pub fn record_interval(series: &mut obs::series::SeriesRecorder, stats: &IntervalStats) {
    series.begin_interval(stats.interval as u64);
    series.set("users", stats.users as f64);
    series.set("joins", stats.joins as f64);
    series.set("leaves", stats.leaves as f64);
    series.set("relocations", stats.relocations as f64);
    series.set("encryptions", stats.encryptions as f64);
    series.set("enc_per_member", stats.enc_per_member);
    series.set("bytes_on_wire", stats.bytes_on_wire as f64);
    series.set("max_depth", f64::from(stats.max_depth));
    series.set("mean_depth", stats.mean_depth);
    series.set("resident_bytes", stats.resident_bytes as f64);
    series.snapshot_deltas();
}

/// Convenience one-shot: builds the engine and runs the whole trace.
pub fn run(config: ScenarioConfig) -> ScenarioReport {
    ScenarioEngine::new(config).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use keytree::CompactionPolicy;

    fn small(kind: ScenarioKind) -> ScenarioConfig {
        ScenarioConfig {
            initial_users: 128,
            intervals: 32,
            ..ScenarioConfig::new(kind)
        }
    }

    #[test]
    fn traces_are_deterministic() {
        for kind in ScenarioKind::ALL {
            let a = run(small(kind));
            let b = run(small(kind));
            assert_eq!(a, b, "{} not replayable", kind.name());
            assert_eq!(a.stats.len(), 32);
        }
    }

    #[test]
    fn run_recorded_matches_plain_run_and_fills_columns() {
        let mut series = obs::series::SeriesRecorder::new();
        let recorded =
            ScenarioEngine::new(small(ScenarioKind::FlashCrowd)).run_recorded(&mut series);
        let plain = run(small(ScenarioKind::FlashCrowd));
        // Recording is a pure observer: same digest, same stats.
        assert_eq!(recorded, plain);
        assert_eq!(series.len(), recorded.stats.len());
        let users = series.column("users").expect("users column");
        for (v, s) in users.iter().zip(&recorded.stats) {
            assert_eq!(*v, s.users as f64);
        }
        let bytes = series.column("bytes_on_wire").expect("bytes column");
        assert!(bytes.iter().any(|&b| b > 0.0));
        assert!(obs::json::well_formed(&series.to_json()));
    }

    #[test]
    fn different_seeds_differ() {
        let a = run(small(ScenarioKind::Storm));
        let mut cfg = small(ScenarioKind::Storm);
        cfg.seed ^= 1;
        let b = run(cfg);
        assert_ne!(a.digest, b.digest);
    }

    #[test]
    fn traces_shape_the_population_as_advertised() {
        let flash = run(small(ScenarioKind::FlashCrowd));
        let peak = flash.stats.iter().map(|s| s.users).max().unwrap();
        assert!(peak >= 200, "flash crowd never swelled: peak {peak}");

        let mass = run(small(ScenarioKind::MassDeparture));
        let min = mass.stats.iter().map(|s| s.users).min().unwrap();
        assert!(min <= 24, "mass departure never drained: min {min}");

        let storm = run(small(ScenarioKind::Storm));
        assert!(storm
            .stats
            .iter()
            .all(|s| s.joins >= 8 && s.leaves.min(s.joins) >= 1));
    }

    #[test]
    fn oscillation_rejoins_departed_members() {
        let mut engine = ScenarioEngine::new(small(ScenarioKind::Oscillation));
        let mut rejoined = false;
        let mut seen_departed: Vec<MemberId> = Vec::new();
        for _ in 0..32 {
            let before: Vec<MemberId> = engine.live.clone();
            engine.step();
            for m in &engine.live {
                if seen_departed.contains(m) && !before.contains(m) {
                    rejoined = true;
                }
            }
            seen_departed.extend(engine.departed.iter().copied());
        }
        assert!(rejoined, "oscillation trace never rejoined a member");
    }

    #[test]
    fn compaction_keeps_mass_departure_depth_bounded() {
        let mut with = small(ScenarioKind::MassDeparture);
        with.options.compaction = CompactionPolicy::DEFAULT_ON;
        let with = run(with);
        let without = run(small(ScenarioKind::MassDeparture));
        let last_with = with.stats.last().unwrap();
        let last_without = without.stats.last().unwrap();
        assert!(
            last_with.max_depth <= last_without.max_depth,
            "compaction made depth worse: {} vs {}",
            last_with.max_depth,
            last_without.max_depth
        );
        assert!(with.total_relocations() > 0);
        // Memory comes back down after the departure with compaction on.
        assert!(
            with.final_resident_bytes() < with.peak_resident_bytes(),
            "resident_bytes stayed at peak"
        );
    }
}
