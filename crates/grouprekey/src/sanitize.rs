//! The driver-side deep invariant pass (`--features sanitize`).
//!
//! When the workspace is built with the `sanitize` feature, the key server
//! and the experiment driver run every deep checker after every batch:
//!
//! * [`keytree::sanitize::verify_marking`] — structural invariants plus a
//!   brute-force re-derivation of changed keys and encryption edges;
//! * [`rekeymsg::sanitize::verify_message`] — UKA coverage, seal/unseal
//!   consistency, and wire encode/decode identity;
//! * [`rse::sanitize::verify_block_roundtrip`] — encode→erase→decode
//!   round trip over every FEC block's actual packet bodies.
//!
//! A sanitizer finding is always a bug in the pipeline, never a recoverable
//! condition, so violations panic with the checker's description.

use keytree::{Batch, KeyTree, MarkOutcome};
use rekeymsg::{BlockSet, Layout, UkaAssignment};

/// Parity shares re-encoded per block for the round-trip check; two is
/// enough to exercise a non-trivial Vandermonde submatrix on both erasure
/// patterns without dominating sim time.
const ROUNDTRIP_PARITIES: usize = 2;

/// Cross-checks one processed batch against its before/after trees.
///
/// # Panics
///
/// Panics on the first violated invariant.
pub fn check_batch(before: &KeyTree, after: &KeyTree, batch: &Batch, outcome: &MarkOutcome) {
    if let Err(e) = keytree::sanitize::verify_marking(before, after, batch, outcome) {
        panic!("sanitize: marking cross-check failed: {e}");
    }
}

/// Audits one rekey message: the sealed assignment and every FEC block.
///
/// # Panics
///
/// Panics on the first violated invariant.
pub fn check_message(
    tree: &KeyTree,
    outcome: &MarkOutcome,
    assignment: &UkaAssignment,
    blocks: &BlockSet,
    msg_seq: u64,
    layout: &Layout,
) {
    if let Err(e) = rekeymsg::sanitize::verify_message(tree, outcome, assignment, msg_seq, layout) {
        panic!("sanitize: message audit failed: {e}");
    }
    for b in 0..blocks.block_count() {
        let Some(block) = blocks.block(b) else {
            panic!("sanitize: block {b} out of range despite block_count");
        };
        let bodies: Vec<Vec<u8>> = block.packets.iter().map(|p| p.fec_body(layout)).collect();
        if let Err(e) =
            rse::sanitize::verify_block_roundtrip(blocks.k(), &bodies, ROUNDTRIP_PARITIES)
        {
            panic!("sanitize: FEC round-trip failed on block {b}: {e}");
        }
    }
}
