//! The application data path: what the group key is *for*.
//!
//! The paper's soft real-time requirement exists because application data
//! keeps flowing while a rekey message is in flight: packets encrypted
//! under the *new* group key arrive at users that have not yet received
//! that key, and must be buffered — "we would like to limit the buffer
//! size". This module provides both ends:
//!
//! * [`DataSource`] — the sender: encrypts payloads under the current
//!   group key, tagging each packet with the key *epoch* (the rekey
//!   message sequence number that installed the key);
//! * [`DataSink`] — a member: decrypts immediately when it holds the
//!   epoch's key, otherwise buffers up to a bound and drains the buffer
//!   the moment the rekey completes.
//!
//! Forward/backward secrecy carry over: a departed member never obtains
//! later epochs' keys, so buffered-or-sniffed ciphertext stays opaque.

use std::collections::{HashMap, VecDeque};

use wirecrypto::{mac, StreamCipher, SymKey};

/// One application-data packet on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataPacket {
    /// Key epoch: the rekey message sequence that installed the group key
    /// this packet is encrypted under.
    pub epoch: u64,
    /// Per-epoch packet sequence number (nonce component).
    pub seq: u64,
    /// Ciphertext.
    pub body: Vec<u8>,
    /// Authentication tag over epoch, seq and body.
    pub tag: u32,
}

fn nonce(epoch: u64, seq: u64) -> u64 {
    (epoch << 28) ^ seq ^ 0x6461_7461 // "data" domain separation
}

fn tag_input(epoch: u64, seq: u64, body: &[u8]) -> Vec<u8> {
    let mut v = Vec::with_capacity(16 + body.len());
    v.extend_from_slice(&epoch.to_le_bytes());
    v.extend_from_slice(&seq.to_le_bytes());
    v.extend_from_slice(body);
    v
}

/// The sending side of the secured group channel.
#[derive(Debug)]
pub struct DataSource {
    key: SymKey,
    epoch: u64,
    seq: u64,
}

impl DataSource {
    /// Starts sending under `key` installed at `epoch`.
    pub fn new(key: SymKey, epoch: u64) -> Self {
        DataSource { key, epoch, seq: 0 }
    }

    /// Switches to the group key installed by rekey message `epoch`.
    pub fn rekeyed(&mut self, key: SymKey, epoch: u64) {
        assert!(epoch > self.epoch, "epochs must advance");
        self.key = key;
        self.epoch = epoch;
        self.seq = 0;
    }

    /// Current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Encrypts one payload.
    pub fn encrypt(&mut self, payload: &[u8]) -> DataPacket {
        let seq = self.seq;
        self.seq += 1;
        let mut body = payload.to_vec();
        StreamCipher::apply_oneshot(&self.key, nonce(self.epoch, seq), &mut body);
        let tag = mac::mac32(&self.key, &tag_input(self.epoch, seq, &body));
        DataPacket {
            epoch: self.epoch,
            seq,
            body,
            tag,
        }
    }
}

/// What happened to a packet offered to a [`DataSink`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SinkResult {
    /// Decrypted immediately.
    Delivered(Vec<u8>),
    /// Key epoch unknown (rekey in flight): buffered for later.
    Buffered,
    /// Buffer full: the packet was dropped (and counted).
    Dropped,
    /// Authentication failed under the known epoch key.
    Rejected,
}

/// Receiver-side counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SinkStats {
    /// Payloads delivered (immediately or from the buffer).
    pub delivered: u64,
    /// Packets dropped to the buffer bound.
    pub dropped: u64,
    /// Packets rejected by authentication.
    pub rejected: u64,
    /// High-water mark of the buffer.
    pub max_buffered: usize,
}

/// The receiving side of the secured group channel for one member.
#[derive(Debug)]
pub struct DataSink {
    keys: HashMap<u64, SymKey>,
    buffer: VecDeque<DataPacket>,
    max_buffer: usize,
    /// Counters.
    pub stats: SinkStats,
}

impl DataSink {
    /// Creates a sink holding the key of `epoch`, buffering at most
    /// `max_buffer` packets of not-yet-decryptable data.
    pub fn new(epoch: u64, key: SymKey, max_buffer: usize) -> Self {
        let mut keys = HashMap::new();
        keys.insert(epoch, key);
        DataSink {
            keys,
            buffer: VecDeque::new(),
            max_buffer,
            stats: SinkStats::default(),
        }
    }

    /// Packets currently buffered.
    pub fn buffered(&self) -> usize {
        self.buffer.len()
    }

    fn decrypt(&self, pkt: &DataPacket) -> Option<Vec<u8>> {
        let key = self.keys.get(&pkt.epoch)?;
        let expect = mac::mac32(key, &tag_input(pkt.epoch, pkt.seq, &pkt.body));
        if !mac::tags_equal(expect, pkt.tag) {
            return None;
        }
        let mut body = pkt.body.clone();
        StreamCipher::apply_oneshot(key, nonce(pkt.epoch, pkt.seq), &mut body);
        Some(body)
    }

    /// Offers one received packet.
    pub fn receive(&mut self, pkt: DataPacket) -> SinkResult {
        if self.keys.contains_key(&pkt.epoch) {
            match self.decrypt(&pkt) {
                Some(body) => {
                    self.stats.delivered += 1;
                    SinkResult::Delivered(body)
                }
                None => {
                    self.stats.rejected += 1;
                    SinkResult::Rejected
                }
            }
        } else if self.buffer.len() < self.max_buffer {
            self.buffer.push_back(pkt);
            self.stats.max_buffered = self.stats.max_buffered.max(self.buffer.len());
            SinkResult::Buffered
        } else {
            self.stats.dropped += 1;
            SinkResult::Dropped
        }
    }

    /// Installs the key delivered by rekey message `epoch` and drains
    /// every buffered packet that now decrypts. Returns the drained
    /// payloads in arrival order.
    pub fn install_key(&mut self, epoch: u64, key: SymKey) -> Vec<Vec<u8>> {
        self.keys.insert(epoch, key);
        let mut drained = Vec::new();
        let mut keep = VecDeque::new();
        while let Some(pkt) = self.buffer.pop_front() {
            if self.keys.contains_key(&pkt.epoch) {
                match self.decrypt(&pkt) {
                    Some(body) => {
                        self.stats.delivered += 1;
                        drained.push(body);
                    }
                    None => self.stats.rejected += 1,
                }
            } else {
                keep.push_back(pkt);
            }
        }
        self.buffer = keep;
        drained
    }

    /// Forgets keys older than `epoch` (bounding state; old traffic can no
    /// longer be decrypted, which is usually what retention policy wants).
    pub fn expire_before(&mut self, epoch: u64) {
        self.keys.retain(|&e, _| e >= epoch);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(b: u8) -> SymKey {
        SymKey::from_bytes([b; 16])
    }

    #[test]
    fn in_epoch_traffic_flows() {
        let mut src = DataSource::new(key(1), 0);
        let mut sink = DataSink::new(0, key(1), 8);
        for i in 0..10u32 {
            let payload = format!("frame {i}");
            let pkt = src.encrypt(payload.as_bytes());
            assert_eq!(
                sink.receive(pkt),
                SinkResult::Delivered(payload.into_bytes())
            );
        }
        assert_eq!(sink.stats.delivered, 10);
        assert_eq!(sink.buffered(), 0);
    }

    #[test]
    fn rekey_in_flight_buffers_then_drains_in_order() {
        let mut src = DataSource::new(key(1), 0);
        let mut sink = DataSink::new(0, key(1), 8);
        let _ = sink.receive(src.encrypt(b"old-1"));

        // Server rekeys to epoch 1; the sink has not received the rekey
        // message yet.
        src.rekeyed(key(2), 1);
        assert_eq!(sink.receive(src.encrypt(b"new-1")), SinkResult::Buffered);
        assert_eq!(sink.receive(src.encrypt(b"new-2")), SinkResult::Buffered);
        assert_eq!(sink.buffered(), 2);

        // The rekey message arrives: the buffer drains in order.
        let drained = sink.install_key(1, key(2));
        assert_eq!(drained, vec![b"new-1".to_vec(), b"new-2".to_vec()]);
        assert_eq!(sink.buffered(), 0);
        assert_eq!(sink.stats.max_buffered, 2);

        // Subsequent traffic flows directly.
        assert_eq!(
            sink.receive(src.encrypt(b"new-3")),
            SinkResult::Delivered(b"new-3".to_vec())
        );
    }

    #[test]
    fn buffer_bound_drops_excess() {
        let mut src = DataSource::new(key(1), 0);
        let mut sink = DataSink::new(0, key(1), 2);
        src.rekeyed(key(2), 1);
        assert_eq!(sink.receive(src.encrypt(b"a")), SinkResult::Buffered);
        assert_eq!(sink.receive(src.encrypt(b"b")), SinkResult::Buffered);
        assert_eq!(sink.receive(src.encrypt(b"c")), SinkResult::Dropped);
        assert_eq!(sink.stats.dropped, 1);
        // Only the two buffered frames come out.
        assert_eq!(sink.install_key(1, key(2)).len(), 2);
    }

    #[test]
    fn departed_member_cannot_read_new_epoch() {
        let mut src = DataSource::new(key(1), 0);
        // The departed member still holds the epoch-0 key only.
        let mut departed = DataSink::new(0, key(1), 64);
        src.rekeyed(key(2), 1);
        let pkt = src.encrypt(b"secret");
        // It buffers (unknown epoch) and can never drain without the key.
        assert_eq!(departed.receive(pkt.clone()), SinkResult::Buffered);
        // Even force-installing a *wrong* key rejects by authentication.
        let drained = departed.install_key(1, key(99));
        assert!(drained.is_empty());
        assert_eq!(departed.stats.rejected, 1);
    }

    #[test]
    fn tampered_packet_rejected() {
        let mut src = DataSource::new(key(1), 0);
        let mut sink = DataSink::new(0, key(1), 8);
        let mut pkt = src.encrypt(b"payload");
        pkt.body[0] ^= 1;
        assert_eq!(sink.receive(pkt), SinkResult::Rejected);
        assert_eq!(sink.stats.rejected, 1);
    }

    #[test]
    fn cross_epoch_replay_rejected() {
        // A packet from epoch 0 replayed as epoch 1 fails (tag binds the
        // epoch).
        let mut src = DataSource::new(key(1), 0);
        let mut sink = DataSink::new(0, key(1), 8);
        let mut pkt = src.encrypt(b"x");
        pkt.epoch = 1;
        sink.install_key(1, key(2));
        assert_eq!(sink.receive(pkt), SinkResult::Rejected);
    }

    #[test]
    fn key_expiry_bounds_state() {
        let mut sink = DataSink::new(0, key(1), 8);
        sink.install_key(1, key(2));
        sink.install_key(2, key(3));
        sink.expire_before(2);
        // Epoch-0 traffic no longer decrypts.
        let mut src = DataSource::new(key(1), 0);
        let pkt = src.encrypt(b"stale");
        assert_eq!(sink.receive(pkt), SinkResult::Buffered);
    }

    #[test]
    #[should_panic(expected = "advance")]
    fn epoch_regression_panics() {
        let mut src = DataSource::new(key(1), 5);
        src.rekeyed(key(2), 5);
    }
}
