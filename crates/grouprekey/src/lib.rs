//! Scalable, reliable group rekeying — the end-to-end system.
//!
//! This is the top-level crate of the reproduction of *"Reliable group
//! rekeying: a performance analysis"* (SIGCOMM 2001) and its companion
//! protocol paper. It wires the substrates together:
//!
//! ```text
//!           keytree (LKH + marking)        wirecrypto (cipher/MAC/seal)
//!                     \                       /
//!                  rekeymsg (UKA, blocks, wire formats, estimation)
//!                     |
//!                rekeyproto (server/user state machines)   rse (FEC)
//!                     |
//!                 grouprekey  <--- drives --->  netsim (lossy multicast)
//! ```
//!
//! Main entry points:
//!
//! * [`KeyServer`] — owns the key tree, processes join/leave batches, and
//!   produces rekey messages.
//! * [`UserAgent`] — a user's key store: applies ENC/USR packets,
//!   rederives its ID, and tracks the group key.
//! * [`driver`] — a byte-faithful end-to-end driver: every packet is
//!   emitted to wire bytes, crosses the simulated lossy network, is parsed
//!   and cryptographically processed by user agents. Used by integration
//!   tests and examples.
//! * [`sim`] — the high-throughput transport simulator used to reproduce
//!   the paper's figures: identical protocol logic, but users track share
//!   *counts* instead of share *bytes* (Reed–Solomon decodability depends
//!   only on which shares arrived, a property the `rse` crate proves).
//! * [`experiment`] — parameterised runners that regenerate each figure.
//! * [`frontend`] — authenticated join/leave requests and per-interval
//!   batch collection (the key-management component's request path).
//! * [`datapath`] — the application data channel keyed by group-key
//!   epoch, with bounded buffering across rekeys (the soft real-time
//!   requirement's reason to exist).
//!
//! # Quickstart
//!
//! ```
//! use grouprekey::{KeyServer, ServerOptions};
//! use keytree::Batch;
//!
//! // A group of 64 users under a degree-4 key tree.
//! let mut server = KeyServer::bootstrap(64, ServerOptions::default());
//! let key0 = server.tree().group_key().unwrap();
//!
//! // One user leaves; the server builds the rekey message.
//! let artifacts = server.rekey(Batch::new(vec![], vec![17]));
//! assert!(artifacts.assignment.stats.packets >= 1);
//! assert_ne!(server.tree().group_key().unwrap(), key0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod agent;
/// The application data path: group-key encryption of app traffic.
pub mod datapath;
/// Byte-faithful end-to-end driver: server, network, and user agents.
pub mod driver;
/// Parameterised experiment runners that regenerate the paper's figures.
pub mod experiment;
/// The key-management front end: authenticated join/leave requests.
pub mod frontend;
mod metrics;
/// Deep invariant pass run after every batch (`--features sanitize`).
#[cfg(feature = "sanitize")]
pub mod sanitize;
/// Trace-driven adversarial membership scenarios.
pub mod scenario;
mod server;
/// High-throughput transport simulation.
pub mod sim;

pub use agent::{ApplyError, UserAgent};
pub use metrics::MessageReport;
pub use server::{KeyServer, PipelinePolicy, RekeyArtifacts, ServerOptions};
