//! Parameterised experiment runners that regenerate the paper's figures.
//!
//! Two families:
//!
//! * **Workload experiments** (Figures 6–7 and the SIGCOMM-axis tables):
//!   key-tree/marking/UKA statistics, no transport — [`workload_stats`],
//!   [`encryption_cost_batch`], [`encryption_cost_individual`].
//! * **Transport experiments** (Figures 8–21): full protocol simulation
//!   over the lossy network — [`ExperimentParams`] + [`ExperimentRun`].
//!
//! Per the paper, every transport message uses a *fresh* full balanced
//! tree of `n` users with `J` joins and `L` uniformly chosen leaves, while
//! the network loss processes, the adaptive controller state (`rho`,
//! `numNACK`) and the clock persist across the message sequence.

use keytree::{Batch, KeyTree, MemberId};
use netsim::{Network, NetworkConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rekeymsg::{assign, Layout, UkaAssignment};
use rekeyproto::{ServerConfig, ServerController};
use wirecrypto::{KeyGen, SymKey};

use crate::metrics::MessageReport;
use crate::sim::{run_message_transport_with, SimConfig, SimUser, TransportScratch};

/// Averaged key-management workload statistics for one `(N, d, J, L)`
/// point.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkloadPoint {
    /// Mean number of ENC packets per rekey message.
    pub enc_packets: f64,
    /// Mean duplication overhead of UKA.
    pub duplication: f64,
    /// Mean encryptions in the rekey subtree.
    pub encryptions: f64,
    /// Mean encryptions a single user needs (sparseness metric).
    pub per_user_need: f64,
}

/// Builds a fresh balanced tree and processes one `(J, L)` batch with
/// uniformly chosen leavers, returning the tree and outcome.
fn one_batch(
    n: u32,
    degree: u32,
    j: usize,
    l: usize,
    kg: &mut KeyGen,
    rng: &mut SmallRng,
) -> (KeyTree, keytree::MarkOutcome) {
    let mut tree = KeyTree::balanced(n, degree, kg);
    let l = l.min(n as usize);
    // Uniform leavers: partial Fisher–Yates over member ids.
    let mut pool: Vec<MemberId> = (0..n).collect();
    for i in 0..l {
        let pick = rng.gen_range(i..pool.len());
        pool.swap(i, pick);
    }
    let leaves: Vec<MemberId> = pool[..l].to_vec();
    let joins: Vec<(MemberId, SymKey)> = (0..j as u32).map(|i| (n + i, kg.next_key())).collect();
    let batch = Batch::new(joins, leaves);
    #[cfg(feature = "sanitize")]
    let before = tree.clone();
    let outcome = tree.process_batch(&batch, kg);
    #[cfg(feature = "sanitize")]
    crate::sanitize::check_batch(&before, &tree, &batch, &outcome);
    (tree, outcome)
}

/// Workload statistics averaged over `runs` random batches (Figures 6, 7).
pub fn workload_stats(
    n: u32,
    degree: u32,
    j: usize,
    l: usize,
    runs: usize,
    seed: u64,
    layout: &Layout,
) -> WorkloadPoint {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut acc = WorkloadPoint::default();
    for run in 0..runs {
        let mut kg = KeyGen::from_seed(seed ^ (run as u64).wrapping_mul(0x9E37_79B9));
        let (tree, outcome) = one_batch(n, degree, j, l, &mut kg, &mut rng);
        // Workload grids stay within DEFAULT layout capacity; an
        // impossible layout would surface as zero packets here, and loudly
        // in the sealed paths.
        let plans = assign::plan(&tree, &outcome, layout).unwrap_or_default();
        let emitted: usize = plans.iter().map(|p| p.enc_indices.len()).sum();
        let distinct = outcome.encryptions.len();
        acc.enc_packets += plans.len() as f64;
        acc.encryptions += distinct as f64;
        if distinct > 0 {
            acc.duplication += (emitted - distinct) as f64 / distinct as f64;
        }
        let users = tree.user_count();
        if users > 0 {
            let total_needs: usize = tree
                .user_ids()
                .iter()
                .map(|&u| outcome.encryptions_for_user(u, degree).len())
                .sum();
            acc.per_user_need += total_needs as f64 / users as f64;
        }
    }
    let r = runs as f64;
    WorkloadPoint {
        enc_packets: acc.enc_packets / r,
        duplication: acc.duplication / r,
        encryptions: acc.encryptions / r,
        per_user_need: acc.per_user_need / r,
    }
}

/// Mean encryptions per rekey interval when the whole batch is processed
/// at once (the batch-rekeying cost, SIGCOMM axis).
pub fn encryption_cost_batch(
    n: u32,
    degree: u32,
    j: usize,
    l: usize,
    runs: usize,
    seed: u64,
) -> f64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut total = 0usize;
    for run in 0..runs {
        let mut kg = KeyGen::from_seed(seed ^ (run as u64).wrapping_mul(31));
        let (_tree, outcome) = one_batch(n, degree, j, l, &mut kg, &mut rng);
        total += outcome.encryptions.len();
    }
    total as f64 / runs as f64
}

/// Mean encryptions when every request is processed individually (one
/// rekey message per join/leave — the cost batching saves, SIGCOMM axis).
pub fn encryption_cost_individual(
    n: u32,
    degree: u32,
    j: usize,
    l: usize,
    runs: usize,
    seed: u64,
) -> f64 {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut total = 0usize;
    for run in 0..runs {
        let mut kg = KeyGen::from_seed(seed ^ (run as u64).wrapping_mul(131));
        let mut tree = KeyTree::balanced(n, degree, &mut kg);
        let l = l.min(n as usize);
        let mut pool: Vec<MemberId> = (0..n).collect();
        for i in 0..l {
            let pick = rng.gen_range(i..pool.len());
            pool.swap(i, pick);
        }
        pool.truncate(l);
        for member in pool {
            let outcome = tree.process_batch(&Batch::new(vec![], vec![member]), &mut kg);
            total += outcome.encryptions.len();
        }
        for i in 0..j as u32 {
            let key = kg.next_key();
            let outcome = tree.process_batch(&Batch::new(vec![(n + i, key)], vec![]), &mut kg);
            total += outcome.encryptions.len();
        }
    }
    total as f64 / runs as f64
}

/// Parameters of a transport experiment.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentParams {
    /// Group size at the start of each message.
    pub n: u32,
    /// Key-tree degree.
    pub degree: u32,
    /// Joins per message.
    pub joins: usize,
    /// Leaves per message.
    pub leaves: usize,
    /// Server protocol configuration.
    pub protocol: ServerConfig,
    /// Network topology/loss configuration.
    pub net: NetworkConfig,
    /// Simulation knobs (deadline etc.).
    pub sim: SimConfig,
    /// Number of rekey messages to simulate.
    pub messages: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for ExperimentParams {
    fn default() -> Self {
        let n = 4096u32;
        ExperimentParams {
            n,
            degree: 4,
            joins: 0,
            leaves: (n / 4) as usize,
            protocol: ServerConfig::default(),
            net: NetworkConfig::default(),
            sim: SimConfig::default(),
            messages: 25,
            seed: 42,
        }
    }
}

impl ExperimentParams {
    /// Multicast-only variant: unicast disabled so the bandwidth-overhead
    /// metric counts every packet needed for full recovery (Figures 8–10,
    /// 16–20).
    pub fn multicast_only(mut self) -> Self {
        self.protocol.max_multicast_rounds = usize::MAX;
        self
    }

    /// Scales `n`-dependent fields consistently.
    pub fn with_n(mut self, n: u32) -> Self {
        self.n = n;
        self.leaves = (n / 4) as usize;
        self.net.n_users = n as usize + self.joins;
        self
    }
}

/// A running sequence of rekey messages with persistent network and
/// controller state.
pub struct ExperimentRun {
    params: ExperimentParams,
    net: Network,
    controller: ServerController,
    rng: SmallRng,
    clock: f64,
    msg_seq: u64,
    users: Vec<SimUser>,
    scratch: TransportScratch,
}

impl ExperimentRun {
    /// Initialises the network and controller.
    pub fn new(params: ExperimentParams) -> Self {
        let mut net_cfg = params.net;
        net_cfg.n_users = params.n as usize + params.joins;
        net_cfg.seed = params.seed;
        let mut proto = params.protocol;
        proto.seed = params.seed ^ 0xABCD;
        ExperimentRun {
            net: Network::new(net_cfg),
            controller: ServerController::new(proto),
            rng: SmallRng::seed_from_u64(params.seed ^ 0x00C0_FFEE),
            clock: 0.0,
            msg_seq: 0,
            users: Vec::new(),
            scratch: TransportScratch::new(),
            params,
        }
    }

    /// Current adaptive state (rho, numNACK).
    pub fn controller_state(&self) -> (f64, usize) {
        (self.controller.rho, self.controller.num_nack)
    }

    /// Simulates one rekey message; returns its report.
    pub fn step(&mut self) -> MessageReport {
        self.msg_seq += 1;
        let p = &self.params;
        let mut kg = KeyGen::from_seed(self.rng.gen());

        let (tree, outcome) = one_batch(p.n, p.degree, p.joins, p.leaves, &mut kg, &mut self.rng);
        let assignment = UkaAssignment::build(&tree, &outcome, self.msg_seq, &p.protocol.layout)
            .unwrap_or_else(|e| {
                unreachable!("marking outcome always seals against its own tree: {e}")
            });
        let usr_hint = p.protocol.layout.usr_packet_len(tree.height() as usize + 1);

        let num_nack_used = self.controller.num_nack;
        let mut session = self
            .controller
            .begin_message(assignment.packets.clone(), usr_hint);
        #[cfg(feature = "sanitize")]
        crate::sanitize::check_message(
            &tree,
            &outcome,
            &assignment,
            session.blocks(),
            self.msg_seq,
            &p.protocol.layout,
        );

        // One SimUser per current member; network index = enumeration
        // order (loss classes persist per index across messages).
        let k = p.protocol.block_size;
        let mut members = tree.member_ids();
        members.sort_unstable();
        self.users.clear();
        self.users
            .extend(members.iter().enumerate().map(|(idx, &m)| {
                let Some(uid) = tree.node_of_member(m) else {
                    unreachable!("member {m} listed by its own tree");
                };
                let true_block = assignment.packet_of_user(uid).map(|pi| (pi / k) as u8);
                SimUser::new(idx, uid, k, p.degree, true_block)
            }));

        let stats = run_message_transport_with(
            &mut self.net,
            &mut self.clock,
            &mut session,
            &mut self.users,
            &p.sim,
            &mut self.scratch,
        );

        self.controller
            .absorb_feedback(&session, stats.missed_deadline);

        MessageReport {
            msg_seq: self.msg_seq,
            enc_packets: session.real_enc_count(),
            blocks: session.blocks().block_count(),
            rho: session.rho(),
            num_nack: num_nack_used,
            nacks_round1: session.first_round_nack_count(),
            bandwidth_overhead: session.bandwidth_overhead(),
            server_rounds: session.stats.multicast_rounds,
            rounds_histogram: stats.rounds_histogram,
            unserved_users: stats.unserved,
            missed_deadline: stats.missed_deadline,
            usr_packets: session.stats.usr_sent,
            usr_bytes: session.stats.usr_bytes,
            duplication_overhead: assignment.stats.duplication_overhead(),
            encoding_units: rse::cost::total_encoding_units(
                k,
                &[session.stats.parity_multicast as u64],
            ),
        }
    }

    /// Runs the full message sequence.
    pub fn run(mut self) -> Vec<MessageReport> {
        (0..self.params.messages).map(|_| self.step()).collect()
    }
}

/// Convenience: run a whole experiment from parameters.
pub fn run_experiment(params: ExperimentParams) -> Vec<MessageReport> {
    ExperimentRun::new(params).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_params() -> ExperimentParams {
        ExperimentParams {
            n: 256,
            leaves: 64,
            messages: 3,
            net: NetworkConfig {
                n_users: 256,
                ..NetworkConfig::default()
            },
            ..ExperimentParams::default()
        }
    }

    #[test]
    fn workload_point_sane() {
        let p = workload_stats(256, 4, 0, 64, 3, 1, &Layout::DEFAULT);
        assert!(p.enc_packets >= 1.0);
        assert!(p.encryptions > 0.0);
        assert!((0.0..1.0).contains(&p.duplication));
        // Sparseness: a user needs about height-many encryptions, far
        // fewer than the message carries.
        assert!(p.per_user_need < 10.0);
        assert!(p.per_user_need >= 1.0);
    }

    #[test]
    fn workload_deterministic() {
        let a = workload_stats(128, 4, 8, 32, 2, 9, &Layout::DEFAULT);
        let b = workload_stats(128, 4, 8, 32, 2, 9, &Layout::DEFAULT);
        assert_eq!(a.enc_packets, b.enc_packets);
        assert_eq!(a.duplication, b.duplication);
    }

    #[test]
    fn batch_beats_individual() {
        let batch = encryption_cost_batch(256, 4, 0, 64, 2, 5);
        let individual = encryption_cost_individual(256, 4, 0, 64, 2, 5);
        assert!(
            batch < individual,
            "batch {batch} should cost less than individual {individual}"
        );
    }

    #[test]
    fn transport_run_serves_everyone() {
        let reports = run_experiment(tiny_params());
        assert_eq!(reports.len(), 3);
        for r in &reports {
            assert_eq!(r.unserved_users, 0, "msg {}: unserved users", r.msg_seq);
            assert!(r.bandwidth_overhead >= 1.0);
            let served: usize = r.rounds_histogram.iter().sum();
            assert_eq!(served, 256 - 64, "msg {}: all users counted", r.msg_seq);
        }
    }

    #[test]
    fn transport_run_deterministic() {
        let a = run_experiment(tiny_params());
        let b = run_experiment(tiny_params());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.nacks_round1, y.nacks_round1);
            assert_eq!(x.bandwidth_overhead, y.bandwidth_overhead);
            assert_eq!(x.rounds_histogram, y.rounds_histogram);
        }
    }

    #[test]
    fn adaptive_rho_reacts_to_nacks() {
        let mut params = tiny_params();
        params.messages = 10;
        params.protocol.initial_rho = 1.0;
        params.protocol.initial_num_nack = 2;
        let mut run = ExperimentRun::new(params);
        let first = run.step();
        // With rho = 1 and lossy links, NACKs exceed the tiny target, so
        // rho must rise for the next message.
        if first.nacks_round1 > 2 {
            let (rho, _) = run.controller_state();
            assert!(rho > 1.0, "rho should have increased, got {rho}");
        }
    }

    #[test]
    fn multicast_only_uses_no_unicast() {
        let params = tiny_params().multicast_only();
        let reports = run_experiment(params);
        for r in &reports {
            assert_eq!(r.usr_packets, 0);
            assert_eq!(r.unserved_users, 0);
        }
    }
}
