//! Streaming-vs-barrier bit-identity gate: with the pipeline enabled,
//! [`KeyServer::rekey`] must produce byte-identical artifacts — marking
//! outcome, sealed ENC packets, FEC blocks and parity bytes, USR packets
//! and group key — at any worker count, chunk size, channel capacity, and
//! seeded adversarial `taskpool` schedule. The barrier path at one worker
//! is the reference; everything else must collapse onto it.

use grouprekey::{KeyServer, PipelinePolicy, ServerOptions};
use keytree::{Batch, MemberId};
use proptest::prelude::*;
use rekeymsg::UsrPacket;
use wirecrypto::SymKey;

/// Everything observable about one rekey message, including the FEC
/// block contents and two minted parity packets per block (which prove
/// the bodies handed to the Reed–Solomon encoders match byte for byte).
#[derive(Debug, PartialEq)]
struct MessageFingerprint {
    outcome: keytree::MarkOutcome,
    packets: Vec<rekeymsg::EncPacket>,
    block_packets: Vec<Vec<rekeymsg::EncPacket>>,
    parities: Vec<Vec<rekeymsg::ParityPacket>>,
    usr: Vec<Option<UsrPacket>>,
    group_key: Option<SymKey>,
}

/// Bootstrap `n` users, run a leave-heavy then a join-heavy batch
/// (forcing splits), fingerprinting each message.
fn run_stream(
    workers: usize,
    sched_seed: Option<u64>,
    n: u32,
    pipeline: PipelinePolicy,
) -> Vec<MessageFingerprint> {
    let body = || {
        let options = ServerOptions {
            pipeline,
            ..ServerOptions::default()
        };
        let mut server = KeyServer::bootstrap(n, options);
        let batches = vec![
            Batch::new(vec![], (0..n / 4).map(|i| i * 3 % n).collect()),
            Batch::new(
                (0..n / 2)
                    .map(|i| (n + i, server.mint_individual_key()))
                    .collect(),
                vec![1, 2],
            ),
        ];
        batches
            .into_iter()
            .map(|batch| {
                let artifacts = server.rekey(batch);
                let members: Vec<MemberId> = server.tree().member_ids();
                let usr = server.usr_packets_bulk(&members);
                let blocks = artifacts.session.blocks();
                let block_packets: Vec<Vec<rekeymsg::EncPacket>> = (0..blocks.block_count())
                    .map(|b| blocks.block(b).unwrap().packets.clone())
                    .collect();
                // Minting advances encoder state, so work on a clone: the
                // session itself stays pristine.
                let parities = blocks
                    .clone()
                    .mint_parities_many(&vec![2; block_packets.len()])
                    .unwrap();
                MessageFingerprint {
                    outcome: (*artifacts.outcome).clone(),
                    packets: artifacts.assignment.packets.clone(),
                    block_packets,
                    parities,
                    usr,
                    group_key: server.tree().group_key(),
                }
            })
            .collect()
    };
    taskpool::with_workers(workers, || match sched_seed {
        Some(seed) => taskpool::with_schedule(seed, body),
        None => body(),
    })
}

#[test]
fn streamed_rekey_matches_barrier_under_perturbation() {
    let n = 256;
    let baseline = run_stream(1, None, n, PipelinePolicy::DISABLED);
    for seed in 0..8u64 {
        for workers in [1, 2, 4] {
            let streamed = run_stream(workers, Some(seed), n, PipelinePolicy::DEFAULT_ON);
            assert_eq!(baseline, streamed, "seed={seed}, workers={workers}");
            // The barrier path itself must also be schedule-invariant
            // with the new deferred plumbing available (spot checks; the
            // full sweep lives in sched_perturb.rs).
            if seed < 2 {
                let barrier = run_stream(workers, Some(seed), n, PipelinePolicy::DISABLED);
                assert_eq!(baseline, barrier, "barrier seed={seed}, workers={workers}");
            }
        }
    }
}

#[test]
fn workers_one_streamed_is_identical_too() {
    // The degenerate sequential pipeline (no threads spawned) must also
    // be exactly the barrier bytes.
    let baseline = run_stream(1, None, 128, PipelinePolicy::DISABLED);
    let streamed = run_stream(1, None, 128, PipelinePolicy::DEFAULT_ON);
    assert_eq!(baseline, streamed);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random group shapes × random churn × random pipeline tuning: the
    /// streamed fingerprints equal the barrier fingerprints.
    #[test]
    fn streamed_identity_over_random_tunings(
        n in 4u32..200,
        d in prop::sample::select(vec![2u32, 3, 4, 8]),
        joins in 0usize..40,
        leave_stride in 2u32..9,
        chunk_edges in 1usize..130,
        channel_capacity in 1usize..6,
        workers in 1usize..5,
        seed in any::<u64>(),
    ) {
        let run = |pipeline: PipelinePolicy, w: usize| {
            taskpool::with_workers(w, || taskpool::with_schedule(seed, || {
                let options = ServerOptions {
                    degree: d,
                    pipeline,
                    ..ServerOptions::default()
                };
                let mut server = KeyServer::bootstrap(n, options);
                let leaves: Vec<MemberId> =
                    (0..n).filter(|m| m % leave_stride == 0).collect();
                let joins: Vec<(MemberId, SymKey)> = (0..joins as u32)
                    .map(|i| (n + i, server.mint_individual_key()))
                    .collect();
                let artifacts = server.rekey(Batch::new(joins, leaves));
                (
                    (*artifacts.outcome).clone(),
                    artifacts.assignment.packets.clone(),
                    server.tree().group_key(),
                )
            }))
        };
        let barrier = run(PipelinePolicy::DISABLED, 1);
        let streamed = run(
            PipelinePolicy {
                enabled: true,
                chunk_edges,
                channel_capacity,
            },
            workers,
        );
        prop_assert_eq!(barrier, streamed);
    }
}
