//! The parallelized rekey pipeline must be invisible in its artifacts:
//! fresh-key minting, ENC sealing, and USR derivation fan out across
//! `taskpool` workers, and every byte they produce must be identical to
//! the sequential path at any `REKEY_THREADS`.

use grouprekey::{KeyServer, ServerOptions};
use keytree::{Batch, MemberId};
use rekeymsg::UsrPacket;
use wirecrypto::SymKey;

/// One churned message stream: bootstrap N users, run a leave-heavy batch,
/// then a join-heavy batch (forcing splits), collecting everything
/// observable about each rekey.
#[allow(clippy::type_complexity)]
fn run_stream(
    workers: usize,
    n: u32,
) -> Vec<(
    keytree::MarkOutcome,
    Vec<rekeymsg::EncPacket>,
    Vec<Option<UsrPacket>>,
    Option<SymKey>,
)> {
    taskpool::with_workers(workers, || {
        let mut server = KeyServer::bootstrap(n, ServerOptions::default());
        let batches = vec![
            Batch::new(vec![], (0..n / 4).map(|i| i * 3 % n).collect()),
            Batch::new(
                (0..n / 2)
                    .map(|i| (n + i, server.mint_individual_key()))
                    .collect(),
                vec![1, 2],
            ),
        ];
        batches
            .into_iter()
            .map(|batch| {
                let artifacts = server.rekey(batch);
                let members: Vec<MemberId> = server.tree().member_ids();
                let usr = server.usr_packets_bulk(&members);
                (
                    (*artifacts.outcome).clone(),
                    artifacts.assignment.packets.clone(),
                    usr,
                    server.tree().group_key(),
                )
            })
            .collect()
    })
}

#[test]
fn rekey_artifacts_are_worker_count_invariant() {
    let sequential = run_stream(1, 256);
    for workers in [2, 4] {
        let parallel = run_stream(workers, 256);
        assert_eq!(sequential, parallel, "workers={workers}");
    }
}
