//! Schedule-perturbation bit-identity gate: the rekey pipeline's
//! artifacts must be byte-identical under seeded adversarial `taskpool`
//! schedules — shuffled task pickup plus injected yield points — at any
//! worker count. This is the dynamic check behind the static
//! `determinism-unordered-iter` rule: where xcheck proves no unordered
//! container feeds an ordered output, this test lets actual hostile
//! interleavings try to break the artifact stream.

use grouprekey::{KeyServer, ServerOptions};
use keytree::{Batch, MemberId};
use rekeymsg::UsrPacket;
use wirecrypto::SymKey;

/// One churned message stream under an optional perturbation seed:
/// bootstrap N users, run a leave-heavy batch, then a join-heavy batch
/// (forcing splits), collecting everything observable about each rekey.
#[allow(clippy::type_complexity)]
fn run_stream(
    workers: usize,
    sched_seed: Option<u64>,
    n: u32,
) -> Vec<(
    keytree::MarkOutcome,
    Vec<rekeymsg::EncPacket>,
    Vec<Option<UsrPacket>>,
    Option<SymKey>,
)> {
    let body = || {
        let mut server = KeyServer::bootstrap(n, ServerOptions::default());
        let batches = vec![
            Batch::new(vec![], (0..n / 4).map(|i| i * 3 % n).collect()),
            Batch::new(
                (0..n / 2)
                    .map(|i| (n + i, server.mint_individual_key()))
                    .collect(),
                vec![1, 2],
            ),
        ];
        batches
            .into_iter()
            .map(|batch| {
                let artifacts = server.rekey(batch);
                let members: Vec<MemberId> = server.tree().member_ids();
                let usr = server.usr_packets_bulk(&members);
                (
                    (*artifacts.outcome).clone(),
                    artifacts.assignment.packets.clone(),
                    usr,
                    server.tree().group_key(),
                )
            })
            .collect()
    };
    taskpool::with_workers(workers, || match sched_seed {
        Some(seed) => taskpool::with_schedule(seed, body),
        None => body(),
    })
}

#[test]
fn rekey_artifacts_are_schedule_invariant() {
    let baseline = run_stream(1, None, 256);
    for seed in 0..8u64 {
        for workers in [1, 4] {
            let perturbed = run_stream(workers, Some(seed), 256);
            assert_eq!(baseline, perturbed, "seed={seed}, workers={workers}");
        }
    }
}
