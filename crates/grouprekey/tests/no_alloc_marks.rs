//! Dynamic half of the `// xcheck: no_alloc` contract for the transport
//! simulation's per-user hot paths: once a rekey message is underway
//! (share bitsets sized, block-ID estimator constructed, NACK scratch
//! warm), [`SimUser::receive`] and [`SimUser::end_of_round_into`] must
//! perform zero heap allocations.

use grouprekey::sim::SimUser;
use rekeymsg::{EncPacket, NackPacket, Packet, ParityPacket};

#[global_allocator]
static ALLOC: xcheck_rt::CountingAlloc = xcheck_rt::CountingAlloc;

fn enc(block_id: u8, seq: u8, frm_id: u16, to_id: u16) -> Packet {
    Packet::Enc(EncPacket {
        msg_id: 1,
        block_id,
        seq,
        duplicate: false,
        max_kid: 63,
        frm_id,
        to_id,
        entries: Vec::new(),
    })
}

fn parity(block_id: u8, seq: u8) -> Packet {
    Packet::Parity(ParityPacket {
        msg_id: 1,
        block_id,
        seq,
        body: Vec::new(),
    })
}

#[test]
fn receive_and_end_of_round_into_are_allocation_free_in_steady_state() {
    xcheck_rt::assert_counting();

    // User at node 500 with FEC block size 8; its ENC packet lives in
    // block 3, which we never deliver, so the user stays busy collecting
    // shares and NACKing — the transport steady state.
    let k = 8;
    let mut user = SimUser::new(0, 500, k, 4, Some(3));

    // Warm-up: packets for every block the rounds below will touch size
    // the share bitsets, and the first ENC observation constructs the
    // block-ID estimator. Build all packets up front — constructing a
    // `Packet` allocates by design; receiving it must not.
    let warm: Vec<Packet> = vec![enc(0, 0, 100, 120), enc(4, 1, 600, 650), parity(4, 0)];
    for pkt in &warm {
        user.receive(pkt, 0);
    }
    let mut nack = NackPacket {
        msg_id: 0,
        requests: Vec::new(),
    };
    assert!(
        user.end_of_round_into(0, &mut nack),
        "unsatisfied user NACKs"
    );

    // Steady state: stream more shares and round boundaries.
    let stream: Vec<Packet> = (0u8..16)
        .map(|i| {
            if i % 2 == 0 {
                enc(i % 5, i / 2, 600, 650)
            } else {
                parity(i % 5, i)
            }
        })
        .collect();
    for (round, pkt) in stream.iter().enumerate() {
        xcheck_rt::assert_zero_alloc("SimUser::receive", || user.receive(pkt, round + 1));
        let nacked = xcheck_rt::assert_zero_alloc("SimUser::end_of_round_into", || {
            user.end_of_round_into(round + 1, &mut nack)
        });
        assert!(nacked, "still missing block 3, must keep NACKing");
        assert!(!nack.requests.is_empty());
    }
    assert!(!user.is_satisfied());

    // Delivering k distinct shares of the true block satisfies the user.
    for seq in 0..k as u8 {
        let pkt = parity(3, seq);
        user.receive(&pkt, 20);
    }
    assert!(!user.end_of_round_into(20, &mut nack), "decoded: no NACK");
    assert!(user.is_satisfied());
}
