//! Property tests for the application data path: arbitrary interleavings
//! of frames, rekeys, and key arrivals must deliver every frame exactly
//! once, in order, to every member that holds the keys — and never to one
//! that does not.

use grouprekey::datapath::{DataSink, DataSource, SinkResult};
use proptest::prelude::*;
use wirecrypto::{KeyGen, SymKey};

/// A step of the generated schedule.
#[derive(Debug, Clone)]
enum Step {
    /// Send `n` frames under the current epoch.
    Frames(u8),
    /// Rekey: the source flips to a new epoch immediately.
    Rekey,
    /// The sink receives the key for epoch `current - lag` (late rekey
    /// delivery); no-op if that epoch's key was already installed.
    DeliverKey,
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    proptest::collection::vec(
        prop_oneof![
            (1u8..8).prop_map(Step::Frames),
            Just(Step::Rekey),
            Just(Step::DeliverKey),
        ],
        1..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn frames_deliver_exactly_once_in_order(script in steps(), seed in any::<u64>()) {
        let mut kg = KeyGen::from_seed(seed);
        let key0 = kg.next_key();
        let mut source = DataSource::new(key0, 0);
        // A generous buffer so nothing is dropped in this test.
        let mut sink = DataSink::new(0, key0, 4096);

        let mut epoch = 0u64;
        let mut keys: Vec<SymKey> = vec![key0];
        let mut sink_has_through = 0u64; // highest epoch key the sink holds
        let mut sent = 0u64;
        let mut delivered: Vec<u64> = Vec::new();

        for step in script {
            match step {
                Step::Frames(n) => {
                    for _ in 0..n {
                        let frame_no = sent;
                        sent += 1;
                        let pkt = source.encrypt(&frame_no.to_le_bytes());
                        match sink.receive(pkt) {
                            SinkResult::Delivered(body) => {
                                prop_assert!(epoch <= sink_has_through);
                                delivered.push(u64::from_le_bytes(
                                    body.try_into().expect("8 bytes"),
                                ));
                            }
                            SinkResult::Buffered => {
                                prop_assert!(epoch > sink_has_through);
                            }
                            other => prop_assert!(false, "unexpected {other:?}"),
                        }
                    }
                }
                Step::Rekey => {
                    epoch += 1;
                    let k = kg.next_key();
                    keys.push(k);
                    source.rekeyed(k, epoch);
                }
                Step::DeliverKey => {
                    if sink_has_through < epoch {
                        sink_has_through += 1;
                        let drained = sink.install_key(
                            sink_has_through,
                            keys[sink_has_through as usize],
                        );
                        for body in drained {
                            delivered.push(u64::from_le_bytes(
                                body.try_into().expect("8 bytes"),
                            ));
                        }
                    }
                }
            }
        }
        // Catch up on all missing keys.
        while sink_has_through < epoch {
            sink_has_through += 1;
            for body in sink.install_key(sink_has_through, keys[sink_has_through as usize]) {
                delivered.push(u64::from_le_bytes(body.try_into().expect("8 bytes")));
            }
        }

        // Exactly once, in order.
        prop_assert_eq!(delivered.len() as u64, sent);
        for (i, &f) in delivered.iter().enumerate() {
            prop_assert_eq!(f, i as u64, "frame order broken at {}", i);
        }
        prop_assert_eq!(sink.buffered(), 0);
        prop_assert_eq!(sink.stats.rejected, 0);
        prop_assert_eq!(sink.stats.dropped, 0);
    }

    /// An eavesdropper holding only stale keys never decrypts anything
    /// sent after its epoch.
    #[test]
    fn stale_keys_decrypt_nothing_newer(n_epochs in 1u64..6, frames in 1u8..10, seed in any::<u64>()) {
        let mut kg = KeyGen::from_seed(seed);
        let key0 = kg.next_key();
        let mut source = DataSource::new(key0, 0);
        let mut eavesdropper = DataSink::new(0, key0, 4096);

        for e in 1..=n_epochs {
            source.rekeyed(kg.next_key(), e);
            for _ in 0..frames {
                let pkt = source.encrypt(b"confidential");
                prop_assert_eq!(eavesdropper.receive(pkt), SinkResult::Buffered);
            }
        }
        // Forcing random wrong keys never authenticates.
        for e in 1..=n_epochs {
            let drained = eavesdropper.install_key(e, kg.next_key());
            prop_assert!(drained.is_empty());
        }
        prop_assert_eq!(eavesdropper.stats.delivered, 0);
    }
}
