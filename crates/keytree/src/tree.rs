//! The [`KeyTree`] container: storage, construction, lookup, invariants.

use std::collections::HashMap;

use wirecrypto::{KeyGen, SymKey};

use crate::ident;
use crate::node::{MemberId, Node, NodeId};

/// A logical key hierarchy for one secure group.
///
/// Storage is a dense array indexed by node ID; slots that fall outside the
/// live tree are [`Node::N`]. The tree maintains the index `member -> u-node
/// id` and the paper's structural invariants (checked by
/// [`KeyTree::check_invariants`] in tests):
///
/// 1. every u-node's ancestors are all k-nodes;
/// 2. Lemma 4.1: every k-node ID is smaller than every u-node ID;
/// 3. every u-node ID is at most `d * nk + d` where `nk` is the maximum
///    k-node ID.
#[derive(Debug, Clone)]
pub struct KeyTree {
    degree: u32,
    nodes: Vec<Node>,
    members: HashMap<MemberId, NodeId>,
}

impl KeyTree {
    /// Creates an empty tree of the given degree (`d >= 2`).
    pub fn new(degree: u32) -> Self {
        assert!(degree >= 2, "key tree degree must be at least 2");
        KeyTree {
            degree,
            nodes: vec![Node::N],
            members: HashMap::new(),
        }
    }

    /// Builds a populated tree of minimum height for `n_users` users with
    /// member IDs `0 .. n_users`, all u-nodes at the deepest level filled
    /// left to right — the "full and balanced" starting point used
    /// throughout the paper's experiments (exactly full when `n_users` is a
    /// power of `degree`).
    pub fn balanced(n_users: u32, degree: u32, keygen: &mut KeyGen) -> Self {
        let mut tree = KeyTree::new(degree);
        if n_users == 0 {
            return tree;
        }
        let d = degree as u64;
        // Height: smallest h >= 1 with d^h >= n_users (at least 1 so that
        // even a single-user group has a root k-node above the u-node).
        let mut height = 1u32;
        let mut capacity = d;
        while capacity < n_users as u64 {
            capacity *= d;
            height += 1;
        }
        // First leaf ID = (d^h - 1) / (d - 1).
        let first_leaf = (d.pow(height) - 1) / (d - 1);
        let last_user = first_leaf + n_users as u64 - 1;
        tree.ensure_capacity(last_user as NodeId);

        // Place users.
        for i in 0..n_users {
            let id = (first_leaf + i as u64) as NodeId;
            let key = keygen.next_key();
            tree.nodes[id as usize] = Node::U { member: i, key };
            tree.members.insert(i, id);
        }
        // Make every ancestor of a u-node a k-node.
        for i in 0..n_users {
            let id = (first_leaf + i as u64) as NodeId;
            let mut cur = id;
            while let Some(p) = ident::parent(cur, degree) {
                if !tree.nodes[p as usize].is_k() {
                    tree.nodes[p as usize] = Node::K {
                        key: keygen.next_key(),
                    };
                }
                cur = p;
            }
        }
        tree
    }

    /// Tree degree `d`.
    pub fn degree(&self) -> u32 {
        self.degree
    }

    /// Number of users currently in the group.
    pub fn user_count(&self) -> usize {
        self.members.len()
    }

    /// The group key (the key at the root), if the group is non-empty.
    pub fn group_key(&self) -> Option<SymKey> {
        match self.nodes.first() {
            Some(Node::K { key }) => Some(*key),
            _ => None,
        }
    }

    /// The node at `id` ([`Node::N`] for IDs beyond storage).
    pub fn node(&self, id: NodeId) -> &Node {
        self.nodes.get(id as usize).unwrap_or(&Node::N)
    }

    /// The key held at `id`, if the node has one.
    pub fn key_of(&self, id: NodeId) -> Option<SymKey> {
        self.node(id).key()
    }

    /// The u-node ID of a member, if present.
    pub fn node_of_member(&self, member: MemberId) -> Option<NodeId> {
        self.members.get(&member).copied()
    }

    /// The member occupying u-node `id`, if any.
    pub fn member_at(&self, id: NodeId) -> Option<MemberId> {
        match self.node(id) {
            Node::U { member, .. } => Some(*member),
            _ => None,
        }
    }

    /// Maximum current k-node ID (`nk`, the wire field `maxKID`).
    /// `None` when the tree has no k-node.
    pub fn max_knode_id(&self) -> Option<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .rev()
            .find(|(_, n)| n.is_k())
            .map(|(i, _)| i as NodeId)
    }

    /// Sorted IDs of all current u-nodes.
    pub fn user_ids(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self.members.values().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// All members currently in the group (unsorted).
    pub fn member_ids(&self) -> Vec<MemberId> {
        self.members.keys().copied().collect()
    }

    /// The keys a given member must hold: its individual key plus every
    /// k-node key on the path from its u-node to the root, returned as
    /// `(node id, key)` pairs leaf-first. This is what the user-side agent
    /// keeps in its key store.
    pub fn keys_for_member(&self, member: MemberId) -> Option<Vec<(NodeId, SymKey)>> {
        let id = self.node_of_member(member)?;
        let mut out = Vec::new();
        for node_id in ident::path_to_root(id, self.degree) {
            let key = self.key_of(node_id)?;
            out.push((node_id, key));
        }
        Some(out)
    }

    /// Height of the tree: the level of the deepest u-node (0 for a group
    /// whose only node is the root).
    pub fn height(&self) -> u32 {
        self.members
            .values()
            .map(|&id| ident::level(id, self.degree))
            .max()
            .unwrap_or(0)
    }

    /// Length of the underlying node storage (the last allocated ID + 1).
    pub(crate) fn storage_len(&self) -> usize {
        self.nodes.len()
    }

    // ----- crate-internal mutation API used by the marking algorithm -----

    pub(crate) fn ensure_capacity(&mut self, id: NodeId) {
        if self.nodes.len() <= id as usize {
            self.nodes.resize(id as usize + 1, Node::N);
        }
    }

    pub(crate) fn set_node(&mut self, id: NodeId, node: Node) {
        self.ensure_capacity(id);
        // Keep the member index coherent on every write.
        if let Node::U { member, .. } = &self.nodes[id as usize] {
            self.members.remove(member);
        }
        if let Node::U { member, .. } = &node {
            self.members.insert(*member, id);
        }
        self.nodes[id as usize] = node;
    }

    pub(crate) fn set_key(&mut self, id: NodeId, key: SymKey) {
        match &mut self.nodes[id as usize] {
            Node::K { key: k } => *k = key,
            Node::U { key: k, .. } => *k = key,
            Node::N => panic!("cannot set key on an n-node (id {id})"),
        }
    }

    /// Renders the tree level by level for debugging and teaching:
    /// `K` = key node, `u<member>` = user node, `.` = empty slot. Trailing
    /// empty slots of each level are elided.
    ///
    /// ```
    /// use keytree::KeyTree;
    /// use wirecrypto::KeyGen;
    /// let mut kg = KeyGen::from_seed(1);
    /// let tree = KeyTree::balanced(5, 4, &mut kg);
    /// let art = tree.render_ascii();
    /// assert!(art.contains("level 0: K"));
    /// assert!(art.contains("u0"));
    /// ```
    pub fn render_ascii(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let d = self.degree as u64;
        let mut level = 0u32;
        let mut first: u64 = 0;
        let mut width: u64 = 1;
        loop {
            let mut cells: Vec<String> = Vec::new();
            let mut any_live = false;
            for id in first..first + width {
                if id >= self.nodes.len() as u64 {
                    break;
                }
                let cell = match self.node(id as NodeId) {
                    Node::K { .. } => {
                        any_live = true;
                        "K".to_string()
                    }
                    Node::U { member, .. } => {
                        any_live = true;
                        format!("u{member}")
                    }
                    Node::N => ".".to_string(),
                };
                cells.push(cell);
            }
            if !any_live {
                break;
            }
            while cells.last().is_some_and(|c| c == ".") {
                cells.pop();
            }
            let _ = writeln!(out, "level {level}: {}", cells.join(" "));
            first = first * d + 1;
            width *= d;
            level += 1;
            if first >= self.nodes.len() as u64 {
                break;
            }
        }
        out
    }

    /// Verifies the structural invariants; returns a description of the
    /// first violation. Used by tests and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut max_k: Option<NodeId> = None;
        let mut min_u: Option<NodeId> = None;
        for (i, n) in self.nodes.iter().enumerate() {
            let id = i as NodeId;
            match n {
                Node::K { .. } => max_k = Some(id),
                Node::U { member, .. } => {
                    if min_u.is_none() {
                        min_u = Some(id);
                    }
                    if self.members.get(member) != Some(&id) {
                        return Err(format!("member index out of sync at u-node {id}"));
                    }
                    // Ancestors must all be k-nodes.
                    let mut cur = id;
                    while let Some(p) = ident::parent(cur, self.degree) {
                        if !self.node(p).is_k() {
                            return Err(format!(
                                "u-node {id} has non-k ancestor {p} ({:?})",
                                self.node(p)
                            ));
                        }
                        cur = p;
                    }
                }
                Node::N => {}
            }
        }
        if self.members.len() != self.nodes.iter().filter(|n| n.is_u()).count() {
            return Err("member index size mismatch".into());
        }
        if let (Some(k), Some(u)) = (max_k, min_u) {
            if k >= u {
                return Err(format!("Lemma 4.1 violated: max k id {k} >= min u id {u}"));
            }
            let d = self.degree as u64;
            let bound = d * k as u64 + d;
            if let Some(&max_u) = self.user_ids().last() {
                if max_u as u64 > bound {
                    return Err(format!("u-node {max_u} beyond d*nk+d = {bound}"));
                }
            }
        }
        // No orphan keys: every k-node must lie on some member's path to
        // the root (marking prunes emptied subtrees, so a k-node with no
        // u-node descendant is dead weight and a leak of key material).
        let mut on_path = vec![false; self.nodes.len()];
        for &uid in self.members.values() {
            for id in ident::path_to_root(uid, self.degree) {
                on_path[id as usize] = true;
            }
        }
        for (i, n) in self.nodes.iter().enumerate() {
            if n.is_k() && !on_path[i] {
                return Err(format!("k-node {i} has no u-node descendant"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keygen() -> KeyGen {
        KeyGen::from_seed(42)
    }

    #[test]
    fn empty_tree() {
        let t = KeyTree::new(4);
        assert_eq!(t.user_count(), 0);
        assert_eq!(t.group_key(), None);
        assert_eq!(t.max_knode_id(), None);
        t.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "degree")]
    fn degree_one_rejected() {
        let _ = KeyTree::new(1);
    }

    #[test]
    fn balanced_power_of_d() {
        let mut kg = keygen();
        let t = KeyTree::balanced(16, 4, &mut kg);
        assert_eq!(t.user_count(), 16);
        assert_eq!(t.height(), 2);
        // Full tree: internal ids 0..=4 are k-nodes, leaves 5..=20 users.
        for id in 0..=4u32 {
            assert!(t.node(id).is_k(), "id {id}");
        }
        for id in 5..=20u32 {
            assert!(t.node(id).is_u(), "id {id}");
        }
        assert_eq!(t.max_knode_id(), Some(4));
        t.check_invariants().unwrap();
    }

    #[test]
    fn balanced_non_power_of_d() {
        let mut kg = keygen();
        // 9 users, d=4: height 2, leaves 5..=13 used, 14..=20 empty.
        let t = KeyTree::balanced(9, 4, &mut kg);
        assert_eq!(t.user_count(), 9);
        assert!(t.node(13).is_u());
        assert!(t.node(14).is_n());
        // k-nodes: 0, 1, 2, 3 (ancestors of users); 4 has no users below.
        assert!(t.node(3).is_k());
        assert!(t.node(4).is_n());
        assert_eq!(t.max_knode_id(), Some(3));
        t.check_invariants().unwrap();
    }

    #[test]
    fn balanced_single_user() {
        let mut kg = keygen();
        let t = KeyTree::balanced(1, 4, &mut kg);
        assert_eq!(t.user_count(), 1);
        // Even a single-user group has a root k-node (the group key) above
        // the u-node.
        assert!(t.group_key().is_some());
        assert_eq!(t.node_of_member(0), Some(1));
        assert_eq!(t.max_knode_id(), Some(0));
        t.check_invariants().unwrap();
    }

    #[test]
    fn keys_for_member_walks_path() {
        let mut kg = keygen();
        let t = KeyTree::balanced(16, 4, &mut kg);
        let keys = t.keys_for_member(7).unwrap();
        // Path: u-node, one auxiliary level, root => 3 keys at height 2.
        assert_eq!(keys.len(), 3);
        assert_eq!(keys.last().unwrap().0, 0);
        assert_eq!(keys.last().unwrap().1, t.group_key().unwrap());
        // First entry is the member's own u-node.
        assert_eq!(t.member_at(keys[0].0), Some(7));
    }

    #[test]
    fn member_lookup_round_trip() {
        let mut kg = keygen();
        let t = KeyTree::balanced(64, 4, &mut kg);
        for m in 0..64u32 {
            let id = t.node_of_member(m).unwrap();
            assert_eq!(t.member_at(id), Some(m));
        }
        assert_eq!(t.node_of_member(64), None);
    }

    #[test]
    fn user_ids_sorted_and_contiguous_for_full_tree() {
        let mut kg = keygen();
        let t = KeyTree::balanced(16, 4, &mut kg);
        let ids = t.user_ids();
        assert_eq!(ids.len(), 16);
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*ids.first().unwrap(), 5);
        assert_eq!(*ids.last().unwrap(), 20);
    }

    #[test]
    fn individual_keys_are_distinct() {
        let mut kg = keygen();
        let t = KeyTree::balanced(32, 4, &mut kg);
        let mut keys: Vec<_> = (0..32u32)
            .map(|m| {
                let id = t.node_of_member(m).unwrap();
                t.key_of(id).unwrap()
            })
            .collect();
        keys.sort_by_key(|k| *k.as_bytes());
        keys.dedup();
        assert_eq!(keys.len(), 32);
    }

    #[test]
    fn degree_two_and_three_shapes() {
        let mut kg = keygen();
        let t2 = KeyTree::balanced(8, 2, &mut kg);
        assert_eq!(t2.height(), 3);
        t2.check_invariants().unwrap();

        let t3 = KeyTree::balanced(9, 3, &mut kg);
        assert_eq!(t3.height(), 2);
        assert_eq!(t3.max_knode_id(), Some(3));
        t3.check_invariants().unwrap();
    }
}
