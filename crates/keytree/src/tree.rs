//! The [`KeyTree`] container: storage, construction, lookup, invariants.

use wirecrypto::{KeyGen, SymKey};

use crate::ident;
use crate::node::{MemberId, Node, NodeId};

/// Node tag: empty slot.
const TAG_N: u8 = 0;
/// Node tag: key node.
const TAG_K: u8 = 1;
/// Node tag: user node.
const TAG_U: u8 = 2;

/// Sentinel in the member index for "member not in the group".
const NO_NODE: NodeId = NodeId::MAX;
/// Sentinel in the occupant array for "slot holds no member".
const NO_MEMBER: MemberId = MemberId::MAX;

/// A logical key hierarchy for one secure group.
///
/// Storage is structure-of-arrays indexed by node ID: a packed `u8` tag
/// array (`N`/`K`/`U`), a parallel key array, and a parallel occupant
/// array (the member at a u-node). Slots that fall outside the live tree
/// read as [`Node::N`]. The member index `member -> u-node id` is a
/// direct-indexed vector (member IDs are assigned densely by
/// registration), so both directions of the user/slot mapping are O(1)
/// array reads with no hashing.
///
/// The tree maintains the paper's structural invariants (checked by
/// [`KeyTree::check_invariants`] in tests):
///
/// 1. every u-node's ancestors are all k-nodes;
/// 2. Lemma 4.1: every k-node ID is smaller than every u-node ID;
/// 3. every u-node ID is at most `d * nk + d` where `nk` is the maximum
///    k-node ID.
#[derive(Debug, Clone)]
pub struct KeyTree {
    degree: u32,
    /// Per-slot tag (`TAG_N`/`TAG_K`/`TAG_U`).
    tags: Vec<u8>,
    /// Per-slot key material; meaningless where the tag is `TAG_N`.
    keys: Vec<SymKey>,
    /// Per-slot occupant; `NO_MEMBER` where the tag is not `TAG_U`.
    occupants: Vec<MemberId>,
    /// Member ID -> u-node ID; `NO_NODE` for members not in the group.
    member_slot: Vec<NodeId>,
    /// Number of u-nodes (cached count of the member index).
    user_count: usize,
    /// Cached maximum k-node ID (`nk`); kept current by `set_node`.
    max_k: Option<NodeId>,
}

impl KeyTree {
    /// Creates an empty tree of the given degree (`d >= 2`).
    pub fn new(degree: u32) -> Self {
        assert!(degree >= 2, "key tree degree must be at least 2");
        KeyTree {
            degree,
            tags: vec![TAG_N],
            keys: vec![SymKey::from_bytes([0; 16])],
            occupants: vec![NO_MEMBER],
            member_slot: Vec::new(),
            user_count: 0,
            max_k: None,
        }
    }

    /// Builds a populated tree of minimum height for `n_users` users with
    /// member IDs `0 .. n_users`, all u-nodes at the deepest level filled
    /// left to right — the "full and balanced" starting point used
    /// throughout the paper's experiments (exactly full when `n_users` is a
    /// power of `degree`).
    pub fn balanced(n_users: u32, degree: u32, keygen: &mut KeyGen) -> Self {
        let mut tree = KeyTree::new(degree);
        if n_users == 0 {
            return tree;
        }
        let d = degree as u64;
        // Height: smallest h >= 1 with d^h >= n_users (at least 1 so that
        // even a single-user group has a root k-node above the u-node).
        let mut height = 1u32;
        let mut capacity = d;
        while capacity < n_users as u64 {
            capacity *= d;
            height += 1;
        }
        // First leaf ID = (d^h - 1) / (d - 1).
        let first_leaf = (d.pow(height) - 1) / (d - 1);
        let last_user = first_leaf + n_users as u64 - 1;
        tree.ensure_capacity(last_user as NodeId);

        // Place users.
        for i in 0..n_users {
            let id = (first_leaf + i as u64) as NodeId;
            let key = keygen.next_key();
            tree.set_node(id, Node::U { member: i, key });
        }
        // Make every ancestor of a u-node a k-node, walking up until an
        // already-created k-node is met (ancestors of a k-node are done).
        for i in 0..n_users {
            let id = (first_leaf + i as u64) as NodeId;
            let mut cur = id;
            while let Some(p) = ident::parent(cur, degree) {
                if tree.tags[p as usize] == TAG_K {
                    break;
                }
                tree.set_node(
                    p,
                    Node::K {
                        key: keygen.next_key(),
                    },
                );
                cur = p;
            }
        }
        tree
    }

    /// Tree degree `d`.
    pub fn degree(&self) -> u32 {
        self.degree
    }

    /// Number of users currently in the group.
    pub fn user_count(&self) -> usize {
        self.user_count
    }

    /// The group key (the key at the root), if the group is non-empty.
    pub fn group_key(&self) -> Option<SymKey> {
        if self.tags.first() == Some(&TAG_K) {
            Some(self.keys[0])
        } else {
            None
        }
    }

    /// The node at `id` ([`Node::N`] for IDs beyond storage), materialised
    /// by value from the column arrays.
    pub fn node(&self, id: NodeId) -> Node {
        let i = id as usize;
        match self.tags.get(i) {
            Some(&TAG_K) => Node::K { key: self.keys[i] },
            Some(&TAG_U) => Node::U {
                member: self.occupants[i],
                key: self.keys[i],
            },
            _ => Node::N,
        }
    }

    /// True when slot `id` is an empty (or out-of-storage) slot.
    #[inline]
    pub fn is_n(&self, id: NodeId) -> bool {
        self.tags.get(id as usize).is_none_or(|&t| t == TAG_N)
    }

    /// True when slot `id` holds a k-node.
    #[inline]
    pub fn is_k(&self, id: NodeId) -> bool {
        self.tags.get(id as usize) == Some(&TAG_K)
    }

    /// True when slot `id` holds a u-node.
    #[inline]
    pub fn is_u(&self, id: NodeId) -> bool {
        self.tags.get(id as usize) == Some(&TAG_U)
    }

    /// The key held at `id`, if the node has one.
    pub fn key_of(&self, id: NodeId) -> Option<SymKey> {
        match self.tags.get(id as usize) {
            Some(&TAG_K) | Some(&TAG_U) => Some(self.keys[id as usize]),
            _ => None,
        }
    }

    /// The u-node ID of a member, if present.
    pub fn node_of_member(&self, member: MemberId) -> Option<NodeId> {
        match self.member_slot.get(member as usize) {
            Some(&id) if id != NO_NODE => Some(id),
            _ => None,
        }
    }

    /// The member occupying u-node `id`, if any.
    pub fn member_at(&self, id: NodeId) -> Option<MemberId> {
        if self.is_u(id) {
            Some(self.occupants[id as usize])
        } else {
            None
        }
    }

    /// Maximum current k-node ID (`nk`, the wire field `maxKID`).
    /// `None` when the tree has no k-node. O(1): maintained incrementally
    /// by the mutation API.
    pub fn max_knode_id(&self) -> Option<NodeId> {
        self.max_k
    }

    /// Iterator over the IDs of all current u-nodes, ascending. A tag-array
    /// scan: no allocation, no sort (BFS numbering is already the order).
    pub fn user_ids_iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.tags
            .iter()
            .enumerate()
            .filter(|(_, &t)| t == TAG_U)
            .map(|(i, _)| i as NodeId)
    }

    /// Sorted IDs of all current u-nodes (allocating convenience wrapper
    /// around [`KeyTree::user_ids_iter`]).
    pub fn user_ids(&self) -> Vec<NodeId> {
        self.user_ids_iter().collect()
    }

    /// First u-node ID in the inclusive slot range `lo..=hi`, if any. A
    /// forward tag scan, no allocation — the run-aggregated UKA planner
    /// uses it to trim and emptiness-test frontier ID windows, so its
    /// cost is the vacant prefix of the window, not the window.
    pub fn first_user_in(&self, lo: NodeId, hi: NodeId) -> Option<NodeId> {
        let end = (hi as usize + 1).min(self.tags.len());
        let start = (lo as usize).min(end);
        self.tags[start..end]
            .iter()
            .position(|&t| t == TAG_U)
            .map(|off| (start + off) as NodeId)
    }

    /// Last u-node ID in the inclusive slot range `lo..=hi`, if any. A
    /// backward tag scan, no allocation (see [`KeyTree::first_user_in`]).
    pub fn last_user_in(&self, lo: NodeId, hi: NodeId) -> Option<NodeId> {
        let end = (hi as usize + 1).min(self.tags.len());
        let start = (lo as usize).min(end);
        self.tags[start..end]
            .iter()
            .rposition(|&t| t == TAG_U)
            .map(|off| (start + off) as NodeId)
    }

    /// Number of u-nodes in the inclusive slot range `lo..=hi`. A tag
    /// scan, no allocation — the run-aggregated baseline statistics
    /// weight each need-set by the users sharing it.
    pub fn count_users_in(&self, lo: NodeId, hi: NodeId) -> usize {
        let end = (hi as usize + 1).min(self.tags.len());
        let start = (lo as usize).min(end);
        self.tags[start..end]
            .iter()
            .filter(|&&t| t == TAG_U)
            .count()
    }

    /// Iterator over all members currently in the group, ascending by
    /// member ID. No allocation.
    pub fn member_ids_iter(&self) -> impl Iterator<Item = MemberId> + '_ {
        self.member_slot
            .iter()
            .enumerate()
            .filter(|(_, &id)| id != NO_NODE)
            .map(|(m, _)| m as MemberId)
    }

    /// All members currently in the group, ascending by member ID
    /// (allocating convenience wrapper around
    /// [`KeyTree::member_ids_iter`]).
    pub fn member_ids(&self) -> Vec<MemberId> {
        self.member_ids_iter().collect()
    }

    /// Non-allocating iterator over the keys a given member must hold: its
    /// individual key plus every k-node key on the path from its u-node to
    /// the root, as `(node id, key)` pairs leaf-first.
    ///
    /// Yields `(id, None)` if a path node unexpectedly has no key (an
    /// invariant violation); [`KeyTree::keys_for_member`] turns that into
    /// an overall `None`.
    pub fn keys_for_member_iter(
        &self,
        member: MemberId,
    ) -> Option<impl Iterator<Item = (NodeId, Option<SymKey>)> + '_> {
        let id = self.node_of_member(member)?;
        Some(ident::path_iter(id, self.degree).map(|node_id| (node_id, self.key_of(node_id))))
    }

    /// The keys a given member must hold: its individual key plus every
    /// k-node key on the path from its u-node to the root, returned as
    /// `(node id, key)` pairs leaf-first. This is what the user-side agent
    /// keeps in its key store.
    pub fn keys_for_member(&self, member: MemberId) -> Option<Vec<(NodeId, SymKey)>> {
        let iter = self.keys_for_member_iter(member)?;
        let mut out = Vec::new();
        for (node_id, key) in iter {
            out.push((node_id, key?));
        }
        Some(out)
    }

    /// Height of the tree: the level of the deepest u-node (0 for a group
    /// whose only node is the root). BFS numbering makes level monotone in
    /// ID, so the deepest u-node is the last `U` tag in storage.
    pub fn height(&self) -> u32 {
        self.tags
            .iter()
            .rposition(|&t| t == TAG_U)
            .map(|i| ident::level(i as NodeId, self.degree))
            .unwrap_or(0)
    }

    /// Mean level of the current u-nodes (0.0 for an empty group). The
    /// per-member counterpart of [`KeyTree::height`]: sustained one-sided
    /// churn skews this away from `log_d(N)` unless compaction runs.
    pub fn mean_user_depth(&self) -> f64 {
        if self.user_count == 0 {
            return 0.0;
        }
        let total: u64 = self
            .user_ids_iter()
            .map(|id| u64::from(ident::level(id, self.degree)))
            .sum();
        total as f64 / self.user_count as f64
    }

    /// ID of the highest current u-node (the compaction source scan).
    /// `None` when the group is empty. BFS numbering makes this the last
    /// `U` tag in storage.
    pub fn highest_unode_id(&self) -> Option<NodeId> {
        self.tags
            .iter()
            .rposition(|&t| t == TAG_U)
            .map(|i| i as NodeId)
    }

    /// Length of the underlying node storage (the last allocated ID + 1).
    /// The denominator for the bench's bytes-per-node metric.
    pub fn storage_len(&self) -> usize {
        self.tags.len()
    }

    /// Bytes of heap resident in the tree's column arrays and member
    /// index. The denominator for the bytes-per-node bench metric.
    pub fn resident_bytes(&self) -> usize {
        self.tags.capacity() * std::mem::size_of::<u8>()
            + self.keys.capacity() * std::mem::size_of::<SymKey>()
            + self.occupants.capacity() * std::mem::size_of::<MemberId>()
            + self.member_slot.capacity() * std::mem::size_of::<NodeId>()
    }

    /// Bytes the pre-SoA layout (`Vec<Node>` + `HashMap<MemberId,
    /// NodeId>`) would hold resident for this tree: one tagged-enum slot
    /// per storage entry plus the hash-map member index, whose table
    /// (std's hashbrown) allocates `(key, value)` plus one control byte
    /// per bucket, with buckets the next power of two holding
    /// `len / 0.875`.
    pub fn aos_equivalent_bytes(&self) -> usize {
        let node_bytes = self.storage_len() * std::mem::size_of::<Node>();
        let map_entry = std::mem::size_of::<(MemberId, NodeId)>() + 1;
        let buckets = if self.user_count == 0 {
            0
        } else {
            (self.user_count * 8 / 7 + 1).next_power_of_two()
        };
        node_bytes + buckets * map_entry
    }

    // ----- crate-internal mutation API used by the marking algorithm -----

    pub(crate) fn ensure_capacity(&mut self, id: NodeId) {
        if self.tags.len() <= id as usize {
            let len = id as usize + 1;
            self.tags.resize(len, TAG_N);
            self.keys.resize(len, SymKey::from_bytes([0; 16]));
            self.occupants.resize(len, NO_MEMBER);
        }
    }

    pub(crate) fn set_node(&mut self, id: NodeId, node: Node) {
        self.ensure_capacity(id);
        let i = id as usize;
        // Keep the member index coherent on every write.
        if self.tags[i] == TAG_U {
            self.member_slot[self.occupants[i] as usize] = NO_NODE;
            self.occupants[i] = NO_MEMBER;
            self.user_count -= 1;
        }
        let was_k = self.tags[i] == TAG_K;
        match node {
            Node::N => {
                self.tags[i] = TAG_N;
            }
            Node::K { key } => {
                self.tags[i] = TAG_K;
                self.keys[i] = key;
                if self.max_k.is_none_or(|mk| mk < id) {
                    self.max_k = Some(id);
                }
            }
            Node::U { member, key } => {
                let m = member as usize;
                if self.member_slot.len() <= m {
                    self.member_slot.resize(m + 1, NO_NODE);
                }
                self.member_slot[m] = id;
                self.occupants[i] = member;
                self.tags[i] = TAG_U;
                self.keys[i] = key;
                self.user_count += 1;
            }
        }
        // If the maximum k-node was overwritten, rescan downward for the
        // new maximum (amortised cheap: ids only shrink past pruned tails).
        if was_k && self.tags[i] != TAG_K && self.max_k == Some(id) {
            self.max_k = self.tags[..i]
                .iter()
                .rposition(|&t| t == TAG_K)
                .map(|p| p as NodeId);
        }
    }

    pub(crate) fn set_key(&mut self, id: NodeId, key: SymKey) {
        match self.tags.get(id as usize) {
            Some(&TAG_K) | Some(&TAG_U) => self.keys[id as usize] = key,
            _ => panic!("cannot set key on an n-node (id {id})"),
        }
    }

    /// Truncates the column arrays to the last live (non-`N`) slot and the
    /// member index to the last registered member, returning the freed
    /// capacity to the allocator. After a mass departure or a compaction
    /// run the tail of every array is dead weight; without this,
    /// `resident_bytes` stays at its historical peak forever.
    pub(crate) fn shrink_storage(&mut self) {
        let live = self
            .tags
            .iter()
            .rposition(|&t| t != TAG_N)
            .map_or(1, |i| i + 1);
        self.tags.truncate(live);
        self.keys.truncate(live);
        self.occupants.truncate(live);
        self.tags.shrink_to_fit();
        self.keys.shrink_to_fit();
        self.occupants.shrink_to_fit();
        let members = self
            .member_slot
            .iter()
            .rposition(|&id| id != NO_NODE)
            .map_or(0, |m| m + 1);
        self.member_slot.truncate(members);
        self.member_slot.shrink_to_fit();
    }

    /// Calls [`KeyTree::shrink_storage`] only when the dead tail is worth
    /// reclaiming: storage at least twice the live extent and at least 64
    /// slots of slack. Steady-state batches therefore never pay a
    /// reallocation; only a genuine contraction does.
    pub(crate) fn shrink_storage_if_slack(&mut self) {
        let live = self
            .tags
            .iter()
            .rposition(|&t| t != TAG_N)
            .map_or(1, |i| i + 1);
        if self.tags.capacity() >= 2 * live && self.tags.capacity() - live >= 64 {
            self.shrink_storage();
        }
    }

    /// Renders the tree level by level for debugging and teaching:
    /// `K` = key node, `u<member>` = user node, `.` = empty slot. Trailing
    /// empty slots of each level are elided.
    ///
    /// ```
    /// use keytree::KeyTree;
    /// use wirecrypto::KeyGen;
    /// let mut kg = KeyGen::from_seed(1);
    /// let tree = KeyTree::balanced(5, 4, &mut kg);
    /// let art = tree.render_ascii();
    /// assert!(art.contains("level 0: K"));
    /// assert!(art.contains("u0"));
    /// ```
    pub fn render_ascii(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let d = self.degree as u64;
        let mut level = 0u32;
        let mut first: u64 = 0;
        let mut width: u64 = 1;
        loop {
            let mut cells: Vec<String> = Vec::new();
            let mut any_live = false;
            for id in first..first + width {
                if id >= self.tags.len() as u64 {
                    break;
                }
                let cell = match self.node(id as NodeId) {
                    Node::K { .. } => {
                        any_live = true;
                        "K".to_string()
                    }
                    Node::U { member, .. } => {
                        any_live = true;
                        format!("u{member}")
                    }
                    Node::N => ".".to_string(),
                };
                cells.push(cell);
            }
            if !any_live {
                break;
            }
            while cells.last().is_some_and(|c| c == ".") {
                cells.pop();
            }
            let _ = writeln!(out, "level {level}: {}", cells.join(" "));
            first = first * d + 1;
            width *= d;
            level += 1;
            if first >= self.tags.len() as u64 {
                break;
            }
        }
        out
    }

    /// Verifies the structural invariants; returns a description of the
    /// first violation. Used by tests and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut max_k: Option<NodeId> = None;
        let mut min_u: Option<NodeId> = None;
        let mut max_u: Option<NodeId> = None;
        let mut u_count = 0usize;
        for (i, &tag) in self.tags.iter().enumerate() {
            let id = i as NodeId;
            match tag {
                TAG_K => max_k = Some(id),
                TAG_U => {
                    if min_u.is_none() {
                        min_u = Some(id);
                    }
                    max_u = Some(id);
                    u_count += 1;
                    let member = self.occupants[i];
                    if self.node_of_member(member) != Some(id) {
                        return Err(format!("member index out of sync at u-node {id}"));
                    }
                    // Ancestors must all be k-nodes.
                    let mut cur = id;
                    while let Some(p) = ident::parent(cur, self.degree) {
                        if !self.is_k(p) {
                            return Err(format!(
                                "u-node {id} has non-k ancestor {p} ({:?})",
                                self.node(p)
                            ));
                        }
                        cur = p;
                    }
                }
                _ => {}
            }
        }
        if self.user_count != u_count {
            return Err("member index size mismatch".into());
        }
        if self.max_k != max_k {
            return Err(format!(
                "cached max k-node id {:?} but storage says {:?}",
                self.max_k, max_k
            ));
        }
        if let (Some(k), Some(u)) = (max_k, min_u) {
            if k >= u {
                return Err(format!("Lemma 4.1 violated: max k id {k} >= min u id {u}"));
            }
            let d = self.degree as u64;
            let bound = d * k as u64 + d;
            if let Some(max_u) = max_u {
                if max_u as u64 > bound {
                    return Err(format!("u-node {max_u} beyond d*nk+d = {bound}"));
                }
            }
        }
        // No orphan keys: every k-node must lie on some member's path to
        // the root (marking prunes emptied subtrees, so a k-node with no
        // u-node descendant is dead weight and a leak of key material).
        let mut on_path = vec![false; self.tags.len()];
        for uid in self.user_ids_iter() {
            for id in ident::path_iter(uid, self.degree) {
                if on_path[id as usize] {
                    break;
                }
                on_path[id as usize] = true;
            }
        }
        for (i, &tag) in self.tags.iter().enumerate() {
            if tag == TAG_K && !on_path[i] {
                return Err(format!("k-node {i} has no u-node descendant"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keygen() -> KeyGen {
        KeyGen::from_seed(42)
    }

    #[test]
    fn empty_tree() {
        let t = KeyTree::new(4);
        assert_eq!(t.user_count(), 0);
        assert_eq!(t.group_key(), None);
        assert_eq!(t.max_knode_id(), None);
        t.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "degree")]
    fn degree_one_rejected() {
        let _ = KeyTree::new(1);
    }

    #[test]
    fn balanced_power_of_d() {
        let mut kg = keygen();
        let t = KeyTree::balanced(16, 4, &mut kg);
        assert_eq!(t.user_count(), 16);
        assert_eq!(t.height(), 2);
        // Full tree: internal ids 0..=4 are k-nodes, leaves 5..=20 users.
        for id in 0..=4u32 {
            assert!(t.node(id).is_k(), "id {id}");
        }
        for id in 5..=20u32 {
            assert!(t.node(id).is_u(), "id {id}");
        }
        assert_eq!(t.max_knode_id(), Some(4));
        t.check_invariants().unwrap();
    }

    #[test]
    fn balanced_non_power_of_d() {
        let mut kg = keygen();
        // 9 users, d=4: height 2, leaves 5..=13 used, 14..=20 empty.
        let t = KeyTree::balanced(9, 4, &mut kg);
        assert_eq!(t.user_count(), 9);
        assert!(t.node(13).is_u());
        assert!(t.node(14).is_n());
        // k-nodes: 0, 1, 2, 3 (ancestors of users); 4 has no users below.
        assert!(t.node(3).is_k());
        assert!(t.node(4).is_n());
        assert_eq!(t.max_knode_id(), Some(3));
        t.check_invariants().unwrap();
    }

    #[test]
    fn balanced_single_user() {
        let mut kg = keygen();
        let t = KeyTree::balanced(1, 4, &mut kg);
        assert_eq!(t.user_count(), 1);
        // Even a single-user group has a root k-node (the group key) above
        // the u-node.
        assert!(t.group_key().is_some());
        assert_eq!(t.node_of_member(0), Some(1));
        assert_eq!(t.max_knode_id(), Some(0));
        t.check_invariants().unwrap();
    }

    #[test]
    fn keys_for_member_walks_path() {
        let mut kg = keygen();
        let t = KeyTree::balanced(16, 4, &mut kg);
        let keys = t.keys_for_member(7).unwrap();
        // Path: u-node, one auxiliary level, root => 3 keys at height 2.
        assert_eq!(keys.len(), 3);
        assert_eq!(keys.last().unwrap().0, 0);
        assert_eq!(keys.last().unwrap().1, t.group_key().unwrap());
        // First entry is the member's own u-node.
        assert_eq!(t.member_at(keys[0].0), Some(7));
    }

    #[test]
    fn keys_for_member_iter_agrees_with_vec() {
        let mut kg = keygen();
        let t = KeyTree::balanced(40, 4, &mut kg);
        for m in 0..40u32 {
            let vec = t.keys_for_member(m).unwrap();
            let via_iter: Vec<(NodeId, SymKey)> = t
                .keys_for_member_iter(m)
                .unwrap()
                .map(|(id, k)| (id, k.unwrap()))
                .collect();
            assert_eq!(vec, via_iter, "member {m}");
        }
        assert!(t.keys_for_member_iter(40).is_none());
    }

    #[test]
    fn member_lookup_round_trip() {
        let mut kg = keygen();
        let t = KeyTree::balanced(64, 4, &mut kg);
        for m in 0..64u32 {
            let id = t.node_of_member(m).unwrap();
            assert_eq!(t.member_at(id), Some(m));
        }
        assert_eq!(t.node_of_member(64), None);
    }

    #[test]
    fn user_ids_sorted_and_contiguous_for_full_tree() {
        let mut kg = keygen();
        let t = KeyTree::balanced(16, 4, &mut kg);
        let ids = t.user_ids();
        assert_eq!(ids.len(), 16);
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(*ids.first().unwrap(), 5);
        assert_eq!(*ids.last().unwrap(), 20);
    }

    #[test]
    fn member_ids_sorted_ascending() {
        let mut kg = keygen();
        let t = KeyTree::balanced(16, 4, &mut kg);
        let members = t.member_ids();
        assert_eq!(members, (0..16).collect::<Vec<_>>());
        assert_eq!(
            t.member_ids_iter().collect::<Vec<_>>(),
            (0..16).collect::<Vec<_>>()
        );
    }

    #[test]
    fn individual_keys_are_distinct() {
        let mut kg = keygen();
        let t = KeyTree::balanced(32, 4, &mut kg);
        let mut keys: Vec<_> = (0..32u32)
            .map(|m| {
                let id = t.node_of_member(m).unwrap();
                t.key_of(id).unwrap()
            })
            .collect();
        keys.sort_by_key(|k| *k.as_bytes());
        keys.dedup();
        assert_eq!(keys.len(), 32);
    }

    #[test]
    fn degree_two_and_three_shapes() {
        let mut kg = keygen();
        let t2 = KeyTree::balanced(8, 2, &mut kg);
        assert_eq!(t2.height(), 3);
        t2.check_invariants().unwrap();

        let t3 = KeyTree::balanced(9, 3, &mut kg);
        assert_eq!(t3.height(), 2);
        assert_eq!(t3.max_knode_id(), Some(3));
        t3.check_invariants().unwrap();
    }

    #[test]
    fn soa_layout_is_leaner_than_aos_equivalent() {
        let mut kg = keygen();
        let t = KeyTree::balanced(4096, 4, &mut kg);
        let soa = t.resident_bytes();
        let aos = t.aos_equivalent_bytes();
        assert!(
            (soa as f64) < 0.75 * aos as f64,
            "SoA {soa} bytes vs AoS-equivalent {aos} bytes"
        );
    }

    #[test]
    fn max_knode_cache_tracks_mutations() {
        let mut kg = keygen();
        let mut t = KeyTree::balanced(16, 4, &mut kg);
        assert_eq!(t.max_knode_id(), Some(4));
        // Promote a leaf slot to a k-node: cache must rise.
        t.set_node(5, Node::K { key: kg.next_key() });
        assert_eq!(t.max_knode_id(), Some(5));
        // Clear it again: cache must fall back to the previous maximum.
        t.set_node(5, Node::N);
        assert_eq!(t.max_knode_id(), Some(4));
    }
}
