//! Analytical cost model of batch rekeying — the SIGCOMM paper's
//! *performance analysis* axis.
//!
//! For a full, balanced degree-`d` tree of `N = d^h` users processing a
//! leave-only batch of `L` uniformly chosen departures, the expected
//! number of encryptions in the rekey message has a closed form. An
//! encryption exists on edge `(c, v)` (child `c`, updated k-node `v`) iff
//!
//! * at least one leaf below `v` departed (so `v`'s key changed), and
//! * at least one leaf below `c` survived (so `c` was not pruned away).
//!
//! With hypergeometric departures the two probabilities are products over
//! the `m` leaves of a subtree:
//!
//! * `A(m) = P[no departure among m leaves] = prod_{i<m} (N-L-i)/(N-i)`
//! * `B(m) = P[all m leaves depart]        = prod_{i<m} (L-i)/(N-i)`
//!
//! and `P[edge] = 1 - A(m_v) - B(m_c)` (the two excluded events are
//! disjoint), giving
//!
//! ```text
//! E[encryptions] = sum over levels l of  d^l * d * (1 - A(d^(h-l)) - B(d^(h-l-1)))
//! ```
//!
//! The tests validate the model against the actual marking algorithm to
//! within Monte-Carlo error; the SIGCOMM-axis bench binaries print model
//! vs measurement side by side. The model also yields the batch-vs-
//! individual comparison (individual rekeying pays `~d*(log_d N)` per
//! departure with no sharing) and the tree-degree sweep.

/// `P[no departure among m leaves]` for `L` uniform departures out of `n`.
fn prob_no_departure(n: u64, l: u64, m: u64) -> f64 {
    if l == 0 {
        return 1.0;
    }
    if m + l > n {
        return 0.0;
    }
    let mut p = 1.0f64;
    for i in 0..m {
        p *= (n - l - i) as f64 / (n - i) as f64;
    }
    p
}

/// `P[all m leaves depart]` for `L` uniform departures out of `n`.
fn prob_all_depart(n: u64, l: u64, m: u64) -> f64 {
    if m > l {
        return 0.0;
    }
    let mut p = 1.0f64;
    for i in 0..m {
        p *= (l - i) as f64 / (n - i) as f64;
    }
    p
}

/// Expected encryptions in the rekey message for a full, balanced
/// degree-`d` tree of height `h` (`N = d^h` users) processing `L`
/// uniformly distributed leaves (and no joins).
///
/// # Panics
///
/// Panics if `l > d^h` or `d < 2` or `h == 0`.
pub fn expected_encryptions_leave_only(d: u32, h: u32, l: u64) -> f64 {
    assert!(d >= 2 && h >= 1);
    let n = (d as u64).pow(h);
    assert!(l <= n, "cannot remove more users than exist");
    if l == 0 {
        return 0.0;
    }
    let mut total = 0.0;
    // Levels of k-nodes: 0 (root) .. h-1 (leaf parents).
    for level in 0..h {
        let nodes_at_level = (d as u64).pow(level) as f64;
        let m_v = (d as u64).pow(h - level); // leaves under a level-`level` node
        let m_c = m_v / d as u64; // leaves under each child
        let p_edge = 1.0 - prob_no_departure(n, l, m_v) - prob_all_depart(n, l, m_c);
        total += nodes_at_level * d as f64 * p_edge.max(0.0);
    }
    total
}

/// Expected encryptions when each of the `L` departures is processed as
/// its own rekey message (individual rekeying) on the same full tree.
///
/// Each single leave updates the `h` k-nodes on one path. The leaf-parent
/// contributes `d - 1` encryptions (the departed slot is empty) and every
/// higher node contributes `d`; pruning never triggers for single leaves
/// on a full tree until the tree thins, which we ignore (upper-bound
/// model, tight for `L << N`).
pub fn expected_encryptions_individual(d: u32, h: u32, l: u64) -> f64 {
    assert!(d >= 2 && h >= 1);
    l as f64 * ((d as f64 - 1.0) + (h as f64 - 1.0) * d as f64)
}

/// The per-message signing cost model: one digital signature per rekey
/// message, so batching turns `J + L` signatures into one.
pub fn signings_saved_by_batching(j: u64, l: u64) -> u64 {
    (j + l).saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Batch, KeyTree, MemberId};
    use wirecrypto::KeyGen;

    /// Monte-Carlo measurement of the real marking algorithm.
    fn measured(d: u32, h: u32, l: u64, runs: usize, seed: u64) -> f64 {
        let n = (d as u64).pow(h) as u32;
        let mut total = 0usize;
        let mut state = seed;
        for run in 0..runs {
            let mut kg = KeyGen::from_seed(seed + run as u64);
            let mut tree = KeyTree::balanced(n, d, &mut kg);
            // Uniform leavers via Fisher–Yates on a split-mix stream.
            let mut pool: Vec<MemberId> = (0..n).collect();
            for i in 0..(l as usize) {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let j = i + (state >> 33) as usize % (pool.len() - i);
                pool.swap(i, j);
            }
            let leaves = pool[..l as usize].to_vec();
            let outcome = tree.process_batch(&Batch::new(vec![], leaves), &mut kg);
            total += outcome.encryptions.len();
        }
        total as f64 / runs as f64
    }

    #[test]
    fn probability_helpers_sane() {
        assert_eq!(prob_no_departure(100, 0, 10), 1.0);
        assert_eq!(prob_no_departure(100, 95, 10), 0.0);
        assert_eq!(prob_all_depart(100, 5, 10), 0.0);
        // Single leaf: P[departs] = L/N.
        let p = prob_all_depart(100, 25, 1);
        assert!((p - 0.25).abs() < 1e-12);
        let q = prob_no_departure(100, 25, 1);
        assert!((q - 0.75).abs() < 1e-12);
    }

    #[test]
    fn single_leave_closed_form() {
        // One departure from a full d=4, h=3 tree: the leaf parent gives
        // 3 encryptions, each higher node 4: 3 + 4 + 4 = 11.
        let e = expected_encryptions_leave_only(4, 3, 1);
        assert!((e - 11.0).abs() < 1e-9, "got {e}");
    }

    #[test]
    fn all_leave_is_zero() {
        // Everyone leaves: the tree empties, nothing to encrypt.
        let e = expected_encryptions_leave_only(4, 3, 64);
        assert!(e.abs() < 1e-9, "got {e}");
    }

    #[test]
    fn model_matches_marking_algorithm() {
        // d=4, h=4 (N=256), sweep L; model vs 30-run Monte Carlo.
        for l in [1u64, 8, 64, 128, 224] {
            let model = expected_encryptions_leave_only(4, 4, l);
            let sim = measured(4, 4, l, 30, 1000 + l);
            let tol = (model * 0.08).max(4.0);
            assert!(
                (model - sim).abs() < tol,
                "L={l}: model {model:.1} vs measured {sim:.1}"
            );
        }
    }

    #[test]
    fn model_matches_other_degrees() {
        for (d, h) in [(2u32, 7u32), (3, 5), (8, 3)] {
            let n = (d as u64).pow(h);
            let l = n / 4;
            let model = expected_encryptions_leave_only(d, h, l);
            let sim = measured(d, h, l, 20, 77);
            let tol = (model * 0.08).max(4.0);
            assert!(
                (model - sim).abs() < tol,
                "d={d}, h={h}, L={l}: model {model:.1} vs measured {sim:.1}"
            );
        }
    }

    #[test]
    fn unimodal_in_l() {
        // The paper's Figure 6 shape: encryptions rise then fall with L,
        // peaking near N/d.
        let at = |l: u64| expected_encryptions_leave_only(4, 6, l);
        assert!(at(1024) > at(64));
        assert!(at(1024) > at(3968));
    }

    #[test]
    fn batch_cheaper_than_individual() {
        for l in [16u64, 64, 128] {
            let batch = expected_encryptions_leave_only(4, 4, l);
            let indiv = expected_encryptions_individual(4, 4, l);
            assert!(batch < indiv, "L={l}: {batch} !< {indiv}");
        }
    }

    #[test]
    fn signing_savings() {
        assert_eq!(signings_saved_by_batching(0, 0), 0);
        assert_eq!(signings_saved_by_batching(0, 1), 0);
        assert_eq!(signings_saved_by_batching(10, 20), 29);
    }
}
