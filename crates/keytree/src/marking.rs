//! The marking algorithm (Appendix B): batch tree update, rekey-subtree
//! labelling, and encryption-edge generation.
//!
//! One deliberate refinement over the paper's text: the paper labels *all*
//! n-nodes as Leave. When n-nodes only exist where departures just happened
//! (the paper's experiments always start from a full, balanced tree) this
//! is equivalent to what we do; but taken literally it would also mark
//! long-empty slots as Leave, forcing key changes — and non-empty rekey
//! messages — even for an *empty* batch. We therefore label Leave only the
//! slots vacated *this* batch (departed u-nodes and the k-nodes pruned
//! above them); other n-nodes are transparent to labelling. DESIGN.md
//! records this substitution.
//!
//! # Cost model
//!
//! [`KeyTree::process_batch_in`] touches only the rekey subtree, never the
//! whole tree: labelling grows bottom-up from the slots this batch placed
//! or vacated, walking each ancestor path once with an early exit at the
//! first already-visited node, so a (J, L) batch costs
//! `O((J + L) · log_d N)` regardless of `N`. All per-batch working state
//! lives in a caller-owned [`MarkScratch`] whose buffers are reused across
//! batches (epoch-stamped node maps avoid `O(N)` clears), and fresh keys
//! for the updated k-nodes are derived from a single per-batch seed so
//! they can be minted in parallel with bit-identical results at any
//! worker count.

use std::collections::HashMap;

use wirecrypto::{KeyGen, StreamCipher};

use crate::ident;
use crate::node::{MemberId, Node, NodeId};
use crate::tree::KeyTree;
use wirecrypto::SymKey;

/// The join and leave requests collected during one rekey interval.
#[derive(Debug, Clone, Default)]
pub struct Batch {
    /// Newly admitted members with their individual keys (from
    /// registration), in admission order.
    pub joins: Vec<(MemberId, SymKey)>,
    /// Members that left during the interval.
    pub leaves: Vec<MemberId>,
}

impl Batch {
    /// Builds a batch.
    pub fn new(joins: Vec<(MemberId, SymKey)>, leaves: Vec<MemberId>) -> Self {
        Batch { joins, leaves }
    }

    /// `J`, the number of joins.
    pub fn j(&self) -> usize {
        self.joins.len()
    }

    /// `L`, the number of leaves.
    pub fn l(&self) -> usize {
        self.leaves.len()
    }

    /// True when there is nothing to do.
    pub fn is_empty(&self) -> bool {
        self.joins.is_empty() && self.leaves.is_empty()
    }
}

/// Rekey-subtree label of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Label {
    /// Key unchanged; no encryption needed below this node.
    Unchanged,
    /// Key changed because of joins only (no departed user knew it).
    Join,
    /// The node vacated this interval (departed u-node / pruned k-node).
    Leave,
    /// Key changed and at least one departed user knew the old key.
    Replace,
}

/// Compact label encoding for the scratch map: 0 = unlabelled.
const LABEL_NONE: u8 = 0;

fn label_code(label: Label) -> u8 {
    match label {
        Label::Unchanged => 1,
        Label::Join => 2,
        Label::Leave => 3,
        Label::Replace => 4,
    }
}

fn label_decode(code: u8) -> Option<Label> {
    match code {
        1 => Some(Label::Unchanged),
        2 => Some(Label::Join),
        3 => Some(Label::Leave),
        4 => Some(Label::Replace),
        _ => None,
    }
}

/// One edge of the rekey subtree: the encryption `{key(parent)}_{key(child)}`.
///
/// The encryption's wire ID is `child` (each key encrypts at most one other
/// key per rekey message, so the encrypting key's node ID is unique).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncEdge {
    /// Node whose key encrypts (a child of `parent` in the tree).
    pub child: NodeId,
    /// The updated k-node whose new key is being distributed.
    pub parent: NodeId,
}

/// A user relocated by node splitting (its u-node ID changed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UserMove {
    /// The member that moved.
    pub member: MemberId,
    /// Its u-node ID before the batch.
    pub old_id: NodeId,
    /// Its u-node ID after the batch.
    pub new_id: NodeId,
}

/// Reusable per-batch working state of the marking algorithm.
///
/// All node-indexed maps are epoch-stamped: bumping the epoch in
/// [`MarkScratch::begin`] invalidates every entry in O(1), so consecutive
/// batches share the buffers without clearing them. A long-lived server
/// holds one scratch next to its tree and never allocates for marking
/// again (buffers grow to the tree's storage size and stay).
#[derive(Debug, Default)]
pub struct MarkScratch {
    /// Current batch epoch; entries with a different stamp are invalid.
    /// 64 bits wide: a `u32` epoch would wrap after 2^32 batches, at which
    /// point every stale stamp from four billion batches ago would read as
    /// current again and leak phantom labels into the rekey subtree. At
    /// one batch per millisecond a `u64` epoch outlives the hardware; the
    /// wrap branch in [`MarkScratch::begin`] stays as a defensive
    /// hard-clear so even a forced wrap cannot resurrect stale entries.
    epoch: u64,
    /// Per-node epoch stamp for `label_val`.
    label_epoch: Vec<u64>,
    /// Per-node label (`LABEL_NONE` = explicitly cleared this epoch).
    label_val: Vec<u8>,
    /// Per-node epoch stamp for the ancestor-collection visited set.
    anc_epoch: Vec<u64>,
    /// Sorted u-node IDs of this batch's departures.
    departed_ids: Vec<NodeId>,
    /// Slots vacated this batch (departed u-nodes and pruned k-nodes).
    became_n: Vec<NodeId>,
    /// U-node slots filled this batch (joins, replacements, moved users).
    placed: Vec<NodeId>,
    /// K-nodes of the rekey subtree, collected bottom-up from the seeds.
    touched: Vec<NodeId>,
}

impl MarkScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        MarkScratch::default()
    }

    /// Starts a new batch epoch and sizes the node maps for a tree with
    /// `storage` slots.
    fn begin(&mut self, storage: usize) {
        if self.epoch == u64::MAX {
            // Epoch wrapped: every stale stamp would look current again,
            // so hard-clear both stamp maps. Unreachable in practice with
            // a 64-bit epoch; kept as defence in depth (and exercised by
            // the forced-wrap regression test).
            self.label_epoch.iter_mut().for_each(|e| *e = 0);
            self.anc_epoch.iter_mut().for_each(|e| *e = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.grow(storage);
        self.departed_ids.clear();
        self.became_n.clear();
        self.placed.clear();
        self.touched.clear();
    }

    /// Jumps the epoch counter to `epoch` (test-only): lets the
    /// forced-wrap regression test reach the `u64::MAX` hard-clear branch
    /// without running 2^64 batches.
    #[cfg(test)]
    fn set_epoch_for_wrap_test(&mut self, epoch: u64) {
        self.epoch = epoch;
    }

    fn grow(&mut self, storage: usize) {
        if self.label_epoch.len() < storage {
            self.label_epoch.resize(storage, 0);
            self.label_val.resize(storage, LABEL_NONE);
            self.anc_epoch.resize(storage, 0);
        }
    }

    fn stamp(&mut self, id: NodeId, label: Label) {
        self.grow(id as usize + 1);
        self.label_epoch[id as usize] = self.epoch;
        self.label_val[id as usize] = label_code(label);
    }

    /// Clears a node's label for this epoch (distinct from "never
    /// labelled": the slot will not fall back to its tag default).
    fn unstamp(&mut self, id: NodeId) {
        self.grow(id as usize + 1);
        self.label_epoch[id as usize] = self.epoch;
        self.label_val[id as usize] = LABEL_NONE;
    }

    fn label_of(&self, id: NodeId) -> Option<Label> {
        let i = id as usize;
        if self.label_epoch.get(i) == Some(&self.epoch) {
            label_decode(self.label_val[i])
        } else {
            None
        }
    }

    /// Marks `id` as visited by the ancestor collection; returns `false`
    /// if it was already visited this epoch.
    fn visit_anc(&mut self, id: NodeId) -> bool {
        self.grow(id as usize + 1);
        let i = id as usize;
        if self.anc_epoch[i] == self.epoch {
            return false;
        }
        self.anc_epoch[i] = self.epoch;
        true
    }
}

/// When and how hard the tree compacts itself under one-sided churn.
///
/// Sustained departures leave the key tree sparse: `nk` (the maximum
/// k-node ID) stays at its historical peak while the population shrinks,
/// so tree depth — and with it encryptions per member and USR packet size
/// — reflects the *peak* group, not the current one. Compaction relocates
/// members from the highest u-node slots into the lowest empty slots of
/// the legal window `(nk, d*nk + d]`, which lets emptied subtrees prune
/// away and `nk` fall back toward the compact optimum.
///
/// Relocations are deliberately *tail-first* (highest occupied slot to
/// lowest hole), which preserves Lemma 4.1 at every step. Unlike split
/// moves, a compaction relocation moves a member *downward* in ID space
/// and is therefore **not** re-derivable from `maxKID` via Theorem 4.2 —
/// the server must tell the member its new ID explicitly (the USR wire
/// format already carries `newUserID`); see [`MarkOutcome::relocations`].
///
/// The work is amortized: at most [`CompactionPolicy::max_moves_per_batch`]
/// relocations per batch, each costing one vacate + one place + `O(log N)`
/// pruning/revival, so a batch's cost stays `O((J + L + moves) log N)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionPolicy {
    /// Master switch; `false` makes [`KeyTree::process_batch_compacting_in`]
    /// behave exactly like [`KeyTree::process_batch_in`].
    pub enabled: bool,
    /// Trigger slack: compact only once `nk` exceeds
    /// `slack * ideal_nk + d`, where `ideal_nk ~ (U - 1) / (d - 1)` is the
    /// maximum k-node ID of a compact tree holding the current `U` users.
    /// Larger values tolerate more sparseness before paying relocations.
    pub slack: u32,
    /// Relocation budget per batch (amortization knob). Zero disables
    /// compaction as thoroughly as `enabled: false`.
    pub max_moves_per_batch: usize,
}

impl CompactionPolicy {
    /// Compaction off — the default, so existing pipelines (and their
    /// byte-identical baselines) are unaffected unless a caller opts in.
    pub const DISABLED: CompactionPolicy = CompactionPolicy {
        enabled: false,
        slack: 2,
        max_moves_per_batch: 0,
    };

    /// The recommended on-switch: trigger at 2x the compact tree size,
    /// amortize at most 64 relocations per batch.
    pub const DEFAULT_ON: CompactionPolicy = CompactionPolicy {
        enabled: true,
        slack: 2,
        max_moves_per_batch: 64,
    };

    /// The maximum k-node ID a compact tree of `users` members needs: a
    /// full degree-`d` tree with `U` leaves has `ceil((U - 1) / (d - 1))`
    /// internal nodes, and BFS numbering packs them densely from 0.
    fn ideal_nk(users: usize, d: u32) -> u64 {
        if users == 0 {
            return 0;
        }
        let d = u64::from(d.max(2));
        (users as u64).saturating_sub(1).div_ceil(d - 1)
    }

    /// Whether the tree is sparse enough to start compacting.
    fn should_compact(&self, nk: NodeId, users: usize, d: u32) -> bool {
        self.enabled
            && self.max_moves_per_batch > 0
            && users > 0
            && u64::from(nk) > u64::from(self.slack) * Self::ideal_nk(users, d) + u64::from(d)
    }

    /// Whether, mid-compaction, another relocation is still worth doing
    /// (hysteresis: once triggered, compact down to `ideal_nk + d`, not
    /// merely below the trigger line).
    fn keep_compacting(nk: NodeId, users: usize, d: u32) -> bool {
        u64::from(nk) > Self::ideal_nk(users, d) + u64::from(d)
    }
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy::DISABLED
    }
}

/// Everything the rekey-transport layer needs about one processed batch.
#[derive(Debug, Clone, PartialEq)]
pub struct MarkOutcome {
    /// k-nodes that received fresh keys, deepest (largest ID) first — the
    /// paper's bottom-up traversal order.
    pub updated_knodes: Vec<NodeId>,
    /// The encryptions of the rekey message, grouped by parent in
    /// `updated_knodes` order, children ascending within a parent.
    pub encryptions: Vec<EncEdge>,
    /// Users whose u-node IDs changed due to splitting.
    pub moves: Vec<UserMove>,
    /// Users relocated *downward* by tail compaction
    /// ([`CompactionPolicy`]). Unlike [`MarkOutcome::moves`], these are
    /// **not** re-derivable from `maxKID` (Theorem 4.2 only covers the
    /// upward split direction), so the server must notify each relocated
    /// member of its new ID explicitly — the USR packet's `newUserID`
    /// field carries it on the wire. Empty unless compaction ran.
    pub relocations: Vec<UserMove>,
    /// Members removed by this batch.
    pub departed: Vec<MemberId>,
    /// Members added by this batch.
    pub joined: Vec<MemberId>,
    /// Maximum k-node ID after the batch (the `maxKID` wire field).
    pub nk: Option<NodeId>,
    /// Labels of all nodes that participated in the rekey subtree
    /// (diagnostics and tests).
    pub labels: HashMap<NodeId, Label>,
    /// `(child, index into encryptions)`, sorted by child for binary
    /// search.
    index_by_child: Vec<(NodeId, usize)>,
}

impl MarkOutcome {
    /// The index (into [`Self::encryptions`]) of the encryption whose
    /// encrypting key is node `child`, if one exists.
    pub fn encryption_by_child(&self, child: NodeId) -> Option<usize> {
        self.index_by_child
            .binary_search_by_key(&child, |&(c, _)| c)
            .ok()
            .map(|pos| self.index_by_child[pos].1)
    }

    /// Indices of the encryptions a user at u-node `user_id` needs: those
    /// whose encrypting key lies on the path from the u-node to the root.
    /// Returned leaf-side first, which is also decryption order.
    pub fn encryptions_for_user(&self, user_id: NodeId, degree: u32) -> Vec<usize> {
        let mut out = Vec::new();
        self.encryptions_for_user_into(user_id, degree, &mut out);
        out
    }

    /// Non-allocating variant of [`Self::encryptions_for_user`]: clears
    /// `out` and fills it with the needed indices, leaf-side first.
    pub fn encryptions_for_user_into(&self, user_id: NodeId, degree: u32, out: &mut Vec<usize>) {
        out.clear();
        out.extend(ident::path_iter(user_id, degree).filter_map(|n| self.encryption_by_child(n)));
    }

    /// True when the batch changed the group key.
    pub fn group_key_changed(&self) -> bool {
        self.updated_knodes.contains(&0)
    }
}

/// Derives the fresh key of an updated k-node from the batch seed. Keyed
/// on the node ID, so the derivation order is irrelevant — workers mint
/// keys for disjoint ID chunks and the result is identical to a
/// sequential pass.
fn derive_node_key(seed: &SymKey, id: NodeId) -> SymKey {
    let mut buf = [0u8; 16];
    StreamCipher::new(seed, id as u64).apply(&mut buf);
    SymKey::from_bytes(buf)
}

/// Updated k-nodes per parallel key-derivation chunk. Constant (not
/// worker-count derived) so chunk boundaries — and thus the work units —
/// are identical at any `REKEY_THREADS`. Public because the streaming
/// rekey pipeline mints producer-side chunks on the same boundaries the
/// barrier path uses, which is what keeps the two paths byte-identical.
pub const DERIVE_CHUNK: usize = 128;

/// [`derive_node_key`] for callers outside the crate: the streaming
/// pipeline's producer mints updated-k-node keys chunk by chunk from the
/// [`PendingMint`] seed while downstream stages are already sealing, and
/// must produce bit-for-bit the keys the barrier path installs.
pub fn derive_updated_key(seed: &SymKey, id: NodeId) -> SymKey {
    derive_node_key(seed, id)
}

/// The deferred half of a processed batch: the seed from which every
/// updated k-node's fresh key derives.
///
/// [`KeyTree::process_batch_deferred_in`] hands this back *instead of*
/// installing the fresh keys, so a streaming caller can overlap key
/// minting with downstream sealing while the tree stays immutable (and
/// therefore freely shared across pipeline stages). Each key is a pure
/// PRF of `(seed, node id)` — see [`derive_updated_key`] — so minting
/// order is irrelevant and deferral cannot change a single key byte.
/// Once the pipeline drains, [`KeyTree::install_minted`] writes the
/// derived keys back.
#[derive(Debug, Clone)]
pub struct PendingMint {
    /// `None` when the batch updated no k-nodes (the keygen draw is
    /// skipped entirely, preserving the generator's sequence).
    seed: Option<SymKey>,
}

impl PendingMint {
    /// The batch seed, or `None` when there is nothing to mint.
    pub fn seed(&self) -> Option<&SymKey> {
        self.seed.as_ref()
    }
}

impl KeyTree {
    /// Runs the marking algorithm over one batch: updates the tree
    /// (replacements, pruning, splitting), relabels, mints fresh keys for
    /// every updated k-node, and returns the rekey-subtree edges.
    ///
    /// Convenience wrapper over [`KeyTree::process_batch_in`] that clones
    /// the batch and allocates a throwaway [`MarkScratch`]; long-lived
    /// servers should hold a scratch and call `process_batch_in` directly.
    ///
    /// # Panics
    ///
    /// Panics if a leave names an unknown member or a join names a member
    /// already in the group — both are caller bugs (the key-management
    /// front end validates requests against individual keys before they
    /// reach the tree).
    pub fn process_batch(&mut self, batch: &Batch, keygen: &mut KeyGen) -> MarkOutcome {
        let mut scratch = MarkScratch::new();
        self.process_batch_in(batch.clone(), keygen, &mut scratch)
    }

    /// [`KeyTree::process_batch`] without the per-call allocations: takes
    /// the batch by value (its join/leave vectors move into the outcome)
    /// and reuses the caller's [`MarkScratch`] across batches.
    ///
    /// # Panics
    ///
    /// As [`KeyTree::process_batch`].
    pub fn process_batch_in(
        &mut self,
        batch: Batch,
        keygen: &mut KeyGen,
        scratch: &mut MarkScratch,
    ) -> MarkOutcome {
        self.process_batch_compacting_in(batch, keygen, scratch, &CompactionPolicy::DISABLED)
    }

    /// [`KeyTree::process_batch_in`] plus amortized tail compaction: after
    /// the batch's own topology changes, if the tree has grown sparse
    /// enough to trip `policy`, members are relocated from the highest
    /// u-node slots into the lowest legal holes (at most
    /// [`CompactionPolicy::max_moves_per_batch`] per call) and the
    /// vacated tail prunes away, pulling `nk` — and with it tree depth and
    /// per-member rekey cost — back toward the compact optimum. The
    /// relocated members are reported in [`MarkOutcome::relocations`] and
    /// rekeyed like joiners (their subtree edges are sealed under their
    /// individual keys), so delivery and forward secrecy are unaffected.
    ///
    /// With [`CompactionPolicy::DISABLED`] this is byte-identical to
    /// [`KeyTree::process_batch_in`].
    ///
    /// # Panics
    ///
    /// As [`KeyTree::process_batch`].
    pub fn process_batch_compacting_in(
        &mut self,
        batch: Batch,
        keygen: &mut KeyGen,
        scratch: &mut MarkScratch,
        policy: &CompactionPolicy,
    ) -> MarkOutcome {
        let (outcome, pending) = self.process_batch_deferred_in(batch, keygen, scratch, policy);

        // Mint the fresh keys in parallel from the batch seed and install
        // them immediately — the classic barrier shape. Each key is a PRF
        // of (seed, node id), so chunked workers produce exactly the keys
        // a sequential pass would.
        if let Some(seed) = pending.seed() {
            let span_mint = obs::span("stage.mint");
            let chunks: Vec<&[NodeId]> = outcome.updated_knodes.chunks(DERIVE_CHUNK).collect();
            let derived: Vec<Vec<SymKey>> = taskpool::map(&chunks, |_, ids| {
                ids.iter().map(|&id| derive_node_key(seed, id)).collect()
            });
            drop(span_mint);
            let flat: Vec<SymKey> = derived.into_iter().flatten().collect();
            self.install_minted(&outcome.updated_knodes, &flat);
        }
        outcome
    }

    /// [`KeyTree::process_batch_compacting_in`] with key installation
    /// deferred: runs marking, draws the batch seed, and builds the full
    /// [`MarkOutcome`] (edges, labels, moves), but does **not** write the
    /// fresh keys into the tree — they come back as a [`PendingMint`] for
    /// the caller to derive (chunk by chunk, overlapped with downstream
    /// work) and install via [`KeyTree::install_minted`].
    ///
    /// This works because nothing after marking reads the fresh key
    /// *values*: encryption edges depend only on node tags and batch
    /// labels, and each deferred key is a pure PRF of `(seed, id)`. The
    /// keygen draw happens at exactly the point the barrier path draws
    /// it, so the generator's sequence — and with it every future batch —
    /// is unchanged. Until [`KeyTree::install_minted`] runs, the tree
    /// still holds the *previous* keys of the updated k-nodes; sealing
    /// must take fresh keys from the mint stream, never from the tree.
    ///
    /// # Panics
    ///
    /// As [`KeyTree::process_batch`].
    pub fn process_batch_deferred_in(
        &mut self,
        batch: Batch,
        keygen: &mut KeyGen,
        scratch: &mut MarkScratch,
        policy: &CompactionPolicy,
    ) -> (MarkOutcome, PendingMint) {
        let _span_batch = obs::span("keytree.mark_batch");
        if scratch.epoch > 0 {
            // A warm scratch means its node maps and work lists carry
            // capacity over from an earlier batch — the allocation-free
            // steady state long-lived servers run in.
            obs::counter_add("keytree.scratch_reuse_hits", 1);
        }
        let mut moves: Vec<UserMove> = Vec::new();
        let mut relocations: Vec<UserMove> = Vec::new();
        self.mark_batch_compacting_in(
            &batch,
            keygen,
            scratch,
            &mut moves,
            &mut relocations,
            policy,
        );

        let d = self.degree();
        let span_mint = obs::span("stage.mint");

        // ---- Phase 3: batch seed and encryption edges --------------------
        // `touched` is already descending (deepest first), so the filter
        // preserves the paper's bottom-up traversal order.
        let updated: Vec<NodeId> = scratch
            .touched
            .iter()
            .copied()
            .filter(|&id| {
                matches!(
                    scratch.label_of(id),
                    Some(Label::Join) | Some(Label::Replace)
                )
            })
            .collect();

        // The seed is drawn here — the same generator step the barrier
        // path always took — but the keys themselves are left pending.
        let pending = PendingMint {
            seed: (!updated.is_empty()).then(|| keygen.next_key()),
        };

        let mut encryptions = Vec::new();
        for &p in &updated {
            for c in ident::children(p, d) {
                if self.is_n(c) {
                    continue;
                }
                if scratch.label_of(c) == Some(Label::Leave) {
                    continue;
                }
                encryptions.push(EncEdge {
                    child: c,
                    parent: p,
                });
            }
        }
        let mut index_by_child: Vec<(NodeId, usize)> = encryptions
            .iter()
            .enumerate()
            .map(|(i, e)| (e.child, i))
            .collect();
        index_by_child.sort_unstable_by_key(|&(c, _)| c);

        // The outward labels map holds the rekey subtree only: the nodes
        // this batch placed, vacated, or relabelled.
        let mut labels: HashMap<NodeId, Label> = HashMap::with_capacity(
            scratch.touched.len() + scratch.placed.len() + scratch.became_n.len(),
        );
        for list in [&scratch.touched, &scratch.placed, &scratch.became_n] {
            for &id in list {
                if let Some(label) = scratch.label_of(id) {
                    labels.insert(id, label);
                }
            }
        }

        obs::counter_add("keytree.keys_minted", updated.len() as u64);
        obs::counter_add("keytree.encryptions", encryptions.len() as u64);
        drop(span_mint);

        debug_assert_eq!(self.check_invariants(), Ok(()));

        if policy.enabled {
            // Reclaim storage the compacted (or mass-departed) tail no
            // longer reaches. Gated on a 2x slack so steady-state batches
            // never pay a reallocation; only a genuine contraction does.
            self.shrink_storage_if_slack();
        }

        let Batch { joins, leaves } = batch;
        let outcome = MarkOutcome {
            updated_knodes: updated,
            encryptions,
            moves,
            relocations,
            departed: leaves,
            joined: joins.into_iter().map(|(m, _)| m).collect(),
            nk: self.max_knode_id(),
            labels,
            index_by_child,
        };
        (outcome, pending)
    }

    /// Writes the deferred fresh keys of a [`PendingMint`] batch into the
    /// tree: `keys[i]` becomes the key of `ids[i]` (the
    /// [`MarkOutcome::updated_knodes`] order). Extra entries on either
    /// side are ignored, so a partially-fed pipeline that is already
    /// panicking cannot corrupt unrelated nodes.
    ///
    /// After this call the tree is byte-identical to what
    /// [`KeyTree::process_batch_compacting_in`] would have produced
    /// directly, because each key is the pure PRF of `(seed, id)` both
    /// paths derive.
    pub fn install_minted(&mut self, ids: &[NodeId], keys: &[SymKey]) {
        debug_assert_eq!(ids.len(), keys.len(), "one deferred key per node");
        for (&id, &key) in ids.iter().zip(keys) {
            self.set_key(id, key);
        }
        debug_assert_eq!(self.check_invariants(), Ok(()));
    }

    /// Phases 1–2 of [`KeyTree::process_batch_in`]: applies one batch's
    /// topology changes (replacements, pruning, splitting, revivals) and
    /// labels the rekey subtree, leaving the labelled node set in
    /// `scratch` and the member relocations in `moves` (cleared first).
    /// Fresh keys are *not* minted here — [`KeyTree::process_batch_in`]
    /// runs this and then derives keys and encryption edges from the
    /// labels.
    ///
    /// With a warm `scratch`, a warm `moves`, and no tree growth this is
    /// the allocation-free half of the batch pipeline; the
    /// `no_alloc_marks` integration test pins it at zero steady-state
    /// allocations under the `xcheck-rt` counting allocator.
    ///
    /// # Panics
    ///
    /// As [`KeyTree::process_batch`].
    // xcheck: no_alloc
    pub fn mark_batch_in(
        &mut self,
        batch: &Batch,
        keygen: &mut KeyGen,
        scratch: &mut MarkScratch,
        moves: &mut Vec<UserMove>,
    ) {
        // An empty `Vec` costs no allocation and compaction is off, so
        // this wrapper preserves the zero-allocation contract.
        let mut relocations = Vec::new();
        self.mark_batch_compacting_in(
            batch,
            keygen,
            scratch,
            moves,
            &mut relocations,
            &CompactionPolicy::DISABLED,
        );
    }

    /// [`KeyTree::mark_batch_in`] with the amortized tail-compaction step
    /// of [`KeyTree::process_batch_compacting_in`] spliced in between the
    /// batch's topology changes and the labelling pass. Relocated members
    /// land in `relocations` (cleared first); with a warm scratch and warm
    /// vectors this remains allocation-free in the steady state.
    ///
    /// # Panics
    ///
    /// As [`KeyTree::process_batch`].
    // xcheck: no_alloc
    pub fn mark_batch_compacting_in(
        &mut self,
        batch: &Batch,
        keygen: &mut KeyGen,
        scratch: &mut MarkScratch,
        moves: &mut Vec<UserMove>,
        relocations: &mut Vec<UserMove>,
        policy: &CompactionPolicy,
    ) {
        let span_mark = obs::span("stage.mark");
        let d = self.degree();
        scratch.begin(self.storage_len());
        moves.clear();
        relocations.clear();

        // ---- Phase 1: update the key tree -------------------------------
        for m in &batch.leaves {
            let Some(id) = self.node_of_member(*m) else {
                panic!("leave request for unknown member {m}");
            };
            scratch.departed_ids.push(id);
        }
        scratch.departed_ids.sort_unstable();
        for (m, _) in &batch.joins {
            assert!(
                self.node_of_member(*m).is_none(),
                "join request for member {m} already in group"
            );
        }

        let j = batch.j();
        let l = batch.l();

        if j <= l {
            // Replace the J smallest-ID departures with joins; the rest
            // become n-nodes and may prune upward.
            for i in 0..l {
                let slot = scratch.departed_ids[i];
                if i < j {
                    let (member, key) = batch.joins[i];
                    self.set_node(slot, Node::U { member, key });
                    scratch.stamp(slot, Label::Replace);
                    scratch.placed.push(slot);
                } else {
                    self.set_node(slot, Node::N);
                    scratch.became_n.push(slot);
                    scratch.stamp(slot, Label::Leave);
                }
            }
            // Prune: a k-node whose children are all n-nodes becomes one.
            for i in j..l {
                let mut cur = scratch.departed_ids[i];
                while let Some(p) = ident::parent(cur, d) {
                    let all_n = ident::children(p, d).all(|c| self.is_n(c));
                    if all_n && self.is_k(p) {
                        self.set_node(p, Node::N);
                        scratch.became_n.push(p);
                        scratch.stamp(p, Label::Leave);
                        cur = p;
                    } else {
                        break;
                    }
                }
            }
        } else {
            // J > L: fill departures first...
            for i in 0..l {
                let slot = scratch.departed_ids[i];
                let (member, key) = batch.joins[i];
                self.set_node(slot, Node::U { member, key });
                scratch.stamp(slot, Label::Replace);
                scratch.placed.push(slot);
            }
            // ...then n-node slots in (nk, d*nk + d], low to high, splitting
            // node nk+1 whenever the range is exhausted.
            let mut next_join = l;
            // Bootstrap an empty tree: a root k-node with d empty slots.
            if self.max_knode_id().is_none() && next_join < j {
                self.set_node(
                    0,
                    Node::K {
                        key: keygen.next_key(),
                    },
                );
            }
            // The fill cursor never moves backwards: within one batch this
            // phase only fills slots, so everything below the cursor stays
            // non-empty, and each split opens fresh slots past the old
            // range end. One monotone scan covers every split round.
            let mut cursor: NodeId = 0;
            while next_join < j {
                let Some(nk) = self.max_knode_id() else {
                    unreachable!("bootstrap guarantees a k-node exists")
                };
                let high = d as u64 * nk as u64 + d as u64;
                let Ok(high) = NodeId::try_from(high) else {
                    panic!("tree exceeds NodeId range")
                };
                cursor = cursor.max(nk + 1);
                while cursor <= high && next_join < j {
                    if self.is_n(cursor) {
                        let (member, key) = batch.joins[next_join];
                        next_join += 1;
                        self.set_node(cursor, Node::U { member, key });
                        scratch.stamp(cursor, Label::Join);
                        scratch.placed.push(cursor);
                    }
                    cursor += 1;
                }
                if next_join == j {
                    break;
                }
                // Split node nk+1: it becomes a k-node and its occupant
                // moves to its leftmost child.
                let split = nk + 1;
                let child = ident::first_child(split, d);
                let occupant = self.member_at(split);
                let occupant_key = self.key_of(split);
                // Convert the slot to a k-node first so the member index
                // entry for its occupant is released before re-insertion.
                self.set_node(
                    split,
                    Node::K {
                        key: keygen.next_key(),
                    },
                );
                if let Some(member) = occupant {
                    let Some(key) = occupant_key else {
                        unreachable!("occupied slot {split} holds a key")
                    };
                    self.set_node(child, Node::U { member, key });
                    // A slot can split repeatedly in one batch (its child
                    // range fills up and splits again). Theorem 4.2
                    // rederives pre-batch ID -> final ID, so chained hops
                    // coalesce into one move per member.
                    if let Some(mv) = moves.iter_mut().find(|mv| mv.member == member) {
                        mv.new_id = child;
                    } else {
                        moves.push(UserMove {
                            member,
                            old_id: split,
                            new_id: child,
                        });
                    }
                    // The moved user is "new" at its slot: its parent
                    // must deliver keys encrypted under its individual
                    // key, exactly as for a join.
                    scratch.stamp(child, Label::Join);
                    scratch.placed.push(child);
                    scratch.unstamp(split);
                }
                // Splitting an empty slot just deepens the tree.
            }
        }

        // Update rule 4: any n-node with a u-node descendant becomes a
        // k-node (fresh key; it will be labelled from its children).
        // Only slots placed *this* batch can have n-node ancestors —
        // invariant 1 guarantees every pre-existing user's ancestors are
        // all k-nodes, and pruning never reaches above a live user — so
        // the walk is O(placed · height), not O(N · height).
        for i in 0..scratch.placed.len() {
            let mut cur = scratch.placed[i];
            while let Some(p) = ident::parent(cur, d) {
                if self.is_k(p) {
                    // A k-node's ancestors are already k-nodes (either
                    // pre-existing or revived moments ago).
                    break;
                }
                debug_assert!(self.is_n(p), "u-node above a placed slot");
                self.set_node(
                    p,
                    Node::K {
                        key: keygen.next_key(),
                    },
                );
                cur = p;
            }
        }

        // ---- Phase 1.5: amortized tail compaction -----------------------
        // Only after split-free batches: a splitting batch means the tree
        // is full (nothing to compact), and keeping the two relocation
        // directions out of one batch keeps Theorem 4.2's oracle crisp —
        // `moves` stays fully maxKID-rederivable, `relocations` fully
        // explicit.
        if moves.is_empty() {
            self.compact_tail_in(keygen, scratch, relocations, policy);
        }

        // ---- Phase 2: label the rekey subtree ---------------------------
        // Collect the k-nodes of the rekey subtree bottom-up: every
        // ancestor of a slot placed or vacated this batch, deduplicated
        // with an epoch-stamped visited set. An n-node ancestor is always
        // a slot pruned this batch (stamped Leave above), whose own walk
        // covers the rest of the chain.
        for seed in 0..scratch.placed.len() + scratch.became_n.len() {
            let slot = if seed < scratch.placed.len() {
                scratch.placed[seed]
            } else {
                scratch.became_n[seed - scratch.placed.len()]
            };
            let mut cur = slot;
            while let Some(p) = ident::parent(cur, d) {
                if !self.is_k(p) || !scratch.visit_anc(p) {
                    break;
                }
                scratch.touched.push(p);
                cur = p;
            }
        }
        // Descending ID order means every child's label lands before its
        // parent combines it (parents always have smaller BFS IDs).
        scratch.touched.sort_unstable_by(|a, b| b.cmp(a));
        for i in 0..scratch.touched.len() {
            let id = scratch.touched[i];
            let mut any = false;
            let mut all_leave = true;
            let mut all_unchanged = true;
            let mut join_only = true;
            for c in ident::children(id, d) {
                let cl = match scratch.label_of(c) {
                    Some(cl) => cl,
                    // Untouched children label from their tag: live nodes
                    // are Unchanged, empty slots are transparent.
                    None if self.is_n(c) => continue,
                    None => Label::Unchanged,
                };
                any = true;
                all_leave &= cl == Label::Leave;
                all_unchanged &= cl == Label::Unchanged;
                join_only &= matches!(cl, Label::Unchanged | Label::Join);
            }
            let label = if !any {
                // A live k-node with no labelled children: nothing below
                // changed and nothing vacated — unchanged.
                Label::Unchanged
            } else if all_leave {
                Label::Leave
            } else if all_unchanged {
                Label::Unchanged
            } else if join_only {
                Label::Join
            } else {
                Label::Replace
            };
            scratch.stamp(id, label);
        }

        drop(span_mark);
    }

    /// The tail-compaction loop: while the tree is sparser than `policy`
    /// tolerates and budget remains, vacate the *highest* occupied u-node
    /// and re-place its member (individual key unchanged) at the *lowest*
    /// hole of the legal window `(nk, d*nk + d]` strictly below it.
    ///
    /// Order of operations per move keeps every invariant true at every
    /// step:
    ///
    /// 1. pick source `s` (highest u-node) and hole `h` (lowest in-window
    ///    n-slot with `h < s`) — if no such pair exists, the tail is
    ///    already dense and compaction stops;
    /// 2. vacate `s` (label Leave) and prune emptied ancestors exactly
    ///    like a departure, possibly lowering `nk`;
    /// 3. place the member at `h` (label Join — it bootstraps from its
    ///    individual key like a joiner) and immediately revive any n-node
    ///    ancestors of `h` to k-nodes, so `nk` again covers `h`'s parent
    ///    before the next move picks its window.
    ///
    /// Tail-first order is what preserves Lemma 4.1: `h`'s parent has ID
    /// `<= nk`, so no k-node ever lands above a u-node ID, and every
    /// remaining member's ID stays inside the window Theorem 4.2 searches.
    // xcheck: no_alloc
    fn compact_tail_in(
        &mut self,
        keygen: &mut KeyGen,
        scratch: &mut MarkScratch,
        relocations: &mut Vec<UserMove>,
        policy: &CompactionPolicy,
    ) {
        let d = self.degree();
        let Some(nk0) = self.max_knode_id() else {
            return;
        };
        if !policy.should_compact(nk0, self.user_count(), d) {
            return;
        }
        let _span = obs::span("stage.compact");

        for _ in 0..policy.max_moves_per_batch {
            let Some(nk) = self.max_knode_id() else {
                break;
            };
            if !CompactionPolicy::keep_compacting(nk, self.user_count(), d) {
                break;
            }
            // Source: the highest occupied u-node slot. A slot stamped
            // this batch (a joiner the fill phase placed, or the hole a
            // previous compaction move just filled) is never a source:
            // relocations must map *pre-batch* positions to final ones,
            // one per member. A stamped tail slot also means every hole
            // below it was already denser-packed — nothing left to gain.
            let Some(src) = self.highest_unode_id() else {
                break;
            };
            if scratch.label_of(src).is_some() {
                break;
            }
            // Hole: the lowest empty in-window slot strictly below it.
            // (Everything in the window below `src` is a u-node or a
            // hole — k-node IDs stop at nk — so the first n-tag wins.)
            let high = d as u64 * nk as u64 + d as u64;
            let Ok(high) = NodeId::try_from(high) else {
                break;
            };
            let mut hole: Option<NodeId> = None;
            let mut cand = nk + 1;
            while cand < src && cand <= high {
                if self.is_n(cand) {
                    hole = Some(cand);
                    break;
                }
                cand += 1;
            }
            let Some(hole) = hole else {
                // No hole below the tail: the occupied region is dense.
                break;
            };
            let Some(member) = self.member_at(src) else {
                unreachable!("highest_unode_id returned a non-u slot")
            };
            let Some(key) = self.key_of(src) else {
                unreachable!("occupied slot {src} holds a key")
            };

            // Vacate the source exactly like a departure.
            self.set_node(src, Node::N);
            scratch.stamp(src, Label::Leave);
            scratch.became_n.push(src);
            let mut cur = src;
            while let Some(p) = ident::parent(cur, d) {
                let all_n = ident::children(p, d).all(|c| self.is_n(c));
                if all_n && self.is_k(p) {
                    self.set_node(p, Node::N);
                    scratch.became_n.push(p);
                    scratch.stamp(p, Label::Leave);
                    cur = p;
                } else {
                    break;
                }
            }

            // Re-place the member (same individual key) at the hole; it
            // is "new" there, so its parent seals the fresh subtree keys
            // under its individual key exactly as for a join.
            self.set_node(hole, Node::U { member, key });
            scratch.stamp(hole, Label::Join);
            scratch.placed.push(hole);
            // Revive n-node ancestors immediately (update rule 4), so
            // `nk` covers the new slot's parent before the next move.
            let mut cur = hole;
            while let Some(p) = ident::parent(cur, d) {
                if self.is_k(p) {
                    break;
                }
                debug_assert!(self.is_n(p), "u-node above a compaction hole");
                self.set_node(
                    p,
                    Node::K {
                        key: keygen.next_key(),
                    },
                );
                cur = p;
            }

            relocations.push(UserMove {
                member,
                old_id: src,
                new_id: hole,
            });
        }
        obs::counter_add("keytree.compaction_moves", relocations.len() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ident::derive_current_id;

    fn keygen() -> KeyGen {
        KeyGen::from_seed(7)
    }

    fn join(kg: &mut KeyGen, m: MemberId) -> (MemberId, SymKey) {
        (m, kg.next_key())
    }

    /// Every current member, given only the encryptions it can decrypt
    /// starting from the keys it held before the batch, must end up with
    /// the new group key; every departed member must not.
    fn assert_delivery(tree_before: &KeyTree, tree_after: &KeyTree, outcome: &MarkOutcome) {
        let d = tree_after.degree();
        let new_group_key = tree_after.group_key();

        for m in tree_after.member_ids() {
            let uid = tree_after.node_of_member(m).unwrap();
            // Keys the member holds: its individual key plus any path keys
            // from before that are still valid. Simulate decryption: walk
            // the path leaf to root, at each step using the child key to
            // obtain the parent key (from the outcome) or keeping the old
            // key if unchanged.
            let mut have: HashMap<NodeId, SymKey> = HashMap::new();
            have.insert(uid, tree_after.key_of(uid).unwrap());
            // Old path keys (only for members that existed before).
            if let Some(old_keys) = tree_before.keys_for_member(m) {
                for (id, k) in old_keys {
                    have.entry(id).or_insert(k);
                }
            }
            for id in ident::path_to_root(uid, d) {
                if let Some(idx) = outcome.encryption_by_child(id) {
                    let edge = outcome.encryptions[idx];
                    assert!(
                        have.contains_key(&edge.child),
                        "member {m} lacks key {} to decrypt {{{}}}",
                        edge.child,
                        edge.parent
                    );
                    have.insert(edge.parent, tree_after.key_of(edge.parent).unwrap());
                } else if let Some(p) = ident::parent(id, d) {
                    // No encryption under `id`: parent key must be
                    // unchanged from before (the member already has it)
                    // or delivered via a sibling edge... for path walks,
                    // parent must either be unchanged or have an edge from
                    // this child. Updated parents always edge to every
                    // non-leave child, so:
                    if outcome.updated_knodes.contains(&p) {
                        panic!("updated k-node {p} has no edge to child {id}");
                    }
                }
            }
            assert_eq!(
                have.get(&0).copied(),
                new_group_key,
                "member {m} did not obtain the group key"
            );
        }

        // Departed members: their old individual key must not decrypt any
        // encryption (no edge has child == their old u-node id with their
        // key still installed).
        for m in &outcome.departed {
            if tree_after.node_of_member(*m).is_some() {
                continue; // re-joined in the same batch (not produced here)
            }
            let old_uid = tree_before.node_of_member(*m).unwrap();
            if let Some(idx) = outcome.encryption_by_child(old_uid) {
                // An edge exists at the slot: it must target a *different*
                // key now (slot replaced by a new member whose key differs).
                let edge = outcome.encryptions[idx];
                let new_key = tree_after.key_of(edge.child);
                let old_key = tree_before.key_of(old_uid);
                assert_ne!(new_key, old_key, "departed member {m} can still decrypt");
            }
        }
    }

    #[test]
    fn paper_example_single_leave() {
        // Section 2.1: 9 users, d = 3, u9 leaves. In our layout the 9
        // users sit at ids 4..=12 (root 0, k-nodes 1..=3).
        let mut kg = keygen();
        let mut tree = KeyTree::balanced(9, 3, &mut kg);
        let before = tree.clone();
        let batch = Batch::new(vec![], vec![8]); // member 8 == "u9", id 12
        let outcome = tree.process_batch(&batch, &mut kg);

        // Updated k-nodes: k789 (id 3) and the root, deepest first.
        assert_eq!(outcome.updated_knodes, vec![3, 0]);
        // Encryptions: {k78}k7, {k78}k8, {k1-8}k123, {k1-8}k456, {k1-8}k78.
        let edges: Vec<(NodeId, NodeId)> = outcome
            .encryptions
            .iter()
            .map(|e| (e.child, e.parent))
            .collect();
        assert_eq!(edges, vec![(10, 3), (11, 3), (1, 0), (2, 0), (3, 0)]);
        assert_delivery(&before, &tree, &outcome);
        tree.check_invariants().unwrap();
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut kg = keygen();
        let mut tree = KeyTree::balanced(16, 4, &mut kg);
        let gk = tree.group_key();
        let outcome = tree.process_batch(&Batch::default(), &mut kg);
        assert!(outcome.encryptions.is_empty());
        assert!(outcome.updated_knodes.is_empty());
        assert_eq!(tree.group_key(), gk);
    }

    #[test]
    fn join_equals_leave_replaces_in_place() {
        let mut kg = keygen();
        let mut tree = KeyTree::balanced(16, 4, &mut kg);
        let before = tree.clone();
        let batch = Batch::new(vec![join(&mut kg, 100), join(&mut kg, 101)], vec![3, 9]);
        let outcome = tree.process_batch(&batch, &mut kg);

        assert_eq!(tree.user_count(), 16);
        assert!(tree.node_of_member(100).is_some());
        assert!(tree.node_of_member(3).is_none());
        // Replacement happens at the departed slots (smallest first).
        let s3 = before.node_of_member(3).unwrap();
        let s9 = before.node_of_member(9).unwrap();
        assert_eq!(outcome.labels.get(&s3), Some(&Label::Replace));
        assert_eq!(outcome.labels.get(&s9), Some(&Label::Replace));
        assert_delivery(&before, &tree, &outcome);
    }

    #[test]
    fn leave_only_prunes_and_replaces() {
        let mut kg = keygen();
        let mut tree = KeyTree::balanced(16, 4, &mut kg);
        let before = tree.clone();
        // Remove a whole subtree: members 0..4 occupy ids 5..=8 (children
        // of k-node 1).
        let batch = Batch::new(vec![], vec![0, 1, 2, 3]);
        let outcome = tree.process_batch(&batch, &mut kg);

        assert!(tree.node(1).is_n(), "emptied k-node must prune to n-node");
        assert_eq!(outcome.labels.get(&1), Some(&Label::Leave));
        // Root is Replace; no encryption under the pruned child.
        assert_eq!(outcome.labels.get(&0), Some(&Label::Replace));
        assert!(outcome.encryption_by_child(1).is_none());
        assert_delivery(&before, &tree, &outcome);
        tree.check_invariants().unwrap();
    }

    #[test]
    fn all_users_leave_empties_tree() {
        let mut kg = keygen();
        let mut tree = KeyTree::balanced(4, 4, &mut kg);
        let batch = Batch::new(vec![], (0..4).collect());
        let outcome = tree.process_batch(&batch, &mut kg);
        assert_eq!(tree.user_count(), 0);
        assert_eq!(tree.group_key(), None);
        assert!(outcome.encryptions.is_empty());
        assert_eq!(outcome.nk, None);
    }

    #[test]
    fn join_only_fills_holes_first() {
        let mut kg = keygen();
        // 9 users in a d=4 height-2 tree: leaves 5..=13, holes 14..=20.
        let mut tree = KeyTree::balanced(9, 4, &mut kg);
        let before = tree.clone();
        let batch = Batch::new(vec![join(&mut kg, 50), join(&mut kg, 51)], vec![]);
        let outcome = tree.process_batch(&batch, &mut kg);

        // nk was 3; fill range is (3, 16], low to high: the first hole is
        // the internal-level slot 4 (the paper permits u-nodes above the
        // leaf level), then the leaf hole 14.
        assert_eq!(tree.node_of_member(50), Some(4));
        assert_eq!(tree.node_of_member(51), Some(14));
        // k-node 3 gains a join only => label Join; root Join too.
        assert_eq!(outcome.labels.get(&3), Some(&Label::Join));
        assert_eq!(outcome.labels.get(&0), Some(&Label::Join));
        assert_delivery(&before, &tree, &outcome);
        tree.check_invariants().unwrap();
    }

    #[test]
    fn join_fills_hole_under_pruned_subtree() {
        let mut kg = keygen();
        let mut tree = KeyTree::balanced(16, 4, &mut kg);
        // Empty the first subtree (ids 5..=8 under k-node 1).
        tree.process_batch(&Batch::new(vec![], vec![0, 1, 2, 3]), &mut kg);
        assert!(tree.node(1).is_n());
        let before = tree.clone();

        // One join: fill range is (nk, 4*nk+4]; nk is 4, so range (4, 20]
        // — the first hole is id 5, whose parent (1) is an n-node and must
        // be revived as a k-node.
        let batch = Batch::new(vec![join(&mut kg, 99)], vec![]);
        let outcome = tree.process_batch(&batch, &mut kg);
        assert_eq!(tree.node_of_member(99), Some(5));
        assert!(tree.node(1).is_k(), "revived ancestor must be a k-node");
        assert_delivery(&before, &tree, &outcome);
        tree.check_invariants().unwrap();
    }

    #[test]
    fn join_overflow_splits() {
        let mut kg = keygen();
        // Full 16-user tree (d=4): no holes, so a 17th user forces a split
        // of node nk+1 = 5.
        let mut tree = KeyTree::balanced(16, 4, &mut kg);
        let before = tree.clone();
        let moved_member = tree.member_at(5).unwrap();
        let batch = Batch::new(vec![join(&mut kg, 200)], vec![]);
        let outcome = tree.process_batch(&batch, &mut kg);

        assert!(tree.node(5).is_k(), "node 5 must have split into a k-node");
        // The occupant of 5 moved to its leftmost child 21.
        assert_eq!(tree.node_of_member(moved_member), Some(21));
        assert_eq!(
            outcome.moves,
            vec![UserMove {
                member: moved_member,
                old_id: 5,
                new_id: 21
            }]
        );
        // The new user fills the next slot, 22.
        assert_eq!(tree.node_of_member(200), Some(22));
        // Theorem 4.2 rederives the move from maxKID alone.
        let nk = outcome.nk.unwrap();
        assert_eq!(derive_current_id(5, nk, 4), Some(21));
        assert_delivery(&before, &tree, &outcome);
        tree.check_invariants().unwrap();
    }

    #[test]
    fn mass_join_multiple_splits() {
        let mut kg = keygen();
        let mut tree = KeyTree::balanced(16, 4, &mut kg);
        let before = tree.clone();
        let batch = Batch::new((0..32).map(|i| join(&mut kg, 300 + i)).collect(), vec![]);
        let outcome = tree.process_batch(&batch, &mut kg);
        assert_eq!(tree.user_count(), 48);
        assert!(outcome.moves.len() >= 2, "several slots must split");
        // All moved users rederive their IDs via Theorem 4.2.
        let nk = outcome.nk.unwrap();
        for mv in &outcome.moves {
            assert_eq!(derive_current_id(mv.old_id, nk, 4), Some(mv.new_id));
        }
        assert_delivery(&before, &tree, &outcome);
        tree.check_invariants().unwrap();
    }

    #[test]
    fn bootstrap_from_empty_tree() {
        let mut kg = keygen();
        let mut tree = KeyTree::new(4);
        let batch = Batch::new((0..6).map(|i| join(&mut kg, i)).collect(), vec![]);
        let before = tree.clone();
        let outcome = tree.process_batch(&batch, &mut kg);
        assert_eq!(tree.user_count(), 6);
        assert!(tree.group_key().is_some());
        assert_delivery(&before, &tree, &outcome);
        tree.check_invariants().unwrap();
    }

    #[test]
    fn more_leaves_than_joins() {
        let mut kg = keygen();
        let mut tree = KeyTree::balanced(64, 4, &mut kg);
        let before = tree.clone();
        let leaves: Vec<MemberId> = (0..16).collect();
        let joins: Vec<_> = (0..4).map(|i| join(&mut kg, 500 + i)).collect();
        let outcome = tree.process_batch(&Batch::new(joins, leaves), &mut kg);
        assert_eq!(tree.user_count(), 64 - 16 + 4);
        // Joins landed on the 4 smallest departed slots.
        let slots: Vec<NodeId> = (0..4)
            .map(|i| tree.node_of_member(500 + i).unwrap())
            .collect();
        let mut departed_slots: Vec<NodeId> = (0..16u32)
            .map(|m| before.node_of_member(m).unwrap())
            .collect();
        departed_slots.sort_unstable();
        assert_eq!(slots, departed_slots[..4].to_vec());
        assert_delivery(&before, &tree, &outcome);
        tree.check_invariants().unwrap();
    }

    #[test]
    fn group_key_always_changes_on_membership_change() {
        let mut kg = keygen();
        let mut tree = KeyTree::balanced(16, 4, &mut kg);
        let g0 = tree.group_key().unwrap();

        let o1 = tree.process_batch(&Batch::new(vec![join(&mut kg, 90)], vec![]), &mut kg);
        let g1 = tree.group_key().unwrap();
        assert_ne!(g0, g1);
        assert!(o1.group_key_changed());

        let o2 = tree.process_batch(&Batch::new(vec![], vec![90]), &mut kg);
        let g2 = tree.group_key().unwrap();
        assert_ne!(g1, g2);
        assert!(o2.group_key_changed());
    }

    #[test]
    fn sequential_batches_maintain_invariants() {
        let mut kg = keygen();
        let mut tree = KeyTree::balanced(32, 4, &mut kg);
        let mut next_member = 32u32;
        let mut scratch = MarkScratch::new();
        // Drifting churn across 20 intervals, one shared scratch.
        for round in 0..20 {
            let members = tree.member_ids();
            let leaves: Vec<MemberId> = members
                .iter()
                .copied()
                .filter(|m| (m + round) % 5 == 0)
                .take(6)
                .collect();
            let joins: Vec<_> = (0..(round % 9))
                .map(|_| {
                    let m = next_member;
                    next_member += 1;
                    join(&mut kg, m)
                })
                .collect();
            let before = tree.clone();
            let outcome = tree.process_batch_in(Batch::new(joins, leaves), &mut kg, &mut scratch);
            assert_delivery(&before, &tree, &outcome);
            tree.check_invariants()
                .unwrap_or_else(|e| panic!("round {round}: {e}"));
        }
    }

    #[test]
    fn scratch_reuse_matches_fresh_scratch() {
        // The same batch sequence through one long-lived scratch and
        // through per-batch fresh scratches must be indistinguishable.
        let run = |reuse: bool| -> Vec<MarkOutcome> {
            let mut kg = keygen();
            let mut tree = KeyTree::balanced(27, 3, &mut kg);
            let mut shared = MarkScratch::new();
            let mut outcomes = Vec::new();
            let mut next = 27u32;
            for round in 0u32..10 {
                let leaves: Vec<MemberId> = tree
                    .member_ids()
                    .into_iter()
                    .filter(|m| (m + round) % 4 == 0)
                    .take(4)
                    .collect();
                let joins: Vec<_> = (0..(round % 5))
                    .map(|_| {
                        next += 1;
                        join(&mut kg, next)
                    })
                    .collect();
                let batch = Batch::new(joins, leaves);
                let outcome = if reuse {
                    tree.process_batch_in(batch, &mut kg, &mut shared)
                } else {
                    tree.process_batch_in(batch, &mut kg, &mut MarkScratch::new())
                };
                outcomes.push(outcome);
            }
            outcomes
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn worker_count_does_not_change_outcome() {
        let run = |workers: usize| -> (MarkOutcome, Option<SymKey>) {
            taskpool::with_workers(workers, || {
                let mut kg = keygen();
                let mut tree = KeyTree::balanced(1024, 4, &mut kg);
                let leaves: Vec<MemberId> = (0..96).map(|i| i * 8).collect();
                let joins: Vec<_> = (0..32).map(|i| join(&mut kg, 2000 + i)).collect();
                let outcome = tree.process_batch(&Batch::new(joins, leaves), &mut kg);
                (outcome, tree.group_key())
            })
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    #[should_panic(expected = "unknown member")]
    fn leave_of_unknown_member_panics() {
        let mut kg = keygen();
        let mut tree = KeyTree::balanced(4, 4, &mut kg);
        tree.process_batch(&Batch::new(vec![], vec![77]), &mut kg);
    }

    #[test]
    #[should_panic(expected = "already in group")]
    fn duplicate_join_panics() {
        let mut kg = keygen();
        let mut tree = KeyTree::balanced(4, 4, &mut kg);
        tree.process_batch(&Batch::new(vec![join(&mut kg, 0)], vec![]), &mut kg);
    }

    #[test]
    fn encryption_ids_are_unique_per_message() {
        let mut kg = keygen();
        let mut tree = KeyTree::balanced(256, 4, &mut kg);
        let leaves: Vec<MemberId> = (0..64).collect();
        let outcome = tree.process_batch(&Batch::new(vec![], leaves), &mut kg);
        let mut children: Vec<NodeId> = outcome.encryptions.iter().map(|e| e.child).collect();
        let before = children.len();
        children.sort_unstable();
        children.dedup();
        assert_eq!(children.len(), before, "an encrypting key repeated");
    }

    #[test]
    fn encryptions_needed_per_user_is_at_most_path_length() {
        let mut kg = keygen();
        let mut tree = KeyTree::balanced(256, 4, &mut kg);
        let leaves: Vec<MemberId> = (0..64).collect();
        let outcome = tree.process_batch(&Batch::new(vec![], leaves), &mut kg);
        let height = tree.height();
        for uid in tree.user_ids() {
            let needs = outcome.encryptions_for_user(uid, 4);
            assert!(
                needs.len() <= height as usize + 1,
                "user {uid} needs {} encryptions",
                needs.len()
            );
        }
    }

    /// Satellite 1 regression: force the scratch epoch across its wrap
    /// point mid-stream and check the outcomes match a never-wrapped run
    /// batch for batch — no stale stamp from before the wrap may read as
    /// valid afterwards.
    #[test]
    fn epoch_wrap_does_not_leak_stale_stamps() {
        let run = |wrap: bool| -> Vec<MarkOutcome> {
            let mut kg = keygen();
            let mut tree = KeyTree::balanced(64, 4, &mut kg);
            let mut scratch = MarkScratch::new();
            let mut outcomes = Vec::new();
            let mut next = 64u32;
            for round in 0u32..8 {
                if wrap && round == 4 {
                    // The next `begin` increments past u64::MAX: every
                    // slot stamped in rounds 0..4 carries an epoch that a
                    // wrapped counter would re-reach.
                    scratch.set_epoch_for_wrap_test(u64::MAX);
                }
                let leaves: Vec<MemberId> = tree
                    .member_ids()
                    .into_iter()
                    .filter(|m| (m + round) % 3 == 0)
                    .take(8)
                    .collect();
                let joins: Vec<_> = (0..(round % 6))
                    .map(|_| {
                        next += 1;
                        join(&mut kg, next)
                    })
                    .collect();
                outcomes.push(tree.process_batch_in(
                    Batch::new(joins, leaves),
                    &mut kg,
                    &mut scratch,
                ));
            }
            outcomes
        };
        assert_eq!(run(true), run(false));
    }

    /// A disabled policy routed through the compacting entry points must
    /// be byte-identical to the plain path: same outcomes, no
    /// relocations.
    #[test]
    fn disabled_policy_matches_plain_path() {
        let run = |compacting: bool| -> Vec<MarkOutcome> {
            let mut kg = keygen();
            let mut tree = KeyTree::balanced(81, 3, &mut kg);
            let mut scratch = MarkScratch::new();
            let mut outcomes = Vec::new();
            for round in 0u32..6 {
                let leaves: Vec<MemberId> = tree
                    .member_ids()
                    .into_iter()
                    .filter(|m| (m + round) % 4 == 0)
                    .take(10)
                    .collect();
                let batch = Batch::new(vec![], leaves);
                let outcome = if compacting {
                    tree.process_batch_compacting_in(
                        batch,
                        &mut kg,
                        &mut scratch,
                        &CompactionPolicy::DISABLED,
                    )
                } else {
                    tree.process_batch_in(batch, &mut kg, &mut scratch)
                };
                assert!(outcome.relocations.is_empty());
                outcomes.push(outcome);
            }
            outcomes
        };
        assert_eq!(run(true), run(false));
    }

    /// Sustained mass departure with compaction on: tree depth and `nk`
    /// must come back down to the small group's ideal shape instead of
    /// staying at the historical peak, every batch must still deliver the
    /// group key to every member, and relocated members keep their
    /// individual keys.
    #[test]
    fn compaction_bounds_depth_after_mass_departure() {
        let mut kg = keygen();
        let mut tree = KeyTree::balanced(1024, 4, &mut kg);
        let mut scratch = MarkScratch::new();
        let policy = CompactionPolicy::DEFAULT_ON;

        // Keep every 32nd member: 32 survivors of 1024.
        let leaves: Vec<MemberId> = (0..1024).filter(|m| m % 32 != 0).collect();
        let before = tree.clone();
        let outcome = tree.process_batch_compacting_in(
            Batch::new(vec![], leaves),
            &mut kg,
            &mut scratch,
            &policy,
        );
        assert_delivery(&before, &tree, &outcome);
        let peak_height = before.height();

        // Drain the relocation budget over follow-up empty batches.
        let mut total_relocations = outcome.relocations.len();
        let mut individual_keys: HashMap<MemberId, SymKey> = tree
            .member_ids()
            .into_iter()
            .map(|m| (m, tree.key_of(tree.node_of_member(m).unwrap()).unwrap()))
            .collect();
        for _ in 0..32 {
            let before = tree.clone();
            let outcome =
                tree.process_batch_compacting_in(Batch::default(), &mut kg, &mut scratch, &policy);
            assert_delivery(&before, &tree, &outcome);
            tree.check_invariants().unwrap();
            for rl in &outcome.relocations {
                // Downward, key-preserving, one per member per batch.
                assert!(rl.new_id < rl.old_id);
                assert_eq!(tree.node_of_member(rl.member), Some(rl.new_id));
                assert_eq!(tree.key_of(rl.new_id), Some(individual_keys[&rl.member]));
            }
            total_relocations += outcome.relocations.len();
            individual_keys = tree
                .member_ids()
                .into_iter()
                .map(|m| (m, tree.key_of(tree.node_of_member(m).unwrap()).unwrap()))
                .collect();
            if outcome.relocations.is_empty() {
                break;
            }
        }
        assert!(total_relocations > 0, "compaction never ran");
        assert_eq!(tree.user_count(), 32);
        // 32 users at d=4 fit in height 3 (4^3 = 64 leaves); without
        // compaction the survivors would sit at the old height 5.
        assert!(
            tree.height() <= 3,
            "height {} did not come down from peak {peak_height}",
            tree.height()
        );
        let nk = tree.max_knode_id().unwrap();
        assert!(
            u64::from(nk) <= 2 * CompactionPolicy::ideal_nk(32, 4) + 4,
            "nk {nk} still at mass-departure scale"
        );
    }

    /// Compaction must stay inert for trees already near their ideal
    /// shape, and the per-batch move budget must cap the relocation work.
    #[test]
    fn compaction_respects_trigger_and_budget() {
        let mut kg = keygen();
        // Dense tree: nowhere near the slack trigger.
        let mut tree = KeyTree::balanced(256, 4, &mut kg);
        let mut scratch = MarkScratch::new();
        let outcome = tree.process_batch_compacting_in(
            Batch::default(),
            &mut kg,
            &mut scratch,
            &CompactionPolicy::DEFAULT_ON,
        );
        assert!(outcome.relocations.is_empty(), "dense tree was compacted");

        // Sparse tree with a tiny budget: at most `max_moves_per_batch`
        // relocations per batch.
        let mut tree = KeyTree::balanced(1024, 4, &mut kg);
        let leaves: Vec<MemberId> = (0..1024).filter(|m| m % 16 != 0).collect();
        tree.process_batch_in(Batch::new(vec![], leaves), &mut kg, &mut scratch);
        let tiny = CompactionPolicy {
            enabled: true,
            slack: 2,
            max_moves_per_batch: 3,
        };
        let outcome =
            tree.process_batch_compacting_in(Batch::default(), &mut kg, &mut scratch, &tiny);
        assert!(
            outcome.relocations.len() <= 3,
            "budget exceeded: {} moves",
            outcome.relocations.len()
        );
        assert!(!outcome.relocations.is_empty(), "sparse tree not compacted");
    }

    /// Compaction alongside a same-batch join/leave mix: joiners placed
    /// this batch are never relocation sources, so every relocation maps
    /// a pre-batch slot to a final slot.
    #[test]
    fn compaction_composes_with_batch_churn() {
        let mut kg = keygen();
        let mut tree = KeyTree::balanced(512, 4, &mut kg);
        let mut scratch = MarkScratch::new();
        let policy = CompactionPolicy::DEFAULT_ON;
        // Mass departure to open the gap...
        let leaves: Vec<MemberId> = (0..512).filter(|m| m % 8 != 0).collect();
        tree.process_batch_in(Batch::new(vec![], leaves), &mut kg, &mut scratch);
        // ...then churn batches with simultaneous joins and leaves.
        let mut next = 1000u32;
        for round in 0u32..12 {
            let leaves: Vec<MemberId> = tree
                .member_ids()
                .into_iter()
                .filter(|m| (m + round) % 7 == 0)
                .take(4)
                .collect();
            let joins: Vec<_> = (0..(round % 4))
                .map(|_| {
                    next += 1;
                    join(&mut kg, next)
                })
                .collect();
            let before = tree.clone();
            let outcome = tree.process_batch_compacting_in(
                Batch::new(joins, leaves),
                &mut kg,
                &mut scratch,
                &policy,
            );
            assert_delivery(&before, &tree, &outcome);
            tree.check_invariants()
                .unwrap_or_else(|e| panic!("round {round}: {e}"));
            for rl in &outcome.relocations {
                assert_eq!(
                    before.member_at(rl.old_id),
                    Some(rl.member),
                    "relocation source {} was not member {}'s pre-batch slot",
                    rl.old_id,
                    rl.member
                );
                assert!(!outcome.moves.iter().any(|mv| mv.member == rl.member));
            }
        }
    }

    /// Satellite 2 regression: a mass departure followed by compaction
    /// must return `resident_bytes` near the small group's working set
    /// instead of pinning the SoA columns and member index at their
    /// historical peak forever.
    #[test]
    fn compaction_reclaims_resident_bytes_after_mass_departure() {
        let mut kg = keygen();
        let mut tree = KeyTree::balanced(4096, 4, &mut kg);
        let mut scratch = MarkScratch::new();
        let policy = CompactionPolicy::DEFAULT_ON;
        let peak = tree.resident_bytes();

        let leaves: Vec<MemberId> = (64..4096).collect();
        tree.process_batch_compacting_in(
            Batch::new(vec![], leaves),
            &mut kg,
            &mut scratch,
            &policy,
        );
        for _ in 0..64 {
            let outcome =
                tree.process_batch_compacting_in(Batch::default(), &mut kg, &mut scratch, &policy);
            if outcome.relocations.is_empty() {
                break;
            }
        }
        assert_eq!(tree.user_count(), 64);
        tree.check_invariants().unwrap();
        let settled = tree.resident_bytes();
        // 64 survivors of 4096: the working set is ~1/64th of peak.
        assert!(
            settled * 8 <= peak,
            "resident_bytes {settled} still near peak {peak}"
        );
        // And a reference tree built directly at the final size agrees on
        // the order of magnitude (allow slack for allocator rounding and
        // the not-perfectly-packed compacted shape).
        let reference = KeyTree::balanced(64, 4, &mut kg).resident_bytes();
        assert!(
            settled <= reference * 8,
            "resident_bytes {settled} far from reference {reference}"
        );
    }

    /// Compaction is single-threaded by construction; the whole batch
    /// pipeline must stay bit-identical across worker counts with it on.
    #[test]
    fn compaction_outcome_is_worker_count_invariant() {
        let run = |workers: usize| -> (Vec<MarkOutcome>, Option<SymKey>) {
            taskpool::with_workers(workers, || {
                let mut kg = keygen();
                let mut tree = KeyTree::balanced(1024, 4, &mut kg);
                let mut scratch = MarkScratch::new();
                let policy = CompactionPolicy::DEFAULT_ON;
                let mut outcomes = Vec::new();
                let leaves: Vec<MemberId> = (0..1024).filter(|m| m % 16 != 0).collect();
                outcomes.push(tree.process_batch_compacting_in(
                    Batch::new(vec![], leaves),
                    &mut kg,
                    &mut scratch,
                    &policy,
                ));
                for _ in 0..8 {
                    outcomes.push(tree.process_batch_compacting_in(
                        Batch::default(),
                        &mut kg,
                        &mut scratch,
                        &policy,
                    ));
                }
                (outcomes, tree.group_key())
            })
        };
        assert_eq!(run(1), run(4));
    }
}
