//! The marking algorithm (Appendix B): batch tree update, rekey-subtree
//! labelling, and encryption-edge generation.
//!
//! One deliberate refinement over the paper's text: the paper labels *all*
//! n-nodes as Leave. When n-nodes only exist where departures just happened
//! (the paper's experiments always start from a full, balanced tree) this
//! is equivalent to what we do; but taken literally it would also mark
//! long-empty slots as Leave, forcing key changes — and non-empty rekey
//! messages — even for an *empty* batch. We therefore label Leave only the
//! slots vacated *this* batch (departed u-nodes and the k-nodes pruned
//! above them); other n-nodes are transparent to labelling. DESIGN.md
//! records this substitution.

use std::collections::HashMap;

use wirecrypto::KeyGen;

use crate::ident;
use crate::node::{MemberId, Node, NodeId};
use crate::tree::KeyTree;
use wirecrypto::SymKey;

/// The join and leave requests collected during one rekey interval.
#[derive(Debug, Clone, Default)]
pub struct Batch {
    /// Newly admitted members with their individual keys (from
    /// registration), in admission order.
    pub joins: Vec<(MemberId, SymKey)>,
    /// Members that left during the interval.
    pub leaves: Vec<MemberId>,
}

impl Batch {
    /// Builds a batch.
    pub fn new(joins: Vec<(MemberId, SymKey)>, leaves: Vec<MemberId>) -> Self {
        Batch { joins, leaves }
    }

    /// `J`, the number of joins.
    pub fn j(&self) -> usize {
        self.joins.len()
    }

    /// `L`, the number of leaves.
    pub fn l(&self) -> usize {
        self.leaves.len()
    }

    /// True when there is nothing to do.
    pub fn is_empty(&self) -> bool {
        self.joins.is_empty() && self.leaves.is_empty()
    }
}

/// Rekey-subtree label of a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Label {
    /// Key unchanged; no encryption needed below this node.
    Unchanged,
    /// Key changed because of joins only (no departed user knew it).
    Join,
    /// The node vacated this interval (departed u-node / pruned k-node).
    Leave,
    /// Key changed and at least one departed user knew the old key.
    Replace,
}

/// One edge of the rekey subtree: the encryption `{key(parent)}_{key(child)}`.
///
/// The encryption's wire ID is `child` (each key encrypts at most one other
/// key per rekey message, so the encrypting key's node ID is unique).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncEdge {
    /// Node whose key encrypts (a child of `parent` in the tree).
    pub child: NodeId,
    /// The updated k-node whose new key is being distributed.
    pub parent: NodeId,
}

/// A user relocated by node splitting (its u-node ID changed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UserMove {
    /// The member that moved.
    pub member: MemberId,
    /// Its u-node ID before the batch.
    pub old_id: NodeId,
    /// Its u-node ID after the batch.
    pub new_id: NodeId,
}

/// Everything the rekey-transport layer needs about one processed batch.
#[derive(Debug, Clone)]
pub struct MarkOutcome {
    /// k-nodes that received fresh keys, deepest (largest ID) first — the
    /// paper's bottom-up traversal order.
    pub updated_knodes: Vec<NodeId>,
    /// The encryptions of the rekey message, grouped by parent in
    /// `updated_knodes` order, children ascending within a parent.
    pub encryptions: Vec<EncEdge>,
    /// Users whose u-node IDs changed due to splitting.
    pub moves: Vec<UserMove>,
    /// Members removed by this batch.
    pub departed: Vec<MemberId>,
    /// Members added by this batch.
    pub joined: Vec<MemberId>,
    /// Maximum k-node ID after the batch (the `maxKID` wire field).
    pub nk: Option<NodeId>,
    /// Labels of all nodes that participated in the rekey subtree
    /// (diagnostics and tests).
    pub labels: HashMap<NodeId, Label>,
    index_by_child: HashMap<NodeId, usize>,
}

impl MarkOutcome {
    /// The index (into [`Self::encryptions`]) of the encryption whose
    /// encrypting key is node `child`, if one exists.
    pub fn encryption_by_child(&self, child: NodeId) -> Option<usize> {
        self.index_by_child.get(&child).copied()
    }

    /// Indices of the encryptions a user at u-node `user_id` needs: those
    /// whose encrypting key lies on the path from the u-node to the root.
    /// Returned leaf-side first, which is also decryption order.
    pub fn encryptions_for_user(&self, user_id: NodeId, degree: u32) -> Vec<usize> {
        ident::path_to_root(user_id, degree)
            .into_iter()
            .filter_map(|n| self.encryption_by_child(n))
            .collect()
    }

    /// True when the batch changed the group key.
    pub fn group_key_changed(&self) -> bool {
        self.updated_knodes.contains(&0)
    }
}

impl KeyTree {
    /// Runs the marking algorithm over one batch: updates the tree
    /// (replacements, pruning, splitting), relabels, mints fresh keys for
    /// every updated k-node, and returns the rekey-subtree edges.
    ///
    /// # Panics
    ///
    /// Panics if a leave names an unknown member or a join names a member
    /// already in the group — both are caller bugs (the key-management
    /// front end validates requests against individual keys before they
    /// reach the tree).
    pub fn process_batch(&mut self, batch: &Batch, keygen: &mut KeyGen) -> MarkOutcome {
        let d = self.degree();

        // ---- Phase 1: update the key tree -------------------------------
        let mut departed_ids: Vec<NodeId> = batch
            .leaves
            .iter()
            .map(|m| {
                self.node_of_member(*m)
                    .unwrap_or_else(|| panic!("leave request for unknown member {m}"))
            })
            .collect();
        departed_ids.sort_unstable();
        for (m, _) in &batch.joins {
            assert!(
                self.node_of_member(*m).is_none(),
                "join request for member {m} already in group"
            );
        }

        let mut user_labels: HashMap<NodeId, Label> = HashMap::new();
        let mut became_n: Vec<NodeId> = Vec::new();
        let mut moves: Vec<UserMove> = Vec::new();
        let mut joins = batch.joins.iter();

        let j = batch.j();
        let l = batch.l();

        if j <= l {
            // Replace the J smallest-ID departures with joins; the rest
            // become n-nodes and may prune upward.
            for (i, &slot) in departed_ids.iter().enumerate() {
                if i < j {
                    let (member, key) = *joins.next().expect("i < j");
                    self.set_node(slot, Node::U { member, key });
                    user_labels.insert(slot, Label::Replace);
                } else {
                    self.set_node(slot, Node::N);
                    became_n.push(slot);
                }
            }
            // Prune: a k-node whose children are all n-nodes becomes one.
            for &slot in &departed_ids[j.min(departed_ids.len())..] {
                let mut cur = slot;
                while let Some(p) = ident::parent(cur, d) {
                    let all_n = ident::children(p, d).all(|c| self.node(c).is_n());
                    if all_n && self.node(p).is_k() {
                        self.set_node(p, Node::N);
                        became_n.push(p);
                        cur = p;
                    } else {
                        break;
                    }
                }
            }
        } else {
            // J > L: fill departures first...
            for &slot in &departed_ids {
                let (member, key) = *joins.next().expect("j > l");
                self.set_node(slot, Node::U { member, key });
                user_labels.insert(slot, Label::Replace);
            }
            // ...then n-node slots in (nk, d*nk + d], low to high, splitting
            // node nk+1 whenever the range is exhausted.
            let mut pending = joins.clone().count();
            let mut joins = joins;
            // Bootstrap an empty tree: a root k-node with d empty slots.
            if self.max_knode_id().is_none() && pending > 0 {
                self.set_node(
                    0,
                    Node::K {
                        key: keygen.next_key(),
                    },
                );
            }
            while pending > 0 {
                let nk = self
                    .max_knode_id()
                    .expect("bootstrap guarantees a k-node exists");
                let low = nk + 1;
                let high = d as u64 * nk as u64 + d as u64;
                let high = NodeId::try_from(high).expect("tree exceeds NodeId range");
                let mut placed = false;
                for slot in low..=high {
                    if pending == 0 {
                        break;
                    }
                    if self.node(slot).is_n() {
                        let (member, key) = *joins.next().expect("pending > 0");
                        self.set_node(slot, Node::U { member, key });
                        user_labels.insert(slot, Label::Join);
                        pending -= 1;
                        placed = true;
                    }
                }
                if pending == 0 {
                    break;
                }
                // Split node nk+1: it becomes a k-node and its occupant
                // moves to its leftmost child.
                let split = nk + 1;
                let child = ident::first_child(split, d);
                let occupant = self.node(split).clone();
                // Convert the slot to a k-node first so the member index
                // entry for its occupant is released before re-insertion.
                self.set_node(
                    split,
                    Node::K {
                        key: keygen.next_key(),
                    },
                );
                match occupant {
                    Node::U { member, key } => {
                        self.set_node(child, Node::U { member, key });
                        moves.push(UserMove {
                            member,
                            old_id: split,
                            new_id: child,
                        });
                        // The moved user is "new" at its slot: its parent
                        // must deliver keys encrypted under its individual
                        // key, exactly as for a join.
                        user_labels.insert(child, Label::Join);
                        user_labels.remove(&split);
                    }
                    Node::N => {
                        // Splitting an empty slot just deepens the tree.
                    }
                    Node::K { .. } => unreachable!("nk+1 cannot be a k-node"),
                }
                let _ = placed;
            }
        }

        // Update rule 4: any n-node with a u-node descendant becomes a
        // k-node (fresh key; it will be labelled from its children).
        for uid in self.user_ids() {
            let mut cur = uid;
            while let Some(p) = ident::parent(cur, d) {
                if self.node(p).is_n() {
                    self.set_node(
                        p,
                        Node::K {
                            key: keygen.next_key(),
                        },
                    );
                }
                cur = p;
            }
        }

        // ---- Phase 2: label the rekey subtree ---------------------------
        let mut labels: HashMap<NodeId, Label> = HashMap::new();
        let became_n_set: std::collections::HashSet<NodeId> = became_n.iter().copied().collect();
        if self.node(0).is_k() {
            self.label_rec(0, &user_labels, &became_n_set, &mut labels);
        }

        // ---- Phase 3: fresh keys and encryption edges --------------------
        let mut updated: Vec<NodeId> = labels
            .iter()
            .filter(|(id, l)| self.node(**id).is_k() && matches!(l, Label::Join | Label::Replace))
            .map(|(id, _)| *id)
            .collect();
        // Bottom-up: deepest (largest BFS id) first.
        updated.sort_unstable_by(|a, b| b.cmp(a));

        for &id in &updated {
            self.set_key(id, keygen.next_key());
        }

        let mut encryptions = Vec::new();
        let mut index_by_child = HashMap::new();
        for &p in &updated {
            for c in ident::children(p, d) {
                if self.node(c).is_n() {
                    continue;
                }
                if labels.get(&c) == Some(&Label::Leave) {
                    continue;
                }
                index_by_child.insert(c, encryptions.len());
                encryptions.push(EncEdge {
                    child: c,
                    parent: p,
                });
            }
        }

        debug_assert_eq!(self.check_invariants(), Ok(()));

        MarkOutcome {
            updated_knodes: updated,
            encryptions,
            moves,
            departed: batch.leaves.clone(),
            joined: batch.joins.iter().map(|(m, _)| *m).collect(),
            nk: self.max_knode_id(),
            labels,
            index_by_child,
        }
    }

    /// Recursive labelling; returns `None` for nodes transparent to the
    /// rekey subtree (empty slots that did not change this interval).
    fn label_rec(
        &self,
        id: NodeId,
        user_labels: &HashMap<NodeId, Label>,
        became_n: &std::collections::HashSet<NodeId>,
        labels: &mut HashMap<NodeId, Label>,
    ) -> Option<Label> {
        let d = self.degree();
        let label = match self.node(id) {
            Node::U { .. } => *user_labels.get(&id).unwrap_or(&Label::Unchanged),
            Node::N => {
                if became_n.contains(&id) {
                    Label::Leave
                } else {
                    return None;
                }
            }
            Node::K { .. } => {
                let mut any = false;
                let mut all_leave = true;
                let mut all_unchanged = true;
                let mut join_only = true;
                for c in ident::children(id, d) {
                    let Some(cl) = self.label_rec(c, user_labels, became_n, labels) else {
                        continue;
                    };
                    any = true;
                    all_leave &= cl == Label::Leave;
                    all_unchanged &= cl == Label::Unchanged;
                    join_only &= matches!(cl, Label::Unchanged | Label::Join);
                }
                if !any {
                    // A live k-node with no labelled children: nothing
                    // below changed and nothing vacated — unchanged.
                    Label::Unchanged
                } else if all_leave {
                    Label::Leave
                } else if all_unchanged {
                    Label::Unchanged
                } else if join_only {
                    Label::Join
                } else {
                    Label::Replace
                }
            }
        };
        labels.insert(id, label);
        Some(label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ident::derive_current_id;

    fn keygen() -> KeyGen {
        KeyGen::from_seed(7)
    }

    fn join(kg: &mut KeyGen, m: MemberId) -> (MemberId, SymKey) {
        (m, kg.next_key())
    }

    /// Every current member, given only the encryptions it can decrypt
    /// starting from the keys it held before the batch, must end up with
    /// the new group key; every departed member must not.
    fn assert_delivery(tree_before: &KeyTree, tree_after: &KeyTree, outcome: &MarkOutcome) {
        let d = tree_after.degree();
        let new_group_key = tree_after.group_key();

        for m in tree_after.member_ids() {
            let uid = tree_after.node_of_member(m).unwrap();
            // Keys the member holds: its individual key plus any path keys
            // from before that are still valid. Simulate decryption: walk
            // the path leaf to root, at each step using the child key to
            // obtain the parent key (from the outcome) or keeping the old
            // key if unchanged.
            let mut have: HashMap<NodeId, SymKey> = HashMap::new();
            have.insert(uid, tree_after.key_of(uid).unwrap());
            // Old path keys (only for members that existed before).
            if let Some(old_keys) = tree_before.keys_for_member(m) {
                for (id, k) in old_keys {
                    have.entry(id).or_insert(k);
                }
            }
            for id in ident::path_to_root(uid, d) {
                if let Some(idx) = outcome.encryption_by_child(id) {
                    let edge = outcome.encryptions[idx];
                    assert!(
                        have.contains_key(&edge.child),
                        "member {m} lacks key {} to decrypt {{{}}}",
                        edge.child,
                        edge.parent
                    );
                    have.insert(edge.parent, tree_after.key_of(edge.parent).unwrap());
                } else if let Some(p) = ident::parent(id, d) {
                    // No encryption under `id`: parent key must be
                    // unchanged from before (the member already has it)
                    // or delivered via a sibling edge... for path walks,
                    // parent must either be unchanged or have an edge from
                    // this child. Updated parents always edge to every
                    // non-leave child, so:
                    if outcome.updated_knodes.contains(&p) {
                        panic!("updated k-node {p} has no edge to child {id}");
                    }
                }
            }
            assert_eq!(
                have.get(&0).copied(),
                new_group_key,
                "member {m} did not obtain the group key"
            );
        }

        // Departed members: their old individual key must not decrypt any
        // encryption (no edge has child == their old u-node id with their
        // key still installed).
        for m in &outcome.departed {
            if tree_after.node_of_member(*m).is_some() {
                continue; // re-joined in the same batch (not produced here)
            }
            let old_uid = tree_before.node_of_member(*m).unwrap();
            if let Some(idx) = outcome.encryption_by_child(old_uid) {
                // An edge exists at the slot: it must target a *different*
                // key now (slot replaced by a new member whose key differs).
                let edge = outcome.encryptions[idx];
                let new_key = tree_after.key_of(edge.child);
                let old_key = tree_before.key_of(old_uid);
                assert_ne!(new_key, old_key, "departed member {m} can still decrypt");
            }
        }
    }

    #[test]
    fn paper_example_single_leave() {
        // Section 2.1: 9 users, d = 3, u9 leaves. In our layout the 9
        // users sit at ids 4..=12 (root 0, k-nodes 1..=3).
        let mut kg = keygen();
        let mut tree = KeyTree::balanced(9, 3, &mut kg);
        let before = tree.clone();
        let batch = Batch::new(vec![], vec![8]); // member 8 == "u9", id 12
        let outcome = tree.process_batch(&batch, &mut kg);

        // Updated k-nodes: k789 (id 3) and the root, deepest first.
        assert_eq!(outcome.updated_knodes, vec![3, 0]);
        // Encryptions: {k78}k7, {k78}k8, {k1-8}k123, {k1-8}k456, {k1-8}k78.
        let edges: Vec<(NodeId, NodeId)> = outcome
            .encryptions
            .iter()
            .map(|e| (e.child, e.parent))
            .collect();
        assert_eq!(edges, vec![(10, 3), (11, 3), (1, 0), (2, 0), (3, 0)]);
        assert_delivery(&before, &tree, &outcome);
        tree.check_invariants().unwrap();
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut kg = keygen();
        let mut tree = KeyTree::balanced(16, 4, &mut kg);
        let gk = tree.group_key();
        let outcome = tree.process_batch(&Batch::default(), &mut kg);
        assert!(outcome.encryptions.is_empty());
        assert!(outcome.updated_knodes.is_empty());
        assert_eq!(tree.group_key(), gk);
    }

    #[test]
    fn join_equals_leave_replaces_in_place() {
        let mut kg = keygen();
        let mut tree = KeyTree::balanced(16, 4, &mut kg);
        let before = tree.clone();
        let batch = Batch::new(vec![join(&mut kg, 100), join(&mut kg, 101)], vec![3, 9]);
        let outcome = tree.process_batch(&batch, &mut kg);

        assert_eq!(tree.user_count(), 16);
        assert!(tree.node_of_member(100).is_some());
        assert!(tree.node_of_member(3).is_none());
        // Replacement happens at the departed slots (smallest first).
        let s3 = before.node_of_member(3).unwrap();
        let s9 = before.node_of_member(9).unwrap();
        assert_eq!(outcome.labels.get(&s3), Some(&Label::Replace));
        assert_eq!(outcome.labels.get(&s9), Some(&Label::Replace));
        assert_delivery(&before, &tree, &outcome);
    }

    #[test]
    fn leave_only_prunes_and_replaces() {
        let mut kg = keygen();
        let mut tree = KeyTree::balanced(16, 4, &mut kg);
        let before = tree.clone();
        // Remove a whole subtree: members 0..4 occupy ids 5..=8 (children
        // of k-node 1).
        let batch = Batch::new(vec![], vec![0, 1, 2, 3]);
        let outcome = tree.process_batch(&batch, &mut kg);

        assert!(tree.node(1).is_n(), "emptied k-node must prune to n-node");
        assert_eq!(outcome.labels.get(&1), Some(&Label::Leave));
        // Root is Replace; no encryption under the pruned child.
        assert_eq!(outcome.labels.get(&0), Some(&Label::Replace));
        assert!(outcome.encryption_by_child(1).is_none());
        assert_delivery(&before, &tree, &outcome);
        tree.check_invariants().unwrap();
    }

    #[test]
    fn all_users_leave_empties_tree() {
        let mut kg = keygen();
        let mut tree = KeyTree::balanced(4, 4, &mut kg);
        let batch = Batch::new(vec![], (0..4).collect());
        let outcome = tree.process_batch(&batch, &mut kg);
        assert_eq!(tree.user_count(), 0);
        assert_eq!(tree.group_key(), None);
        assert!(outcome.encryptions.is_empty());
        assert_eq!(outcome.nk, None);
    }

    #[test]
    fn join_only_fills_holes_first() {
        let mut kg = keygen();
        // 9 users in a d=4 height-2 tree: leaves 5..=13, holes 14..=20.
        let mut tree = KeyTree::balanced(9, 4, &mut kg);
        let before = tree.clone();
        let batch = Batch::new(vec![join(&mut kg, 50), join(&mut kg, 51)], vec![]);
        let outcome = tree.process_batch(&batch, &mut kg);

        // nk was 3; fill range is (3, 16], low to high: the first hole is
        // the internal-level slot 4 (the paper permits u-nodes above the
        // leaf level), then the leaf hole 14.
        assert_eq!(tree.node_of_member(50), Some(4));
        assert_eq!(tree.node_of_member(51), Some(14));
        // k-node 3 gains a join only => label Join; root Join too.
        assert_eq!(outcome.labels.get(&3), Some(&Label::Join));
        assert_eq!(outcome.labels.get(&0), Some(&Label::Join));
        assert_delivery(&before, &tree, &outcome);
        tree.check_invariants().unwrap();
    }

    #[test]
    fn join_fills_hole_under_pruned_subtree() {
        let mut kg = keygen();
        let mut tree = KeyTree::balanced(16, 4, &mut kg);
        // Empty the first subtree (ids 5..=8 under k-node 1).
        tree.process_batch(&Batch::new(vec![], vec![0, 1, 2, 3]), &mut kg);
        assert!(tree.node(1).is_n());
        let before = tree.clone();

        // One join: fill range is (nk, 4*nk+4]; nk is 4, so range (4, 20]
        // — the first hole is id 5, whose parent (1) is an n-node and must
        // be revived as a k-node.
        let batch = Batch::new(vec![join(&mut kg, 99)], vec![]);
        let outcome = tree.process_batch(&batch, &mut kg);
        assert_eq!(tree.node_of_member(99), Some(5));
        assert!(tree.node(1).is_k(), "revived ancestor must be a k-node");
        assert_delivery(&before, &tree, &outcome);
        tree.check_invariants().unwrap();
    }

    #[test]
    fn join_overflow_splits() {
        let mut kg = keygen();
        // Full 16-user tree (d=4): no holes, so a 17th user forces a split
        // of node nk+1 = 5.
        let mut tree = KeyTree::balanced(16, 4, &mut kg);
        let before = tree.clone();
        let moved_member = tree.member_at(5).unwrap();
        let batch = Batch::new(vec![join(&mut kg, 200)], vec![]);
        let outcome = tree.process_batch(&batch, &mut kg);

        assert!(tree.node(5).is_k(), "node 5 must have split into a k-node");
        // The occupant of 5 moved to its leftmost child 21.
        assert_eq!(tree.node_of_member(moved_member), Some(21));
        assert_eq!(
            outcome.moves,
            vec![UserMove {
                member: moved_member,
                old_id: 5,
                new_id: 21
            }]
        );
        // The new user fills the next slot, 22.
        assert_eq!(tree.node_of_member(200), Some(22));
        // Theorem 4.2 rederives the move from maxKID alone.
        let nk = outcome.nk.unwrap();
        assert_eq!(derive_current_id(5, nk, 4), Some(21));
        assert_delivery(&before, &tree, &outcome);
        tree.check_invariants().unwrap();
    }

    #[test]
    fn mass_join_multiple_splits() {
        let mut kg = keygen();
        let mut tree = KeyTree::balanced(16, 4, &mut kg);
        let before = tree.clone();
        let batch = Batch::new((0..32).map(|i| join(&mut kg, 300 + i)).collect(), vec![]);
        let outcome = tree.process_batch(&batch, &mut kg);
        assert_eq!(tree.user_count(), 48);
        assert!(outcome.moves.len() >= 2, "several slots must split");
        // All moved users rederive their IDs via Theorem 4.2.
        let nk = outcome.nk.unwrap();
        for mv in &outcome.moves {
            assert_eq!(derive_current_id(mv.old_id, nk, 4), Some(mv.new_id));
        }
        assert_delivery(&before, &tree, &outcome);
        tree.check_invariants().unwrap();
    }

    #[test]
    fn bootstrap_from_empty_tree() {
        let mut kg = keygen();
        let mut tree = KeyTree::new(4);
        let batch = Batch::new((0..6).map(|i| join(&mut kg, i)).collect(), vec![]);
        let before = tree.clone();
        let outcome = tree.process_batch(&batch, &mut kg);
        assert_eq!(tree.user_count(), 6);
        assert!(tree.group_key().is_some());
        assert_delivery(&before, &tree, &outcome);
        tree.check_invariants().unwrap();
    }

    #[test]
    fn more_leaves_than_joins() {
        let mut kg = keygen();
        let mut tree = KeyTree::balanced(64, 4, &mut kg);
        let before = tree.clone();
        let leaves: Vec<MemberId> = (0..16).collect();
        let joins: Vec<_> = (0..4).map(|i| join(&mut kg, 500 + i)).collect();
        let outcome = tree.process_batch(&Batch::new(joins, leaves), &mut kg);
        assert_eq!(tree.user_count(), 64 - 16 + 4);
        // Joins landed on the 4 smallest departed slots.
        let slots: Vec<NodeId> = (0..4)
            .map(|i| tree.node_of_member(500 + i).unwrap())
            .collect();
        let mut departed_slots: Vec<NodeId> = (0..16u32)
            .map(|m| before.node_of_member(m).unwrap())
            .collect();
        departed_slots.sort_unstable();
        assert_eq!(slots, departed_slots[..4].to_vec());
        assert_delivery(&before, &tree, &outcome);
        tree.check_invariants().unwrap();
    }

    #[test]
    fn group_key_always_changes_on_membership_change() {
        let mut kg = keygen();
        let mut tree = KeyTree::balanced(16, 4, &mut kg);
        let g0 = tree.group_key().unwrap();

        let o1 = tree.process_batch(&Batch::new(vec![join(&mut kg, 90)], vec![]), &mut kg);
        let g1 = tree.group_key().unwrap();
        assert_ne!(g0, g1);
        assert!(o1.group_key_changed());

        let o2 = tree.process_batch(&Batch::new(vec![], vec![90]), &mut kg);
        let g2 = tree.group_key().unwrap();
        assert_ne!(g1, g2);
        assert!(o2.group_key_changed());
    }

    #[test]
    fn sequential_batches_maintain_invariants() {
        let mut kg = keygen();
        let mut tree = KeyTree::balanced(32, 4, &mut kg);
        let mut next_member = 32u32;
        // Drifting churn across 20 intervals.
        for round in 0..20 {
            let members = tree.member_ids();
            let leaves: Vec<MemberId> = members
                .iter()
                .copied()
                .filter(|m| (m + round) % 5 == 0)
                .take(6)
                .collect();
            let joins: Vec<_> = (0..(round % 9))
                .map(|_| {
                    let m = next_member;
                    next_member += 1;
                    join(&mut kg, m)
                })
                .collect();
            let before = tree.clone();
            let outcome = tree.process_batch(&Batch::new(joins, leaves), &mut kg);
            assert_delivery(&before, &tree, &outcome);
            tree.check_invariants()
                .unwrap_or_else(|e| panic!("round {round}: {e}"));
        }
    }

    #[test]
    #[should_panic(expected = "unknown member")]
    fn leave_of_unknown_member_panics() {
        let mut kg = keygen();
        let mut tree = KeyTree::balanced(4, 4, &mut kg);
        tree.process_batch(&Batch::new(vec![], vec![77]), &mut kg);
    }

    #[test]
    #[should_panic(expected = "already in group")]
    fn duplicate_join_panics() {
        let mut kg = keygen();
        let mut tree = KeyTree::balanced(4, 4, &mut kg);
        tree.process_batch(&Batch::new(vec![join(&mut kg, 0)], vec![]), &mut kg);
    }

    #[test]
    fn encryption_ids_are_unique_per_message() {
        let mut kg = keygen();
        let mut tree = KeyTree::balanced(256, 4, &mut kg);
        let leaves: Vec<MemberId> = (0..64).collect();
        let outcome = tree.process_batch(&Batch::new(vec![], leaves), &mut kg);
        let mut children: Vec<NodeId> = outcome.encryptions.iter().map(|e| e.child).collect();
        let before = children.len();
        children.sort_unstable();
        children.dedup();
        assert_eq!(children.len(), before, "an encrypting key repeated");
    }

    #[test]
    fn encryptions_needed_per_user_is_at_most_path_length() {
        let mut kg = keygen();
        let mut tree = KeyTree::balanced(256, 4, &mut kg);
        let leaves: Vec<MemberId> = (0..64).collect();
        let outcome = tree.process_batch(&Batch::new(vec![], leaves), &mut kg);
        let height = tree.height();
        for uid in tree.user_ids() {
            let needs = outcome.encryptions_for_user(uid, 4);
            assert!(
                needs.len() <= height as usize + 1,
                "user {uid} needs {} encryptions",
                needs.len()
            );
        }
    }
}
