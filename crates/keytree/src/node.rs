//! Node and identifier types.

use wirecrypto::SymKey;

/// A node identifier: the node's position in the conceptually full,
/// balanced tree, numbered top-down and left-to-right from the root at `0`.
///
/// The wire format caps IDs at 16 bits (`maxKID` and the `<frmID, toID>`
/// range in ENC packets are 16-bit fields); the in-memory type is wider so
/// the library itself has headroom, and the message layer enforces the wire
/// bound.
pub type NodeId = u32;

/// A stable member (user) identity assigned at registration, independent of
/// the user's current u-node ID (which the marking algorithm may change).
pub type MemberId = u32;

/// One slot in the key tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Node {
    /// A key node: the group key (at the root) or an auxiliary key.
    K {
        /// Current key held by this node.
        key: SymKey,
    },
    /// A user node holding the member's individual key.
    U {
        /// The member occupying this leaf.
        member: MemberId,
        /// The member's individual key (shared with the key server).
        key: SymKey,
    },
    /// A null node: an empty slot in the expanded tree.
    N,
}

impl Node {
    /// True for k-nodes.
    pub fn is_k(&self) -> bool {
        matches!(self, Node::K { .. })
    }

    /// True for u-nodes.
    pub fn is_u(&self) -> bool {
        matches!(self, Node::U { .. })
    }

    /// True for n-nodes.
    pub fn is_n(&self) -> bool {
        matches!(self, Node::N)
    }

    /// The key held by this node, if any.
    pub fn key(&self) -> Option<SymKey> {
        match self {
            Node::K { key } => Some(*key),
            Node::U { key, .. } => Some(*key),
            Node::N => None,
        }
    }
}
