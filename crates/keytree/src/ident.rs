//! Key-identification arithmetic: the ID algebra of the expanded tree and
//! the user-side ID rederivation of Theorem 4.2.

use crate::NodeId;

/// Parent of node `m` in a degree-`d` tree. The root has no parent.
#[inline]
pub fn parent(m: NodeId, d: u32) -> Option<NodeId> {
    if m == 0 {
        None
    } else {
        Some((m - 1) / d)
    }
}

/// First (leftmost) child of `m`.
#[inline]
pub fn first_child(m: NodeId, d: u32) -> NodeId {
    d * m + 1
}

/// Last (rightmost) child of `m`.
#[inline]
pub fn last_child(m: NodeId, d: u32) -> NodeId {
    d * m + d
}

/// Iterator over the children of `m`.
pub fn children(m: NodeId, d: u32) -> impl Iterator<Item = NodeId> {
    first_child(m, d)..=last_child(m, d)
}

/// Depth (level) of node `m`, with the root at level 0.
pub fn level(m: NodeId, d: u32) -> u32 {
    let mut level = 0;
    let mut m = m;
    while let Some(p) = parent(m, d) {
        m = p;
        level += 1;
    }
    level
}

/// The path from `m` to the root, inclusive of both ends, leaf first.
pub fn path_to_root(m: NodeId, d: u32) -> Vec<NodeId> {
    path_iter(m, d).collect()
}

/// Non-allocating iterator over the path from `m` to the root, inclusive
/// of both ends, leaf first. Prefer this over [`path_to_root`] on hot
/// paths: walking a path is pure ID arithmetic and needs no buffer.
#[inline]
pub fn path_iter(m: NodeId, d: u32) -> PathToRoot {
    PathToRoot {
        cur: Some(m),
        degree: d,
    }
}

/// Iterator state of [`path_iter`].
#[derive(Debug, Clone, Copy)]
pub struct PathToRoot {
    cur: Option<NodeId>,
    degree: u32,
}

impl Iterator for PathToRoot {
    type Item = NodeId;

    #[inline]
    fn next(&mut self) -> Option<NodeId> {
        let cur = self.cur?;
        self.cur = parent(cur, self.degree);
        Some(cur)
    }
}

/// True iff `anc` is an ancestor of `m` (or equal to it).
pub fn is_ancestor_or_self(anc: NodeId, m: NodeId, d: u32) -> bool {
    let mut cur = m;
    loop {
        if cur == anc {
            return true;
        }
        match parent(cur, d) {
            Some(p) => cur = p,
            None => return false,
        }
    }
}

/// `f(x) = d^x * m + (d^x - 1)/(d - 1)`: the ID of the leftmost descendant
/// of `m` exactly `x` levels below it. (`f(0) = m`.)
///
/// Returns `None` on overflow of the `NodeId` range.
pub fn leftmost_descendant(m: NodeId, d: u32, x: u32) -> Option<NodeId> {
    let mut id = m as u64;
    for _ in 0..x {
        id = (d as u64).checked_mul(id)?.checked_add(1)?;
        if id > u32::MAX as u64 {
            return None;
        }
    }
    Some(id as NodeId)
}

/// Theorem 4.2: rederives a user's current u-node ID after the marking
/// algorithm, given the ID `m` the user held *before* the batch and the
/// maximum current k-node ID `nk` (the `maxKID` field of ENC packets).
///
/// A user's u-node only ever changes ID by *splitting*, which moves it to
/// its leftmost descendant some number of levels down; by Lemma 4.1 the new
/// ID `m'` is the unique leftmost descendant of `m` in the open–closed
/// range `(nk, d*nk + d]`.
///
/// Returns `None` if no such ID exists in range — which the theorem rules
/// out for any user still in the group, so `None` means "you were removed
/// (or your pre-batch ID was wrong)".
pub fn derive_current_id(m: NodeId, nk: NodeId, d: u32) -> Option<NodeId> {
    let upper = (d as u64) * (nk as u64) + d as u64;
    let mut x = 0;
    loop {
        let candidate = leftmost_descendant(m, d, x)?;
        let c = candidate as u64;
        if c > upper {
            return None;
        }
        if c > nk as u64 {
            return Some(candidate);
        }
        x += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parent_child_inverse() {
        for d in [2u32, 3, 4, 7] {
            for m in 0..200u32 {
                for c in children(m, d) {
                    assert_eq!(parent(c, d), Some(m), "d={d} m={m} c={c}");
                }
            }
            assert_eq!(parent(0, d), None);
        }
    }

    #[test]
    fn levels_are_consistent_with_full_tree_layout() {
        // Degree 3 (matches Figure 4 of the paper): root 0 at level 0,
        // 1..=3 at level 1, 4..=12 at level 2.
        assert_eq!(level(0, 3), 0);
        for m in 1..=3 {
            assert_eq!(level(m, 3), 1);
        }
        for m in 4..=12 {
            assert_eq!(level(m, 3), 2);
        }
        assert_eq!(level(13, 3), 3);
    }

    #[test]
    fn path_to_root_ends_at_zero() {
        let p = path_to_root(22, 4);
        assert_eq!(p.first(), Some(&22));
        assert_eq!(p.last(), Some(&0));
        for w in p.windows(2) {
            assert_eq!(parent(w[0], 4), Some(w[1]));
        }
    }

    #[test]
    fn ancestor_test() {
        // d=4: path of 21 is 21 -> 5 -> 1 -> 0.
        assert!(is_ancestor_or_self(21, 21, 4));
        assert!(is_ancestor_or_self(5, 21, 4));
        assert!(is_ancestor_or_self(1, 21, 4));
        assert!(is_ancestor_or_self(0, 21, 4));
        assert!(!is_ancestor_or_self(2, 21, 4));
        assert!(!is_ancestor_or_self(22, 21, 4));
    }

    #[test]
    fn leftmost_descendant_matches_formula() {
        for d in [2u32, 3, 4] {
            for m in 0..50u32 {
                for x in 0..4u32 {
                    // f(x) = d^x m + (d^x - 1)/(d-1)
                    let dx = (d as u64).pow(x);
                    let expect = dx * m as u64 + (dx - 1) / (d as u64 - 1);
                    assert_eq!(
                        leftmost_descendant(m, d, x),
                        u32::try_from(expect).ok(),
                        "d={d} m={m} x={x}"
                    );
                }
            }
        }
    }

    #[test]
    fn leftmost_descendant_overflow_is_none() {
        assert_eq!(leftmost_descendant(u32::MAX / 2, 4, 2), None);
    }

    #[test]
    fn derive_current_id_identity_when_not_split() {
        // User at ID 9, nk = 5, d = 4: 9 is already in (5, 24], so ID is
        // unchanged.
        assert_eq!(derive_current_id(9, 5, 4), Some(9));
    }

    #[test]
    fn derive_current_id_one_split() {
        // d=4. A user at ID 6; after splits nk grows to 8. 6 is now a
        // k-node id (<= nk), so the user moved to its leftmost child
        // 4*6+1 = 25, which lies in (8, 36].
        assert_eq!(derive_current_id(6, 8, 4), Some(25));
    }

    #[test]
    fn derive_current_id_two_splits() {
        // d=2, old id 1, nk = 4: leftmost descendants of 1 are 1, 3, 7.
        // 1 and 3 are <= nk; 7 is in (4, 10]. So new id is 7.
        assert_eq!(derive_current_id(1, 4, 2), Some(7));
    }

    #[test]
    fn derive_current_id_uniqueness_window() {
        // The accepted range (nk, d*nk+d] spans exactly one tree level's
        // worth of leftmost descendants, so at most one candidate fits.
        for d in [2u32, 3, 4, 5] {
            for nk in 1..100u32 {
                for m in 0..=nk {
                    if let Some(m1) = derive_current_id(m, nk, d) {
                        // No *other* leftmost descendant lies in range.
                        let mut count = 0;
                        for x in 0..8 {
                            if let Some(c) = leftmost_descendant(m, d, x) {
                                if c > nk && (c as u64) <= (d as u64 * nk as u64 + d as u64) {
                                    count += 1;
                                    assert_eq!(c, m1);
                                }
                            }
                        }
                        assert_eq!(count, 1, "d={d} nk={nk} m={m}");
                    }
                }
            }
        }
    }
}
