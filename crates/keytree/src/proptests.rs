//! Property tests pinning the SoA tree to its observable contract: random
//! join/leave churn must satisfy the brute-force marking oracle
//! ([`crate::sanitize::verify_marking`]), the non-allocating iterator
//! accessors must agree with their collecting counterparts, and snapshots
//! must round-trip — so the storage layout stays invisible to every
//! consumer of the tree API.

use proptest::prelude::*;
use wirecrypto::{KeyGen, SymKey};

use crate::marking::{Batch, MarkScratch};
use crate::node::MemberId;
use crate::sanitize::verify_marking;
use crate::tree::KeyTree;

fn arbitrary_churn() -> impl Strategy<Value = (u32, u32, Vec<(usize, usize)>)> {
    // (initial users, degree, per-round (joins, leaves))
    (
        0u32..150,
        prop::sample::select(vec![2u32, 3, 4, 8]),
        proptest::collection::vec((0usize..30, 0usize..30), 1..5),
    )
}

/// Checks that every allocation-free accessor matches its `Vec`-returning
/// counterpart on the current tree.
fn assert_iterators_agree(tree: &KeyTree) -> Result<(), TestCaseError> {
    let user_ids: Vec<_> = tree.user_ids_iter().collect();
    prop_assert_eq!(user_ids, tree.user_ids());
    let member_ids: Vec<_> = tree.member_ids_iter().collect();
    prop_assert_eq!(member_ids, tree.member_ids());
    for m in tree.member_ids() {
        let via_iter: Option<Vec<_>> = tree
            .keys_for_member_iter(m)
            .and_then(|it| it.map(|(id, k)| Some((id, k?))).collect());
        prop_assert_eq!(via_iter, tree.keys_for_member(m), "member {}", m);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random churn through the scratch-reusing entry point passes the
    /// brute-force oracle every round, with iterator/Vec agreement and a
    /// snapshot round-trip after each batch.
    #[test]
    fn soa_tree_is_observationally_sound(
        (n0, d, rounds) in arbitrary_churn(),
        seed in any::<u64>(),
    ) {
        let mut kg = KeyGen::from_seed(seed);
        let mut tree = KeyTree::balanced(n0, d, &mut kg);
        let mut scratch = MarkScratch::new();
        let mut next_member = n0;
        let mut rng_state = seed | 1;

        for (j, l) in rounds {
            let mut pool = tree.member_ids();
            let l = l.min(pool.len());
            let mut leavers: Vec<MemberId> = Vec::new();
            for _ in 0..l {
                rng_state = rng_state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let idx = (rng_state >> 33) as usize % pool.len();
                leavers.push(pool.swap_remove(idx));
            }
            let joins: Vec<(MemberId, SymKey)> = (0..j)
                .map(|_| {
                    let m = next_member;
                    next_member += 1;
                    (m, kg.next_key())
                })
                .collect();

            let batch = Batch::new(joins, leavers);
            let before = tree.clone();
            let outcome = tree.process_batch_in(batch.clone(), &mut kg, &mut scratch);

            let oracle = verify_marking(&before, &tree, &batch, &outcome);
            prop_assert_eq!(&oracle, &Ok(()), "oracle rejected the batch");
            assert_iterators_agree(&tree)?;

            let snap = tree.snapshot();
            let restored = match KeyTree::restore(&snap) {
                Ok(t) => t,
                Err(e) => return Err(TestCaseError::Fail(format!("restore failed: {e:?}"))),
            };
            prop_assert_eq!(restored.snapshot(), snap, "snapshot round-trip");
            prop_assert_eq!(restored.member_ids(), tree.member_ids());
            for m in tree.member_ids() {
                prop_assert_eq!(restored.keys_for_member(m), tree.keys_for_member(m));
            }
        }
    }
}
