//! Key-tree snapshots: serialise the server's entire key state for crash
//! recovery.
//!
//! The rekey protocol is stateful in a dangerous way: the server encrypts
//! *next* interval's keys under *this* interval's keys, so losing the tree
//! means re-registering every member. A snapshot captures the full tree
//! (structure + key material) in a compact self-describing binary format;
//! [`KeyTree::restore`] validates structure and re-checks the paper's
//! invariants before accepting it.
//!
//! Format (little-endian):
//!
//! ```text
//! magic "LKH1" | degree: u32 | node count: u64 |
//!   per node: tag u8 (0 = N, 1 = K, 2 = U) |
//!     K: key 16 B
//!     U: member u32, key 16 B
//! ```
//!
//! Snapshots contain raw key material: encrypt them at rest (e.g. with
//! `wirecrypto::StreamCipher` under a storage master key).

use wirecrypto::SymKey;

use crate::node::{Node, NodeId};
use crate::tree::KeyTree;

const MAGIC: &[u8; 4] = b"LKH1";

/// Why a snapshot failed to load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Missing or wrong magic/version header.
    BadMagic,
    /// The buffer ended mid-record.
    Truncated,
    /// An unknown node tag.
    BadTag(u8),
    /// Structural validation failed after decoding.
    Invalid(String),
    /// A declared size is beyond sane bounds.
    Unreasonable,
}

impl core::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a key-tree snapshot"),
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadTag(t) => write!(f, "unknown node tag {t}"),
            SnapshotError::Invalid(why) => write!(f, "snapshot fails validation: {why}"),
            SnapshotError::Unreasonable => write!(f, "snapshot declares an unreasonable size"),
        }
    }
}

impl std::error::Error for SnapshotError {}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        if self.pos + n > self.buf.len() {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        let Some(bytes) = self.take(4)?.first_chunk::<4>() else {
            unreachable!("take(4) returns 4 bytes")
        };
        Ok(u32::from_le_bytes(*bytes))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        let Some(bytes) = self.take(8)?.first_chunk::<8>() else {
            unreachable!("take(8) returns 8 bytes")
        };
        Ok(u64::from_le_bytes(*bytes))
    }

    fn key(&mut self) -> Result<SymKey, SnapshotError> {
        let Some(bytes) = self.take(16)?.first_chunk::<16>() else {
            unreachable!("take(16) returns 16 bytes")
        };
        Ok(SymKey::from_bytes(*bytes))
    }
}

impl KeyTree {
    /// Serialises the whole tree (structure and key material).
    ///
    /// The encoding is canonical: trailing n-node slots are trimmed, so
    /// two trees with the same live nodes — regardless of how much slack
    /// their storage accumulated — serialise to identical bytes, and
    /// `restore(snapshot(t)).snapshot() == snapshot(t)`.
    pub fn snapshot(&self) -> Vec<u8> {
        let node_count = (0..self.storage_len() as NodeId)
            .rev()
            .find(|&id| !self.is_n(id))
            .map_or(0, |id| id as usize + 1);
        let mut out = Vec::with_capacity(12 + node_count * 21);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&self.degree().to_le_bytes());
        out.extend_from_slice(&(node_count as u64).to_le_bytes());
        for id in 0..node_count as NodeId {
            match self.node(id) {
                Node::N => out.push(0),
                Node::K { key } => {
                    out.push(1);
                    out.extend_from_slice(key.as_bytes());
                }
                Node::U { member, key } => {
                    out.push(2);
                    out.extend_from_slice(&member.to_le_bytes());
                    out.extend_from_slice(key.as_bytes());
                }
            }
        }
        out
    }

    /// Restores a tree from a snapshot, re-validating all invariants.
    pub fn restore(bytes: &[u8]) -> Result<KeyTree, SnapshotError> {
        let mut r = Reader { buf: bytes, pos: 0 };
        if r.take(4)? != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let degree = r.u32()?;
        if !(2..=64).contains(&degree) {
            return Err(SnapshotError::Invalid(format!("degree {degree}")));
        }
        let node_count = r.u64()?;
        if node_count > 16_000_000 {
            return Err(SnapshotError::Unreasonable);
        }
        let mut tree = KeyTree::new(degree);
        for id in 0..node_count as NodeId {
            let node = match r.u8()? {
                0 => Node::N,
                1 => Node::K { key: r.key()? },
                2 => Node::U {
                    member: r.u32()?,
                    key: r.key()?,
                },
                t => return Err(SnapshotError::BadTag(t)),
            };
            if !matches!(node, Node::N) {
                tree.set_node(id, node);
            }
        }
        if r.pos != bytes.len() {
            return Err(SnapshotError::Invalid("trailing bytes".into()));
        }
        tree.check_invariants().map_err(SnapshotError::Invalid)?;
        Ok(tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Batch;
    use wirecrypto::KeyGen;

    fn churned_tree() -> KeyTree {
        let mut kg = KeyGen::from_seed(7);
        let mut tree = KeyTree::balanced(64, 4, &mut kg);
        // Leave holes and splits behind.
        tree.process_batch(&Batch::new(vec![], vec![3, 17, 40, 41, 42, 43]), &mut kg);
        let joins = (0..9).map(|i| (100 + i, kg.next_key())).collect();
        tree.process_batch(&Batch::new(joins, vec![]), &mut kg);
        tree
    }

    #[test]
    fn round_trip_preserves_everything() {
        let tree = churned_tree();
        let snap = tree.snapshot();
        let restored = KeyTree::restore(&snap).unwrap();
        assert_eq!(restored.degree(), tree.degree());
        assert_eq!(restored.user_count(), tree.user_count());
        assert_eq!(restored.group_key(), tree.group_key());
        assert_eq!(restored.max_knode_id(), tree.max_knode_id());
        for m in tree.member_ids() {
            assert_eq!(restored.node_of_member(m), tree.node_of_member(m));
            assert_eq!(
                restored.keys_for_member(m),
                tree.keys_for_member(m),
                "member {m} keys"
            );
        }
        // And the restored tree keeps working.
        let mut kg = KeyGen::from_seed(99);
        let mut restored = restored;
        let outcome = restored.process_batch(&Batch::new(vec![], vec![100]), &mut kg);
        assert!(outcome.group_key_changed());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut snap = churned_tree().snapshot();
        snap[0] ^= 1;
        assert!(matches!(
            KeyTree::restore(&snap),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn truncation_rejected() {
        let snap = churned_tree().snapshot();
        for cut in [3usize, 10, snap.len() / 2, snap.len() - 1] {
            assert!(
                KeyTree::restore(&snap[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut snap = churned_tree().snapshot();
        snap.push(0);
        assert!(matches!(
            KeyTree::restore(&snap),
            Err(SnapshotError::Invalid(_))
        ));
    }

    #[test]
    fn bad_tag_rejected() {
        let mut snap = churned_tree().snapshot();
        // First node tag byte is at offset 16.
        snap[16] = 9;
        assert!(matches!(
            KeyTree::restore(&snap),
            Err(SnapshotError::BadTag(9))
        ));
    }

    #[test]
    fn structural_corruption_rejected() {
        // Turn the root k-node into an n-node: u-nodes lose their
        // ancestor chain and validation must fail.
        let tree = churned_tree();
        let snap = tree.snapshot();
        assert_eq!(snap[16], 1, "root is a k-node");
        // Remove the root record (tag + 16 key bytes) by marking N and
        // shifting the remainder up.
        let mut cut = snap.clone();
        cut[16] = 0;
        cut.drain(17..33);
        assert!(matches!(
            KeyTree::restore(&cut),
            Err(SnapshotError::Invalid(_))
                | Err(SnapshotError::Truncated)
                | Err(SnapshotError::BadTag(_))
        ));
    }

    #[test]
    fn unreasonable_size_rejected() {
        let mut snap = Vec::new();
        snap.extend_from_slice(b"LKH1");
        snap.extend_from_slice(&4u32.to_le_bytes());
        snap.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            KeyTree::restore(&snap),
            Err(SnapshotError::Unreasonable)
        ));
    }

    #[test]
    fn empty_tree_round_trips() {
        let tree = KeyTree::new(4);
        let restored = KeyTree::restore(&tree.snapshot()).unwrap();
        assert_eq!(restored.user_count(), 0);
        assert_eq!(restored.group_key(), None);
    }
}
