//! Brute-force cross-checks of the marking algorithm (tests and the
//! `sanitize` feature).
//!
//! [`verify_marking`] takes the tree as it stood *before* a batch, the
//! tree after, the batch itself, and the [`MarkOutcome`] the marking
//! algorithm produced — and re-derives everything the outcome claims from
//! first principles:
//!
//! * the set of k-nodes whose keys changed (by comparing every key in the
//!   two trees) must be exactly `updated_knodes`;
//! * the encryption edges must be exactly the non-empty children of every
//!   updated k-node, in the documented order;
//! * every current member must be able to reach the new group key by
//!   decrypting edges with keys it already holds (simulated decryption);
//! * no key a departed member held may survive the batch;
//! * every relocation must be re-derivable from `maxKID` alone
//!   (Theorem 4.2).
//!
//! None of this consults the outcome's own `labels` — the point is an
//! independent derivation that disagrees loudly when the marking code is
//! wrong.

use std::collections::HashMap;

use wirecrypto::SymKey;

use crate::ident;
use crate::marking::{Batch, MarkOutcome};
use crate::node::NodeId;
use crate::tree::KeyTree;

/// Verifies one batch's [`MarkOutcome`] against an independent
/// re-derivation from the before/after trees. Returns the first violation
/// as text.
pub fn verify_marking(
    before: &KeyTree,
    after: &KeyTree,
    batch: &Batch,
    outcome: &MarkOutcome,
) -> Result<(), String> {
    after.check_invariants()?;
    let d = after.degree();

    // ---- membership bookkeeping ------------------------------------
    for m in &batch.leaves {
        if after.node_of_member(*m).is_some() {
            return Err(format!("departed member {m} is still in the tree"));
        }
    }
    for (m, _) in &batch.joins {
        if after.node_of_member(*m).is_none() {
            return Err(format!("joined member {m} is missing from the tree"));
        }
    }
    if outcome.departed != batch.leaves {
        return Err("outcome.departed does not match the batch".into());
    }
    let joined: Vec<_> = batch.joins.iter().map(|(m, _)| *m).collect();
    if outcome.joined != joined {
        return Err("outcome.joined does not match the batch".into());
    }
    if outcome.nk != after.max_knode_id() {
        return Err(format!(
            "outcome.nk = {:?} but the tree's max k-node id is {:?}",
            outcome.nk,
            after.max_knode_id()
        ));
    }

    // ---- changed keys: brute-force rediscovery ---------------------
    // A k-node belongs in `updated_knodes` iff it is new or its key
    // changed. Compare every key slot across the two trees.
    for w in outcome.updated_knodes.windows(2) {
        if w[0] <= w[1] {
            return Err(format!(
                "updated_knodes not in descending order: {} then {}",
                w[0], w[1]
            ));
        }
    }
    let updated: std::collections::HashSet<NodeId> =
        outcome.updated_knodes.iter().copied().collect();
    let storage = before.storage_len().max(after.storage_len());
    for i in 0..storage {
        let id = i as NodeId;
        if !after.node(id).is_k() {
            continue;
        }
        let changed = before.key_of(id) != after.key_of(id);
        if changed && !updated.contains(&id) {
            return Err(format!(
                "k-node {id} got a fresh key but is not in updated_knodes"
            ));
        }
        if !changed && updated.contains(&id) {
            return Err(format!("k-node {id} is in updated_knodes but kept its key"));
        }
    }
    for &id in &outcome.updated_knodes {
        if !after.node(id).is_k() {
            return Err(format!(
                "updated_knodes contains {id}, which is not a k-node"
            ));
        }
    }

    // ---- encryption edges: brute-force rediscovery -----------------
    // For each updated k-node, every non-empty child must receive the new
    // key (vacated slots are n-nodes by now and need nothing). Order:
    // parents in `updated_knodes` order, children ascending.
    let mut expected: Vec<(NodeId, NodeId)> = Vec::new();
    for &p in &outcome.updated_knodes {
        for c in ident::children(p, d) {
            if !after.node(c).is_n() {
                expected.push((c, p));
            }
        }
    }
    let got: Vec<(NodeId, NodeId)> = outcome
        .encryptions
        .iter()
        .map(|e| (e.child, e.parent))
        .collect();
    if got != expected {
        return Err(format!(
            "encryption edges differ from re-derivation: got {got:?}, expected {expected:?}"
        ));
    }

    // ---- delivery: every member reaches the new group key ----------
    // Simulate decryption: a member starts from its individual key plus
    // its old path keys and may learn `parent` from an edge only if it
    // already holds `child`.
    let new_group_key = after.group_key();
    for m in after.member_ids() {
        let uid = after
            .node_of_member(m)
            .ok_or_else(|| format!("member {m} lost its u-node"))?;
        let mut have: HashMap<NodeId, SymKey> = HashMap::new();
        let own = after
            .key_of(uid)
            .ok_or_else(|| format!("member {m} has no individual key"))?;
        have.insert(uid, own);
        if let Some(old_keys) = before.keys_for_member(m) {
            for (id, k) in old_keys {
                have.entry(id).or_insert(k);
            }
        }
        for id in ident::path_to_root(uid, d) {
            if let Some(idx) = outcome.encryption_by_child(id) {
                let edge = outcome.encryptions[idx];
                if !have.contains_key(&edge.child) {
                    return Err(format!(
                        "member {m} lacks key {} needed to decrypt {{{}}}",
                        edge.child, edge.parent
                    ));
                }
                let parent_key = after
                    .key_of(edge.parent)
                    .ok_or_else(|| format!("edge parent {} has no key", edge.parent))?;
                have.insert(edge.parent, parent_key);
            } else if let Some(p) = ident::parent(id, d) {
                if updated.contains(&p) {
                    return Err(format!("updated k-node {p} has no edge from child {id}"));
                }
            }
        }
        if have.get(&0).copied() != new_group_key {
            return Err(format!("member {m} cannot reach the new group key"));
        }
    }

    // ---- forward secrecy: departed members learn nothing -----------
    for m in &outcome.departed {
        if after.node_of_member(*m).is_some() {
            continue; // re-admitted in the same batch
        }
        let old_uid = before
            .node_of_member(*m)
            .ok_or_else(|| format!("departed member {m} was never in the tree"))?;
        if let Some(idx) = outcome.encryption_by_child(old_uid) {
            let edge = outcome.encryptions[idx];
            if after.key_of(edge.child) == before.key_of(old_uid) {
                return Err(format!(
                    "edge under slot {old_uid} is sealed with departed member {m}'s key"
                ));
            }
        }
        // Every k-key the member knew must be replaced or gone.
        for id in ident::path_to_root(old_uid, d) {
            if id == old_uid {
                continue;
            }
            if after.node(id).is_k() && after.key_of(id) == before.key_of(id) {
                return Err(format!(
                    "k-node {id} kept its key although departed member {m} knew it"
                ));
            }
        }
    }

    // ---- Theorem 4.2: moves re-derivable from maxKID alone ---------
    for mv in &outcome.moves {
        let derived = outcome
            .nk
            .and_then(|nk| ident::derive_current_id(mv.old_id, nk, d));
        if derived != Some(mv.new_id) {
            return Err(format!(
                "move {} -> {} not re-derivable from maxKID (got {derived:?})",
                mv.old_id, mv.new_id
            ));
        }
    }

    // ---- compaction relocations: explicit, downward, key-preserving -
    // Unlike `moves`, these are NOT re-derivable from maxKID (they go
    // *down*, outside Theorem 4.2's upward split window), which is
    // exactly why they travel in a separate field. Check each one moved
    // a real member downward with its individual key intact, and that
    // the rederivation identity holds at the destination so ENC
    // processing still works for the relocated member.
    for rl in &outcome.relocations {
        if rl.new_id >= rl.old_id {
            return Err(format!(
                "relocation {} -> {} is not downward",
                rl.old_id, rl.new_id
            ));
        }
        if before.member_at(rl.old_id) != Some(rl.member) {
            return Err(format!(
                "relocated member {} was not at {} before the batch",
                rl.member, rl.old_id
            ));
        }
        if after.node_of_member(rl.member) != Some(rl.new_id) {
            return Err(format!(
                "relocated member {} is not at {} after the batch",
                rl.member, rl.new_id
            ));
        }
        if after.key_of(rl.new_id) != before.key_of(rl.old_id) {
            return Err(format!(
                "relocation {} -> {} did not preserve the individual key",
                rl.old_id, rl.new_id
            ));
        }
        let derived = outcome
            .nk
            .and_then(|nk| ident::derive_current_id(rl.new_id, nk, d));
        if derived != Some(rl.new_id) {
            return Err(format!(
                "relocated slot {} is outside the maxKID window (derived {derived:?})",
                rl.new_id
            ));
        }
        if outcome.moves.iter().any(|mv| mv.member == rl.member) {
            return Err(format!(
                "member {} appears in both moves and relocations",
                rl.member
            ));
        }
    }

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::marking::Label;
    use wirecrypto::KeyGen;

    fn keygen() -> KeyGen {
        KeyGen::from_seed(99)
    }

    fn join(kg: &mut KeyGen, m: u32) -> (u32, SymKey) {
        (m, kg.next_key())
    }

    /// Processes a batch and runs the full cross-check.
    fn checked_batch(tree: &mut KeyTree, batch: Batch, kg: &mut KeyGen) -> MarkOutcome {
        let before = tree.clone();
        let outcome = tree.process_batch(&batch, kg);
        verify_marking(&before, tree, &batch, &outcome).unwrap();
        outcome
    }

    #[test]
    fn empty_batch_passes_and_changes_nothing() {
        let mut kg = keygen();
        let mut tree = KeyTree::balanced(16, 4, &mut kg);
        let gk = tree.group_key();
        let outcome = checked_batch(&mut tree, Batch::default(), &mut kg);
        assert!(outcome.updated_knodes.is_empty());
        assert!(outcome.encryptions.is_empty());
        assert_eq!(tree.group_key(), gk);
    }

    #[test]
    fn leave_all_members_passes() {
        let mut kg = keygen();
        let mut tree = KeyTree::balanced(16, 4, &mut kg);
        let leaves: Vec<u32> = (0..16).collect();
        let outcome = checked_batch(&mut tree, Batch::new(vec![], leaves), &mut kg);
        assert_eq!(tree.user_count(), 0);
        assert_eq!(tree.group_key(), None);
        assert!(outcome.encryptions.is_empty());
    }

    #[test]
    fn joins_only_with_splits_passes() {
        let mut kg = keygen();
        // Full 16-user degree-4 tree: any join forces node splitting.
        let mut tree = KeyTree::balanced(16, 4, &mut kg);
        let joins: Vec<_> = (0..9).map(|i| join(&mut kg, 100 + i)).collect();
        let outcome = checked_batch(&mut tree, Batch::new(joins, vec![]), &mut kg);
        assert!(!outcome.moves.is_empty(), "splits must relocate users");
        assert_eq!(tree.user_count(), 25);
    }

    #[test]
    fn long_empty_slots_are_not_labelled_leave() {
        // The DESIGN.md deviation from the paper's Appendix B: an n-node
        // that was *already* empty before the batch must stay transparent
        // to labelling — only slots vacated this batch read Leave. The
        // paper's literal text would label all n-nodes Leave, forcing key
        // churn from long-empty slots on every batch.
        let mut kg = keygen();
        let mut tree = KeyTree::balanced(16, 4, &mut kg);
        // Batch 1 vacates slot 5 (member 0), leaving a lasting hole.
        let o1 = checked_batch(&mut tree, Batch::new(vec![], vec![0]), &mut kg);
        assert_eq!(
            o1.labels.get(&5),
            Some(&Label::Leave),
            "fresh hole is Leave"
        );

        // Batch 2 touches a *different* subtree. The old hole at 5 must
        // not resurface as Leave, and k-node 1 above it must change only
        // because the group key path demands it — here it must stay
        // untouched entirely.
        let o2 = checked_batch(&mut tree, Batch::new(vec![], vec![15]), &mut kg);
        assert_eq!(
            o2.labels.get(&5),
            None,
            "long-empty slot must be unlabelled"
        );
        assert!(
            !o2.updated_knodes.contains(&1),
            "k-node above a long-empty slot must not rekey"
        );
    }

    #[test]
    fn churn_sequence_passes_cross_check_every_round() {
        let mut kg = keygen();
        let mut tree = KeyTree::balanced(27, 3, &mut kg);
        let mut next = 27u32;
        for round in 0u32..12 {
            let members = tree.member_ids();
            let leaves: Vec<u32> = members
                .iter()
                .copied()
                .filter(|m| (m + round) % 4 == 0)
                .take(5)
                .collect();
            let joins: Vec<_> = (0..(round % 7))
                .map(|_| {
                    next += 1;
                    join(&mut kg, next)
                })
                .collect();
            checked_batch(&mut tree, Batch::new(joins, leaves), &mut kg);
        }
    }

    #[test]
    fn cross_check_rejects_a_forged_outcome() {
        let mut kg = keygen();
        let mut tree = KeyTree::balanced(16, 4, &mut kg);
        let before = tree.clone();
        let batch = Batch::new(vec![], vec![3]);
        let mut outcome = tree.process_batch(&batch, &mut kg);
        // Drop an edge: delivery must now fail for some member.
        outcome.encryptions.pop();
        assert!(verify_marking(&before, &tree, &batch, &outcome).is_err());
    }

    #[test]
    fn compaction_passes_cross_check_every_round() {
        use crate::marking::{CompactionPolicy, MarkScratch};
        let mut kg = keygen();
        let mut tree = KeyTree::balanced(512, 4, &mut kg);
        let mut scratch = MarkScratch::new();
        let policy = CompactionPolicy::DEFAULT_ON;
        // Mass departure, then empty batches drain the relocation budget;
        // every round must survive the full oracle, relocations included.
        let leaves: Vec<u32> = (32..512).collect();
        let mut batch = Batch::new(vec![], leaves);
        let mut saw_relocations = false;
        for _ in 0..24 {
            let before = tree.clone();
            let outcome =
                tree.process_batch_compacting_in(batch.clone(), &mut kg, &mut scratch, &policy);
            verify_marking(&before, &tree, &batch, &outcome).unwrap();
            saw_relocations |= !outcome.relocations.is_empty();
            if outcome.relocations.is_empty() && outcome.departed.is_empty() {
                break;
            }
            batch = Batch::default();
        }
        assert!(saw_relocations, "compaction never produced relocations");
    }

    #[test]
    fn cross_check_rejects_a_forged_relocation() {
        use crate::marking::{CompactionPolicy, MarkScratch, UserMove};
        let mut kg = keygen();
        let mut tree = KeyTree::balanced(512, 4, &mut kg);
        let mut scratch = MarkScratch::new();
        let policy = CompactionPolicy::DEFAULT_ON;
        let before = tree.clone();
        let batch = Batch::new(vec![], (32..512).collect());
        let mut outcome =
            tree.process_batch_compacting_in(batch.clone(), &mut kg, &mut scratch, &policy);
        // Claim a relocation that never happened: member 0 did not move.
        let bogus_slot = tree.node_of_member(0).unwrap();
        outcome.relocations.push(UserMove {
            member: 0,
            old_id: bogus_slot + 1000,
            new_id: bogus_slot,
        });
        assert!(verify_marking(&before, &tree, &batch, &outcome).is_err());
    }
}
