//! Logical key hierarchy (LKH) key trees with periodic batch rekeying.
//!
//! This crate implements the key-management component of the group
//! rekeying system: the key tree, the paper's key-identification strategy,
//! and the *marking algorithm* that processes a batch of `J` joins and `L`
//! leaves at the end of each rekey interval, producing the rekey subtree
//! whose edges become the encryptions of the rekey message.
//!
//! # The tree and its IDs
//!
//! A key tree of degree `d` holds three kinds of nodes:
//!
//! * **u-nodes** — leaves holding users' *individual keys*;
//! * **k-nodes** — interior nodes holding auxiliary keys, with the *group
//!   key* at the root;
//! * **n-nodes** — null placeholders for empty slots.
//!
//! Nodes are identified by the integer they receive when the tree is
//! (conceptually) expanded to a full, balanced tree and numbered top-down,
//! left-to-right: the root is `0`, the children of `m` are
//! `d*m + 1 ..= d*m + d`, and the parent of `m` is `(m - 1) / d`. The ID of
//! a user is the ID of its u-node; the ID of an *encryption* `{k'}_k` is
//! the ID of the encrypting (child) key `k`.
//!
//! The marking algorithm preserves the paper's Lemma 4.1 — every k-node ID
//! is smaller than every u-node ID — which is what lets a user rederive its
//! own ID after tree restructuring from nothing but the maximum current
//! k-node ID (`maxKID`, Theorem 4.2); see [`ident::derive_current_id`].
//!
//! # Example
//!
//! ```
//! use keytree::{Batch, KeyTree};
//! use wirecrypto::KeyGen;
//!
//! let mut keygen = KeyGen::from_seed(1);
//! // A full, balanced group of 16 users with tree degree 4.
//! let mut tree = KeyTree::balanced(16, 4, &mut keygen);
//! let old_group_key = tree.group_key().unwrap();
//!
//! // The user with member id 3 leaves; nobody joins.
//! let batch = Batch::new(vec![], vec![3]);
//! let outcome = tree.process_batch(&batch, &mut keygen);
//!
//! assert_ne!(tree.group_key().unwrap(), old_group_key);
//! assert!(!outcome.encryptions.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Closed-form cost analysis of marking outcomes (paper Section 4).
pub mod analysis;
/// Node-ID arithmetic: Lemma 4.1 ordering and Theorem 4.2 derivation.
pub mod ident;
mod marking;
mod node;
#[cfg(test)]
mod proptests;
/// Brute-force marking cross-checks (tests / `--features sanitize`).
#[cfg(any(test, feature = "sanitize"))]
pub mod sanitize;
mod snapshot;
mod tree;

pub use marking::{
    derive_updated_key, Batch, CompactionPolicy, EncEdge, Label, MarkOutcome, MarkScratch,
    PendingMint, UserMove, DERIVE_CHUNK,
};
pub use node::{MemberId, Node, NodeId};
pub use snapshot::SnapshotError;
pub use tree::KeyTree;
