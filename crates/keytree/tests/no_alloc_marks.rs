//! Dynamic half of the `// xcheck: no_alloc` contract for
//! [`KeyTree::mark_batch_in`]: with a warm scratch, a warm moves buffer,
//! and a replace-shaped batch (joins == leaves, so the tree's storage
//! does not grow), phases 1–2 of batch processing must perform zero heap
//! allocations.

use keytree::{Batch, KeyTree, MarkScratch, UserMove};
use wirecrypto::KeyGen;

#[global_allocator]
static ALLOC: xcheck_rt::CountingAlloc = xcheck_rt::CountingAlloc;

#[test]
fn mark_batch_in_is_allocation_free_in_steady_state() {
    xcheck_rt::assert_counting();

    let mut kg = KeyGen::from_seed(41);
    let mut tree = KeyTree::balanced(64, 4, &mut kg);
    let mut scratch = MarkScratch::new();
    let mut moves: Vec<UserMove> = Vec::new();

    // Warm-up: several replace batches fill the scratch's node maps and
    // work lists to their steady-state capacity.
    let mut next_member = 1000u32;
    let batch_at = |round: u32, kg: &mut KeyGen, next: &mut u32| {
        let leaves: Vec<u32> = (0..4).map(|i| round * 4 + i).collect();
        let joins: Vec<_> = (0..4)
            .map(|_| {
                *next += 1;
                (*next, kg.next_key())
            })
            .collect();
        Batch::new(joins, leaves)
    };
    for round in 0..4 {
        let batch = batch_at(round, &mut kg, &mut next_member);
        tree.mark_batch_in(&batch, &mut kg, &mut scratch, &mut moves);
    }

    // Steady state: one more batch of the same shape must not allocate.
    let batch = batch_at(4, &mut kg, &mut next_member);
    xcheck_rt::assert_zero_alloc("KeyTree::mark_batch_in", || {
        tree.mark_batch_in(&batch, &mut kg, &mut scratch, &mut moves)
    });

    // The marking really ran: the batch's joins are live members now.
    assert!(tree.node_of_member(next_member).is_some());
    assert!(
        tree.node_of_member(30).is_some(),
        "untouched member survives"
    );
    assert!(tree.node_of_member(16).is_none(), "round-4 leave departed");
}
