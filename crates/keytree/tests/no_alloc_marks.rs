//! Dynamic half of the `// xcheck: no_alloc` contract for
//! [`KeyTree::mark_batch_in`] and [`KeyTree::mark_batch_compacting_in`]:
//! with a warm scratch, warm moves/relocations buffers, and batches that
//! do not grow the tree's storage, phases 1–2 of batch processing — tail
//! compaction included — must perform zero heap allocations.

use keytree::{Batch, CompactionPolicy, KeyTree, MarkScratch, UserMove};
use wirecrypto::KeyGen;

#[global_allocator]
static ALLOC: xcheck_rt::CountingAlloc = xcheck_rt::CountingAlloc;

#[test]
fn mark_batch_in_is_allocation_free_in_steady_state() {
    xcheck_rt::assert_counting();

    let mut kg = KeyGen::from_seed(41);
    let mut tree = KeyTree::balanced(64, 4, &mut kg);
    let mut scratch = MarkScratch::new();
    let mut moves: Vec<UserMove> = Vec::new();

    // Warm-up: several replace batches fill the scratch's node maps and
    // work lists to their steady-state capacity.
    let mut next_member = 1000u32;
    let batch_at = |round: u32, kg: &mut KeyGen, next: &mut u32| {
        let leaves: Vec<u32> = (0..4).map(|i| round * 4 + i).collect();
        let joins: Vec<_> = (0..4)
            .map(|_| {
                *next += 1;
                (*next, kg.next_key())
            })
            .collect();
        Batch::new(joins, leaves)
    };
    for round in 0..4 {
        let batch = batch_at(round, &mut kg, &mut next_member);
        tree.mark_batch_in(&batch, &mut kg, &mut scratch, &mut moves);
    }

    // Steady state: one more batch of the same shape must not allocate.
    let batch = batch_at(4, &mut kg, &mut next_member);
    xcheck_rt::assert_zero_alloc("KeyTree::mark_batch_in", || {
        tree.mark_batch_in(&batch, &mut kg, &mut scratch, &mut moves)
    });

    // The marking really ran: the batch's joins are live members now.
    assert!(tree.node_of_member(next_member).is_some());
    assert!(
        tree.node_of_member(30).is_some(),
        "untouched member survives"
    );
    assert!(tree.node_of_member(16).is_none(), "round-4 leave departed");
}

#[test]
fn mark_batch_compacting_in_is_allocation_free_mid_compaction() {
    xcheck_rt::assert_counting();

    let mut kg = KeyGen::from_seed(43);
    let mut tree = KeyTree::balanced(256, 4, &mut kg);
    let mut scratch = MarkScratch::new();
    let mut moves: Vec<UserMove> = Vec::new();
    let mut relocations: Vec<UserMove> = Vec::new();
    // A small per-batch budget spreads the compaction over several
    // batches, so the measured round is still actively relocating.
    let policy = CompactionPolicy {
        enabled: true,
        slack: 2,
        max_moves_per_batch: 4,
    };

    // Warm-up: a mass departure leaves every eighth member stranded
    // across the whole tree (warming the scratch's work lists at their
    // largest, and leaving plenty of tail to compact), then two empty
    // batches each compact a budget's worth of members, warming
    // `relocations`.
    let exodus = Batch::new(vec![], (0..256).filter(|m| m % 8 != 0).collect());
    tree.mark_batch_compacting_in(
        &exodus,
        &mut kg,
        &mut scratch,
        &mut moves,
        &mut relocations,
        &policy,
    );
    for _ in 0..2 {
        let idle = Batch::new(vec![], vec![]);
        tree.mark_batch_compacting_in(
            &idle,
            &mut kg,
            &mut scratch,
            &mut moves,
            &mut relocations,
            &policy,
        );
        assert!(!relocations.is_empty(), "warm-up batches must compact");
    }

    // Steady state: the next compacting batch must not allocate.
    let idle = Batch::new(vec![], vec![]);
    xcheck_rt::assert_zero_alloc("KeyTree::mark_batch_compacting_in", || {
        tree.mark_batch_compacting_in(
            &idle,
            &mut kg,
            &mut scratch,
            &mut moves,
            &mut relocations,
            &policy,
        )
    });

    // The measured round really compacted: the budget's worth of members
    // moved, and the tree is intact.
    assert_eq!(relocations.len(), policy.max_moves_per_batch);
    assert_eq!(tree.user_count(), 32);
    tree.check_invariants()
        .expect("tree intact after compaction");
}
