//! Property-based tests of the marking algorithm across random batch
//! sequences: structural invariants, Lemma 4.1, Theorem 4.2, and the
//! security-relevant delivery property (every remaining user can reach the
//! new group key through the encryptions; departed users cannot).

use std::collections::{HashMap, HashSet};

use keytree::{ident, Batch, KeyTree, MemberId, NodeId};
use proptest::prelude::*;
use wirecrypto::{KeyGen, SymKey};

/// Replays the encryptions for one user starting from its pre-batch keys
/// and returns the group key it ends up with, if any.
fn user_recovers_group_key(
    tree_before: &KeyTree,
    tree_after: &KeyTree,
    outcome: &keytree::MarkOutcome,
    member: MemberId,
) -> Option<SymKey> {
    let d = tree_after.degree();
    let uid = tree_after.node_of_member(member)?;
    let mut have: HashMap<NodeId, SymKey> = HashMap::new();
    have.insert(uid, tree_after.key_of(uid)?);
    if let Some(old) = tree_before.keys_for_member(member) {
        for (id, k) in old {
            have.entry(id).or_insert(k);
        }
    }
    for id in ident::path_to_root(uid, d) {
        if let Some(idx) = outcome.encryption_by_child(id) {
            let edge = outcome.encryptions[idx];
            // Must already hold the child key to "decrypt".
            have.contains_key(&edge.child).then_some(())?;
            have.insert(edge.parent, tree_after.key_of(edge.parent)?);
        }
    }
    have.get(&0).copied()
}

fn arbitrary_churn() -> impl Strategy<Value = (u32, u32, Vec<(usize, usize)>)> {
    // (initial users, degree, per-round (joins, leaves))
    (
        1u32..200,
        prop::sample::select(vec![2u32, 3, 4, 8]),
        proptest::collection::vec((0usize..40, 0usize..40), 1..6),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn churn_preserves_all_invariants((n0, d, rounds) in arbitrary_churn(), seed in any::<u64>()) {
        let mut kg = KeyGen::from_seed(seed);
        let mut tree = KeyTree::balanced(n0, d, &mut kg);
        let mut next_member = n0;
        let mut rng_state = seed;

        for (j, l) in rounds {
            let members = {
                let mut m = tree.member_ids();
                m.sort_unstable();
                m
            };
            let l = l.min(members.len());
            // Pseudo-randomly pick leavers.
            let mut leavers: Vec<MemberId> = Vec::new();
            let mut pool = members.clone();
            for _ in 0..l {
                rng_state = rng_state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let idx = (rng_state >> 33) as usize % pool.len();
                leavers.push(pool.swap_remove(idx));
            }
            let joins: Vec<(MemberId, SymKey)> = (0..j)
                .map(|_| {
                    let m = next_member;
                    next_member += 1;
                    (m, kg.next_key())
                })
                .collect();

            let before = tree.clone();
            let outcome = tree.process_batch(&Batch::new(joins, leavers.clone()), &mut kg);

            // Invariants.
            prop_assert_eq!(tree.check_invariants(), Ok(()));

            // Membership bookkeeping.
            for m in &leavers {
                prop_assert!(tree.node_of_member(*m).is_none());
            }
            prop_assert_eq!(
                tree.user_count(),
                before.user_count() + outcome.joined.len() - leavers.len()
            );

            // Group key changes iff membership changed.
            if !outcome.joined.is_empty() || !leavers.is_empty() {
                if tree.user_count() > 0 {
                    prop_assert_ne!(before.group_key(), tree.group_key());
                }
            } else {
                prop_assert_eq!(before.group_key(), tree.group_key());
            }

            // Delivery: every current member reaches the new group key.
            if tree.user_count() > 0 {
                let gk = tree.group_key().unwrap();
                for m in tree.member_ids() {
                    prop_assert_eq!(
                        user_recovers_group_key(&before, &tree, &outcome, m),
                        Some(gk),
                        "member {} cannot recover the group key", m
                    );
                }
            }

            // Theorem 4.2 for every member that existed before the batch
            // and remains: its new ID is derivable from its old ID and nk.
            if let Some(nk) = outcome.nk {
                for m in tree.member_ids() {
                    if let Some(old_id) = before.node_of_member(m) {
                        let new_id = tree.node_of_member(m).unwrap();
                        prop_assert_eq!(
                            ident::derive_current_id(old_id, nk, d),
                            Some(new_id),
                            "member {}: old id {}, nk {}", m, old_id, nk
                        );
                    }
                }
            }

            // Encryption IDs unique; encrypting keys all exist in the tree.
            let mut seen = HashSet::new();
            for e in &outcome.encryptions {
                prop_assert!(seen.insert(e.child), "duplicate encrypting key {}", e.child);
                prop_assert!(tree.key_of(e.child).is_some());
                prop_assert!(tree.key_of(e.parent).is_some());
                prop_assert_eq!(ident::parent(e.child, d), Some(e.parent));
                prop_assert!(outcome.updated_knodes.contains(&e.parent));
            }
        }
    }

    /// Lemma 4.1 directly: after any single batch from a balanced start,
    /// every k-node ID is below every u-node ID.
    #[test]
    fn lemma_4_1_holds(
        n0 in 1u32..500,
        d in prop::sample::select(vec![2u32, 3, 4]),
        j in 0usize..100,
        l in 0usize..100,
        seed in any::<u64>(),
    ) {
        let mut kg = KeyGen::from_seed(seed);
        let mut tree = KeyTree::balanced(n0, d, &mut kg);
        let l = l.min(n0 as usize);
        let leaves: Vec<MemberId> = (0..l as u32).collect();
        let joins: Vec<(MemberId, SymKey)> =
            (0..j as u32).map(|i| (n0 + i, kg.next_key())).collect();
        tree.process_batch(&Batch::new(joins, leaves), &mut kg);

        if let Some(nk) = tree.max_knode_id() {
            for uid in tree.user_ids() {
                prop_assert!(nk < uid, "k-node {} >= u-node {}", nk, uid);
            }
        }
        prop_assert_eq!(tree.check_invariants(), Ok(()));
    }
}
