//! Sealed key blobs: the 20-byte authenticated encryption `{k'}_k` that the
//! paper calls an *encryption*.
//!
//! Layout: 16 bytes of ciphertext (the encrypted key) followed by a 4-byte
//! MAC tag. The nonce is not carried on the wire; both sides derive it from
//! context (`(rekey message id, encryption id)`), which is unique because a
//! key encrypts at most one other key per rekey message.

use crate::{mac, StreamCipher, SymKey};

/// Wire length of a sealed key: 16-byte ciphertext + 4-byte tag. This is
/// the `20` in the paper's USR-packet bound `3 + 20h` bytes.
pub const SEALED_KEY_LEN: usize = 20;

/// Why unsealing failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnsealError {
    /// The authentication tag did not verify: wrong key-encrypting key,
    /// wrong context, or corrupted bytes.
    BadTag,
}

impl core::fmt::Display for UnsealError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            UnsealError::BadTag => write!(f, "sealed key failed authentication"),
        }
    }
}

impl std::error::Error for UnsealError {}

/// A sealed (encrypted + authenticated) key as carried in ENC and USR
/// packets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SealedKey {
    bytes: [u8; SEALED_KEY_LEN],
}

impl SealedKey {
    /// Seals `plain` under the key-encrypting key `kek` within `context`
    /// (a caller-chosen unique value — the protocol uses
    /// `(rekey message id << 32) | encryption id`).
    pub fn seal(kek: &SymKey, plain: &SymKey, context: u64) -> Self {
        let mut ct = *plain.as_bytes();
        StreamCipher::apply_oneshot(kek, context, &mut ct);

        // Tag binds ciphertext and context under the same key.
        let mut mac_input = [0u8; 24];
        mac_input[..16].copy_from_slice(&ct);
        mac_input[16..].copy_from_slice(&context.to_le_bytes());
        let tag = mac::mac32(kek, &mac_input);

        let mut bytes = [0u8; SEALED_KEY_LEN];
        bytes[..16].copy_from_slice(&ct);
        bytes[16..].copy_from_slice(&tag.to_le_bytes());
        SealedKey { bytes }
    }

    /// Attempts to recover the sealed key with `kek` in `context`.
    pub fn unseal(&self, kek: &SymKey, context: u64) -> Result<SymKey, UnsealError> {
        let mut ct = [0u8; 16];
        ct.copy_from_slice(&self.bytes[..16]);
        let mut tag_bytes = [0u8; 4];
        tag_bytes.copy_from_slice(&self.bytes[16..]);
        let wire_tag = u32::from_le_bytes(tag_bytes);

        let mut mac_input = [0u8; 24];
        mac_input[..16].copy_from_slice(&ct);
        mac_input[16..].copy_from_slice(&context.to_le_bytes());
        if !mac::tags_equal(mac::mac32(kek, &mac_input), wire_tag) {
            return Err(UnsealError::BadTag);
        }

        let mut pt = ct;
        StreamCipher::apply_oneshot(kek, context, &mut pt);
        Ok(SymKey::from_bytes(pt))
    }

    /// Raw wire bytes.
    pub fn as_bytes(&self) -> &[u8; SEALED_KEY_LEN] {
        &self.bytes
    }

    /// Parses wire bytes (no verification happens until [`Self::unseal`]).
    pub fn from_bytes(bytes: [u8; SEALED_KEY_LEN]) -> Self {
        SealedKey { bytes }
    }

    /// Parses from a slice, returning `None` on wrong length.
    pub fn from_slice(slice: &[u8]) -> Option<Self> {
        let bytes: [u8; SEALED_KEY_LEN] = slice.try_into().ok()?;
        Some(SealedKey { bytes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(b: u8) -> SymKey {
        SymKey::from_bytes([b; 16])
    }

    #[test]
    fn seal_unseal_round_trip() {
        let kek = key(1);
        let plain = key(2);
        let sealed = SealedKey::seal(&kek, &plain, 42);
        assert_eq!(sealed.unseal(&kek, 42).unwrap(), plain);
    }

    #[test]
    fn wrong_kek_fails() {
        let sealed = SealedKey::seal(&key(1), &key(2), 42);
        assert_eq!(sealed.unseal(&key(3), 42), Err(UnsealError::BadTag));
    }

    #[test]
    fn wrong_context_fails() {
        let sealed = SealedKey::seal(&key(1), &key(2), 42);
        assert_eq!(sealed.unseal(&key(1), 43), Err(UnsealError::BadTag));
    }

    #[test]
    fn corruption_is_detected() {
        let kek = key(1);
        let sealed = SealedKey::seal(&kek, &key(2), 7);
        for i in 0..SEALED_KEY_LEN {
            let mut bytes = *sealed.as_bytes();
            bytes[i] ^= 0x40;
            let tampered = SealedKey::from_bytes(bytes);
            assert_eq!(
                tampered.unseal(&kek, 7),
                Err(UnsealError::BadTag),
                "flip in byte {i} went undetected"
            );
        }
    }

    #[test]
    fn ciphertext_hides_plaintext() {
        let sealed = SealedKey::seal(&key(1), &key(2), 1);
        assert_ne!(&sealed.as_bytes()[..16], key(2).as_bytes());
    }

    #[test]
    fn same_plain_different_context_different_wire() {
        let a = SealedKey::seal(&key(1), &key(2), 1);
        let b = SealedKey::seal(&key(1), &key(2), 2);
        assert_ne!(a.as_bytes(), b.as_bytes());
    }

    #[test]
    fn from_slice_length_check() {
        assert!(SealedKey::from_slice(&[0u8; SEALED_KEY_LEN]).is_some());
        assert!(SealedKey::from_slice(&[0u8; 19]).is_none());
        assert!(SealedKey::from_slice(&[0u8; 21]).is_none());
    }
}
