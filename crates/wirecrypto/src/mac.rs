//! A SipHash-2-4-class keyed MAC, implemented from scratch.
//!
//! Used to authenticate sealed key blobs (truncated to 32 bits) and for
//! the challenge–response registration handshake (full 64 bits).

use crate::SymKey;

/// Little-endian `u64` from the first 8 bytes of `bytes` (zero-padded if
/// shorter); total, so the hot MAC loop has no panicking conversions.
#[inline]
fn le_u64(bytes: &[u8]) -> u64 {
    let mut word = [0u8; 8];
    for (slot, &b) in word.iter_mut().zip(bytes) {
        *slot = b;
    }
    u64::from_le_bytes(word)
}

#[inline]
fn sip_round(v: &mut [u64; 4]) {
    v[0] = v[0].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(13);
    v[1] ^= v[0];
    v[0] = v[0].rotate_left(32);
    v[2] = v[2].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(16);
    v[3] ^= v[2];
    v[0] = v[0].wrapping_add(v[3]);
    v[3] = v[3].rotate_left(21);
    v[3] ^= v[0];
    v[2] = v[2].wrapping_add(v[1]);
    v[1] = v[1].rotate_left(17);
    v[1] ^= v[2];
    v[2] = v[2].rotate_left(32);
}

/// Computes the 64-bit MAC of `data` under `key`.
pub fn mac64(key: &SymKey, data: &[u8]) -> u64 {
    let kb = key.as_bytes();
    let k0 = le_u64(&kb[0..8]);
    let k1 = le_u64(&kb[8..16]);

    let mut v = [
        k0 ^ 0x736f6d6570736575,
        k1 ^ 0x646f72616e646f6d,
        k0 ^ 0x6c7967656e657261,
        k1 ^ 0x7465646279746573,
    ];

    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let m = le_u64(chunk);
        v[3] ^= m;
        sip_round(&mut v);
        sip_round(&mut v);
        v[0] ^= m;
    }

    // Final block: remaining bytes plus the length in the top byte.
    let rem = chunks.remainder();
    let mut last = [0u8; 8];
    last[..rem.len()].copy_from_slice(rem);
    last[7] = data.len() as u8;
    let m = u64::from_le_bytes(last);
    v[3] ^= m;
    sip_round(&mut v);
    sip_round(&mut v);
    v[0] ^= m;

    v[2] ^= 0xff;
    for _ in 0..4 {
        sip_round(&mut v);
    }
    v[0] ^ v[1] ^ v[2] ^ v[3]
}

/// Computes a 32-bit tag (the sealed-blob tag size).
pub fn mac32(key: &SymKey, data: &[u8]) -> u32 {
    let full = mac64(key, data);
    (full ^ (full >> 32)) as u32
}

/// Constant-time-ish comparison of two tags. With simulated crypto this is
/// about interface hygiene, not a real side-channel defence.
pub fn tags_equal(a: u32, b: u32) -> bool {
    (a ^ b) == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(b: u8) -> SymKey {
        SymKey::from_bytes([b; 16])
    }

    #[test]
    fn deterministic() {
        assert_eq!(mac64(&key(1), b"hello"), mac64(&key(1), b"hello"));
    }

    #[test]
    fn key_sensitivity() {
        assert_ne!(mac64(&key(1), b"hello"), mac64(&key(2), b"hello"));
    }

    #[test]
    fn message_sensitivity() {
        assert_ne!(mac64(&key(1), b"hello"), mac64(&key(1), b"hellp"));
        assert_ne!(mac64(&key(1), b""), mac64(&key(1), b"\0"));
    }

    #[test]
    fn length_extension_blocked_by_length_byte() {
        // "ab" + "c" must differ from "abc" even though the bytes align.
        assert_ne!(mac64(&key(3), b"ab\0"), mac64(&key(3), b"ab"));
    }

    #[test]
    fn all_block_boundaries() {
        // Exercise remainder lengths 0..=8 around the 8-byte block size.
        let k = key(9);
        let data = [0x5Au8; 24];
        let macs: Vec<u64> = (0..=16).map(|n| mac64(&k, &data[..n])).collect();
        for i in 0..macs.len() {
            for j in (i + 1)..macs.len() {
                assert_ne!(macs[i], macs[j], "lengths {i} and {j} collide");
            }
        }
    }

    #[test]
    fn mac32_mixes_both_halves() {
        let k = key(4);
        let t = mac32(&k, b"data");
        let full = mac64(&k, b"data");
        assert_eq!(t, (full ^ (full >> 32)) as u32);
    }

    #[test]
    fn tag_comparison() {
        assert!(tags_equal(5, 5));
        assert!(!tags_equal(5, 6));
    }

    #[test]
    fn avalanche_rough_check() {
        // Flipping one input bit should flip roughly half the output bits.
        let k = key(77);
        let base = mac64(&k, b"avalanche-input!");
        let mut total = 0u32;
        let mut data = *b"avalanche-input!";
        for byte in 0..data.len() {
            data[byte] ^= 1;
            total += (mac64(&k, &data) ^ base).count_ones();
            data[byte] ^= 1;
        }
        let avg = total as f64 / 16.0;
        assert!((20.0..44.0).contains(&avg), "average flipped bits {avg}");
    }
}
