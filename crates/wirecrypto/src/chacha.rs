//! A ChaCha20-class ARX stream cipher, implemented from scratch.
//!
//! The construction follows the ChaCha design (16-word state, 20 rounds of
//! quarter-round mixing, feed-forward, little-endian serialisation) keyed
//! with the crate's 128-bit [`SymKey`] expanded by repetition, as the
//! original 128-bit ChaCha variant did.

use crate::SymKey;

/// Block size of the keystream generator in bytes.
pub const BLOCK_LEN: usize = 64;

const CONSTANTS: [u32; 4] = [
    u32::from_le_bytes(*b"expa"),
    u32::from_le_bytes(*b"nd 1"),
    u32::from_le_bytes(*b"6-by"),
    u32::from_le_bytes(*b"te k"),
];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// A seekable stream cipher instance bound to one key and nonce.
///
/// Encryption and decryption are the same operation (XOR with the
/// keystream). The 64-bit nonce lets callers derive a unique stream per
/// (rekey message, encryption) pair without carrying nonces on the wire.
#[derive(Clone, Debug)]
pub struct StreamCipher {
    key_words: [u32; 8],
    nonce_words: [u32; 2],
    counter: u64,
    buffer: [u8; BLOCK_LEN],
    buffered: usize, // bytes of `buffer` already consumed
}

impl StreamCipher {
    /// Creates a cipher keyed by `key` with the given 64-bit nonce,
    /// positioned at the start of the keystream.
    pub fn new(key: &SymKey, nonce: u64) -> Self {
        let kb = key.as_bytes();
        let mut key_words = [0u32; 8];
        for (i, w) in key_words.iter_mut().enumerate() {
            // 128-bit key repeated, as in the original 128-bit variant.
            let off = (i % 4) * 4;
            *w = u32::from_le_bytes([kb[off], kb[off + 1], kb[off + 2], kb[off + 3]]);
        }
        StreamCipher {
            key_words,
            nonce_words: [(nonce & 0xffff_ffff) as u32, (nonce >> 32) as u32],
            counter: 0,
            buffer: [0u8; BLOCK_LEN],
            buffered: BLOCK_LEN,
        }
    }

    fn block(&self, counter: u64) -> [u8; BLOCK_LEN] {
        let mut state = [0u32; 16];
        state[0..4].copy_from_slice(&CONSTANTS);
        state[4..12].copy_from_slice(&self.key_words);
        state[12] = (counter & 0xffff_ffff) as u32;
        state[13] = (counter >> 32) as u32;
        state[14] = self.nonce_words[0];
        state[15] = self.nonce_words[1];

        let mut working = state;
        for _ in 0..10 {
            // Column rounds.
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            // Diagonal rounds.
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        let mut out = [0u8; BLOCK_LEN];
        for i in 0..16 {
            let word = working[i].wrapping_add(state[i]);
            out[i * 4..(i + 1) * 4].copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// XORs the next `data.len()` keystream bytes into `data`
    /// (encrypts or decrypts, identically).
    pub fn apply(&mut self, data: &mut [u8]) {
        for byte in data.iter_mut() {
            if self.buffered == BLOCK_LEN {
                self.buffer = self.block(self.counter);
                // The 64-bit block counter rolls over after 2^70 keystream
                // bytes — unreachable for 20-byte sealed keys and 8-byte
                // nonces, so wrapping is the panic-free choice here.
                self.counter = self.counter.wrapping_add(1);
                self.buffered = 0;
            }
            *byte ^= self.buffer[self.buffered];
            self.buffered += 1;
        }
    }

    /// Produces `n` fresh keystream bytes (for key generation).
    pub fn keystream(&mut self, n: usize) -> Vec<u8> {
        let mut out = vec![0u8; n];
        self.apply(&mut out);
        out
    }

    /// One-shot convenience: encrypt/decrypt `data` in place under
    /// `(key, nonce)` starting at stream offset zero.
    pub fn apply_oneshot(key: &SymKey, nonce: u64, data: &mut [u8]) {
        StreamCipher::new(key, nonce).apply(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(b: u8) -> SymKey {
        SymKey::from_bytes([b; 16])
    }

    #[test]
    fn round_trip() {
        let k = key(7);
        let mut data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let orig = data.clone();
        StreamCipher::apply_oneshot(&k, 42, &mut data);
        assert_ne!(data, orig, "ciphertext must differ from plaintext");
        StreamCipher::apply_oneshot(&k, 42, &mut data);
        assert_eq!(data, orig);
    }

    #[test]
    fn different_nonces_give_different_streams() {
        let k = key(9);
        let a = StreamCipher::new(&k, 1).keystream(64);
        let b = StreamCipher::new(&k, 2).keystream(64);
        assert_ne!(a, b);
    }

    #[test]
    fn different_keys_give_different_streams() {
        let a = StreamCipher::new(&key(1), 5).keystream(64);
        let b = StreamCipher::new(&key(2), 5).keystream(64);
        assert_ne!(a, b);
    }

    #[test]
    fn streaming_equals_oneshot() {
        let k = key(3);
        let mut whole = vec![0u8; 200];
        StreamCipher::new(&k, 77).apply(&mut whole);

        let mut pieces = vec![0u8; 200];
        let mut c = StreamCipher::new(&k, 77);
        for chunk in pieces.chunks_mut(13) {
            c.apply(chunk);
        }
        assert_eq!(whole, pieces);
    }

    #[test]
    fn keystream_is_not_trivially_periodic() {
        let k = key(11);
        let stream = StreamCipher::new(&k, 0).keystream(BLOCK_LEN * 4);
        let (first, rest) = stream.split_at(BLOCK_LEN);
        assert_ne!(first, &rest[..BLOCK_LEN]);
        assert_ne!(first, &rest[BLOCK_LEN..2 * BLOCK_LEN]);
    }

    #[test]
    fn keystream_bytes_look_balanced() {
        // Crude sanity check, not a randomness test: over 64 KiB the
        // population of set bits should be close to half.
        let k = key(200);
        let stream = StreamCipher::new(&k, 1234).keystream(64 * 1024);
        let ones: u64 = stream.iter().map(|b| b.count_ones() as u64).sum();
        let total = (stream.len() * 8) as u64;
        let ratio = ones as f64 / total as f64;
        assert!((0.49..0.51).contains(&ratio), "bit ratio {ratio}");
    }

    #[test]
    fn quarter_round_rfc7539_test_vector() {
        // The quarter-round function itself is the standard ChaCha one;
        // RFC 7539 §2.1.1 gives a known-answer vector for a single step.
        let mut state = [0u32; 16];
        state[0] = 0x11111111;
        state[1] = 0x01020304;
        state[2] = 0x9b8d6f43;
        state[3] = 0x01234567;
        quarter_round(&mut state, 0, 1, 2, 3);
        assert_eq!(state[0], 0xea2a92f4);
        assert_eq!(state[1], 0xcb1cf8ce);
        assert_eq!(state[2], 0x4581472e);
        assert_eq!(state[3], 0x5881c4bb);
    }

    #[test]
    fn empty_input_is_noop() {
        let mut c = StreamCipher::new(&key(1), 0);
        let mut empty: [u8; 0] = [];
        c.apply(&mut empty);
        // Subsequent output still matches a fresh cipher.
        assert_eq!(c.keystream(16), StreamCipher::new(&key(1), 0).keystream(16));
    }
}
