//! Symmetric-crypto substrate for the group-rekeying system.
//!
//! The papers treat cryptography as an opaque building block: the key
//! server holds 128-bit symmetric keys, encrypts new keys under old keys
//! (`{k'}_k`, an *encryption*), and authenticates users at registration.
//! This crate supplies those primitives from scratch (no external crypto
//! crates are available offline), sized so the paper's packet arithmetic
//! holds exactly:
//!
//! * [`SymKey`] — a 128-bit symmetric key.
//! * [`StreamCipher`] — a ChaCha20-class ARX stream cipher used for all
//!   encryption and as the deterministic key generator.
//! * [`mac`] — a SipHash-2-4-class keyed MAC for blob authentication and
//!   the registration handshake.
//! * [`SealedKey`] — a 20-byte authenticated encryption of one key under
//!   another (16-byte ciphertext + 4-byte tag). 20 bytes is what makes a
//!   1027-byte ENC packet hold 46 `<encryption, ID>` pairs and a USR packet
//!   at most `3 + 20h` bytes, matching the paper.
//! * [`KeyGen`] — deterministic, seedable generator of fresh keys.
//! * [`registration`] — the mutual-authentication join handshake run
//!   between a user and the registrar before rekeying ever sees the user.
//!
//! None of this is security-audited cryptography; it is a faithful,
//! self-contained stand-in whose costs and interfaces mirror what the
//! paper's system (Keystone) used.

//! # Example
//!
//! ```
//! use wirecrypto::{KeyGen, SealedKey};
//!
//! let mut keygen = KeyGen::from_seed(7);
//! let kek = keygen.next_key();
//! let fresh = keygen.next_key();
//!
//! // Seal a new key under an old one — the 20-byte "encryption" of the
//! // rekey protocol — and recover it.
//! let blob = SealedKey::seal(&kek, &fresh, 42);
//! assert_eq!(blob.unseal(&kek, 42).unwrap(), fresh);
//! assert!(blob.unseal(&kek, 43).is_err(), "wrong context is rejected");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chacha;
mod keys;
pub mod mac;
pub mod registration;
mod sealed;

pub use chacha::StreamCipher;
pub use keys::{KeyGen, SymKey};
pub use sealed::{SealedKey, UnsealError, SEALED_KEY_LEN};
