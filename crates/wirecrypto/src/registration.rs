//! The registration handshake: how a user obtains its ID and individual key.
//!
//! The papers delegate registration to trusted registrars speaking an
//! SSL-like mutually-authenticating protocol; the rekey transport only
//! assumes that every user ends up with a unique ID and an *individual key*
//! shared with the key server. This module provides a compact
//! challenge–response protocol with the same outcome, built on the crate's
//! own MAC and cipher:
//!
//! ```text
//! user -> registrar : JoinRequest   { user_nonce }
//! registrar -> user : Challenge     { registrar_nonce }
//! user -> registrar : Proof         { mac(credential, user_nonce || registrar_nonce || "user") }
//! registrar -> user : Grant         { user_id,
//!                                     sealed individual key,
//!                                     mac(credential, transcript || "registrar") }
//! ```
//!
//! Both proofs are keyed by a pre-shared `credential` (standing in for the
//! certificate exchange), so each side authenticates the other; the
//! individual key travels sealed under a key derived from the credential
//! and both nonces, so a passive observer learns nothing.

use crate::{mac, KeyGen, SealedKey, StreamCipher, SymKey, UnsealError};

/// First flow: the prospective user's hello.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinRequest {
    /// Fresh user-chosen nonce.
    pub user_nonce: u64,
}

/// Second flow: the registrar's challenge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Challenge {
    /// Fresh registrar-chosen nonce.
    pub registrar_nonce: u64,
}

/// Third flow: the user's proof of credential possession.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Proof {
    /// `mac64(credential, user_nonce || registrar_nonce || "user")`.
    pub tag: u64,
}

/// Fourth flow: acceptance, carrying the user's identity and sealed
/// individual key plus the registrar's own authentication tag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Grant {
    /// The ID assigned to the user (its u-node ID is assigned later by the
    /// key server; this is the registration identity).
    pub user_id: u32,
    /// The individual key, sealed under the session key.
    pub sealed_key: SealedKey,
    /// `mac64(credential, transcript || "registrar")`.
    pub tag: u64,
}

/// Errors of the handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegistrationError {
    /// The user's proof did not verify against the shared credential.
    BadUserProof,
    /// The registrar's grant tag did not verify.
    BadRegistrarProof,
    /// The sealed individual key failed to open.
    BadSealedKey(UnsealError),
    /// `accept` was called before `prove`: no registrar nonce is known yet.
    OutOfOrder,
}

impl core::fmt::Display for RegistrationError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RegistrationError::BadUserProof => write!(f, "user proof rejected"),
            RegistrationError::BadRegistrarProof => write!(f, "registrar proof rejected"),
            RegistrationError::BadSealedKey(e) => write!(f, "individual key unsealing: {e}"),
            RegistrationError::OutOfOrder => {
                write!(f, "grant accepted before the challenge was answered")
            }
        }
    }
}

impl std::error::Error for RegistrationError {}

fn proof_input(user_nonce: u64, registrar_nonce: u64, side: &[u8]) -> Vec<u8> {
    let mut v = Vec::with_capacity(16 + side.len());
    v.extend_from_slice(&user_nonce.to_le_bytes());
    v.extend_from_slice(&registrar_nonce.to_le_bytes());
    v.extend_from_slice(side);
    v
}

/// Session key for sealing the individual key: derived from the credential
/// and both nonces, so it is unique per handshake.
fn session_key(credential: &SymKey, user_nonce: u64, registrar_nonce: u64) -> SymKey {
    let mut bytes = [0u8; 16];
    let a = mac::mac64(
        credential,
        &proof_input(user_nonce, registrar_nonce, b"sk-lo"),
    );
    let b = mac::mac64(
        credential,
        &proof_input(user_nonce, registrar_nonce, b"sk-hi"),
    );
    bytes[..8].copy_from_slice(&a.to_le_bytes());
    bytes[8..].copy_from_slice(&b.to_le_bytes());
    SymKey::from_bytes(bytes)
}

/// User side of the handshake.
#[derive(Debug)]
pub struct UserRegistration {
    credential: SymKey,
    user_nonce: u64,
    registrar_nonce: Option<u64>,
}

impl UserRegistration {
    /// Starts a handshake; `nonce_seed` feeds the user's nonce.
    pub fn start(credential: SymKey, nonce_seed: u64) -> (Self, JoinRequest) {
        // Derive the nonce through the cipher so weak seeds don't produce
        // predictable nonces across users.
        let mut stream = StreamCipher::new(&credential, nonce_seed);
        let mut bytes = [0u8; 8];
        stream.apply(&mut bytes);
        let user_nonce = u64::from_le_bytes(bytes);
        (
            UserRegistration {
                credential,
                user_nonce,
                registrar_nonce: None,
            },
            JoinRequest { user_nonce },
        )
    }

    /// Answers the registrar's challenge.
    pub fn prove(&mut self, challenge: Challenge) -> Proof {
        self.registrar_nonce = Some(challenge.registrar_nonce);
        Proof {
            tag: mac::mac64(
                &self.credential,
                &proof_input(self.user_nonce, challenge.registrar_nonce, b"user"),
            ),
        }
    }

    /// Verifies the grant and extracts `(user_id, individual_key)`.
    pub fn accept(&self, grant: Grant) -> Result<(u32, SymKey), RegistrationError> {
        let registrar_nonce = self.registrar_nonce.ok_or(RegistrationError::OutOfOrder)?;
        let mut transcript = proof_input(self.user_nonce, registrar_nonce, b"registrar");
        transcript.extend_from_slice(&grant.user_id.to_le_bytes());
        transcript.extend_from_slice(grant.sealed_key.as_bytes());
        if mac::mac64(&self.credential, &transcript) != grant.tag {
            return Err(RegistrationError::BadRegistrarProof);
        }
        let sk = session_key(&self.credential, self.user_nonce, registrar_nonce);
        let individual = grant
            .sealed_key
            .unseal(&sk, grant.user_id as u64)
            .map_err(RegistrationError::BadSealedKey)?;
        Ok((grant.user_id, individual))
    }
}

/// Registrar side of the handshake (one instance per in-flight user).
#[derive(Debug)]
pub struct RegistrarSession {
    credential: SymKey,
    user_nonce: u64,
    registrar_nonce: u64,
}

impl RegistrarSession {
    /// Accepts a join request and issues a challenge.
    pub fn challenge(
        credential: SymKey,
        request: JoinRequest,
        nonce_seed: u64,
    ) -> (Self, Challenge) {
        let mut stream = StreamCipher::new(&credential, nonce_seed ^ 0xA5A5_5A5A_0F0F_F0F0);
        let mut bytes = [0u8; 8];
        stream.apply(&mut bytes);
        let registrar_nonce = u64::from_le_bytes(bytes);
        (
            RegistrarSession {
                credential,
                user_nonce: request.user_nonce,
                registrar_nonce,
            },
            Challenge { registrar_nonce },
        )
    }

    /// Verifies the user's proof and, if valid, issues the grant with a
    /// freshly minted individual key.
    pub fn grant(
        &self,
        proof: Proof,
        user_id: u32,
        keygen: &mut KeyGen,
    ) -> Result<(Grant, SymKey), RegistrationError> {
        let expect = mac::mac64(
            &self.credential,
            &proof_input(self.user_nonce, self.registrar_nonce, b"user"),
        );
        if proof.tag != expect {
            return Err(RegistrationError::BadUserProof);
        }
        let individual = keygen.next_key();
        let sk = session_key(&self.credential, self.user_nonce, self.registrar_nonce);
        let sealed_key = SealedKey::seal(&sk, &individual, user_id as u64);
        let mut transcript = proof_input(self.user_nonce, self.registrar_nonce, b"registrar");
        transcript.extend_from_slice(&user_id.to_le_bytes());
        transcript.extend_from_slice(sealed_key.as_bytes());
        let tag = mac::mac64(&self.credential, &transcript);
        Ok((
            Grant {
                user_id,
                sealed_key,
                tag,
            },
            individual,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cred(b: u8) -> SymKey {
        SymKey::from_bytes([b; 16])
    }

    fn run_handshake(
        user_cred: SymKey,
        registrar_cred: SymKey,
    ) -> Result<(u32, SymKey, SymKey), RegistrationError> {
        let mut keygen = KeyGen::from_seed(99);
        let (mut user, join) = UserRegistration::start(user_cred, 1);
        let (registrar, challenge) = RegistrarSession::challenge(registrar_cred, join, 2);
        let proof = user.prove(challenge);
        let (grant, server_copy) = registrar.grant(proof, 1234, &mut keygen)?;
        let (id, user_copy) = user.accept(grant)?;
        Ok((id, user_copy, server_copy))
    }

    #[test]
    fn honest_handshake_succeeds_and_keys_agree() {
        let (id, user_key, server_key) = run_handshake(cred(5), cred(5)).unwrap();
        assert_eq!(id, 1234);
        assert_eq!(user_key, server_key);
    }

    #[test]
    fn wrong_user_credential_rejected_by_registrar() {
        let err = run_handshake(cred(5), cred(6)).unwrap_err();
        assert_eq!(err, RegistrationError::BadUserProof);
    }

    #[test]
    fn forged_grant_rejected_by_user() {
        let mut keygen = KeyGen::from_seed(1);
        let (mut user, join) = UserRegistration::start(cred(5), 1);
        let (registrar, challenge) = RegistrarSession::challenge(cred(5), join, 2);
        let proof = user.prove(challenge);
        let (grant, _) = registrar.grant(proof, 7, &mut keygen).unwrap();

        // Attacker rewrites the user id.
        let forged = Grant {
            user_id: 8,
            ..grant
        };
        assert_eq!(
            user.accept(forged).unwrap_err(),
            RegistrationError::BadRegistrarProof
        );
    }

    #[test]
    fn tampered_sealed_key_rejected() {
        let mut keygen = KeyGen::from_seed(1);
        let (mut user, join) = UserRegistration::start(cred(5), 1);
        let (registrar, challenge) = RegistrarSession::challenge(cred(5), join, 2);
        let proof = user.prove(challenge);
        let (grant, _) = registrar.grant(proof, 7, &mut keygen).unwrap();

        let mut bytes = *grant.sealed_key.as_bytes();
        bytes[0] ^= 1;
        let forged = Grant {
            sealed_key: SealedKey::from_bytes(bytes),
            ..grant
        };
        // Either tag catches it (transcript covers the sealed key).
        assert_eq!(
            user.accept(forged).unwrap_err(),
            RegistrationError::BadRegistrarProof
        );
    }

    #[test]
    fn distinct_handshakes_mint_distinct_keys() {
        let mut keygen = KeyGen::from_seed(3);
        let mut keys = Vec::new();
        for i in 0..10u64 {
            let (mut user, join) = UserRegistration::start(cred(5), i);
            let (registrar, challenge) = RegistrarSession::challenge(cred(5), join, 100 + i);
            let proof = user.prove(challenge);
            let (grant, _) = registrar.grant(proof, i as u32, &mut keygen).unwrap();
            let (_, key) = user.accept(grant).unwrap();
            keys.push(key);
        }
        keys.sort_by_key(|k| *k.as_bytes());
        keys.dedup();
        assert_eq!(keys.len(), 10);
    }

    #[test]
    fn replayed_proof_fails_against_new_session() {
        // Record a proof from one session, replay it into a session with a
        // different registrar nonce.
        let mut keygen = KeyGen::from_seed(1);
        let (mut user, join) = UserRegistration::start(cred(5), 1);
        let (_registrar1, challenge1) = RegistrarSession::challenge(cred(5), join, 2);
        let proof = user.prove(challenge1);

        let (registrar2, _challenge2) = RegistrarSession::challenge(cred(5), join, 3);
        assert_eq!(
            registrar2.grant(proof, 7, &mut keygen).unwrap_err(),
            RegistrationError::BadUserProof
        );
    }
}
