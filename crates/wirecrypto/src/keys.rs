//! Symmetric keys and the deterministic key generator.

use core::fmt;

use crate::StreamCipher;

/// A 128-bit symmetric key: an individual key, auxiliary key, or the group
/// key, depending on which key-tree node holds it.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SymKey([u8; 16]);

impl SymKey {
    /// Length of a key in bytes.
    pub const LEN: usize = 16;

    /// Wraps raw key bytes.
    pub const fn from_bytes(bytes: [u8; 16]) -> Self {
        SymKey(bytes)
    }

    /// Borrows the raw key bytes.
    pub fn as_bytes(&self) -> &[u8; 16] {
        &self.0
    }

    /// Consumes the key into raw bytes.
    pub fn into_bytes(self) -> [u8; 16] {
        self.0
    }
}

impl fmt::Debug for SymKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print full key material in logs; show a short fingerprint.
        write!(
            f,
            "SymKey({:02x}{:02x}..{:02x}{:02x})",
            self.0[0], self.0[1], self.0[14], self.0[15]
        )
    }
}

/// A deterministic generator of fresh symmetric keys.
///
/// The key server mints a new key for every k-node it changes each rekey
/// interval; a seeded generator keeps whole simulation runs reproducible.
/// Internally this is the stream cipher keyed by the seed, used as a DRBG.
#[derive(Clone, Debug)]
pub struct KeyGen {
    stream: StreamCipher,
    generated: u64,
}

impl KeyGen {
    /// Creates a generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut seed_key = [0u8; 16];
        seed_key[..8].copy_from_slice(&seed.to_le_bytes());
        seed_key[8..].copy_from_slice(&seed.wrapping_mul(0x9E3779B97F4A7C15).to_le_bytes());
        KeyGen {
            stream: StreamCipher::new(&SymKey::from_bytes(seed_key), 0xD1B5_4A32_D192_ED03),
            generated: 0,
        }
    }

    /// Mints the next key.
    pub fn next_key(&mut self) -> SymKey {
        let bytes = self.stream.keystream(16);
        self.generated += 1;
        let mut key = [0u8; 16];
        key.copy_from_slice(&bytes);
        SymKey::from_bytes(key)
    }

    /// Number of keys minted so far (a server-cost metric: one per changed
    /// k-node per rekey interval).
    pub fn generated(&self) -> u64 {
        self.generated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = KeyGen::from_seed(12345);
        let mut b = KeyGen::from_seed(12345);
        for _ in 0..100 {
            assert_eq!(a.next_key(), b.next_key());
        }
        assert_eq!(a.generated(), 100);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = KeyGen::from_seed(1);
        let mut b = KeyGen::from_seed(2);
        assert_ne!(a.next_key(), b.next_key());
    }

    #[test]
    fn keys_are_distinct_within_a_stream() {
        let mut g = KeyGen::from_seed(7);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            assert!(seen.insert(g.next_key()), "generator repeated a key");
        }
    }

    #[test]
    fn debug_never_leaks_middle_bytes() {
        let k = SymKey::from_bytes(*b"SECRETKEYMATERIA");
        let s = format!("{k:?}");
        assert!(!s.contains("SECRET"), "debug output leaked key bytes: {s}");
    }
}
