//! Collection strategies: [`vec`] with exact or ranged lengths.

use crate::strategy::Strategy;
use crate::TestRng;

/// A length specification for [`vec`]: an exact length, `a..b`, or
/// `a..=b`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max_inclusive: exact,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(range: core::ops::Range<usize>) -> Self {
        assert!(range.start < range.end, "empty vec length range");
        SizeRange {
            min: range.start,
            max_inclusive: range.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(range: core::ops::RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty vec length range");
        SizeRange {
            min: *range.start(),
            max_inclusive: *range.end(),
        }
    }
}

/// Strategy generating `Vec`s whose elements come from `element` and
/// whose length is drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// The result of [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.max_inclusive - self.size.min) as u64;
        let len = self.size.min
            + if span == 0 {
                0
            } else {
                rng.below(span + 1) as usize
            };
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn exact_and_ranged_lengths() {
        let mut rng = TestRng::from_name("collection::tests");
        for _ in 0..200 {
            assert_eq!(vec(any::<u8>(), 1027).new_value(&mut rng).len(), 1027);
            let ranged = vec(any::<u8>(), 1..6).new_value(&mut rng);
            assert!((1..6).contains(&ranged.len()));
            let inclusive = vec(any::<u8>(), 0..=2).new_value(&mut rng);
            assert!(inclusive.len() <= 2);
        }
    }

    #[test]
    fn nests() {
        let mut rng = TestRng::from_name("collection::tests::nests");
        let nested = vec(vec((0u8..4, 1u8..3), 1..4), 2..5).new_value(&mut rng);
        assert!((2..5).contains(&nested.len()));
        for inner in nested {
            assert!((1..4).contains(&inner.len()));
            for (a, b) in inner {
                assert!(a < 4);
                assert!((1..3).contains(&b));
            }
        }
    }
}
