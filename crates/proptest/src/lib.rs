//! In-tree stand-in for the subset of the [`proptest`] crate this
//! workspace uses, so property tests run with zero network dependencies.
//!
//! The build environment cannot reach a crates.io mirror, so the workspace
//! vendors the property-testing surface its test suites call: the
//! [`proptest!`] macro (with `#![proptest_config(...)]` headers and
//! `pattern in strategy` bindings), the [`strategy::Strategy`] trait with
//! `prop_map`, numeric-range / tuple / [`collection::vec`] /
//! [`sample::select`] / [`strategy::Just`] strategies, [`prop_oneof!`],
//! and the `prop_assert*` / [`prop_assume!`] macros.
//!
//! Semantics are deliberately simpler than upstream: each test runs
//! `ProptestConfig::cases` random cases from a seed derived
//! deterministically from the test's module path and name (so failures
//! reproduce across runs), and there is **no shrinking** — a failing case
//! reports the case number and assertion message only. That trade keeps
//! the stand-in small while preserving the meaning of every existing
//! property test; swapping back to the real crate is one
//! `[workspace.dependencies]` edit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod prelude;
pub mod sample;
pub mod strategy;

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Runner configuration; only the case count is tunable.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was vetoed by [`prop_assume!`]; it does not count toward
    /// the case budget and is silently retried.
    Reject,
    /// A `prop_assert*` failed with the contained message.
    Fail(String),
}

/// Result type threaded through a generated property body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The deterministic generator driving value generation for one property.
#[derive(Clone, Debug)]
pub struct TestRng {
    rng: SmallRng,
}

impl TestRng {
    /// Seeds a generator from a test's fully qualified name (FNV-1a), so
    /// every run of the same test replays the same case sequence.
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            rng: SmallRng::seed_from_u64(hash),
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Uniform draw from `[0, bound)` without modulo bias.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "TestRng::below: empty range");
        let zone = u64::MAX - u64::MAX % bound;
        loop {
            let draw = self.rng.next_u64();
            if draw < zone {
                return draw % bound;
            }
        }
    }

    /// Uniform draw from `[0, 1)` with 53 mantissa bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Defines property tests: zero or more `fn name(pat in strategy, ...)`
/// items, optionally preceded by `#![proptest_config(...)]`.
///
/// Each function becomes a plain test that generates inputs from the
/// strategies and runs the body once per case. `prop_assert*` failures
/// abort the test with the case number; [`prop_assume!`] rejections retry
/// with fresh inputs (with a cap on total attempts so a too-strict
/// assumption cannot loop forever).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases!(($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (($config:expr) $( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $config;
                let mut __rng = $crate::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                let mut __accepted: u32 = 0;
                let mut __attempts: u32 = 0;
                while __accepted < __config.cases {
                    __attempts += 1;
                    assert!(
                        __attempts <= __config.cases.saturating_mul(16).max(4096),
                        "proptest {}: too many cases rejected by prop_assume!",
                        stringify!($name),
                    );
                    let __outcome: $crate::TestCaseResult = (|| {
                        $(
                            let $arg =
                                $crate::strategy::Strategy::new_value(&($strat), &mut __rng);
                        )+
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match __outcome {
                        ::core::result::Result::Ok(()) => __accepted += 1,
                        ::core::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::core::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                            panic!(
                                "proptest {}: case #{} failed: {}",
                                stringify!($name),
                                __accepted + 1,
                                __msg,
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property body, failing the current case
/// (with an optional formatted message) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {{
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    }};
    ($cond:expr, $($fmt:tt)+) => {{
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    }};
}

/// Asserts two expressions are equal inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
                __l, __r,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`\n{}",
                __l, __r, format!($($fmt)+),
            )));
        }
    }};
}

/// Asserts two expressions are unequal inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `left != right`\n  both: `{:?}`",
                __l,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `left != right`\n  both: `{:?}`\n{}",
                __l, format!($($fmt)+),
            )));
        }
    }};
}

/// Discards the current case (it does not count toward the case budget)
/// when a precondition over the generated inputs does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {{
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    }};
}

/// Uniform choice between strategies that produce the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
