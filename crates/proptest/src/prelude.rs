//! Single-import surface mirroring `proptest::prelude`.

pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
pub use crate::{
    prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest, ProptestConfig,
    TestCaseError, TestCaseResult,
};

/// Alias of the crate root so tests can write `prop::sample::select(...)`
/// as they would with the upstream prelude.
pub use crate as prop;
