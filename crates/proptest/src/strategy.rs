//! The [`Strategy`] trait and the core strategy implementations: numeric
//! ranges, `any`, [`Just`], tuples, [`Union`] (behind `prop_oneof!`), and
//! the `prop_map` combinator.

use crate::TestRng;

/// A recipe for generating values of one type.
///
/// The trait is object-safe: boxed strategies ([`BoxedStrategy`]) are how
/// `prop_oneof!` mixes heterogeneous strategy types with a common value
/// type. Combinators carry `where Self: Sized` so they do not break
/// object safety.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, map }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.map)(self.source.new_value(rng))
    }
}

/// Uniform choice among boxed strategies; built by `prop_oneof!`.
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `options`.
    ///
    /// # Panics
    /// Panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.options.len() as u64) as usize;
        self.options[pick].new_value(rng)
    }
}

/// Types with a canonical "any value" strategy; see [`any`].
pub trait ArbitraryValue: Sized {
    /// Draws one unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_uint {
    ($($t:ty => $shift:expr),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                (rng.next_u64() >> $shift) as $t
            }
        }
    )*};
}

arbitrary_uint!(u8 => 56, u16 => 48, u32 => 32, u64 => 0, usize => 0);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() >> 63 != 0
    }
}

/// Strategy over every value of a type; the result of [`any`].
#[derive(Clone, Debug, Default)]
pub struct Any<T> {
    marker: core::marker::PhantomData<T>,
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T`, e.g. `any::<u8>()`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any {
        marker: core::marker::PhantomData,
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return start + rng.next_u64() as $t;
                }
                start + rng.below(span + 1) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let value = self.start + (self.end - self.start) * rng.unit_f64();
        if value < self.end {
            value
        } else {
            self.start
        }
    }
}

macro_rules! tuple_strategy {
    ($($name:ident $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    };
}

tuple_strategy!(A 0, B 1);
tuple_strategy!(A 0, B 1, C 2);
tuple_strategy!(A 0, B 1, C 2, D 3);
tuple_strategy!(A 0, B 1, C 2, D 3, E 4);
tuple_strategy!(A 0, B 1, C 2, D 3, E 4, F 5);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_name("strategy::tests")
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = rng();
        for _ in 0..2_000 {
            let v = (3u8..9).new_value(&mut rng);
            assert!((3..9).contains(&v));
            let w = (1u8..=255).new_value(&mut rng);
            assert!(w >= 1);
            let f = (1.0f64..2.5).new_value(&mut rng);
            assert!((1.0..2.5).contains(&f));
        }
    }

    #[test]
    fn range_covers_endpoints() {
        let mut rng = rng();
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..1_000 {
            match (0u32..=3).new_value(&mut rng) {
                0 => lo_seen = true,
                3 => hi_seen = true,
                _ => {}
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn map_and_just_and_union() {
        let mut rng = rng();
        let doubled = (1u8..5).prop_map(|v| u32::from(v) * 2);
        for _ in 0..100 {
            let v = doubled.new_value(&mut rng);
            assert!([2, 4, 6, 8].contains(&v));
        }
        assert_eq!(Just(41u8).new_value(&mut rng), 41);

        let union = Union::new(vec![Just(1u8).boxed(), Just(9u8).boxed()]);
        let mut saw = [false, false];
        for _ in 0..200 {
            match union.new_value(&mut rng) {
                1 => saw[0] = true,
                9 => saw[1] = true,
                other => panic!("unexpected {other}"),
            }
        }
        assert!(saw[0] && saw[1]);
    }

    #[test]
    fn tuples_generate_componentwise() {
        let mut rng = rng();
        let (a, b, c) = (0u8..2, 10u32..12, Just(7usize)).new_value(&mut rng);
        assert!(a < 2);
        assert!((10..12).contains(&b));
        assert_eq!(c, 7);
    }
}
