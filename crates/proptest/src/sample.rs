//! Sampling strategies over explicit value lists.

use crate::strategy::Strategy;
use crate::TestRng;

/// Strategy that picks uniformly from a fixed list of values.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(
        !options.is_empty(),
        "sample::select needs at least one option"
    );
    Select { options }
}

/// The result of [`select`].
#[derive(Clone, Debug)]
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.options.len() as u64) as usize;
        self.options[pick].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_every_option() {
        let mut rng = TestRng::from_name("sample::tests");
        let strategy = select(vec![2u32, 3, 4, 8]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..400 {
            let v = strategy.new_value(&mut rng);
            assert!([2, 3, 4, 8].contains(&v));
            seen.insert(v);
        }
        assert_eq!(seen.len(), 4);
    }
}
