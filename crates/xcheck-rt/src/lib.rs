//! Runtime companion to the `xcheck` static analyzer.
//!
//! The static `no-alloc-static` rule scans functions marked
//! `// xcheck: no_alloc` for allocation smells; this crate supplies the
//! *dynamic* half of that contract: a counting [`GlobalAlloc`] wrapper
//! around [`System`] plus assertion helpers, so a test can pin a marked
//! hot path at exactly zero steady-state heap allocations.
//!
//! Usage, from a test binary (integration test or unit-test module):
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: xcheck_rt::CountingAlloc = xcheck_rt::CountingAlloc;
//!
//! #[test]
//! fn hot_path_is_allocation_free() {
//!     xcheck_rt::assert_counting();      // fails if the line above is missing
//!     warm_up();                         // first calls may fill caches
//!     xcheck_rt::assert_zero_alloc("hot path", || hot_path());
//! }
//! ```
//!
//! The allocator must be installed *per test binary* (a
//! `#[global_allocator]` in this library would force itself on every
//! crate that links it, tests and production binaries alike).
//! [`assert_counting`] exists so a binary that forgot the declaration
//! cannot pass the zero-allocation assertion vacuously.
//
// xcheck-allow(forbid-unsafe-code): implementing GlobalAlloc requires an unsafe trait impl; it is pure delegation to System plus a per-thread counter

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// Allocator shim that counts every allocation and reallocation,
/// delegating the actual memory management to [`System`].
///
/// The count is **per thread**: `cargo test` runs tests on concurrent
/// threads within one binary, and a process-global counter would let one
/// test's allocations fail another's zero-allocation assertion. A
/// measured closure must therefore do its allocating work on the calling
/// thread (all the harness tests in this workspace do).
pub struct CountingAlloc;

thread_local! {
    // const-initialized so that reading it never allocates (a lazily
    // initialized thread-local could recurse into the allocator).
    static ALLOCATIONS: Cell<u64> = const { Cell::new(0) };
}

fn bump() {
    // try_with: allocations during thread teardown (after this TLS slot
    // is destroyed) are simply not counted rather than aborting.
    let _ = ALLOCATIONS.try_with(|c| c.set(c.get() + 1));
}

// SAFETY: pure delegation to `System`; the counter is a const-init
// thread-local cell with no effect on allocation behavior.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        bump();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        bump();
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

/// Total allocations (+ reallocations) observed so far **on the calling
/// thread**.
///
/// Only meaningful when [`CountingAlloc`] is installed as the binary's
/// `#[global_allocator]`; otherwise it stays at 0 forever (which is what
/// [`assert_counting`] detects).
pub fn allocations() -> u64 {
    ALLOCATIONS.with(|c| c.get())
}

/// Number of heap allocations performed by `f` on the calling thread.
pub fn count_in<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = allocations();
    let result = f();
    (allocations() - before, result)
}

/// Asserts that [`CountingAlloc`] is actually installed, by performing a
/// heap allocation and checking the counter moved. Call this first in
/// every harness test: without it, a test binary that forgot its
/// `#[global_allocator]` declaration would pass zero-allocation
/// assertions vacuously.
///
/// # Panics
///
/// Panics when the counter does not advance across a boxed allocation.
pub fn assert_counting() {
    let (allocs, probe) = count_in(|| std::hint::black_box(Box::new(0xA5u8)));
    drop(probe);
    assert!(
        allocs > 0,
        "xcheck-rt: allocation counter did not move; declare \
         `#[global_allocator] static ALLOC: xcheck_rt::CountingAlloc = xcheck_rt::CountingAlloc;` \
         in this test binary"
    );
}

/// Runs `f` and asserts it performed exactly zero heap allocations.
/// `label` names the pinned path in the failure message.
///
/// # Panics
///
/// Panics when `f` allocates.
pub fn assert_zero_alloc<R>(label: &str, f: impl FnOnce() -> R) -> R {
    let (allocs, result) = count_in(f);
    assert_eq!(
        allocs, 0,
        "xcheck-rt: `{label}` is marked `// xcheck: no_alloc` but performed \
         {allocs} heap allocation(s) in steady state"
    );
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[global_allocator]
    static ALLOC: CountingAlloc = CountingAlloc;

    #[test]
    fn counter_counts_and_zero_assertion_holds_for_stack_work() {
        assert_counting();
        let (allocs, sum) = count_in(|| (0u64..64).sum::<u64>());
        assert_eq!(allocs, 0);
        assert_eq!(sum, 2016);
        let product = assert_zero_alloc("stack-only arithmetic", || {
            std::hint::black_box(7u64) * std::hint::black_box(6u64)
        });
        assert_eq!(product, 42);
    }

    #[test]
    fn heap_work_is_counted() {
        assert_counting();
        let (allocs, v) = count_in(|| {
            let mut v = Vec::with_capacity(8);
            v.push(1u32);
            std::hint::black_box(v)
        });
        assert!(allocs >= 1, "with_capacity must register");
        assert_eq!(v.len(), 1);
        let (allocs, _) = count_in(|| {
            let mut v: Vec<u8> = Vec::new();
            for i in 0..1024 {
                v.push(i as u8);
            }
            std::hint::black_box(v)
        });
        assert!(allocs >= 1, "growth reallocations must register");
    }
}
