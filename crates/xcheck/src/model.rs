//! The item-aware source model.
//!
//! Parses the flat token stream from [`crate::lexer`] into a token tree
//! of *items*: functions, types, impls, modules, constants. Each item
//! records its span (`line:col` of the defining keyword), visibility,
//! qualification (the surrounding `impl` target, so a method reports as
//! `Type::method`), and — for brace-bodied items — the token range of
//! the body. Rules then operate per item instead of per token, which is
//! what makes scoped checks (per-function allocation smells, per-binding
//! determinism tracking, docs on `pub` items) possible without a full
//! compiler frontend.
//!
//! The parser is intentionally approximate in the same places the lexer
//! is: it does not resolve paths or types, and it does not descend into
//! nested functions' items. It only has to be exact about the shapes the
//! rules consume, and it is tested against those shapes.

use crate::lexer::{self, Directive, Lexed, SpannedTok, Tok};
use crate::walk::SourceFile;

/// What kind of item a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ItemKind {
    /// `fn`, free or associated.
    Fn,
    /// `struct` (brace, tuple or unit).
    Struct,
    /// `enum`.
    Enum,
    /// `trait` definition.
    Trait,
    /// `impl` block (inherent or trait).
    Impl,
    /// `mod` with an inline body.
    Mod,
    /// `const` or `static`.
    Const,
    /// `type` alias.
    TypeAlias,
    /// `macro_rules!` definition.
    MacroDef,
}

/// One parsed item.
#[derive(Debug, Clone)]
pub struct Item {
    /// The item kind.
    pub kind: ItemKind,
    /// Qualified name (`BlockEncoder::accumulate` for methods, the
    /// bare name elsewhere; the impl target for impls).
    pub qual: String,
    /// 1-based line of the defining keyword.
    pub line: u32,
    /// 1-based column of the defining keyword.
    pub col: u32,
    /// Whether the item is `pub` (unrestricted; `pub(crate)` and
    /// narrower count as private).
    pub is_pub: bool,
    /// Token-index range of the signature: from the first token of the
    /// item (after attributes/visibility) up to the body `{` or the
    /// terminating `;`, exclusive.
    pub sig: (usize, usize),
    /// Token-index range strictly inside the body braces, if the item
    /// has a brace body.
    pub body: Option<(usize, usize)>,
}

/// A fully analyzed source file: tokens, directives, test-line map, and
/// the flattened item list.
pub struct SourceModel<'a> {
    /// The file this model describes.
    pub file: &'a SourceFile,
    /// Significant tokens in source order.
    pub toks: Vec<SpannedTok>,
    /// `// xcheck-...` directives in source order.
    pub directives: Vec<Directive>,
    /// Per 1-based line: is it inside `#[cfg(test)]`-gated code?
    pub in_test: Vec<bool>,
    /// All items, in source order, including items nested in `mod`,
    /// `impl` and `trait` bodies (but not inside function bodies).
    pub items: Vec<Item>,
}

impl<'a> SourceModel<'a> {
    /// Lexes and parses one source file.
    pub fn build(file: &'a SourceFile) -> SourceModel<'a> {
        let Lexed { toks, directives } = lexer::lex(&file.text);
        let in_test = lexer::test_region_lines(&file.text, &toks);
        let mut items = Vec::new();
        parse_items(&toks, 0, toks.len(), "", &mut items);
        SourceModel {
            file,
            toks,
            directives,
            in_test,
            items,
        }
    }

    /// Whether 1-based `line` is inside `#[cfg(test)]`-gated code.
    pub fn line_in_test(&self, line: u32) -> bool {
        self.in_test.get(line as usize).copied().unwrap_or(false)
    }
}

fn ident_at(toks: &[SpannedTok], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(name)) => Some(name.as_str()),
        _ => None,
    }
}

fn punct_at(toks: &[SpannedTok], i: usize) -> Option<char> {
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Punct(c)) => Some(*c),
        _ => None,
    }
}

/// Index one past the matching closer for the opener at `open`.
fn skip_balanced(
    toks: &[SpannedTok],
    open: usize,
    end: usize,
    opener: char,
    closer: char,
) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < end {
        match punct_at(toks, i) {
            Some(c) if c == opener => depth += 1,
            Some(c) if c == closer => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    end
}

/// Skips an attribute (`#[...]` or `#![...]`) whose `#` is at `i`.
fn skip_attribute(toks: &[SpannedTok], i: usize, end: usize) -> usize {
    let mut j = i + 1;
    if punct_at(toks, j) == Some('!') {
        j += 1;
    }
    if punct_at(toks, j) == Some('[') {
        skip_balanced(toks, j, end, '[', ']')
    } else {
        i + 1
    }
}

/// Parses the items in `toks[start..end]`, appending to `out`. `qual`
/// is the name prefix items inherit from a surrounding impl or trait.
fn parse_items(toks: &[SpannedTok], start: usize, end: usize, qual: &str, out: &mut Vec<Item>) {
    let mut i = start;
    while i < end {
        // Attributes and doc markers.
        if punct_at(toks, i) == Some('#') {
            i = skip_attribute(toks, i, end);
            continue;
        }

        // Visibility.
        let mut is_pub = false;
        let item_start = i;
        if ident_at(toks, i) == Some("pub") {
            if punct_at(toks, i + 1) == Some('(') {
                // pub(crate), pub(super), pub(in path) — restricted.
                i = skip_balanced(toks, i + 1, end, '(', ')');
            } else {
                is_pub = true;
                i += 1;
            }
        }

        // Modifier keywords that may precede an item keyword.
        while matches!(
            ident_at(toks, i),
            Some("unsafe") | Some("async") | Some("extern") | Some("default")
        ) || (ident_at(toks, i) == Some("const")
            && matches!(
                ident_at(toks, i + 1),
                Some("fn") | Some("unsafe") | Some("extern")
            ))
        {
            if ident_at(toks, i) == Some("extern") {
                // `extern "C" fn` — the ABI string literal is stripped by
                // the lexer, so just step past the keyword.
                i += 1;
            } else {
                i += 1;
            }
        }

        let Some(keyword) = ident_at(toks, i) else {
            i += 1;
            continue;
        };
        let (line, col) = (toks[i].line, toks[i].col);

        match keyword {
            "fn" => {
                let name = ident_at(toks, i + 1).unwrap_or("").to_string();
                let (sig_end, body) = find_body_or_semi(toks, i + 1, end);
                out.push(Item {
                    kind: ItemKind::Fn,
                    qual: qualify(qual, &name),
                    line,
                    col,
                    is_pub,
                    sig: (item_start, sig_end),
                    body,
                });
                i = after_body_or_semi(sig_end, body, end);
            }
            "struct" | "enum" | "union" => {
                let name = ident_at(toks, i + 1).unwrap_or("").to_string();
                let kind = if keyword == "enum" {
                    ItemKind::Enum
                } else {
                    ItemKind::Struct
                };
                let (sig_end, body) = find_body_or_semi(toks, i + 1, end);
                out.push(Item {
                    kind,
                    qual: qualify(qual, &name),
                    line,
                    col,
                    is_pub,
                    sig: (item_start, sig_end),
                    body,
                });
                i = after_body_or_semi(sig_end, body, end);
            }
            "trait" => {
                let name = ident_at(toks, i + 1).unwrap_or("").to_string();
                let (sig_end, body) = find_body_or_semi(toks, i + 1, end);
                out.push(Item {
                    kind: ItemKind::Trait,
                    qual: qualify(qual, &name),
                    line,
                    col,
                    is_pub,
                    sig: (item_start, sig_end),
                    body,
                });
                if let Some((bs, be)) = body {
                    parse_items(toks, bs, be, &name, out);
                }
                i = after_body_or_semi(sig_end, body, end);
            }
            "impl" => {
                let (sig_end, body) = find_body_or_semi(toks, i + 1, end);
                let target = impl_target(toks, i + 1, sig_end);
                out.push(Item {
                    kind: ItemKind::Impl,
                    qual: target.clone(),
                    line,
                    col,
                    is_pub: false,
                    sig: (item_start, sig_end),
                    body,
                });
                if let Some((bs, be)) = body {
                    parse_items(toks, bs, be, &target, out);
                }
                i = after_body_or_semi(sig_end, body, end);
            }
            "mod" => {
                let name = ident_at(toks, i + 1).unwrap_or("").to_string();
                let (sig_end, body) = find_body_or_semi(toks, i + 1, end);
                out.push(Item {
                    kind: ItemKind::Mod,
                    qual: qualify(qual, &name),
                    line,
                    col,
                    is_pub,
                    sig: (item_start, sig_end),
                    body,
                });
                if let Some((bs, be)) = body {
                    // Items in an inline module keep the outer qualifier
                    // (impl targets matter for naming, module paths do
                    // not).
                    parse_items(toks, bs, be, qual, out);
                }
                i = after_body_or_semi(sig_end, body, end);
            }
            "const" | "static" => {
                let mut j = i + 1;
                if ident_at(toks, j) == Some("mut") {
                    j += 1;
                }
                let name = ident_at(toks, j).unwrap_or("").to_string();
                let (sig_end, body) = find_body_or_semi(toks, i + 1, end);
                out.push(Item {
                    kind: ItemKind::Const,
                    qual: qualify(qual, &name),
                    line,
                    col,
                    is_pub,
                    sig: (item_start, sig_end),
                    body: None,
                });
                i = after_body_or_semi(sig_end, body, end);
            }
            "type" => {
                let name = ident_at(toks, i + 1).unwrap_or("").to_string();
                let (sig_end, body) = find_body_or_semi(toks, i + 1, end);
                out.push(Item {
                    kind: ItemKind::TypeAlias,
                    qual: qualify(qual, &name),
                    line,
                    col,
                    is_pub,
                    sig: (item_start, sig_end),
                    body: None,
                });
                i = after_body_or_semi(sig_end, body, end);
            }
            "macro_rules" => {
                let name = ident_at(toks, i + 2).unwrap_or("").to_string();
                let (sig_end, body) = find_body_or_semi(toks, i + 1, end);
                out.push(Item {
                    kind: ItemKind::MacroDef,
                    qual: qualify(qual, &name),
                    line,
                    col,
                    is_pub,
                    sig: (item_start, sig_end),
                    body,
                });
                i = after_body_or_semi(sig_end, body, end);
            }
            "use" | "crate" => {
                // `use` declarations (and `extern crate`): skip to `;`.
                while i < end && punct_at(toks, i) != Some(';') {
                    i += 1;
                }
                i += 1;
            }
            _ => {
                // Not an item keyword at this position (e.g. a macro
                // invocation at module level). Skip one balanced group or
                // one token.
                match punct_at(toks, i) {
                    Some('{') => i = skip_balanced(toks, i, end, '{', '}'),
                    _ => i += 1,
                }
            }
        }
    }
}

fn qualify(qual: &str, name: &str) -> String {
    if qual.is_empty() {
        name.to_string()
    } else {
        format!("{qual}::{name}")
    }
}

/// From `from`, finds the first `{` at brace depth 0 (returning the
/// signature end and the inner body range) or the terminating `;`
/// (returning `(index_of_semi, None)`).
fn find_body_or_semi(
    toks: &[SpannedTok],
    from: usize,
    end: usize,
) -> (usize, Option<(usize, usize)>) {
    let mut i = from;
    while i < end {
        match punct_at(toks, i) {
            Some('{') => {
                let close = skip_balanced(toks, i, end, '{', '}');
                return (i, Some((i + 1, close.saturating_sub(1))));
            }
            Some(';') => return (i, None),
            Some('(') => {
                i = skip_balanced(toks, i, end, '(', ')');
            }
            _ => i += 1,
        }
    }
    (end, None)
}

fn after_body_or_semi(sig_end: usize, body: Option<(usize, usize)>, end: usize) -> usize {
    match body {
        Some((_, body_end)) => (body_end + 1).min(end),
        None => (sig_end + 1).min(end),
    }
}

/// Extracts the target type name of an `impl` header whose tokens run
/// over `[from, sig_end)`: the last path-segment identifier of the
/// implemented-on type (`impl Foo`, `impl Trait for a::b::Foo<'_>`,
/// `impl<T> Foo<T>` all yield `Foo`).
fn impl_target(toks: &[SpannedTok], from: usize, sig_end: usize) -> String {
    let mut i = from;
    // Skip the generic parameter list directly after `impl`, if any.
    if punct_at(toks, i) == Some('<') {
        i = skip_angle_balanced(toks, i, sig_end);
    }
    // If there is a `for`, the target follows it; otherwise it starts
    // here.
    let mut target_start = i;
    let mut j = i;
    while j < sig_end {
        if ident_at(toks, j) == Some("for") {
            target_start = j + 1;
        }
        j += 1;
    }
    // The target name: the last identifier before a `<` (generic args)
    // or the end, skipping `&`, lifetimes, `mut`, `dyn`.
    let mut name = String::new();
    let mut k = target_start;
    while k < sig_end {
        match &toks[k].tok {
            Tok::Ident(id) if !matches!(id.as_str(), "mut" | "dyn" | "where") => {
                name = id.clone();
                // Stop at generic arguments — the head of the path is
                // complete once we hit `<` that is not `::<`.
                if punct_at(toks, k + 1) == Some('<') {
                    break;
                }
            }
            Tok::Ident(_) | Tok::Punct('&') | Tok::Punct(':') | Tok::Punct('\'') => {}
            Tok::Punct('<') => break,
            Tok::Punct('{') => break,
            _ => {}
        }
        k += 1;
    }
    name
}

/// Skips a balanced `<...>` group, treating `->`'s `>` as not a closer.
fn skip_angle_balanced(toks: &[SpannedTok], open: usize, end: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < end {
        match punct_at(toks, i) {
            Some('<') => depth += 1,
            Some('>') if punct_at(toks, i.wrapping_sub(1)) != Some('-') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    end
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_of(text: &str) -> (SourceFile, Vec<Item>) {
        let file = SourceFile {
            crate_name: "demo".to_string(),
            rel_path: "crates/demo/src/lib.rs".to_string(),
            is_crate_root: true,
            text: text.to_string(),
        };
        let items = {
            let model = SourceModel::build(&file);
            model.items.clone()
        };
        (file, items)
    }

    fn find<'a>(items: &'a [Item], qual: &str) -> &'a Item {
        items
            .iter()
            .find(|item| item.qual == qual)
            .unwrap_or_else(|| {
                panic!(
                    "no item {qual}; have {:?}",
                    items.iter().map(|i| i.qual.clone()).collect::<Vec<_>>()
                )
            })
    }

    #[test]
    fn free_functions_and_methods_are_qualified() {
        let (_file, items) = model_of(
            "pub fn free() {}\n\
             struct Enc;\n\
             impl Enc {\n\
                 pub fn seal(&self) -> u8 { 0 }\n\
                 fn inner(&self) {}\n\
             }\n\
             impl core::fmt::Debug for Enc {\n\
                 fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result { Ok(()) }\n\
             }\n",
        );
        assert!(find(&items, "free").is_pub);
        let seal = find(&items, "Enc::seal");
        assert_eq!(seal.kind, ItemKind::Fn);
        assert!(seal.is_pub);
        assert_eq!(seal.line, 4);
        assert!(!find(&items, "Enc::inner").is_pub);
        assert_eq!(find(&items, "Enc::fmt").kind, ItemKind::Fn);
    }

    #[test]
    fn generic_impl_targets_resolve() {
        let (_file, items) = model_of(
            "pub struct Pool<T> { items: Vec<T> }\n\
             impl<T: Clone + Send> Pool<T> {\n\
                 pub fn drain(&mut self) {}\n\
             }\n\
             impl<'a, T> IntoIterator for &'a Pool<T> where T: Copy {\n\
                 type Item = T;\n\
                 type IntoIter = std::vec::IntoIter<T>;\n\
                 fn into_iter(self) -> Self::IntoIter { todo!() }\n\
             }\n",
        );
        assert_eq!(find(&items, "Pool::drain").line, 3);
        assert_eq!(find(&items, "Pool::into_iter").kind, ItemKind::Fn);
    }

    #[test]
    fn fn_bodies_cover_their_statements() {
        let file = SourceFile {
            crate_name: "demo".to_string(),
            rel_path: "lib.rs".to_string(),
            is_crate_root: true,
            text: "fn outer() {\n    let x = vec![1];\n    x.iter().count();\n}\nfn later() {}\n"
                .to_string(),
        };
        let model = SourceModel::build(&file);
        let iter_ti = model
            .toks
            .iter()
            .position(|t| t.tok == Tok::Ident("iter".to_string()))
            .expect("iter token");
        let outer = model
            .items
            .iter()
            .find(|item| item.qual == "outer")
            .expect("outer item");
        let (start, end) = outer.body.expect("outer has a body");
        assert!(start <= iter_ti && iter_ti < end, "body covers statements");
        let later = model
            .items
            .iter()
            .find(|item| item.qual == "later")
            .expect("later item");
        assert_eq!(later.line, 5);
    }

    #[test]
    fn mod_bodies_are_descended_and_pub_crate_is_private() {
        let (_file, items) = model_of(
            "mod inner {\n\
                 pub(crate) fn helper() {}\n\
                 pub fn api() {}\n\
             }\n\
             pub const LIMIT: usize = 4;\n\
             pub type Alias = u8;\n",
        );
        assert!(!find(&items, "helper").is_pub);
        assert!(find(&items, "api").is_pub);
        assert_eq!(find(&items, "LIMIT").kind, ItemKind::Const);
        assert_eq!(find(&items, "Alias").kind, ItemKind::TypeAlias);
    }

    #[test]
    fn where_clauses_and_return_types_do_not_confuse_bodies() {
        let (_file, items) = model_of(
            "fn complex<F>(f: F) -> impl Iterator<Item = u8>\n\
             where\n\
                 F: Fn(u8) -> u8,\n\
             {\n\
                 std::iter::once(f(0))\n\
             }\n\
             fn after() {}\n",
        );
        let complex = find(&items, "complex");
        assert!(complex.body.is_some());
        assert_eq!(find(&items, "after").line, 7);
    }

    #[test]
    fn trait_fns_are_items_with_trait_qual() {
        let (_file, items) = model_of(
            "pub trait Codec {\n\
                 fn encode(&self) -> u8;\n\
                 fn tag(&self) -> u8 { 0 }\n\
             }\n",
        );
        assert_eq!(find(&items, "Codec::encode").body, None);
        assert!(find(&items, "Codec::tag").body.is_some());
    }
}
