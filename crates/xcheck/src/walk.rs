//! Source discovery: every `.rs` file under `crates/*/src`, plus the
//! umbrella crate's `src/`, each tagged with its crate name and
//! workspace-relative path.

use std::fs;
use std::io;
use std::path::Path;

/// One Rust source file staged for scanning.
pub struct SourceFile {
    /// Name of the owning crate (directory name under `crates/`, or the
    /// umbrella package name for the workspace-root `src/`).
    pub crate_name: String,
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    /// Whether this file is a crate root (`lib.rs` or `main.rs` directly
    /// under `src/`).
    pub is_crate_root: bool,
    /// Full file contents.
    pub text: String,
}

/// Collects all lintable sources under `root`, sorted by path.
pub fn collect_sources(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut sources = Vec::new();

    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<_> = fs::read_dir(&crates_dir)?
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .filter(|path| path.is_dir() && path.join("Cargo.toml").is_file())
        .collect();
    crate_dirs.sort();

    for crate_dir in crate_dirs {
        let crate_name = crate_dir
            .file_name()
            .map(|name| name.to_string_lossy().into_owned())
            .unwrap_or_default();
        collect_tree(root, &crate_name, &crate_dir.join("src"), &mut sources)?;
    }

    // The umbrella package at the workspace root.
    if root.join("Cargo.toml").is_file() {
        collect_tree(root, "rekey-suite", &root.join("src"), &mut sources)?;
    }

    sources.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(sources)
}

fn collect_tree(
    root: &Path,
    crate_name: &str,
    src_dir: &Path,
    out: &mut Vec<SourceFile>,
) -> io::Result<()> {
    if !src_dir.is_dir() {
        return Ok(());
    }
    let mut stack = vec![src_dir.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let path = entry?.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|ext| ext == "rs") {
                let rel_path = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy())
                    .collect::<Vec<_>>()
                    .join("/");
                let is_crate_root = path.parent() == Some(src_dir)
                    && path
                        .file_name()
                        .is_some_and(|name| name == "lib.rs" || name == "main.rs");
                out.push(SourceFile {
                    crate_name: crate_name.to_string(),
                    rel_path,
                    is_crate_root,
                    text: fs::read_to_string(&path)?,
                });
            }
        }
    }
    Ok(())
}
