//! Human and JSON rendering of a lint run.

use std::fs;
use std::io;
use std::path::Path;

use crate::rules::Outcome;

/// Prints the human-readable report to stdout.
pub fn print_human(outcome: &Outcome, files_scanned: usize) {
    println!("xcheck: scanned {files_scanned} source files");
    for rule in &outcome.rules {
        let status = if rule.violations.is_empty() {
            "ok"
        } else {
            "FAIL"
        };
        println!(
            "[{status:>4}] {} — {} ({} violation{})",
            rule.id,
            rule.description,
            rule.violations.len(),
            if rule.violations.len() == 1 { "" } else { "s" },
        );
        for violation in &rule.violations {
            println!(
                "        {}:{}  {}",
                violation.file, violation.line, violation.message
            );
        }
    }
    let total = outcome.total_violations();
    if total == 0 {
        println!("xcheck: PASS");
    } else {
        println!(
            "xcheck: FAIL — {total} violation{}",
            if total == 1 { "" } else { "s" }
        );
    }
}

/// Writes the machine-readable JSON summary to `path`, creating parent
/// directories as needed.
pub fn write_json(outcome: &Outcome, files_scanned: usize, path: &Path) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, render_json(outcome, files_scanned))
}

fn render_json(outcome: &Outcome, files_scanned: usize) -> String {
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    json.push_str(&format!(
        "  \"violations_total\": {},\n",
        outcome.total_violations()
    ));
    json.push_str(&format!(
        "  \"pass\": {},\n",
        outcome.total_violations() == 0
    ));
    json.push_str("  \"rules\": [\n");
    for (rule_idx, rule) in outcome.rules.iter().enumerate() {
        json.push_str("    {\n");
        json.push_str(&format!("      \"id\": {},\n", quote(rule.id)));
        json.push_str(&format!(
            "      \"description\": {},\n",
            quote(rule.description)
        ));
        json.push_str(&format!(
            "      \"violation_count\": {},\n",
            rule.violations.len()
        ));
        json.push_str("      \"violations\": [\n");
        for (violation_idx, violation) in rule.violations.iter().enumerate() {
            json.push_str(&format!(
                "        {{\"file\": {}, \"line\": {}, \"message\": {}}}{}\n",
                quote(&violation.file),
                violation.line,
                quote(&violation.message),
                trailing_comma(violation_idx, rule.violations.len()),
            ));
        }
        json.push_str("      ]\n");
        json.push_str(&format!(
            "    }}{}\n",
            trailing_comma(rule_idx, outcome.rules.len())
        ));
    }
    json.push_str("  ]\n");
    json.push_str("}\n");
    json
}

fn trailing_comma(index: usize, len: usize) -> &'static str {
    if index + 1 < len {
        ","
    } else {
        ""
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn quote(text: &str) -> String {
    let mut quoted = String::with_capacity(text.len() + 2);
    quoted.push('"');
    for c in text.chars() {
        match c {
            '"' => quoted.push_str("\\\""),
            '\\' => quoted.push_str("\\\\"),
            '\n' => quoted.push_str("\\n"),
            '\t' => quoted.push_str("\\t"),
            '\r' => quoted.push_str("\\r"),
            c if (c as u32) < 0x20 => quoted.push_str(&format!("\\u{:04x}", c as u32)),
            c => quoted.push(c),
        }
    }
    quoted.push('"');
    quoted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{RuleReport, Violation};

    #[test]
    fn json_is_well_formed_and_escaped() {
        let outcome = Outcome {
            rules: vec![RuleReport {
                id: "demo",
                description: "a \"quoted\" rule",
                violations: vec![Violation {
                    file: "crates/x/src/lib.rs".to_string(),
                    line: 7,
                    message: "uses `.unwrap()`\nbadly".to_string(),
                }],
            }],
        };
        let json = render_json(&outcome, 3);
        assert!(json.contains("\"files_scanned\": 3"));
        assert!(json.contains("\"violations_total\": 1"));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\\n"));
        assert!(
            !json.contains("`.unwrap()`\nbadly"),
            "newline must be escaped"
        );
        let quotes = json.matches('"').count();
        assert_eq!(quotes % 2, 0, "balanced quotes");
    }
}
