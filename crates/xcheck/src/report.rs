//! Human and JSON (`xcheck/v1`) rendering of a lint run.

use std::fs;
use std::io;
use std::path::Path;

use crate::rules::{Outcome, RULES};

/// Prints the human-readable report to stdout.
pub fn print_human(outcome: &Outcome, files_scanned: usize) {
    println!("xcheck: scanned {files_scanned} source files");
    for rule in &outcome.rules {
        let status = if rule.violations.is_empty() {
            "ok"
        } else {
            "FAIL"
        };
        println!(
            "[{status:>4}] {} — {} ({} violation{})",
            rule.id,
            rule.description,
            rule.violations.len(),
            if rule.violations.len() == 1 { "" } else { "s" },
        );
        for violation in &rule.violations {
            println!(
                "        {}:{}:{}  {}",
                violation.file, violation.line, violation.col, violation.message
            );
        }
    }
    if !outcome.suppressions.is_empty() {
        println!(
            "xcheck: {} suppression{} in effect:",
            outcome.suppressions.len(),
            if outcome.suppressions.len() == 1 {
                ""
            } else {
                "s"
            }
        );
        for s in &outcome.suppressions {
            println!(
                "        {}:{}  allow({}) — {}",
                s.file, s.line, s.rule, s.reason
            );
        }
    }
    println!(
        "xcheck: {} atomic-ordering site{}, {} no_alloc mark{}",
        outcome.atomics.len(),
        if outcome.atomics.len() == 1 { "" } else { "s" },
        outcome.no_alloc_marks.len(),
        if outcome.no_alloc_marks.len() == 1 {
            ""
        } else {
            "s"
        },
    );
    let total = outcome.total_violations();
    if total == 0 {
        println!("xcheck: PASS");
    } else {
        println!(
            "xcheck: FAIL — {total} violation{}",
            if total == 1 { "" } else { "s" }
        );
    }
}

/// Prints the rule table (`--list-rules`) as the markdown table the
/// README embeds verbatim.
pub fn print_rule_table() {
    println!("| rule | scope | description |");
    println!("| --- | --- | --- |");
    for info in &RULES {
        println!(
            "| `{}` | {} | {} |",
            info.id,
            info.scope,
            collapse_ws(info.description)
        );
    }
}

fn collapse_ws(text: &str) -> String {
    text.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Writes the machine-readable `xcheck/v1` JSON report to `path`,
/// creating parent directories as needed.
pub fn write_json(outcome: &Outcome, files_scanned: usize, path: &Path) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, render_json(outcome, files_scanned))
}

fn render_json(outcome: &Outcome, files_scanned: usize) -> String {
    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"schema\": \"xcheck/v1\",\n");
    json.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    json.push_str(&format!(
        "  \"violations_total\": {},\n",
        outcome.total_violations()
    ));
    json.push_str(&format!(
        "  \"pass\": {},\n",
        outcome.total_violations() == 0
    ));
    json.push_str("  \"rules\": [\n");
    for (rule_idx, rule) in outcome.rules.iter().enumerate() {
        json.push_str("    {\n");
        json.push_str(&format!("      \"id\": {},\n", quote(rule.id)));
        json.push_str(&format!(
            "      \"description\": {},\n",
            quote(&collapse_ws(rule.description))
        ));
        json.push_str(&format!("      \"scope\": {},\n", quote(rule.scope)));
        json.push_str(&format!(
            "      \"violation_count\": {},\n",
            rule.violations.len()
        ));
        json.push_str("      \"violations\": [\n");
        for (violation_idx, violation) in rule.violations.iter().enumerate() {
            json.push_str(&format!(
                "        {{\"file\": {}, \"line\": {}, \"col\": {}, \"message\": {}}}{}\n",
                quote(&violation.file),
                violation.line,
                violation.col,
                quote(&violation.message),
                trailing_comma(violation_idx, rule.violations.len()),
            ));
        }
        json.push_str("      ]\n");
        json.push_str(&format!(
            "    }}{}\n",
            trailing_comma(rule_idx, outcome.rules.len())
        ));
    }
    json.push_str("  ],\n");

    json.push_str("  \"suppressions\": [\n");
    for (idx, s) in outcome.suppressions.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"file\": {}, \"line\": {}, \"rule\": {}, \"reason\": {}}}{}\n",
            quote(&s.file),
            s.line,
            quote(&s.rule),
            quote(&s.reason),
            trailing_comma(idx, outcome.suppressions.len()),
        ));
    }
    json.push_str("  ],\n");

    json.push_str("  \"atomics\": [\n");
    for (idx, site) in outcome.atomics.iter().enumerate() {
        let justification = match &site.justification {
            Some(reason) => quote(reason),
            None => "null".to_string(),
        };
        json.push_str(&format!(
            "    {{\"file\": {}, \"line\": {}, \"col\": {}, \"ordering\": {}, \
             \"justification\": {}}}{}\n",
            quote(&site.file),
            site.line,
            site.col,
            quote(&site.ordering),
            justification,
            trailing_comma(idx, outcome.atomics.len()),
        ));
    }
    json.push_str("  ],\n");

    json.push_str("  \"no_alloc_marks\": [\n");
    for (idx, mark) in outcome.no_alloc_marks.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"file\": {}, \"line\": {}, \"function\": {}}}{}\n",
            quote(&mark.file),
            mark.line,
            quote(&mark.function),
            trailing_comma(idx, outcome.no_alloc_marks.len()),
        ));
    }
    json.push_str("  ]\n");
    json.push_str("}\n");
    json
}

fn trailing_comma(index: usize, len: usize) -> &'static str {
    if index + 1 < len {
        ","
    } else {
        ""
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn quote(text: &str) -> String {
    let mut quoted = String::with_capacity(text.len() + 2);
    quoted.push('"');
    for c in text.chars() {
        match c {
            '"' => quoted.push_str("\\\""),
            '\\' => quoted.push_str("\\\\"),
            '\n' => quoted.push_str("\\n"),
            '\t' => quoted.push_str("\\t"),
            '\r' => quoted.push_str("\\r"),
            c if (c as u32) < 0x20 => quoted.push_str(&format!("\\u{:04x}", c as u32)),
            c => quoted.push(c),
        }
    }
    quoted.push('"');
    quoted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{AtomicSite, NoAllocMark, RuleReport, Suppression, Violation};

    #[test]
    fn json_is_well_formed_escaped_and_carries_v1_sections() {
        let outcome = Outcome {
            rules: vec![RuleReport {
                id: "demo",
                description: "a \"quoted\" rule",
                scope: "workspace",
                violations: vec![Violation {
                    file: "crates/x/src/lib.rs".to_string(),
                    line: 7,
                    col: 13,
                    message: "uses `.unwrap()`\nbadly".to_string(),
                }],
            }],
            suppressions: vec![Suppression {
                file: "crates/y/src/lib.rs".to_string(),
                line: 3,
                rule: "demo".to_string(),
                reason: "checked above".to_string(),
            }],
            atomics: vec![AtomicSite {
                file: "crates/z/src/lib.rs".to_string(),
                line: 9,
                col: 30,
                ordering: "Relaxed".to_string(),
                justification: None,
            }],
            no_alloc_marks: vec![NoAllocMark {
                file: "crates/z/src/hot.rs".to_string(),
                line: 41,
                function: "Enc::seal".to_string(),
            }],
        };
        let json = render_json(&outcome, 3);
        assert!(json.contains("\"schema\": \"xcheck/v1\""));
        assert!(json.contains("\"files_scanned\": 3"));
        assert!(json.contains("\"col\": 13"));
        assert!(json.contains("\"reason\": \"checked above\""));
        assert!(json.contains("\"justification\": null"));
        assert!(json.contains("\"function\": \"Enc::seal\""));
        assert!(json.contains("\\\"quoted\\\""));
        assert!(
            !json.contains("`.unwrap()`\nbadly"),
            "newline must be escaped"
        );
        let quotes = json.matches('"').count();
        assert_eq!(quotes % 2, 0, "balanced quotes");
    }

    #[test]
    fn empty_sections_render_as_empty_arrays() {
        let outcome = Outcome {
            rules: Vec::new(),
            suppressions: Vec::new(),
            atomics: Vec::new(),
            no_alloc_marks: Vec::new(),
        };
        let json = render_json(&outcome, 0);
        assert!(json.contains("\"suppressions\": [\n  ]"));
        assert!(json.contains("\"pass\": true"));
    }
}
