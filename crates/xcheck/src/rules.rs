//! The project rules and the engine that runs them over the item-aware
//! source model.
//!
//! Every violation is span-precise (`file:line:col`) and every rule is
//! suppressible in-source with `// xcheck-allow(rule-id): reason` on the
//! offending line or the line above (file-level rules accept the
//! directive anywhere in the file). Suppressions are themselves policed:
//! one without a reason, or one that suppresses nothing, is a violation
//! of `suppression-hygiene`.

use crate::lexer::{DirectiveKind, SpannedTok, Tok};
use crate::model::{ItemKind, SourceModel};
use crate::walk::SourceFile;

/// Crates whose non-test code must be panic-free (wire/hot paths, the
/// simulation engine the figures depend on, and the concurrency/algebra
/// substrates under them).
const PANIC_FREE_CRATES: [&str; 10] = [
    "wirecrypto",
    "rekeymsg",
    "rse",
    "netsim",
    "grouprekey",
    "keytree",
    "rekeyproto",
    "obs",
    "taskpool",
    "gf256",
];

/// Files in which `as` casts to narrower integer types are forbidden
/// (GF(2^8) field and matrix cores, where a silent truncation corrupts
/// algebra instead of crashing).
const NO_TRUNCATING_CAST_FILES: [&str; 2] =
    ["crates/gf256/src/field.rs", "crates/gf256/src/matrix.rs"];

/// Crates whose entire `pub` surface must carry doc comments.
const DOCUMENTED_CRATES: [&str; 7] = [
    "keytree",
    "rse",
    "netsim",
    "grouprekey",
    "rekeyproto",
    "obs",
    "taskpool",
];

/// Crates whose outputs (snapshots, packets, figures, metrics) must not
/// depend on `HashMap`/`HashSet` iteration order.
const DETERMINISM_CRATES: [&str; 4] = ["keytree", "rekeymsg", "grouprekey", "bench"];

/// Integer types an `as` cast may truncate into.
const NARROW_INT_TYPES: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// Iterator-producing methods on unordered collections.
const UNORDERED_ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
];

/// Iterator adapters that preserve the order question (walk through
/// them to find the consumer).
const ORDER_NEUTRAL_ADAPTERS: [&str; 7] = [
    "copied",
    "cloned",
    "map",
    "filter",
    "filter_map",
    "flatten",
    "flat_map",
];

/// Consumers whose result does not depend on iteration order.
const ORDER_INSENSITIVE_CONSUMERS: [&str; 9] = [
    "count",
    "sum",
    "product",
    "all",
    "any",
    "min",
    "max",
    "min_by_key",
    "max_by_key",
];

/// Collection types that are acceptable `collect()` sinks for unordered
/// iteration: either unordered themselves or self-ordering.
const ORDER_SAFE_SINKS: [&str; 5] = ["HashMap", "HashSet", "BTreeMap", "BTreeSet", "BinaryHeap"];

/// Atomic memory orderings that require a written justification.
const JUSTIFY_ORDERINGS: [&str; 2] = ["Relaxed", "SeqCst"];

/// All atomic memory orderings (for the inventory).
const ALL_ORDERINGS: [&str; 5] = ["Relaxed", "SeqCst", "Acquire", "Release", "AcqRel"];

/// Allocation-smell method calls inside `no_alloc` functions.
const ALLOC_METHODS: [&str; 6] = [
    "to_vec",
    "to_string",
    "to_owned",
    "collect",
    "push_str",
    "into_boxed_slice",
];

/// Constructors that allocate (or exist to pre-allocate) on collection
/// and smart-pointer types.
const ALLOC_CTOR_TYPES: [&str; 9] = [
    "Vec", "String", "Box", "Rc", "Arc", "HashMap", "HashSet", "BTreeMap", "VecDeque",
];

/// Static description of one rule, for `--list-rules` and the report.
pub struct RuleInfo {
    /// Stable machine-readable rule id.
    pub id: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Which crates/files the rule applies to.
    pub scope: &'static str,
}

const R_NO_PANIC: usize = 0;
const R_UNSAFE: usize = 1;
const R_CAST: usize = 2;
const R_DOCS: usize = 3;
const R_TODO: usize = 4;
const R_DETERMINISM: usize = 5;
const R_ATOMICS: usize = 6;
const R_NO_ALLOC: usize = 7;
const R_SUPPRESSION: usize = 8;

/// The fixed rule table, in report order.
pub const RULES: [RuleInfo; 9] = [
    RuleInfo {
        id: "no-unwrap-in-wire-crates",
        description: "no `.unwrap()` / `.expect()` in non-test code",
        scope: "wirecrypto, rekeymsg, rse, netsim, grouprekey, keytree, rekeyproto, obs, taskpool, gf256",
    },
    RuleInfo {
        id: "forbid-unsafe-code",
        description: "`#![forbid(unsafe_code)]` present in every crate root",
        scope: "all crate roots",
    },
    RuleInfo {
        id: "no-truncating-cast-in-gf256",
        description: "no `as` casts to narrower integer types in the GF(2^8) field/matrix core",
        scope: "crates/gf256/src/field.rs, crates/gf256/src/matrix.rs",
    },
    RuleInfo {
        id: "documented-pub-api",
        description: "every `pub` item carries a doc comment",
        scope: "keytree, rse, netsim, grouprekey, rekeyproto, obs, taskpool",
    },
    RuleInfo {
        id: "no-todo-or-unimplemented",
        description: "no `todo!` / `unimplemented!` anywhere, tests included",
        scope: "workspace",
    },
    RuleInfo {
        id: "determinism-unordered-iter",
        description: "no HashMap/HashSet iteration feeding ordered outputs unless sorted, \
                      order-insensitive, or collected into an order-safe sink",
        scope: "keytree, rekeymsg, grouprekey, bench",
    },
    RuleInfo {
        id: "atomics-ordering-justified",
        description: "every `Ordering::Relaxed` / `Ordering::SeqCst` site carries an \
                      `// xcheck-ordering: <why>` justification",
        scope: "workspace (non-test code)",
    },
    RuleInfo {
        id: "no-alloc-static",
        description: "functions marked `// xcheck: no_alloc` contain no statically visible \
                      allocation (dynamically pinned to 0 allocs by the xcheck-rt harness)",
        scope: "functions marked `// xcheck: no_alloc`",
    },
    RuleInfo {
        id: "suppression-hygiene",
        description: "every `xcheck-allow` directive has a non-empty reason and suppresses a \
                      real violation",
        scope: "workspace",
    },
];

/// One rule violation at a source location.
pub struct Violation {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
    /// Human-readable description of this occurrence.
    pub message: String,
}

/// A used `xcheck-allow` suppression, recorded for the report.
pub struct Suppression {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the directive.
    pub line: u32,
    /// The suppressed rule id.
    pub rule: String,
    /// The stated reason.
    pub reason: String,
}

/// One `Ordering::*` site for the atomics inventory.
pub struct AtomicSite {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
    /// The ordering variant (`Relaxed`, `SeqCst`, ...).
    pub ordering: String,
    /// The `// xcheck-ordering:` justification, if present.
    pub justification: Option<String>,
}

/// One `// xcheck: no_alloc` mark for the inventory.
pub struct NoAllocMark {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the marked function.
    pub line: u32,
    /// Qualified function name (`Type::method` or bare name).
    pub function: String,
}

/// A rule's identity and its collected violations.
pub struct RuleReport {
    /// Stable machine-readable rule id.
    pub id: &'static str,
    /// One-line description for the human report.
    pub description: &'static str,
    /// Which crates/files the rule applies to.
    pub scope: &'static str,
    /// All violations, in path/line order.
    pub violations: Vec<Violation>,
}

/// The outcome of a full lint run.
pub struct Outcome {
    /// Per-rule reports, in fixed rule order.
    pub rules: Vec<RuleReport>,
    /// Every suppression that fired, with its reason.
    pub suppressions: Vec<Suppression>,
    /// Inventory of all atomic-ordering sites in non-test code.
    pub atomics: Vec<AtomicSite>,
    /// Inventory of all `no_alloc`-marked functions.
    pub no_alloc_marks: Vec<NoAllocMark>,
}

impl Outcome {
    /// Total violations across all rules.
    pub fn total_violations(&self) -> usize {
        self.rules.iter().map(|r| r.violations.len()).sum()
    }
}

/// One `xcheck-allow` directive with its match state.
struct Allow {
    line: u32,
    rule: String,
    reason: String,
    used: bool,
}

/// Per-file context threaded through the rules.
struct FileCtx<'a> {
    model: SourceModel<'a>,
    allows: Vec<Allow>,
}

impl<'a> FileCtx<'a> {
    fn new(file: &'a SourceFile) -> FileCtx<'a> {
        let model = SourceModel::build(file);
        let allows = model
            .directives
            .iter()
            .filter(|d| !model.line_in_test(d.line))
            .filter_map(|d| match &d.kind {
                DirectiveKind::Allow { rule, reason } => Some(Allow {
                    line: d.line,
                    rule: rule.clone(),
                    reason: reason.clone(),
                    used: false,
                }),
                _ => None,
            })
            .collect();
        FileCtx { model, allows }
    }

    fn rel_path(&self) -> &str {
        &self.model.file.rel_path
    }

    /// Records a violation at `line:col` unless an `xcheck-allow` for the
    /// rule sits on the same line or the line above.
    fn emit(&mut self, out: &mut Outcome, rule: usize, line: u32, col: u32, message: String) {
        let rule_id = RULES[rule].id;
        let file = self.rel_path().to_string();
        let allow = self
            .allows
            .iter_mut()
            .find(|a| a.rule == rule_id && (a.line == line || a.line + 1 == line));
        if let Some(allow) = allow {
            allow.used = true;
            out.suppressions.push(Suppression {
                file,
                line: allow.line,
                rule: allow.rule.clone(),
                reason: allow.reason.clone(),
            });
            return;
        }
        out.rules[rule].violations.push(Violation {
            file,
            line,
            col,
            message,
        });
    }

    /// Like [`emit`], but for file-level rules: an allow anywhere in the
    /// file suppresses the violation.
    fn emit_file_level(&mut self, out: &mut Outcome, rule: usize, message: String) {
        let rule_id = RULES[rule].id;
        let file = self.rel_path().to_string();
        let allow = self.allows.iter_mut().find(|a| a.rule == rule_id);
        if let Some(allow) = allow {
            allow.used = true;
            out.suppressions.push(Suppression {
                file,
                line: allow.line,
                rule: allow.rule.clone(),
                reason: allow.reason.clone(),
            });
            return;
        }
        out.rules[rule].violations.push(Violation {
            file,
            line: 1,
            col: 1,
            message,
        });
    }

    /// Flushes suppression-hygiene findings once every other rule ran.
    fn finish(mut self, out: &mut Outcome) {
        let file = self.rel_path().to_string();
        for allow in self.allows.drain(..) {
            if allow.reason.is_empty() {
                out.rules[R_SUPPRESSION].violations.push(Violation {
                    file: file.clone(),
                    line: allow.line,
                    col: 1,
                    message: format!(
                        "`xcheck-allow({})` has no reason; write `: <why>` after it",
                        allow.rule
                    ),
                });
            } else if !allow.used {
                out.rules[R_SUPPRESSION].violations.push(Violation {
                    file: file.clone(),
                    line: allow.line,
                    col: 1,
                    message: format!(
                        "`xcheck-allow({})` suppresses nothing on this or the next line; \
                         remove the stale directive",
                        allow.rule
                    ),
                });
            }
        }
    }
}

/// Runs every rule over the scanned sources.
pub fn run_all(sources: &[SourceFile]) -> Outcome {
    let mut out = Outcome {
        rules: RULES
            .iter()
            .map(|info| RuleReport {
                id: info.id,
                description: info.description,
                scope: info.scope,
                violations: Vec::new(),
            })
            .collect(),
        suppressions: Vec::new(),
        atomics: Vec::new(),
        no_alloc_marks: Vec::new(),
    };

    for source in sources {
        let mut ctx = FileCtx::new(source);

        if PANIC_FREE_CRATES.contains(&source.crate_name.as_str()) {
            check_no_panic_helpers(&mut ctx, &mut out);
        }
        if source.is_crate_root {
            check_forbid_unsafe(&mut ctx, &mut out);
        }
        if NO_TRUNCATING_CAST_FILES.contains(&source.rel_path.as_str()) {
            check_no_truncating_cast(&mut ctx, &mut out);
        }
        if DOCUMENTED_CRATES.contains(&source.crate_name.as_str()) {
            check_pub_docs(&mut ctx, &mut out);
        }
        check_no_todo(&mut ctx, &mut out);
        if DETERMINISM_CRATES.contains(&source.crate_name.as_str()) {
            check_determinism(&mut ctx, &mut out);
        }
        check_atomics(&mut ctx, &mut out);
        check_no_alloc_static(&mut ctx, &mut out);

        ctx.finish(&mut out);
    }

    out
}

fn ident_at(toks: &[SpannedTok], i: usize) -> Option<&str> {
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Ident(name)) => Some(name.as_str()),
        _ => None,
    }
}

fn punct_at(toks: &[SpannedTok], i: usize) -> Option<char> {
    match toks.get(i).map(|t| &t.tok) {
        Some(Tok::Punct(c)) => Some(*c),
        _ => None,
    }
}

/// Index one past the matching closer for the opener at `open`.
fn skip_balanced(toks: &[SpannedTok], open: usize, opener: char, closer: char) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        match punct_at(toks, i) {
            Some(c) if c == opener => depth += 1,
            Some(c) if c == closer => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    toks.len()
}

/// `.unwrap(` / `.expect(` token triples outside `#[cfg(test)]` regions.
fn check_no_panic_helpers(ctx: &mut FileCtx<'_>, out: &mut Outcome) {
    let sites: Vec<(u32, u32, String)> = {
        let toks = &ctx.model.toks;
        toks.windows(3)
            .filter_map(|window| {
                let [dot, name, paren] = window else {
                    return None;
                };
                let Tok::Ident(method) = &name.tok else {
                    return None;
                };
                (dot.tok == Tok::Punct('.')
                    && paren.tok == Tok::Punct('(')
                    && (method == "unwrap" || method == "expect")
                    && !ctx.model.line_in_test(name.line))
                .then(|| (name.line, name.col, method.clone()))
            })
            .collect()
    };
    for (line, col, method) in sites {
        ctx.emit(
            out,
            R_NO_PANIC,
            line,
            col,
            format!("`.{method}()` in non-test code; return a typed error instead"),
        );
    }
}

/// Crate roots must open with `#![forbid(unsafe_code)]`.
fn check_forbid_unsafe(ctx: &mut FileCtx<'_>, out: &mut Outcome) {
    let has_forbid = ctx
        .model
        .file
        .text
        .lines()
        .map(|line| line.split_whitespace().collect::<String>())
        .any(|compact| compact == "#![forbid(unsafe_code)]");
    if !has_forbid {
        ctx.emit_file_level(
            out,
            R_UNSAFE,
            "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        );
    }
}

/// `as u8`-style narrowing casts outside test code.
fn check_no_truncating_cast(ctx: &mut FileCtx<'_>, out: &mut Outcome) {
    let sites: Vec<(u32, u32, String)> = {
        let toks = &ctx.model.toks;
        toks.windows(2)
            .filter_map(|window| {
                let [kw, target] = window else { return None };
                let (Tok::Ident(kw_name), Tok::Ident(target_name)) = (&kw.tok, &target.tok) else {
                    return None;
                };
                (kw_name == "as"
                    && NARROW_INT_TYPES.contains(&target_name.as_str())
                    && !ctx.model.line_in_test(kw.line))
                .then(|| (kw.line, kw.col, target_name.clone()))
            })
            .collect()
    };
    for (line, col, target) in sites {
        ctx.emit(
            out,
            R_CAST,
            line,
            col,
            format!("truncating `as {target}` cast; use `try_from`/`from` so narrowing is checked"),
        );
    }
}

/// `pub` items (outside test code) must be preceded by a `///` doc
/// comment, possibly with attributes or xcheck directive comments in
/// between.
fn check_pub_docs(ctx: &mut FileCtx<'_>, out: &mut Outcome) {
    let lines: Vec<&str> = ctx.model.file.text.lines().collect();
    let sites: Vec<(u32, u32, String)> = ctx
        .model
        .items
        .iter()
        .filter(|item| item.is_pub && item.kind != ItemKind::Impl)
        .filter(|item| !ctx.model.line_in_test(item.line))
        .filter(|item| {
            let mut above = item.line as usize - 1;
            while above > 0 {
                above -= 1;
                let prev = lines.get(above).map(|l| l.trim_start()).unwrap_or("");
                if prev.starts_with("#[")
                    || prev.starts_with("#!")
                    || prev
                        .trim_start_matches('/')
                        .trim_start()
                        .starts_with("xcheck")
                {
                    continue;
                }
                return !(prev.starts_with("///") || prev.starts_with("#[doc"));
            }
            true
        })
        .map(|item| (item.line, item.col, item.qual.clone()))
        .collect();
    for (line, col, qual) in sites {
        ctx.emit(
            out,
            R_DOCS,
            line,
            col,
            format!("undocumented public item `{qual}`"),
        );
    }
}

/// `todo!` / `unimplemented!` anywhere, test code included.
fn check_no_todo(ctx: &mut FileCtx<'_>, out: &mut Outcome) {
    let sites: Vec<(u32, u32, String)> = {
        let toks = &ctx.model.toks;
        toks.windows(2)
            .filter_map(|window| {
                let [name, bang] = window else { return None };
                let Tok::Ident(macro_name) = &name.tok else {
                    return None;
                };
                (bang.tok == Tok::Punct('!')
                    && (macro_name == "todo" || macro_name == "unimplemented"))
                    .then(|| (name.line, name.col, macro_name.clone()))
            })
            .collect()
    };
    for (line, col, name) in sites {
        ctx.emit(
            out,
            R_TODO,
            line,
            col,
            format!("`{name}!` left in the tree"),
        );
    }
}

/// How an unordered-iteration candidate site resolves.
enum IterVerdict {
    /// Order cannot reach an output: order-insensitive consumer or an
    /// order-safe `collect()` sink.
    Exempt,
    /// Order can leak; flag it (message names the offending chain end).
    Flag(&'static str),
}

/// Determinism: unordered-container iteration feeding ordered outputs.
fn check_determinism(ctx: &mut FileCtx<'_>, out: &mut Outcome) {
    let unordered = collect_unordered_names(&ctx.model);
    let mut sites: Vec<(u32, u32, String)> = Vec::new();
    {
        let toks = &ctx.model.toks;

        // Pattern A: `name.iter()`, `x.field.keys()`, ... — method calls
        // that produce an iterator over an unordered container.
        for m in 0..toks.len() {
            let Some(method) = ident_at(toks, m) else {
                continue;
            };
            if !UNORDERED_ITER_METHODS.contains(&method)
                || punct_at(toks, m + 1) != Some('(')
                || punct_at(toks, m.wrapping_sub(1)) != Some('.')
            {
                continue;
            }
            let Some(receiver) = ident_at(toks, m.wrapping_sub(2)) else {
                continue;
            };
            if !unordered.contains(&receiver.to_string()) || ctx.model.line_in_test(toks[m].line) {
                continue;
            }
            if let IterVerdict::Flag(why) = classify_chain(toks, m + 1) {
                sites.push((
                    toks[m].line,
                    toks[m].col,
                    format!(
                        "`{receiver}.{method}()` iterates an unordered container and {why}; \
                         sort first, use an ordered type, or suppress with a reason"
                    ),
                ));
            }
        }

        // Pattern B: `for pat in &name {` — direct for-loops over an
        // unordered binding (no method call in the iterated expression).
        for f in 0..toks.len() {
            if ident_at(toks, f) != Some("for") || ctx.model.line_in_test(toks[f].line) {
                continue;
            }
            let Some(site) = classify_for_loop(toks, f, &unordered) else {
                continue;
            };
            sites.push((
                toks[f].line,
                toks[f].col,
                format!(
                    "`for ... in {site}` iterates an unordered container in arbitrary order; \
                     sort first, use an ordered type, or suppress with a reason"
                ),
            ));
        }

        // Pattern C: `sink.extend(&name)` — extending an ordered sink
        // straight from an unordered container reference.
        for e in 0..toks.len() {
            if ident_at(toks, e) != Some("extend")
                || punct_at(toks, e.wrapping_sub(1)) != Some('.')
                || punct_at(toks, e + 1) != Some('(')
                || ctx.model.line_in_test(toks[e].line)
            {
                continue;
            }
            let mut a = e + 2;
            while matches!(punct_at(toks, a), Some('&')) || ident_at(toks, a) == Some("mut") {
                a += 1;
            }
            let Some(arg) = ident_at(toks, a) else {
                continue;
            };
            if punct_at(toks, a + 1) == Some(')') && unordered.contains(&arg.to_string()) {
                sites.push((
                    toks[e].line,
                    toks[e].col,
                    format!(
                        "`.extend(&{arg})` pulls from an unordered container in arbitrary order; \
                         sort first, use an ordered type, or suppress with a reason"
                    ),
                ));
            }
        }
    }
    for (line, col, message) in sites {
        ctx.emit(out, R_DETERMINISM, line, col, message);
    }
}

/// Names bound to `HashMap`/`HashSet` values in this file: struct
/// fields, `let` bindings, and function parameters. File-global — a
/// name that is unordered anywhere is treated as unordered everywhere,
/// which errs on the side of flagging.
fn collect_unordered_names(model: &SourceModel<'_>) -> Vec<String> {
    let toks = &model.toks;
    let mut names: Vec<String> = Vec::new();
    let mut add = |name: &str| {
        if !name.is_empty() && !names.iter().any(|n| n == name) {
            names.push(name.to_string());
        }
    };

    // Struct fields and fn params: `name : ...HashMap...` up to the
    // next `,` / `)` / `}` at group depth 0.
    for item in &model.items {
        let ranges: Vec<(usize, usize)> = match item.kind {
            ItemKind::Struct | ItemKind::Enum => item.body.map(|r| vec![r]).unwrap_or_default(),
            ItemKind::Fn => vec![item.sig],
            _ => Vec::new(),
        };
        for (start, end) in ranges {
            let mut i = start;
            while i + 1 < end {
                if ident_at(toks, i).is_some()
                    && punct_at(toks, i + 1) == Some(':')
                    && punct_at(toks, i + 2) != Some(':')
                    && punct_at(toks, i.wrapping_sub(1)) != Some(':')
                {
                    let name = ident_at(toks, i).unwrap_or("").to_string();
                    let mut j = i + 2;
                    let mut depth = 0i32;
                    let mut has_unordered = false;
                    while j < end {
                        match &toks[j].tok {
                            Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                            Tok::Punct(')') | Tok::Punct(']') => {
                                if depth == 0 {
                                    break;
                                }
                                depth -= 1;
                            }
                            Tok::Punct(',') if depth == 0 => break,
                            Tok::Punct('{') | Tok::Punct('}') | Tok::Punct(';') => break,
                            Tok::Punct('=') => break,
                            Tok::Ident(id) if id == "HashMap" || id == "HashSet" => {
                                has_unordered = true;
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    if has_unordered {
                        add(&name);
                    }
                    i = j;
                    continue;
                }
                i += 1;
            }
        }
    }

    // `let [mut] name ... ;` statements whose tokens mention
    // HashMap/HashSet anywhere before the `;`.
    let mut i = 0;
    while i < toks.len() {
        if ident_at(toks, i) == Some("let") {
            let mut n = i + 1;
            if ident_at(toks, n) == Some("mut") {
                n += 1;
            }
            if let Some(name) = ident_at(toks, n) {
                let mut j = n + 1;
                let mut has_unordered = false;
                while j < toks.len() && punct_at(toks, j) != Some(';') {
                    if matches!(ident_at(toks, j), Some("HashMap") | Some("HashSet")) {
                        has_unordered = true;
                    }
                    j += 1;
                }
                if has_unordered {
                    let name = name.to_string();
                    if !names.contains(&name) {
                        names.push(name);
                    }
                }
                i = j;
                continue;
            }
        }
        i += 1;
    }

    names
}

/// Classifies the iterator chain starting at the `(` of the producing
/// method call: walks order-neutral adapters to the consumer.
fn classify_chain(toks: &[SpannedTok], open_paren: usize) -> IterVerdict {
    let mut close = skip_balanced(toks, open_paren, '(', ')');
    loop {
        if punct_at(toks, close) != Some('.') {
            // Chain ends without a consumer (e.g. a bare `for x in
            // m.keys()` loop body follows): order leaks.
            return IterVerdict::Flag("its order reaches the surrounding expression");
        }
        let Some(next) = ident_at(toks, close + 1) else {
            return IterVerdict::Flag("its order reaches the surrounding expression");
        };
        let mut call = close + 2;
        // Optional turbofish on the adapter/consumer.
        let turbofish = (punct_at(toks, call), punct_at(toks, call + 1)) == (Some(':'), Some(':'));
        let mut sink_is_safe = false;
        if turbofish {
            let mut k = call + 2;
            if punct_at(toks, k) == Some('<') {
                let end = skip_angle(toks, k);
                for t in &toks[k..end.min(toks.len())] {
                    if let Tok::Ident(id) = &t.tok {
                        if ORDER_SAFE_SINKS.contains(&id.as_str()) {
                            sink_is_safe = true;
                        }
                    }
                }
                k = end;
            }
            call = k;
        }
        if punct_at(toks, call) != Some('(') {
            return IterVerdict::Flag("its order reaches the surrounding expression");
        }
        if ORDER_NEUTRAL_ADAPTERS.contains(&next) {
            close = skip_balanced(toks, call, '(', ')');
            continue;
        }
        if ORDER_INSENSITIVE_CONSUMERS.contains(&next) {
            return IterVerdict::Exempt;
        }
        if next == "collect" {
            if sink_is_safe || let_annotation_is_order_safe(toks, open_paren) {
                return IterVerdict::Exempt;
            }
            if sorted_soon_after(toks, skip_balanced(toks, call, '(', ')')) {
                return IterVerdict::Exempt;
            }
            return IterVerdict::Flag("collects into an order-sensitive sink without sorting");
        }
        return IterVerdict::Flag("feeds an order-sensitive consumer");
    }
}

/// Index one past a balanced `<...>` group opening at `open`, treating
/// the `>` of `->` as not a closer.
fn skip_angle(toks: &[SpannedTok], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        match punct_at(toks, i) {
            Some('<') => depth += 1,
            Some('>') if punct_at(toks, i.wrapping_sub(1)) != Some('-') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    toks.len()
}

/// Whether the enclosing `let` statement's type annotation names an
/// order-safe sink (`let x: HashMap<_, _> = m.iter()...collect()`).
fn let_annotation_is_order_safe(toks: &[SpannedTok], site: usize) -> bool {
    let mut i = site;
    while i > 0 {
        i -= 1;
        match &toks[i].tok {
            Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') => return false,
            Tok::Ident(id) if ORDER_SAFE_SINKS.contains(&id.as_str()) => return true,
            _ => {}
        }
    }
    false
}

/// Whether a `sort*` call appears between the end of this statement and
/// the end of the next one (`let mut v: Vec<_> = ...collect();
/// v.sort_unstable();`).
fn sorted_soon_after(toks: &[SpannedTok], from: usize) -> bool {
    let mut i = from;
    let mut semis = 0;
    while i < toks.len() && semis < 2 {
        if punct_at(toks, i) == Some(';') {
            semis += 1;
        } else if ident_at(toks, i).is_some_and(|id| id.starts_with("sort")) {
            return true;
        }
        i += 1;
    }
    false
}

/// If the `for` loop at token `f` iterates a plain unordered binding
/// (no function calls in the iterated expression), returns the
/// rendered expression.
fn classify_for_loop(toks: &[SpannedTok], f: usize, unordered: &[String]) -> Option<String> {
    // Find `in` at group depth 0 (patterns may contain `(a, b)`).
    let mut i = f + 1;
    let mut depth = 0i32;
    let in_idx = loop {
        match toks.get(i).map(|t| &t.tok)? {
            Tok::Punct('(') | Tok::Punct('[') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
            Tok::Punct('{') | Tok::Punct(';') => return None,
            Tok::Ident(id) if id == "in" && depth == 0 => break i,
            _ => {}
        }
        i += 1;
    };
    // The iterated expression: tokens until the body `{` at depth 0.
    let mut j = in_idx + 1;
    let mut expr: Vec<&Tok> = Vec::new();
    let mut depth = 0i32;
    loop {
        match toks.get(j).map(|t| &t.tok)? {
            Tok::Punct('(') => return None, // method/fn call: pattern A's job
            Tok::Punct('{') if depth == 0 => break,
            Tok::Punct('[') => {
                depth += 1;
                expr.push(&toks[j].tok);
            }
            Tok::Punct(']') => {
                depth -= 1;
                expr.push(&toks[j].tok);
            }
            t => expr.push(t),
        }
        j += 1;
    }
    let last_ident = expr.iter().rev().find_map(|t| match t {
        Tok::Ident(id) if id != "mut" => Some(id.clone()),
        _ => None,
    })?;
    if !unordered.contains(&last_ident) {
        return None;
    }
    let rendered: String = expr
        .iter()
        .map(|t| match t {
            Tok::Ident(id) => id.clone(),
            Tok::Punct(c) => c.to_string(),
        })
        .collect();
    Some(rendered)
}

/// Atomics audit: inventory every `Ordering::*` site; `Relaxed` and
/// `SeqCst` must carry an `// xcheck-ordering: <why>` justification.
fn check_atomics(ctx: &mut FileCtx<'_>, out: &mut Outcome) {
    struct Site {
        line: u32,
        col: u32,
        ordering: String,
        justification: Option<String>,
    }
    let mut sites: Vec<Site> = Vec::new();
    {
        let toks = &ctx.model.toks;
        for i in 0..toks.len() {
            if ident_at(toks, i) != Some("Ordering")
                || punct_at(toks, i + 1) != Some(':')
                || punct_at(toks, i + 2) != Some(':')
            {
                continue;
            }
            let Some(variant) = ident_at(toks, i + 3) else {
                continue;
            };
            if !ALL_ORDERINGS.contains(&variant) || ctx.model.line_in_test(toks[i].line) {
                continue;
            }
            let line = toks[i].line;
            let justification = ctx.model.directives.iter().find_map(|d| match &d.kind {
                DirectiveKind::OrderingJustification { reason }
                    if d.line == line || d.line + 1 == line =>
                {
                    Some(reason.clone())
                }
                _ => None,
            });
            sites.push(Site {
                line,
                col: toks[i].col,
                ordering: variant.to_string(),
                justification,
            });
        }
    }

    let mut flagged_lines: Vec<u32> = Vec::new();
    for site in &sites {
        if JUSTIFY_ORDERINGS.contains(&site.ordering.as_str())
            && site.justification.is_none()
            && !flagged_lines.contains(&site.line)
        {
            flagged_lines.push(site.line);
        }
    }
    for line in flagged_lines {
        let (col, ordering) = sites
            .iter()
            .find(|s| s.line == line)
            .map(|s| (s.col, s.ordering.clone()))
            .unwrap_or((1, String::new()));
        ctx.emit(
            out,
            R_ATOMICS,
            line,
            col,
            format!(
                "`Ordering::{ordering}` without an `// xcheck-ordering: <why>` justification \
                 on this or the previous line"
            ),
        );
    }

    let file = ctx.rel_path().to_string();
    out.atomics.extend(sites.into_iter().map(|s| AtomicSite {
        file: file.clone(),
        line: s.line,
        col: s.col,
        ordering: s.ordering,
        justification: s.justification,
    }));
}

/// Hot-path allocation: `// xcheck: no_alloc` marks must attach to a
/// function, and the function body must be free of allocation smells.
fn check_no_alloc_static(ctx: &mut FileCtx<'_>, out: &mut Outcome) {
    let mark_lines: Vec<u32> = ctx
        .model
        .directives
        .iter()
        .filter(|d| d.kind == DirectiveKind::NoAllocMark)
        .map(|d| d.line)
        .collect();
    let mut sites: Vec<(u32, u32, String)> = Vec::new();
    for mark_line in mark_lines {
        let marked = ctx
            .model
            .items
            .iter()
            .filter(|item| item.kind == ItemKind::Fn)
            .filter(|item| item.line > mark_line && item.line <= mark_line + 4)
            .min_by_key(|item| item.line)
            .cloned();
        let Some(function) = marked else {
            sites.push((
                mark_line,
                1,
                "`// xcheck: no_alloc` is not followed by a function within 4 lines".to_string(),
            ));
            continue;
        };
        out.no_alloc_marks.push(NoAllocMark {
            file: ctx.rel_path().to_string(),
            line: function.line,
            function: function.qual.clone(),
        });
        let Some((body_start, body_end)) = function.body else {
            continue;
        };
        let toks = &ctx.model.toks;
        for i in body_start..body_end {
            let Some(name) = ident_at(toks, i) else {
                continue;
            };
            let smell = if punct_at(toks, i + 1) == Some('!') && (name == "vec" || name == "format")
            {
                Some(format!("`{name}!` macro"))
            } else if punct_at(toks, i.wrapping_sub(1)) == Some('.')
                && punct_at(toks, i + 1) == Some('(')
                && ALLOC_METHODS.contains(&name)
            {
                Some(format!("`.{name}()` call"))
            } else if ALLOC_CTOR_TYPES.contains(&name)
                && punct_at(toks, i + 1) == Some(':')
                && punct_at(toks, i + 2) == Some(':')
            {
                // `Vec::new` / `String::new` do not allocate; every other
                // listed constructor does (or exists to pre-allocate).
                match ident_at(toks, i + 3) {
                    Some(ctor @ ("with_capacity" | "from")) => {
                        Some(format!("`{name}::{ctor}` constructor"))
                    }
                    Some("new") if name != "Vec" && name != "String" => {
                        Some(format!("`{name}::new` constructor"))
                    }
                    _ => None,
                }
            } else {
                None
            };
            if let Some(smell) = smell {
                sites.push((
                    toks[i].line,
                    toks[i].col,
                    format!(
                        "allocation smell ({smell}) in `no_alloc` function `{}`",
                        function.qual
                    ),
                ));
            }
        }
    }
    for (line, col, message) in sites {
        ctx.emit(out, R_NO_ALLOC, line, col, message);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(crate_name: &str, rel_path: &str, is_crate_root: bool, text: &str) -> SourceFile {
        SourceFile {
            crate_name: crate_name.to_string(),
            rel_path: rel_path.to_string(),
            is_crate_root,
            text: text.to_string(),
        }
    }

    fn rule<'o>(outcome: &'o Outcome, id: &str) -> &'o RuleReport {
        outcome.rules.iter().find(|r| r.id == id).expect("known id")
    }

    #[test]
    fn flags_unwrap_only_outside_tests_and_only_in_scoped_crates() {
        let text = "#![forbid(unsafe_code)]\n\
                    fn live() { x.unwrap(); y.expect(\"m\"); z.unwrap_or(0); }\n\
                    #[cfg(test)]\n\
                    mod tests { fn t() { x.unwrap(); } }\n";
        let outcome = run_all(&[
            file("rse", "crates/rse/src/lib.rs", true, text),
            file("bench", "crates/bench/src/lib.rs", true, text),
        ]);
        let flagged = &rule(&outcome, "no-unwrap-in-wire-crates").violations;
        assert_eq!(flagged.len(), 2, "unwrap + expect in rse only");
        assert!(flagged
            .iter()
            .all(|v| v.file.contains("rse") && v.line == 2));
        assert!(flagged.iter().all(|v| v.col > 1), "columns are tracked");
    }

    #[test]
    fn taskpool_and_gf256_are_panic_free_scoped() {
        let text = "#![forbid(unsafe_code)]\nfn live() { x.unwrap(); }\n";
        let outcome = run_all(&[
            file("taskpool", "crates/taskpool/src/lib.rs", true, text),
            file("gf256", "crates/gf256/src/lib.rs", true, text),
        ]);
        assert_eq!(
            rule(&outcome, "no-unwrap-in-wire-crates").violations.len(),
            2
        );
    }

    #[test]
    fn suppression_with_reason_moves_violation_to_suppressions() {
        let text = "#![forbid(unsafe_code)]\n\
                    // xcheck-allow(no-unwrap-in-wire-crates): pivot is checked non-zero above\n\
                    fn live() { x.unwrap(); }\n\
                    fn also() { y.expect(\"m\"); } // xcheck-allow(no-unwrap-in-wire-crates): same-line form\n";
        let outcome = run_all(&[file("rse", "crates/rse/src/lib.rs", true, text)]);
        assert!(rule(&outcome, "no-unwrap-in-wire-crates")
            .violations
            .is_empty());
        assert!(rule(&outcome, "suppression-hygiene").violations.is_empty());
        assert_eq!(outcome.suppressions.len(), 2);
        assert!(outcome.suppressions[0].reason.contains("pivot"));
    }

    #[test]
    fn suppressions_without_reason_or_unused_are_flagged() {
        let text = "#![forbid(unsafe_code)]\n\
                    // xcheck-allow(no-unwrap-in-wire-crates)\n\
                    fn live() { x.unwrap(); }\n\
                    // xcheck-allow(no-unwrap-in-wire-crates): nothing to suppress here\n\
                    fn clean() {}\n";
        let outcome = run_all(&[file("rse", "crates/rse/src/lib.rs", true, text)]);
        let hygiene = &rule(&outcome, "suppression-hygiene").violations;
        assert_eq!(
            hygiene.len(),
            2,
            "no-reason + stale: {:?}",
            hygiene.iter().map(|v| &v.message).collect::<Vec<_>>()
        );
        assert!(hygiene[0].message.contains("no reason"));
        assert!(hygiene[1].message.contains("suppresses nothing"));
        // The reasonless allow still suppresses (so one fix, not two).
        assert!(rule(&outcome, "no-unwrap-in-wire-crates")
            .violations
            .is_empty());
    }

    #[test]
    fn flags_missing_forbid_unsafe_and_accepts_file_level_allow() {
        let outcome = run_all(&[
            file("keytree", "crates/keytree/src/lib.rs", true, "pub mod x;\n"),
            file("keytree", "crates/keytree/src/x.rs", false, "fn f() {}\n"),
            file(
                "xcheck-rt",
                "crates/xcheck-rt/src/lib.rs",
                true,
                "//! Counting allocator.\n\
                 // xcheck-allow(forbid-unsafe-code): GlobalAlloc requires unsafe impls\n\
                 fn f() {}\n",
            ),
        ]);
        let flagged = &rule(&outcome, "forbid-unsafe-code").violations;
        assert_eq!(flagged.len(), 1);
        assert_eq!(flagged[0].file, "crates/keytree/src/lib.rs");
        assert_eq!(outcome.suppressions.len(), 1);
    }

    #[test]
    fn flags_narrowing_casts_in_gf256_core_only() {
        let text = "#![forbid(unsafe_code)]\n\
                    fn f(c: usize) -> u32 { c as u32 }\n\
                    fn widen(c: u8) -> u64 { c as u64 }\n\
                    #[cfg(test)]\n\
                    mod tests { fn t(c: usize) -> u8 { c as u8 } }\n";
        let outcome = run_all(&[
            file("gf256", "crates/gf256/src/matrix.rs", false, text),
            file("gf256", "crates/gf256/src/tables.rs", false, text),
        ]);
        let flagged = &rule(&outcome, "no-truncating-cast-in-gf256").violations;
        assert_eq!(flagged.len(), 1, "matrix.rs non-test narrowing cast only");
        assert_eq!(
            (flagged[0].file.as_str(), flagged[0].line),
            ("crates/gf256/src/matrix.rs", 2)
        );
    }

    #[test]
    fn flags_undocumented_pub_items_including_methods() {
        let text = "/// Documented.\n\
                    #[derive(Debug)]\n\
                    pub struct Ok1;\n\
                    pub struct Bare;\n\
                    pub(crate) struct Internal;\n\
                    pub use std::vec::Vec;\n\
                    impl Ok1 {\n\
                        pub fn naked(&self) {}\n\
                    }\n";
        let outcome = run_all(&[file("rse", "crates/rse/src/lib.rs", false, text)]);
        let flagged = &rule(&outcome, "documented-pub-api").violations;
        assert_eq!(
            flagged.len(),
            2,
            "{:?}",
            flagged.iter().map(|v| &v.message).collect::<Vec<_>>()
        );
        assert_eq!(flagged[0].line, 4);
        assert!(flagged[1].message.contains("Ok1::naked"));
    }

    #[test]
    fn flags_todo_everywhere_including_tests() {
        let text = "fn f() { todo!() }\n\
                    #[cfg(test)]\n\
                    mod tests { fn t() { unimplemented!() } }\n";
        let outcome = run_all(&[file("netsim", "crates/netsim/src/lib.rs", false, text)]);
        assert_eq!(
            rule(&outcome, "no-todo-or-unimplemented").violations.len(),
            2
        );
    }

    #[test]
    fn determinism_flags_order_leaking_iteration() {
        let text = "use std::collections::HashMap;\n\
                    struct S { sessions: HashMap<u32, u8> }\n\
                    fn f(s: &S, out: &mut Vec<u32>) {\n\
                        out.extend(s.sessions.iter().map(|(&k, _)| k));\n\
                        for (k, _) in &s.sessions { out.push(*k); }\n\
                    }\n";
        let outcome = run_all(&[file(
            "grouprekey",
            "crates/grouprekey/src/d.rs",
            false,
            text,
        )]);
        let flagged = &rule(&outcome, "determinism-unordered-iter").violations;
        assert_eq!(
            flagged.len(),
            2,
            "{:?}",
            flagged.iter().map(|v| &v.message).collect::<Vec<_>>()
        );
        assert_eq!(flagged[0].line, 4);
        assert_eq!(flagged[1].line, 5);
    }

    #[test]
    fn determinism_exempts_order_insensitive_and_sorted_uses() {
        let text = "use std::collections::{HashMap, HashSet};\n\
                    fn f(m: &HashMap<u32, u8>) -> bool {\n\
                        let all_ok = m.values().all(|&v| v > 0);\n\
                        let n = m.keys().count();\n\
                        let mut ids: Vec<u32> = m.keys().copied().collect();\n\
                        ids.sort_unstable();\n\
                        let index: HashMap<u32, u8> = m.iter().map(|(&k, &v)| (k, v)).collect();\n\
                        let set: HashSet<u32> = m.keys().copied().collect();\n\
                        all_ok && n > 0 && !ids.is_empty() && index.len() == set.len()\n\
                    }\n";
        let outcome = run_all(&[file("keytree", "crates/keytree/src/d.rs", false, text)]);
        let flagged = &rule(&outcome, "determinism-unordered-iter").violations;
        assert!(
            flagged.is_empty(),
            "{:?}",
            flagged
                .iter()
                .map(|v| (v.line, &v.message))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn determinism_respects_suppressions_and_ignores_out_of_scope_crates() {
        let text = "use std::collections::HashMap;\n\
                    fn f(m: &HashMap<u32, u8>, out: &mut Vec<u32>) {\n\
                        // xcheck-allow(determinism-unordered-iter): sink is re-sorted downstream\n\
                        out.extend(m.keys().copied());\n\
                    }\n";
        let outcome = run_all(&[
            file("bench", "crates/bench/src/d.rs", false, text),
            file(
                "netsim",
                "crates/netsim/src/d.rs",
                false,
                text.replace(
                    "// xcheck-allow(determinism-unordered-iter): sink is re-sorted downstream\n",
                    "",
                )
                .as_str(),
            ),
        ]);
        assert!(rule(&outcome, "determinism-unordered-iter")
            .violations
            .is_empty());
        assert_eq!(outcome.suppressions.len(), 1);
    }

    #[test]
    fn atomics_require_justification_and_are_inventoried() {
        let text = "use std::sync::atomic::{AtomicU64, Ordering};\n\
                    fn f(c: &AtomicU64) -> u64 {\n\
                        c.fetch_add(1, Ordering::Relaxed); // xcheck-ordering: pure counter\n\
                        c.load(Ordering::Acquire);\n\
                        c.load(Ordering::SeqCst)\n\
                    }\n";
        let outcome = run_all(&[file("obs", "crates/obs/src/r.rs", false, text)]);
        let flagged = &rule(&outcome, "atomics-ordering-justified").violations;
        assert_eq!(flagged.len(), 1, "only the bare SeqCst");
        assert_eq!(flagged[0].line, 5);
        assert_eq!(outcome.atomics.len(), 3, "all sites inventoried");
        assert_eq!(
            outcome.atomics[0].justification.as_deref(),
            Some("pure counter")
        );
        assert_eq!(outcome.atomics[1].ordering, "Acquire");
    }

    #[test]
    fn no_alloc_marks_are_inventoried_and_smells_flagged() {
        let text = "// xcheck: no_alloc\n\
                    fn hot(buf: &mut Vec<u8>) {\n\
                        buf.fill(0);\n\
                        let v = vec![1, 2];\n\
                        let s = x.to_vec();\n\
                        let b = Box::new(3);\n\
                        let w = Vec::new();\n\
                    }\n\
                    // xcheck: no_alloc\n\
                    const NOT_A_FN: usize = 3;\n";
        let outcome = run_all(&[file("rse", "crates/rse/src/h.rs", false, text)]);
        let flagged = &rule(&outcome, "no-alloc-static").violations;
        assert_eq!(
            flagged.len(),
            4,
            "{:?}",
            flagged
                .iter()
                .map(|v| (v.line, &v.message))
                .collect::<Vec<_>>()
        );
        assert!(flagged[3].message.contains("not followed by a function"));
        assert_eq!(outcome.no_alloc_marks.len(), 1);
        assert_eq!(outcome.no_alloc_marks[0].function, "hot");
    }

    #[test]
    fn vec_new_is_not_an_alloc_smell_but_with_capacity_is() {
        let text = "// xcheck: no_alloc\n\
                    fn hot() {\n\
                        let a: Vec<u8> = Vec::new();\n\
                        let b: Vec<u8> = Vec::with_capacity(4);\n\
                    }\n";
        let outcome = run_all(&[file("rse", "crates/rse/src/h.rs", false, text)]);
        let flagged = &rule(&outcome, "no-alloc-static").violations;
        assert_eq!(flagged.len(), 1);
        assert_eq!(flagged[0].line, 4);
    }
}
