//! The project rules and the engine that runs them over lexed sources.

use crate::lexer::{self, Tok};
use crate::walk::SourceFile;

/// Crates whose non-test code must be panic-free (wire/hot paths and the
/// simulation engine the figures depend on).
const PANIC_FREE_CRATES: [&str; 8] = [
    "wirecrypto",
    "rekeymsg",
    "rse",
    "netsim",
    "grouprekey",
    "keytree",
    "rekeyproto",
    "obs",
];

/// Files in which `as` casts to narrower integer types are forbidden
/// (GF(2^8) field and matrix cores, where a silent truncation corrupts
/// algebra instead of crashing).
const NO_TRUNCATING_CAST_FILES: [&str; 2] =
    ["crates/gf256/src/field.rs", "crates/gf256/src/matrix.rs"];

/// Crates whose entire `pub` surface must carry doc comments.
const DOCUMENTED_CRATES: [&str; 6] = [
    "keytree",
    "rse",
    "netsim",
    "grouprekey",
    "rekeyproto",
    "obs",
];

/// Integer types an `as` cast may truncate into.
const NARROW_INT_TYPES: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// One rule violation at a source location.
pub struct Violation {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable description of this occurrence.
    pub message: String,
}

/// A rule's identity and its collected violations.
pub struct RuleReport {
    /// Stable machine-readable rule id.
    pub id: &'static str,
    /// One-line description for the human report.
    pub description: &'static str,
    /// All violations, in path/line order.
    pub violations: Vec<Violation>,
}

/// The outcome of a full lint run.
pub struct Outcome {
    /// Per-rule reports, in fixed rule order.
    pub rules: Vec<RuleReport>,
}

impl Outcome {
    /// Total violations across all rules.
    pub fn total_violations(&self) -> usize {
        self.rules.iter().map(|r| r.violations.len()).sum()
    }
}

/// Runs every rule over the scanned sources.
pub fn run_all(sources: &[SourceFile]) -> Outcome {
    let mut no_panic = RuleReport {
        id: "no-unwrap-in-wire-crates",
        description: "no `.unwrap()` / `.expect()` in non-test code of wirecrypto, rekeymsg, rse, \
                      netsim, grouprekey, keytree, rekeyproto, obs",
        violations: Vec::new(),
    };
    let mut forbid_unsafe = RuleReport {
        id: "forbid-unsafe-code",
        description: "`#![forbid(unsafe_code)]` present in every crate root",
        violations: Vec::new(),
    };
    let mut no_truncating_cast = RuleReport {
        id: "no-truncating-cast-in-gf256",
        description: "no `as` casts to narrower integer types in gf256 field/matrix code",
        violations: Vec::new(),
    };
    let mut pub_docs = RuleReport {
        id: "documented-pub-api",
        description: "every `pub` item in keytree, rse, netsim, grouprekey, rekeyproto, and obs \
                      carries a doc comment",
        violations: Vec::new(),
    };
    let mut no_todo = RuleReport {
        id: "no-todo-or-unimplemented",
        description: "no `todo!` / `unimplemented!` anywhere in the workspace",
        violations: Vec::new(),
    };

    for source in sources {
        let toks = lexer::lex(&source.text);
        let in_test = lexer::test_region_lines(&source.text, &toks);

        if PANIC_FREE_CRATES.contains(&source.crate_name.as_str()) {
            check_no_panic_helpers(source, &toks, &in_test, &mut no_panic.violations);
        }
        if source.is_crate_root {
            check_forbid_unsafe(source, &mut forbid_unsafe.violations);
        }
        if NO_TRUNCATING_CAST_FILES.contains(&source.rel_path.as_str()) {
            check_no_truncating_cast(source, &toks, &in_test, &mut no_truncating_cast.violations);
        }
        if DOCUMENTED_CRATES.contains(&source.crate_name.as_str()) {
            check_pub_docs(source, &in_test, &mut pub_docs.violations);
        }
        check_no_todo(source, &toks, &mut no_todo.violations);
    }

    Outcome {
        rules: vec![
            no_panic,
            forbid_unsafe,
            no_truncating_cast,
            pub_docs,
            no_todo,
        ],
    }
}

/// `.unwrap(` / `.expect(` token triples outside `#[cfg(test)]` regions.
fn check_no_panic_helpers(
    source: &SourceFile,
    toks: &[lexer::SpannedTok],
    in_test: &[bool],
    out: &mut Vec<Violation>,
) {
    for window in toks.windows(3) {
        let [dot, name, paren] = window else {
            continue;
        };
        let Tok::Ident(method) = &name.tok else {
            continue;
        };
        if dot.tok == Tok::Punct('.')
            && paren.tok == Tok::Punct('(')
            && (method == "unwrap" || method == "expect")
            && !in_test.get(name.line as usize).copied().unwrap_or(false)
        {
            out.push(Violation {
                file: source.rel_path.clone(),
                line: name.line,
                message: format!("`.{method}()` in non-test code; return a typed error instead"),
            });
        }
    }
}

/// Crate roots must open with `#![forbid(unsafe_code)]`.
fn check_forbid_unsafe(source: &SourceFile, out: &mut Vec<Violation>) {
    let has_forbid = source
        .text
        .lines()
        .map(|line| line.split_whitespace().collect::<String>())
        .any(|compact| compact == "#![forbid(unsafe_code)]");
    if !has_forbid {
        out.push(Violation {
            file: source.rel_path.clone(),
            line: 1,
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        });
    }
}

/// `as u8`-style narrowing casts outside test code.
fn check_no_truncating_cast(
    source: &SourceFile,
    toks: &[lexer::SpannedTok],
    in_test: &[bool],
    out: &mut Vec<Violation>,
) {
    for window in toks.windows(2) {
        let [kw, target] = window else { continue };
        let (Tok::Ident(kw_name), Tok::Ident(target_name)) = (&kw.tok, &target.tok) else {
            continue;
        };
        if kw_name == "as"
            && NARROW_INT_TYPES.contains(&target_name.as_str())
            && !in_test.get(kw.line as usize).copied().unwrap_or(false)
        {
            out.push(Violation {
                file: source.rel_path.clone(),
                line: kw.line,
                message: format!(
                    "truncating `as {target_name}` cast; use `try_from`/`from` so narrowing is checked"
                ),
            });
        }
    }
}

/// `pub` items (outside test code) must be preceded by a `///` doc
/// comment, possibly with attributes in between.
fn check_pub_docs(source: &SourceFile, in_test: &[bool], out: &mut Vec<Violation>) {
    const ITEM_KEYWORDS: [&str; 10] = [
        "fn", "struct", "enum", "trait", "type", "const", "static", "mod", "union", "unsafe",
    ];
    let lines: Vec<&str> = source.text.lines().collect();
    for (idx, raw) in lines.iter().enumerate() {
        let line_no = idx as u32 + 1;
        if in_test.get(line_no as usize).copied().unwrap_or(false) {
            continue;
        }
        let trimmed = raw.trim_start();
        let Some(rest) = trimmed.strip_prefix("pub ") else {
            continue;
        };
        // `pub(crate)` / `pub(super)` items are not public API; `pub use`
        // re-exports inherit the target's docs.
        let mut words = rest.split_whitespace();
        let Some(first) = words.next() else { continue };
        let keyword = if first == "const" || first == "async" {
            words.next().filter(|w| *w == "fn").map_or(first, |_| "fn")
        } else {
            first
        };
        if !ITEM_KEYWORDS.contains(&keyword) {
            continue;
        }

        let mut documented = false;
        let mut above = idx;
        while above > 0 {
            above -= 1;
            let prev = lines[above].trim_start();
            if prev.starts_with("#[") || prev.starts_with("#!") {
                continue;
            }
            documented = prev.starts_with("///") || prev.starts_with("#[doc");
            break;
        }
        if !documented {
            out.push(Violation {
                file: source.rel_path.clone(),
                line: line_no,
                message: format!("undocumented public item: `{}`", trimmed.trim_end()),
            });
        }
    }
}

/// `todo!` / `unimplemented!` anywhere, test code included.
fn check_no_todo(source: &SourceFile, toks: &[lexer::SpannedTok], out: &mut Vec<Violation>) {
    for window in toks.windows(2) {
        let [name, bang] = window else { continue };
        let Tok::Ident(macro_name) = &name.tok else {
            continue;
        };
        if bang.tok == Tok::Punct('!') && (macro_name == "todo" || macro_name == "unimplemented") {
            out.push(Violation {
                file: source.rel_path.clone(),
                line: name.line,
                message: format!("`{macro_name}!` left in the tree"),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(crate_name: &str, rel_path: &str, is_crate_root: bool, text: &str) -> SourceFile {
        SourceFile {
            crate_name: crate_name.to_string(),
            rel_path: rel_path.to_string(),
            is_crate_root,
            text: text.to_string(),
        }
    }

    fn rule<'o>(outcome: &'o Outcome, id: &str) -> &'o RuleReport {
        outcome.rules.iter().find(|r| r.id == id).unwrap()
    }

    #[test]
    fn flags_unwrap_only_outside_tests_and_only_in_scoped_crates() {
        let text = "#![forbid(unsafe_code)]\n\
                    fn live() { x.unwrap(); y.expect(\"m\"); z.unwrap_or(0); }\n\
                    #[cfg(test)]\n\
                    mod tests { fn t() { x.unwrap(); } }\n";
        let outcome = run_all(&[
            file("rse", "crates/rse/src/lib.rs", true, text),
            file("bench", "crates/bench/src/lib.rs", true, text),
        ]);
        let flagged = &rule(&outcome, "no-unwrap-in-wire-crates").violations;
        assert_eq!(flagged.len(), 2, "unwrap + expect in rse only");
        assert!(flagged
            .iter()
            .all(|v| v.file.contains("rse") && v.line == 2));
    }

    #[test]
    fn simulation_crates_are_panic_free_and_netsim_is_documented() {
        let text = "#![forbid(unsafe_code)]\n\
                    pub fn live() { x.unwrap(); }\n";
        let outcome = run_all(&[
            file("netsim", "crates/netsim/src/lib.rs", true, text),
            file("grouprekey", "crates/grouprekey/src/lib.rs", true, text),
        ]);
        let panics = &rule(&outcome, "no-unwrap-in-wire-crates").violations;
        assert_eq!(panics.len(), 2, "both simulation crates are in scope");
        let docs = &rule(&outcome, "documented-pub-api").violations;
        assert_eq!(docs.len(), 2, "both crates' pub surfaces need docs");
    }

    #[test]
    fn flags_missing_forbid_unsafe_in_crate_roots_only() {
        let outcome = run_all(&[
            file("keytree", "crates/keytree/src/lib.rs", true, "pub mod x;\n"),
            file("keytree", "crates/keytree/src/x.rs", false, "fn f() {}\n"),
        ]);
        let flagged = &rule(&outcome, "forbid-unsafe-code").violations;
        assert_eq!(flagged.len(), 1);
        assert_eq!(flagged[0].file, "crates/keytree/src/lib.rs");
    }

    #[test]
    fn flags_narrowing_casts_in_gf256_core_only() {
        let text = "#![forbid(unsafe_code)]\n\
                    fn f(c: usize) -> u32 { c as u32 }\n\
                    fn widen(c: u8) -> u64 { c as u64 }\n\
                    #[cfg(test)]\n\
                    mod tests { fn t(c: usize) -> u8 { c as u8 } }\n";
        let outcome = run_all(&[
            file("gf256", "crates/gf256/src/matrix.rs", false, text),
            file("gf256", "crates/gf256/src/tables.rs", false, text),
        ]);
        let flagged = &rule(&outcome, "no-truncating-cast-in-gf256").violations;
        assert_eq!(flagged.len(), 1, "matrix.rs non-test narrowing cast only");
        assert_eq!(
            (flagged[0].file.as_str(), flagged[0].line),
            ("crates/gf256/src/matrix.rs", 2)
        );
    }

    #[test]
    fn flags_undocumented_pub_items() {
        let text = "/// Documented.\n\
                    #[derive(Debug)]\n\
                    pub struct Ok1;\n\
                    pub struct Bare;\n\
                    pub(crate) struct Internal;\n\
                    pub use std::vec::Vec;\n";
        let outcome = run_all(&[file("rse", "crates/rse/src/lib.rs", false, text)]);
        let flagged = &rule(&outcome, "documented-pub-api").violations;
        assert_eq!(flagged.len(), 1);
        assert_eq!(flagged[0].line, 4);
    }

    #[test]
    fn flags_todo_everywhere_including_tests() {
        let text = "fn f() { todo!() }\n\
                    #[cfg(test)]\n\
                    mod tests { fn t() { unimplemented!() } }\n";
        let outcome = run_all(&[file("netsim", "crates/netsim/src/lib.rs", false, text)]);
        assert_eq!(
            rule(&outcome, "no-todo-or-unimplemented").violations.len(),
            2
        );
    }
}
