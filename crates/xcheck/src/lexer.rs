//! A minimal Rust lexer for lint scanning.
//!
//! Strips comments, string/char literals and numbers, and yields a flat
//! stream of identifier and punctuation tokens tagged with line numbers.
//! From that stream it derives, per line, whether the line sits inside a
//! `#[cfg(test)]`-gated item — the information every non-test-scoped rule
//! needs. This is deliberately not a full parser: it only has to be exact
//! about the token shapes the rules match (`.unwrap(`, `as u32`,
//! `todo !`, attribute brackets, and brace nesting).

/// One significant token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword.
    Ident(String),
    /// A single punctuation character.
    Punct(char),
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone)]
pub struct SpannedTok {
    /// 1-based line number.
    pub line: u32,
    /// The token itself.
    pub tok: Tok,
}

/// Lexes `src` into spanned tokens, discarding comments, literals and
/// whitespace.
pub fn lex(src: &str) -> Vec<SpannedTok> {
    let chars: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut line: u32 = 1;
    let mut i = 0;

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            '/' if chars.get(i + 1) == Some(&'/') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                let mut depth = 1;
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                i = skip_string(&chars, i, &mut line);
            }
            '\'' => {
                i = skip_quote(&chars, i, &mut line);
            }
            'r' | 'b' if raw_string_start(&chars, i).is_some() => {
                let hashes = raw_string_start(&chars, i).unwrap_or(0);
                i = skip_raw_string(&chars, i, hashes, &mut line);
            }
            'b' if chars.get(i + 1) == Some(&'"') => {
                i = skip_string(&chars, i + 1, &mut line);
            }
            'b' if chars.get(i + 1) == Some(&'\'') => {
                i = skip_quote(&chars, i + 1, &mut line);
            }
            c if c.is_ascii_digit() => {
                i = skip_number(&chars, i);
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                toks.push(SpannedTok {
                    line,
                    tok: Tok::Ident(chars[start..i].iter().collect()),
                });
            }
            c if c.is_whitespace() => {
                i += 1;
            }
            other => {
                toks.push(SpannedTok {
                    line,
                    tok: Tok::Punct(other),
                });
                i += 1;
            }
        }
    }
    toks
}

/// If position `i` starts a raw (byte) string (`r"`, `r#"`, `br"`, ...),
/// returns the number of `#` delimiters; otherwise `None`.
fn raw_string_start(chars: &[char], i: usize) -> Option<usize> {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (chars.get(j) == Some(&'"')).then_some(hashes)
}

fn skip_raw_string(chars: &[char], mut i: usize, hashes: usize, line: &mut u32) -> usize {
    // Consume up to and including the opening quote.
    while i < chars.len() && chars[i] != '"' {
        i += 1;
    }
    i += 1;
    while i < chars.len() {
        if chars[i] == '\n' {
            *line += 1;
            i += 1;
        } else if chars[i] == '"' && chars[i + 1..].iter().take(hashes).all(|&c| c == '#') {
            return i + 1 + hashes;
        } else {
            i += 1;
        }
    }
    i
}

/// Skips a `"..."` literal starting at the opening quote.
fn skip_string(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < chars.len() {
        match chars[i] {
            '\\' => i += 2,
            '\n' => {
                *line += 1;
                i += 1;
            }
            '"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

/// Skips either a lifetime marker or a `'x'` char literal starting at the
/// quote.
fn skip_quote(chars: &[char], i: usize, line: &mut u32) -> usize {
    let is_lifetime = chars
        .get(i + 1)
        .is_some_and(|c| c.is_alphabetic() || *c == '_')
        && chars.get(i + 2) != Some(&'\'');
    if is_lifetime {
        // Leave the identifier for the main loop; it is harmless.
        return i + 1;
    }
    let mut j = i + 1;
    while j < chars.len() {
        match chars[j] {
            '\\' => j += 2,
            '\n' => {
                *line += 1;
                j += 1;
            }
            '\'' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

/// Skips a numeric literal (including suffixes and fractional parts, but
/// not range dots).
fn skip_number(chars: &[char], mut i: usize) -> usize {
    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
        i += 1;
    }
    if chars.get(i) == Some(&'.') && chars.get(i + 1).is_some_and(|c| c.is_ascii_digit()) {
        i += 1;
        while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
            i += 1;
        }
    }
    i
}

/// Returns, for each 1-based line of `src`, whether the line is inside a
/// `#[cfg(test)]`-gated item (the gated item itself included).
pub fn test_region_lines(src: &str, toks: &[SpannedTok]) -> Vec<bool> {
    let line_count = src.lines().count() + 1;
    let mut in_test = vec![false; line_count + 1];

    let mut depth: usize = 0;
    let mut test_depths: Vec<usize> = Vec::new();
    let mut pending_test = false;
    let mut pending_line: u32 = 0;

    let mut i = 0;
    while i < toks.len() {
        let line = toks[i].line;
        if !test_depths.is_empty() || pending_test {
            mark(&mut in_test, line);
        }
        match &toks[i].tok {
            Tok::Punct('#') if matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('['))) => {
                let (end, is_cfg_test) = scan_attribute(toks, i + 1);
                if is_cfg_test {
                    pending_test = true;
                    pending_line = line;
                }
                for covered in &toks[i..end] {
                    if pending_test || !test_depths.is_empty() {
                        mark(&mut in_test, covered.line);
                    }
                }
                i = end;
                continue;
            }
            Tok::Punct('{') => {
                depth += 1;
                if pending_test {
                    test_depths.push(depth);
                    pending_test = false;
                    for covered in pending_line..=line {
                        mark(&mut in_test, covered);
                    }
                }
            }
            Tok::Punct('}') => {
                if test_depths.last() == Some(&depth) {
                    test_depths.pop();
                    mark(&mut in_test, line);
                }
                depth = depth.saturating_sub(1);
            }
            Tok::Punct(';') if pending_test => {
                // `#[cfg(test)]` on a braceless item (e.g. `use`).
                pending_test = false;
                for covered in pending_line..=line {
                    mark(&mut in_test, covered);
                }
            }
            _ => {}
        }
        i += 1;
    }
    in_test
}

fn mark(in_test: &mut [bool], line: u32) {
    if let Some(slot) = in_test.get_mut(line as usize) {
        *slot = true;
    }
}

/// Scans an attribute whose `[` is at index `open`. Returns the index one
/// past the closing `]` and whether the attribute is exactly
/// `#[cfg(test)]`.
fn scan_attribute(toks: &[SpannedTok], open: usize) -> (usize, bool) {
    let mut depth = 0;
    let mut body: Vec<&Tok> = Vec::new();
    let mut i = open;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    let is_cfg_test = matches!(
                        body.as_slice(),
                        [Tok::Ident(cfg), Tok::Punct('('), Tok::Ident(test), Tok::Punct(')')]
                            if cfg == "cfg" && test == "test"
                    );
                    return (i + 1, is_cfg_test);
                }
            }
            tok => {
                if depth == 1 {
                    body.push(tok);
                }
            }
        }
        i += 1;
    }
    (i, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(name) => Some(name),
                Tok::Punct(_) => None,
            })
            .collect()
    }

    #[test]
    fn strings_comments_and_chars_are_stripped() {
        let src = r##"
            // a comment with .unwrap()
            /* block /* nested */ .expect( */
            let s = "literal .unwrap() inside";
            let r = r#"raw .expect( inside"#;
            let c = '\'';
            let b = b"bytes .unwrap(";
            real_ident.other()
        "##;
        let names = idents(src);
        assert!(!names.iter().any(|n| n == "unwrap" || n == "expect"));
        assert!(names.iter().any(|n| n == "real_ident"));
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let names = idents("fn f<'a>(x: &'a str) { x.unwrap() }");
        assert!(names.iter().any(|n| n == "unwrap"));
    }

    #[test]
    fn numbers_do_not_merge_with_method_calls() {
        let names = idents("let y = x.0.unwrap(); let z = 0..5; let f = 1.5e3;");
        assert!(names.iter().any(|n| n == "unwrap"));
        assert!(!names.iter().any(|n| n == "e3"));
    }

    #[test]
    fn cfg_test_regions_cover_mod_body() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let toks = lex(src);
        let in_test = test_region_lines(src, &toks);
        assert!(!in_test[1], "live fn is not test code");
        assert!(in_test[2], "attribute line");
        assert!(in_test[3] && in_test[4] && in_test[5], "mod body");
        assert!(!in_test[6], "code after the test mod");
    }

    #[test]
    fn cfg_any_is_not_treated_as_test_only() {
        let src = "#[cfg(any(test, feature = \"sanitize\"))]\nmod deep {\n    fn f() {}\n}\n";
        let toks = lex(src);
        let in_test = test_region_lines(src, &toks);
        assert!(!in_test[2] && !in_test[3], "sanitize code is live code");
    }

    #[test]
    fn braceless_cfg_test_item_does_not_leak() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn live() {}\n";
        let toks = lex(src);
        let in_test = test_region_lines(src, &toks);
        assert!(in_test[2]);
        assert!(!in_test[3]);
    }
}
