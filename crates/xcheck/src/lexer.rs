//! A minimal Rust lexer for lint scanning.
//!
//! Strips comments, string/char literals and numbers, and yields a flat
//! stream of identifier and punctuation tokens tagged with line/column
//! positions. Line comments are additionally parsed for the project's
//! in-source directive syntax (`// xcheck-allow(rule): reason`,
//! `// xcheck-ordering: why`, `// xcheck: no_alloc`), which the rules use
//! for suppressions, atomics justifications, and hot-path marks. From the
//! token stream it also derives, per line, whether the line sits inside a
//! `#[cfg(test)]`-gated item — the information every non-test-scoped rule
//! needs. This is deliberately not a full parser: it only has to be exact
//! about the token shapes the rules match (`.unwrap(`, `as u32`,
//! `todo !`, attribute brackets, and brace nesting).

/// One significant token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword.
    Ident(String),
    /// A single punctuation character.
    Punct(char),
}

/// A token plus the 1-based source position it starts at.
#[derive(Debug, Clone)]
pub struct SpannedTok {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
    /// The token itself.
    pub tok: Tok,
}

/// An `// xcheck-...` directive comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directive {
    /// 1-based line the comment starts on.
    pub line: u32,
    /// What the directive says.
    pub kind: DirectiveKind,
}

/// The recognized directive forms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DirectiveKind {
    /// `// xcheck-allow(rule-id): reason` — suppress `rule-id` on this
    /// line (trailing form) or the next line (standalone form).
    Allow {
        /// The rule being suppressed.
        rule: String,
        /// Why (must be non-empty; enforced by the suppression rule).
        reason: String,
    },
    /// `// xcheck-ordering: why` — justifies an atomic memory-ordering
    /// choice on this or the next line.
    OrderingJustification {
        /// The justification text.
        reason: String,
    },
    /// `// xcheck: no_alloc` — marks the next function as an
    /// allocation-free hot path (statically scanned, dynamically pinned
    /// by the `xcheck-rt` harness).
    NoAllocMark,
}

/// The result of lexing one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Significant tokens in source order.
    pub toks: Vec<SpannedTok>,
    /// Directive comments in source order.
    pub directives: Vec<Directive>,
}

/// Lexes `src` into spanned tokens and directives, discarding ordinary
/// comments, literals and whitespace.
pub fn lex(src: &str) -> Lexed {
    Lexer {
        chars: src.chars().collect(),
        i: 0,
        line: 1,
        line_start: 0,
        out: Lexed::default(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    i: usize,
    line: u32,
    /// Index of the first character of the current line.
    line_start: usize,
    out: Lexed,
}

impl Lexer {
    fn col(&self) -> u32 {
        (self.i - self.line_start) as u32 + 1
    }

    fn newline(&mut self) {
        self.line += 1;
        self.line_start = self.i + 1;
    }

    fn run(mut self) -> Lexed {
        while self.i < self.chars.len() {
            let c = self.chars[self.i];
            match c {
                '\n' => {
                    self.newline();
                    self.i += 1;
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string(),
                '\'' => self.quote(),
                'r' | 'b' if raw_string_start(&self.chars, self.i).is_some() => {
                    let hashes = raw_string_start(&self.chars, self.i).unwrap_or(0);
                    self.raw_string(hashes);
                }
                'b' if self.peek(1) == Some('"') => {
                    self.i += 1;
                    self.string();
                }
                'b' if self.peek(1) == Some('\'') => {
                    self.i += 1;
                    self.quote();
                }
                c if c.is_ascii_digit() => self.number(),
                c if c.is_alphabetic() || c == '_' => self.ident(),
                c if c.is_whitespace() => self.i += 1,
                other => {
                    self.out.toks.push(SpannedTok {
                        line: self.line,
                        col: self.col(),
                        tok: Tok::Punct(other),
                    });
                    self.i += 1;
                }
            }
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.i + ahead).copied()
    }

    /// Consumes a `//` comment, parsing it as a directive if it is one.
    fn line_comment(&mut self) {
        let start = self.i;
        while self.i < self.chars.len() && self.chars[self.i] != '\n' {
            self.i += 1;
        }
        let text: String = self.chars[start..self.i].iter().collect();
        if let Some(kind) = parse_directive(&text) {
            self.out.directives.push(Directive {
                line: self.line,
                kind,
            });
        }
    }

    fn block_comment(&mut self) {
        let mut depth = 1;
        self.i += 2;
        while self.i < self.chars.len() && depth > 0 {
            if self.chars[self.i] == '\n' {
                self.newline();
                self.i += 1;
            } else if self.chars[self.i] == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.i += 2;
            } else if self.chars[self.i] == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.i += 2;
            } else {
                self.i += 1;
            }
        }
    }

    /// Skips a `"..."` literal starting at the opening quote.
    fn string(&mut self) {
        self.i += 1;
        while self.i < self.chars.len() {
            match self.chars[self.i] {
                '\\' => self.i += 2,
                '\n' => {
                    self.newline();
                    self.i += 1;
                }
                '"' => {
                    self.i += 1;
                    return;
                }
                _ => self.i += 1,
            }
        }
    }

    /// Skips either a lifetime marker or a `'x'` char literal starting at
    /// the quote.
    fn quote(&mut self) {
        let is_lifetime = self.peek(1).is_some_and(|c| c.is_alphabetic() || c == '_')
            && self.peek(2) != Some('\'');
        if is_lifetime {
            // Leave the identifier for the main loop; it is harmless.
            self.i += 1;
            return;
        }
        self.i += 1;
        while self.i < self.chars.len() {
            match self.chars[self.i] {
                '\\' => self.i += 2,
                '\n' => {
                    self.newline();
                    self.i += 1;
                }
                '\'' => {
                    self.i += 1;
                    return;
                }
                _ => self.i += 1,
            }
        }
    }

    fn raw_string(&mut self, hashes: usize) {
        // Consume up to and including the opening quote.
        while self.i < self.chars.len() && self.chars[self.i] != '"' {
            self.i += 1;
        }
        self.i += 1;
        while self.i < self.chars.len() {
            if self.chars[self.i] == '\n' {
                self.newline();
                self.i += 1;
            } else if self.chars[self.i] == '"'
                && self.chars[self.i + 1..]
                    .iter()
                    .take(hashes)
                    .all(|&c| c == '#')
            {
                self.i += 1 + hashes;
                return;
            } else {
                self.i += 1;
            }
        }
    }

    /// Skips a numeric literal (including suffixes and fractional parts,
    /// but not range dots).
    fn number(&mut self) {
        while self.i < self.chars.len()
            && (self.chars[self.i].is_alphanumeric() || self.chars[self.i] == '_')
        {
            self.i += 1;
        }
        if self.peek(0) == Some('.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            self.i += 1;
            while self.i < self.chars.len()
                && (self.chars[self.i].is_alphanumeric() || self.chars[self.i] == '_')
            {
                self.i += 1;
            }
        }
    }

    fn ident(&mut self) {
        let start = self.i;
        let col = self.col();
        while self.i < self.chars.len()
            && (self.chars[self.i].is_alphanumeric() || self.chars[self.i] == '_')
        {
            self.i += 1;
        }
        self.out.toks.push(SpannedTok {
            line: self.line,
            col,
            tok: Tok::Ident(self.chars[start..self.i].iter().collect()),
        });
    }
}

/// Parses the text of one `//` comment as a directive, if it is one.
///
/// Accepts any number of leading slashes (so `/// xcheck: no_alloc`
/// inside docs also counts) and surrounding whitespace.
fn parse_directive(comment: &str) -> Option<DirectiveKind> {
    let body = comment.trim_start_matches('/').trim();
    if let Some(rest) = body.strip_prefix("xcheck-allow(") {
        let (rule, after) = rest.split_once(')')?;
        let reason = after.trim().strip_prefix(':').unwrap_or("").trim();
        return Some(DirectiveKind::Allow {
            rule: rule.trim().to_string(),
            reason: reason.to_string(),
        });
    }
    if let Some(rest) = body.strip_prefix("xcheck-ordering") {
        let reason = rest.trim().strip_prefix(':').unwrap_or("").trim();
        return Some(DirectiveKind::OrderingJustification {
            reason: reason.to_string(),
        });
    }
    if let Some(rest) = body.strip_prefix("xcheck:") {
        if rest.trim() == "no_alloc" {
            return Some(DirectiveKind::NoAllocMark);
        }
    }
    None
}

/// If position `i` starts a raw (byte) string (`r"`, `r#"`, `br"`, ...),
/// returns the number of `#` delimiters; otherwise `None`.
fn raw_string_start(chars: &[char], i: usize) -> Option<usize> {
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return None;
    }
    j += 1;
    let mut hashes = 0;
    while chars.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (chars.get(j) == Some(&'"')).then_some(hashes)
}

/// Returns, for each 1-based line of `src`, whether the line is inside a
/// `#[cfg(test)]`-gated item (the gated item itself included).
pub fn test_region_lines(src: &str, toks: &[SpannedTok]) -> Vec<bool> {
    let line_count = src.lines().count() + 1;
    let mut in_test = vec![false; line_count + 1];

    let mut depth: usize = 0;
    let mut test_depths: Vec<usize> = Vec::new();
    let mut pending_test = false;
    let mut pending_line: u32 = 0;

    let mut i = 0;
    while i < toks.len() {
        let line = toks[i].line;
        if !test_depths.is_empty() || pending_test {
            mark(&mut in_test, line);
        }
        match &toks[i].tok {
            Tok::Punct('#') if matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Punct('['))) => {
                let (end, is_cfg_test) = scan_attribute(toks, i + 1);
                if is_cfg_test {
                    pending_test = true;
                    pending_line = line;
                }
                for covered in &toks[i..end] {
                    if pending_test || !test_depths.is_empty() {
                        mark(&mut in_test, covered.line);
                    }
                }
                i = end;
                continue;
            }
            Tok::Punct('{') => {
                depth += 1;
                if pending_test {
                    test_depths.push(depth);
                    pending_test = false;
                    for covered in pending_line..=line {
                        mark(&mut in_test, covered);
                    }
                }
            }
            Tok::Punct('}') => {
                if test_depths.last() == Some(&depth) {
                    test_depths.pop();
                    mark(&mut in_test, line);
                }
                depth = depth.saturating_sub(1);
            }
            Tok::Punct(';') if pending_test => {
                // `#[cfg(test)]` on a braceless item (e.g. `use`).
                pending_test = false;
                for covered in pending_line..=line {
                    mark(&mut in_test, covered);
                }
            }
            _ => {}
        }
        i += 1;
    }
    in_test
}

fn mark(in_test: &mut [bool], line: u32) {
    if let Some(slot) = in_test.get_mut(line as usize) {
        *slot = true;
    }
}

/// Scans an attribute whose `[` is at index `open`. Returns the index one
/// past the closing `]` and whether the attribute is exactly
/// `#[cfg(test)]`.
fn scan_attribute(toks: &[SpannedTok], open: usize) -> (usize, bool) {
    let mut depth = 0;
    let mut body: Vec<&Tok> = Vec::new();
    let mut i = open;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    let is_cfg_test = matches!(
                        body.as_slice(),
                        [Tok::Ident(cfg), Tok::Punct('('), Tok::Ident(test), Tok::Punct(')')]
                            if cfg == "cfg" && test == "test"
                    );
                    return (i + 1, is_cfg_test);
                }
            }
            tok => {
                if depth == 1 {
                    body.push(tok);
                }
            }
        }
        i += 1;
    }
    (i, false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .toks
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(name) => Some(name),
                Tok::Punct(_) => None,
            })
            .collect()
    }

    #[test]
    fn strings_comments_and_chars_are_stripped() {
        let src = r##"
            // a comment with .unwrap()
            /* block /* nested */ .expect( */
            let s = "literal .unwrap() inside";
            let r = r#"raw .expect( inside"#;
            let c = '\'';
            let b = b"bytes .unwrap(";
            real_ident.other()
        "##;
        let names = idents(src);
        assert!(!names.iter().any(|n| n == "unwrap" || n == "expect"));
        assert!(names.iter().any(|n| n == "real_ident"));
    }

    #[test]
    fn lifetimes_do_not_eat_code() {
        let names = idents("fn f<'a>(x: &'a str) { x.unwrap() }");
        assert!(names.iter().any(|n| n == "unwrap"));
    }

    #[test]
    fn numbers_do_not_merge_with_method_calls() {
        let names = idents("let y = x.0.unwrap(); let z = 0..5; let f = 1.5e3;");
        assert!(names.iter().any(|n| n == "unwrap"));
        assert!(!names.iter().any(|n| n == "e3"));
    }

    #[test]
    fn columns_are_one_based_character_positions() {
        let lexed = lex("let x = y;\n    foo.bar();\n");
        let foo = lexed
            .toks
            .iter()
            .find(|t| t.tok == Tok::Ident("foo".to_string()))
            .expect("foo is lexed");
        assert_eq!((foo.line, foo.col), (2, 5));
        let first = &lexed.toks[0];
        assert_eq!((first.line, first.col), (1, 1));
    }

    #[test]
    fn directives_are_parsed_from_line_comments() {
        let src = "\
            // xcheck-allow(no-unwrap-in-wire-crates): div by zero is the documented contract\n\
            x.unwrap();\n\
            self.a.store(0, Ordering::Relaxed); // xcheck-ordering: counter, no ordering needed\n\
            // xcheck: no_alloc\n\
            fn hot() {}\n\
            // xcheck-allow(rule-without-reason)\n";
        let lexed = lex(src);
        assert_eq!(lexed.directives.len(), 4);
        assert_eq!(
            lexed.directives[0].kind,
            DirectiveKind::Allow {
                rule: "no-unwrap-in-wire-crates".to_string(),
                reason: "div by zero is the documented contract".to_string(),
            }
        );
        assert_eq!(lexed.directives[0].line, 1);
        assert_eq!(
            lexed.directives[1].kind,
            DirectiveKind::OrderingJustification {
                reason: "counter, no ordering needed".to_string(),
            }
        );
        assert_eq!(lexed.directives[1].line, 3);
        assert_eq!(lexed.directives[2].kind, DirectiveKind::NoAllocMark);
        assert_eq!(lexed.directives[2].line, 4);
        assert_eq!(
            lexed.directives[3].kind,
            DirectiveKind::Allow {
                rule: "rule-without-reason".to_string(),
                reason: String::new(),
            }
        );
    }

    #[test]
    fn directives_inside_string_literals_are_ignored() {
        let src = "let s = \"// xcheck: no_alloc\";\n";
        assert!(lex(src).directives.is_empty());
    }

    #[test]
    fn cfg_test_regions_cover_mod_body() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let lexed = lex(src);
        let in_test = test_region_lines(src, &lexed.toks);
        assert!(!in_test[1], "live fn is not test code");
        assert!(in_test[2], "attribute line");
        assert!(in_test[3] && in_test[4] && in_test[5], "mod body");
        assert!(!in_test[6], "code after the test mod");
    }

    #[test]
    fn cfg_any_is_not_treated_as_test_only() {
        let src = "#[cfg(any(test, feature = \"sanitize\"))]\nmod deep {\n    fn f() {}\n}\n";
        let lexed = lex(src);
        let in_test = test_region_lines(src, &lexed.toks);
        assert!(!in_test[2] && !in_test[3], "sanitize code is live code");
    }

    #[test]
    fn braceless_cfg_test_item_does_not_leak() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn live() {}\n";
        let lexed = lex(src);
        let in_test = test_region_lines(src, &lexed.toks);
        assert!(in_test[2]);
        assert!(!in_test[3]);
    }
}
