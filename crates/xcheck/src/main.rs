//! `xcheck` — the workspace's project-rule lint driver.
//!
//! Walks `crates/*/src/**/*.rs` (plus the umbrella crate's `src/`),
//! builds an item-aware source model per file ([`model`]), and enforces
//! the rules listed in [`rules::RULES`]: panic-free hot/wire crates,
//! `forbid(unsafe_code)` everywhere, no truncating casts in the GF(2^8)
//! core, documented public API, no `todo!`/`unimplemented!`,
//! deterministic iteration in output-producing crates, justified atomic
//! orderings, and statically allocation-free `no_alloc` functions.
//!
//! Run with `cargo run -p xcheck`. Prints a human report with
//! `file:line:col` spans, writes the machine-readable `xcheck/v1` JSON
//! report (default `target/xcheck.json`, override with `--json PATH`),
//! and exits nonzero when any rule is violated so it can gate CI.
//! `--root PATH` points the scanner at a different workspace checkout;
//! `--list-rules` prints the rule table the README embeds. Violations
//! are suppressible in-source with `// xcheck-allow(rule-id): reason`.

#![forbid(unsafe_code)]

mod lexer;
mod model;
mod report;
mod rules;
mod walk;

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = default_root();
    let mut json_path: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(value) => root = PathBuf::from(value),
                None => return usage("--root needs a path"),
            },
            "--json" => match args.next() {
                Some(value) => json_path = Some(PathBuf::from(value)),
                None => return usage("--json needs a path"),
            },
            "--list-rules" => {
                report::print_rule_table();
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "usage: xcheck [--root WORKSPACE_DIR] [--json REPORT_PATH] [--list-rules]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let sources = match walk::collect_sources(&root) {
        Ok(sources) => sources,
        Err(err) => {
            eprintln!("xcheck: cannot walk {}: {err}", root.display());
            return ExitCode::FAILURE;
        }
    };
    if sources.is_empty() {
        eprintln!("xcheck: no Rust sources found under {}", root.display());
        return ExitCode::FAILURE;
    }

    let outcome = rules::run_all(&sources);
    report::print_human(&outcome, sources.len());

    let json_path = json_path.unwrap_or_else(|| root.join("target").join("xcheck.json"));
    if let Err(err) = report::write_json(&outcome, sources.len(), &json_path) {
        eprintln!("xcheck: cannot write {}: {err}", json_path.display());
        return ExitCode::FAILURE;
    }
    println!("json summary: {}", json_path.display());

    if outcome.total_violations() == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("xcheck: {problem}");
    eprintln!("usage: xcheck [--root WORKSPACE_DIR] [--json REPORT_PATH] [--list-rules]");
    ExitCode::FAILURE
}

/// The workspace root two levels above this crate's manifest, so
/// `cargo run -p xcheck` works from any directory.
fn default_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("."))
}
