//! Incremental share collection and decoding.
//!
//! The receiver side of an erasure block rarely sees shares in one batch:
//! data packets dribble in, parities follow across rounds, duplicates
//! arrive. [`Assembler`] accepts shares as they come, rejects conflicting
//! duplicates, reports exactly how many more shares are needed (the `a`
//! value a NACK carries), and decodes the moment `k` distinct shares are
//! present.

use crate::coder::{decode, RseError, Share, MAX_SYMBOLS};

/// Incremental collector for one FEC block.
#[derive(Debug, Clone)]
pub struct Assembler {
    k: usize,
    len: Option<usize>,
    shares: Vec<Option<Vec<u8>>>,
    have: usize,
}

impl Assembler {
    /// Creates an assembler for a block of `k` data packets.
    pub fn new(k: usize) -> Result<Self, RseError> {
        if k == 0 || k >= MAX_SYMBOLS {
            return Err(RseError::InvalidBlockSize(k));
        }
        Ok(Assembler {
            k,
            len: None,
            shares: vec![None; MAX_SYMBOLS],
            have: 0,
        })
    }

    /// Block size `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Distinct shares held.
    pub fn have(&self) -> usize {
        self.have
    }

    /// Additional shares needed before the block decodes — the `a` value
    /// reported in NACKs. Zero once decodable.
    pub fn deficit(&self) -> usize {
        self.k.saturating_sub(self.have)
    }

    /// True once `k` distinct shares are present.
    pub fn ready(&self) -> bool {
        self.have >= self.k
    }

    /// Offers one share. Duplicate indices with identical bytes are
    /// ignored; conflicting bytes for the same index are an error (a
    /// corrupted or forged share).
    pub fn offer(&mut self, share: Share) -> Result<(), RseError> {
        if share.index >= MAX_SYMBOLS {
            return Err(RseError::IndexOutOfRange {
                index: share.index,
                max: MAX_SYMBOLS - 1,
            });
        }
        match &self.len {
            None => self.len = Some(share.data.len()),
            Some(expected) => {
                if share.data.len() != *expected {
                    return Err(RseError::LengthMismatch {
                        expected: *expected,
                        got: share.data.len(),
                    });
                }
            }
        }
        match &self.shares[share.index] {
            Some(existing) if *existing == share.data => Ok(()), // idempotent
            Some(_) => Err(RseError::DuplicateShare(share.index)),
            None => {
                self.shares[share.index] = Some(share.data);
                self.have += 1;
                Ok(())
            }
        }
    }

    /// Decodes the original `k` data packets; errors with
    /// [`RseError::NotEnoughShares`] while short.
    pub fn reconstruct(&self) -> Result<Vec<Vec<u8>>, RseError> {
        let shares: Vec<Share> = self
            .shares
            .iter()
            .enumerate()
            .filter_map(|(index, s)| {
                s.as_ref().map(|data| Share {
                    index,
                    data: data.clone(),
                })
            })
            .collect();
        decode(self.k, &shares)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coder::BlockEncoder;

    fn block(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| (0..len).map(|b| (i * 13 + b * 7 + 1) as u8).collect())
            .collect()
    }

    #[test]
    fn deficit_counts_down_and_decodes() {
        let k = 4;
        let data = block(k, 16);
        let mut enc = BlockEncoder::new(k).unwrap();
        let mut asm = Assembler::new(k).unwrap();
        assert_eq!(asm.deficit(), 4);

        asm.offer(Share {
            index: 1,
            data: data[1].clone(),
        })
        .unwrap();
        asm.offer(Share {
            index: 3,
            data: data[3].clone(),
        })
        .unwrap();
        assert_eq!(asm.deficit(), 2);
        assert!(asm.reconstruct().is_err());

        asm.offer(Share {
            index: 4,
            data: enc.parity(0, &data).unwrap(),
        })
        .unwrap();
        asm.offer(Share {
            index: 6,
            data: enc.parity(2, &data).unwrap(),
        })
        .unwrap();
        assert!(asm.ready());
        assert_eq!(asm.reconstruct().unwrap(), data);
    }

    #[test]
    fn idempotent_duplicates_ignored() {
        let data = block(2, 8);
        let mut asm = Assembler::new(2).unwrap();
        let s = Share {
            index: 0,
            data: data[0].clone(),
        };
        asm.offer(s.clone()).unwrap();
        asm.offer(s).unwrap();
        assert_eq!(asm.have(), 1);
    }

    #[test]
    fn conflicting_duplicate_rejected() {
        let data = block(2, 8);
        let mut asm = Assembler::new(2).unwrap();
        asm.offer(Share {
            index: 0,
            data: data[0].clone(),
        })
        .unwrap();
        let forged = Share {
            index: 0,
            data: vec![0xFF; 8],
        };
        assert_eq!(asm.offer(forged), Err(RseError::DuplicateShare(0)));
        assert_eq!(asm.have(), 1, "forgery must not displace the original");
    }

    #[test]
    fn length_mismatch_rejected() {
        let mut asm = Assembler::new(2).unwrap();
        asm.offer(Share {
            index: 0,
            data: vec![1, 2, 3],
        })
        .unwrap();
        assert_eq!(
            asm.offer(Share {
                index: 1,
                data: vec![1]
            }),
            Err(RseError::LengthMismatch {
                expected: 3,
                got: 1
            })
        );
    }

    #[test]
    fn extra_shares_beyond_k_are_fine() {
        let k = 3;
        let data = block(k, 8);
        let mut enc = BlockEncoder::new(k).unwrap();
        let mut asm = Assembler::new(k).unwrap();
        for (i, d) in data.iter().enumerate() {
            asm.offer(Share {
                index: i,
                data: d.clone(),
            })
            .unwrap();
        }
        asm.offer(Share {
            index: k,
            data: enc.parity(0, &data).unwrap(),
        })
        .unwrap();
        assert_eq!(asm.have(), 4);
        assert_eq!(asm.reconstruct().unwrap(), data);
    }

    #[test]
    fn invalid_k_rejected() {
        assert!(Assembler::new(0).is_err());
        assert!(Assembler::new(255).is_err());
    }
}
