//! The encoder/decoder core.

use gf256::{Gf256, Matrix};

/// Maximum number of code symbols (data + parity) per block: the number of
/// distinct evaluation points available in GF(2^8)*.
pub const MAX_SYMBOLS: usize = 255;

/// Errors surfaced by the erasure coder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RseError {
    /// The block size `k` must satisfy `1 <= k < MAX_SYMBOLS`.
    InvalidBlockSize(usize),
    /// A parity index or share index exceeds the field limit.
    IndexOutOfRange {
        /// The offending share/parity index.
        index: usize,
        /// The maximum allowed index (inclusive).
        max: usize,
    },
    /// The same share index was supplied twice to the decoder.
    DuplicateShare(usize),
    /// Fewer than `k` shares were supplied.
    NotEnoughShares {
        /// Shares supplied.
        got: usize,
        /// Shares required (the block size `k`).
        need: usize,
    },
    /// Shares (or data packets) do not all have the same length.
    LengthMismatch {
        /// Expected packet length in bytes.
        expected: usize,
        /// The mismatching length encountered.
        got: usize,
    },
    /// `encode` was called with the wrong number of data packets.
    WrongDataCount {
        /// Packets supplied.
        got: usize,
        /// Packets required (the block size `k`).
        need: usize,
    },
    /// The decode matrix was singular. Unreachable for distinct evaluation
    /// points (the MDS property); surfaced as an error rather than a panic
    /// so the decoder is total.
    SingularMatrix,
}

impl core::fmt::Display for RseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RseError::InvalidBlockSize(k) => {
                write!(f, "block size {k} outside 1..{MAX_SYMBOLS}")
            }
            RseError::IndexOutOfRange { index, max } => {
                write!(f, "share index {index} exceeds maximum {max}")
            }
            RseError::DuplicateShare(i) => write!(f, "duplicate share index {i}"),
            RseError::NotEnoughShares { got, need } => {
                write!(f, "need {need} shares to decode, got {got}")
            }
            RseError::LengthMismatch { expected, got } => {
                write!(f, "expected packet length {expected}, got {got}")
            }
            RseError::WrongDataCount { got, need } => {
                write!(f, "expected {need} data packets, got {got}")
            }
            RseError::SingularMatrix => write!(f, "decode matrix is singular"),
        }
    }
}

impl std::error::Error for RseError {}

/// One received code symbol handed to [`decode`].
///
/// `index < k` means "data packet `index`"; `index >= k` means "parity
/// packet `index - k`".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Share {
    /// Global symbol index within the block.
    pub index: usize,
    /// Packet body.
    pub data: Vec<u8>,
}

/// Evaluation point for symbol `i`.
#[inline]
fn point(i: usize) -> Gf256 {
    debug_assert!(i < MAX_SYMBOLS);
    Gf256::alpha_pow(i)
}

/// The Lagrange basis coefficients `L_i(x)` over nodes `x_0 .. x_{k-1}`
/// evaluated at `x`: the row vector `c` with `value(x) = sum_i c[i] d_i`.
fn lagrange_row(k: usize, x: Gf256) -> Vec<Gf256> {
    let nodes: Vec<Gf256> = (0..k).map(point).collect();
    let mut row = vec![Gf256::ZERO; k];
    for i in 0..k {
        let mut num = Gf256::ONE;
        let mut den = Gf256::ONE;
        for j in 0..k {
            if i == j {
                continue;
            }
            num *= x + nodes[j]; // x - x_j (char 2)
            den *= nodes[i] + nodes[j];
        }
        row[i] = num / den;
    }
    row
}

/// Systematic encoder for one FEC block of size `k`.
///
/// Rows of parity coefficients are computed on first use and cached, so a
/// long-lived server encoder pays the row-construction cost (O(k^2)) once
/// per distinct parity index and O(k * len) per encoded packet thereafter.
#[derive(Debug, Clone)]
pub struct BlockEncoder {
    k: usize,
    rows: Vec<Vec<Gf256>>,
}

impl BlockEncoder {
    /// Creates an encoder for blocks of `k` data packets.
    pub fn new(k: usize) -> Result<Self, RseError> {
        if k == 0 || k >= MAX_SYMBOLS {
            return Err(RseError::InvalidBlockSize(k));
        }
        Ok(BlockEncoder {
            k,
            rows: Vec::new(),
        })
    }

    /// The block size `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Maximum number of distinct parity packets this block admits.
    pub fn max_parities(&self) -> usize {
        MAX_SYMBOLS - self.k
    }

    fn row(&mut self, parity_index: usize) -> Result<&[Gf256], RseError> {
        let max = self.max_parities();
        if parity_index >= max {
            return Err(RseError::IndexOutOfRange {
                index: parity_index,
                max: max - 1,
            });
        }
        while self.rows.len() <= parity_index {
            let j = self.rows.len();
            self.rows.push(lagrange_row(self.k, point(self.k + j)));
        }
        Ok(&self.rows[parity_index])
    }

    /// Encodes parity packet `parity_index` over the `k` data packets.
    ///
    /// All data packets must share one length (the protocol zero-pads ENC
    /// packets to a fixed length for exactly this reason).
    pub fn parity<D: AsRef<[u8]>>(
        &mut self,
        parity_index: usize,
        data: &[D],
    ) -> Result<Vec<u8>, RseError> {
        if data.len() != self.k {
            return Err(RseError::WrongDataCount {
                got: data.len(),
                need: self.k,
            });
        }
        let len = data[0].as_ref().len();
        for d in data {
            if d.as_ref().len() != len {
                return Err(RseError::LengthMismatch {
                    expected: len,
                    got: d.as_ref().len(),
                });
            }
        }
        let row = self.row(parity_index)?.to_vec();
        let mut out = vec![0u8; len];
        for (coeff, d) in row.iter().zip(data) {
            Gf256::mul_acc_slice(*coeff, d.as_ref(), &mut out);
        }
        Ok(out)
    }

    /// Encodes a consecutive run of parity packets
    /// `first .. first + count`.
    pub fn parities<D: AsRef<[u8]>>(
        &mut self,
        first: usize,
        count: usize,
        data: &[D],
    ) -> Result<Vec<Vec<u8>>, RseError> {
        (first..first + count)
            .map(|j| self.parity(j, data))
            .collect()
    }
}

/// Reconstructs the `k` original data packets from any `k` distinct shares.
///
/// Shares beyond the first `k` distinct ones are ignored. Share `index`
/// follows the convention of [`Share`]. The decode cost is dominated by a
/// `k x k` matrix inversion plus `k^2` multiply-accumulate passes; when all
/// surviving shares are data packets the inversion short-circuits to a copy.
pub fn decode(k: usize, shares: &[Share]) -> Result<Vec<Vec<u8>>, RseError> {
    if k == 0 || k >= MAX_SYMBOLS {
        return Err(RseError::InvalidBlockSize(k));
    }
    // Collect up to k distinct shares, validating as we go.
    let mut chosen: Vec<&Share> = Vec::with_capacity(k);
    let mut seen = vec![false; MAX_SYMBOLS];
    let mut len: Option<usize> = None;
    for share in shares {
        if share.index >= MAX_SYMBOLS {
            return Err(RseError::IndexOutOfRange {
                index: share.index,
                max: MAX_SYMBOLS - 1,
            });
        }
        if seen[share.index] {
            return Err(RseError::DuplicateShare(share.index));
        }
        seen[share.index] = true;
        match len {
            None => len = Some(share.data.len()),
            Some(expected) => {
                if share.data.len() != expected {
                    return Err(RseError::LengthMismatch {
                        expected,
                        got: share.data.len(),
                    });
                }
            }
        }
        if chosen.len() < k {
            chosen.push(share);
        }
    }
    if chosen.len() < k {
        return Err(RseError::NotEnoughShares {
            got: chosen.len(),
            need: k,
        });
    }
    // k >= 1 was checked above, so at least one share set `len`.
    let len = len.unwrap_or(0);

    // Fast path: all data shares present among the chosen.
    if chosen.iter().all(|s| s.index < k) {
        let mut out = vec![Vec::new(); k];
        for s in &chosen {
            out[s.index] = s.data.clone();
        }
        return Ok(out);
    }

    // General path: rows of the generator matrix for the received indices.
    // Row for a data share i < k is the unit vector e_i; row for parity j
    // is the Lagrange row at x_{k+j} (which equals L evaluated at that
    // point, by the systematic construction).
    let gen = Matrix::from_fn(k, k, |r, c| {
        let idx = chosen[r].index;
        if idx < k {
            if c == idx {
                Gf256::ONE
            } else {
                Gf256::ZERO
            }
        } else {
            lagrange_row(k, point(idx))[c]
        }
    });
    let inv = gen.inverse().ok_or(RseError::SingularMatrix)?;

    let mut out = vec![vec![0u8; len]; k];
    for (i, out_pkt) in out.iter_mut().enumerate() {
        for (r, share) in chosen.iter().enumerate() {
            Gf256::mul_acc_slice(inv[(i, r)], &share.data, out_pkt);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| (0..len).map(|b| (i * 37 + b * 11 + 5) as u8).collect())
            .collect()
    }

    #[test]
    fn block_size_bounds() {
        assert!(matches!(
            BlockEncoder::new(0),
            Err(RseError::InvalidBlockSize(0))
        ));
        assert!(matches!(
            BlockEncoder::new(255),
            Err(RseError::InvalidBlockSize(255))
        ));
        assert!(BlockEncoder::new(1).is_ok());
        assert!(BlockEncoder::new(254).is_ok());
    }

    #[test]
    fn no_loss_fast_path() {
        let k = 4;
        let data = block(k, 32);
        let shares: Vec<Share> = data
            .iter()
            .enumerate()
            .map(|(i, d)| Share {
                index: i,
                data: d.clone(),
            })
            .collect();
        assert_eq!(decode(k, &shares).unwrap(), data);
    }

    #[test]
    fn single_parity_repairs_single_loss() {
        let k = 5;
        let data = block(k, 64);
        let mut enc = BlockEncoder::new(k).unwrap();
        let p = enc.parity(0, &data).unwrap();
        for lost in 0..k {
            let mut shares: Vec<Share> = (0..k)
                .filter(|&i| i != lost)
                .map(|i| Share {
                    index: i,
                    data: data[i].clone(),
                })
                .collect();
            shares.push(Share {
                index: k,
                data: p.clone(),
            });
            assert_eq!(decode(k, &shares).unwrap(), data, "lost = {lost}");
        }
    }

    #[test]
    fn all_parities_no_data() {
        let k = 6;
        let data = block(k, 16);
        let mut enc = BlockEncoder::new(k).unwrap();
        let shares: Vec<Share> = (0..k)
            .map(|j| Share {
                index: k + j,
                data: enc.parity(j, &data).unwrap(),
            })
            .collect();
        assert_eq!(decode(k, &shares).unwrap(), data);
    }

    #[test]
    fn late_parities_compose_with_early_ones() {
        // Reactive rounds: parities 0..2 sent proactively, 5..7 later.
        let k = 4;
        let data = block(k, 48);
        let mut enc = BlockEncoder::new(k).unwrap();
        let shares = vec![
            Share {
                index: k + 1,
                data: enc.parity(1, &data).unwrap(),
            },
            Share {
                index: k + 5,
                data: enc.parity(5, &data).unwrap(),
            },
            Share {
                index: 2,
                data: data[2].clone(),
            },
            Share {
                index: k + 6,
                data: enc.parity(6, &data).unwrap(),
            },
        ];
        assert_eq!(decode(k, &shares).unwrap(), data);
    }

    #[test]
    fn extra_shares_are_ignored() {
        let k = 3;
        let data = block(k, 8);
        let mut enc = BlockEncoder::new(k).unwrap();
        let mut shares: Vec<Share> = (0..k)
            .map(|i| Share {
                index: i,
                data: data[i].clone(),
            })
            .collect();
        shares.push(Share {
            index: k,
            data: enc.parity(0, &data).unwrap(),
        });
        assert_eq!(decode(k, &shares).unwrap(), data);
    }

    #[test]
    fn not_enough_shares() {
        let k = 4;
        let data = block(k, 8);
        let shares: Vec<Share> = (0..k - 1)
            .map(|i| Share {
                index: i,
                data: data[i].clone(),
            })
            .collect();
        assert_eq!(
            decode(k, &shares),
            Err(RseError::NotEnoughShares { got: 3, need: 4 })
        );
    }

    #[test]
    fn duplicate_share_rejected() {
        let k = 2;
        let data = block(k, 8);
        let shares = vec![
            Share {
                index: 0,
                data: data[0].clone(),
            },
            Share {
                index: 0,
                data: data[0].clone(),
            },
        ];
        assert_eq!(decode(k, &shares), Err(RseError::DuplicateShare(0)));
    }

    #[test]
    fn length_mismatch_rejected() {
        let k = 2;
        let shares = vec![
            Share {
                index: 0,
                data: vec![1, 2, 3],
            },
            Share {
                index: 1,
                data: vec![1, 2],
            },
        ];
        assert_eq!(
            decode(k, &shares),
            Err(RseError::LengthMismatch {
                expected: 3,
                got: 2
            })
        );
    }

    #[test]
    fn parity_index_limit() {
        let k = 250;
        let data = block(k, 4);
        let mut enc = BlockEncoder::new(k).unwrap();
        assert_eq!(enc.max_parities(), 5);
        assert!(enc.parity(4, &data).is_ok());
        assert_eq!(
            enc.parity(5, &data),
            Err(RseError::IndexOutOfRange { index: 5, max: 4 })
        );
    }

    #[test]
    fn wrong_data_count_rejected() {
        let mut enc = BlockEncoder::new(4).unwrap();
        let data = block(3, 8);
        assert_eq!(
            enc.parity(0, &data),
            Err(RseError::WrongDataCount { got: 3, need: 4 })
        );
    }

    #[test]
    fn k_equals_one_duplicates_packet() {
        // With k = 1 every parity is a copy of the single data packet
        // (evaluations of a constant polynomial).
        let data = block(1, 8);
        let mut enc = BlockEncoder::new(1).unwrap();
        for j in 0..10 {
            assert_eq!(enc.parity(j, &data).unwrap(), data[0]);
        }
    }

    #[test]
    fn share_index_out_of_field_rejected() {
        let shares = vec![Share {
            index: 255,
            data: vec![0],
        }];
        assert_eq!(
            decode(1, &shares),
            Err(RseError::IndexOutOfRange {
                index: 255,
                max: 254
            })
        );
    }

    #[test]
    fn error_display_is_informative() {
        let msgs = [
            RseError::InvalidBlockSize(0).to_string(),
            RseError::DuplicateShare(7).to_string(),
            RseError::NotEnoughShares { got: 1, need: 3 }.to_string(),
        ];
        assert!(msgs[0].contains("block size"));
        assert!(msgs[1].contains('7'));
        assert!(msgs[2].contains("need 3"));
    }
}
