//! The encoder/decoder core.
//!
//! Both directions are built on the `gf256` bulk kernels: coefficient
//! rows come from a per-coder [`LagrangeCtx`] (O(k²) weight setup once,
//! O(k) per row) and the byte loops go through the autovectorized
//! `mul_acc_slice_wide` kernel. Rows are cached inside the coder, so the
//! quadratic setup and the per-row construction are both paid once per
//! coder lifetime, not per packet — and cloning a warmed [`BlockEncoder`]
//! clones its caches, which is how a server shares the setup cost across
//! the blocks of every message it sends.

use gf256::{bulk, Gf256, LagrangeCtx, Matrix};

/// Maximum number of code symbols (data + parity) per block: the number of
/// distinct evaluation points available in GF(2^8)*.
pub const MAX_SYMBOLS: usize = 255;

/// Errors surfaced by the erasure coder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RseError {
    /// The block size `k` must satisfy `1 <= k < MAX_SYMBOLS`.
    InvalidBlockSize(usize),
    /// A parity index or share index exceeds the field limit.
    IndexOutOfRange {
        /// The offending share/parity index.
        index: usize,
        /// The maximum allowed index (inclusive).
        max: usize,
    },
    /// The same share index was supplied twice to the decoder.
    DuplicateShare(usize),
    /// Fewer than `k` shares were supplied.
    NotEnoughShares {
        /// Shares supplied.
        got: usize,
        /// Shares required (the block size `k`).
        need: usize,
    },
    /// Shares (or data packets) do not all have the same length.
    LengthMismatch {
        /// Expected packet length in bytes.
        expected: usize,
        /// The mismatching length encountered.
        got: usize,
    },
    /// `encode` was called with the wrong number of data packets.
    WrongDataCount {
        /// Packets supplied.
        got: usize,
        /// Packets required (the block size `k`).
        need: usize,
    },
    /// The decode matrix was singular. Unreachable for distinct evaluation
    /// points (the MDS property); surfaced as an error rather than a panic
    /// so the decoder is total.
    SingularMatrix,
}

impl core::fmt::Display for RseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RseError::InvalidBlockSize(k) => {
                write!(f, "block size {k} outside 1..{MAX_SYMBOLS}")
            }
            RseError::IndexOutOfRange { index, max } => {
                write!(f, "share index {index} exceeds maximum {max}")
            }
            RseError::DuplicateShare(i) => write!(f, "duplicate share index {i}"),
            RseError::NotEnoughShares { got, need } => {
                write!(f, "need {need} shares to decode, got {got}")
            }
            RseError::LengthMismatch { expected, got } => {
                write!(f, "expected packet length {expected}, got {got}")
            }
            RseError::WrongDataCount { got, need } => {
                write!(f, "expected {need} data packets, got {got}")
            }
            RseError::SingularMatrix => write!(f, "decode matrix is singular"),
        }
    }
}

impl std::error::Error for RseError {}

/// One received code symbol handed to [`decode`].
///
/// `index < k` means "data packet `index`"; `index >= k` means "parity
/// packet `index - k`".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Share {
    /// Global symbol index within the block.
    pub index: usize,
    /// Packet body.
    pub data: Vec<u8>,
}

/// Evaluation point for symbol `i`.
#[inline]
fn point(i: usize) -> Gf256 {
    debug_assert!(i < MAX_SYMBOLS);
    Gf256::alpha_pow(i)
}

/// Systematic encoder for one FEC block of size `k`.
///
/// Construction pays the O(k²) barycentric-weight setup once; each
/// distinct parity index then costs one O(k) row build on first use, and
/// every encoded packet after that is pure multiply-accumulate over the
/// cached row (no per-packet row clone — the cache is borrowed in place).
/// Cloning the encoder clones its caches, so a warmed prototype encoder
/// shares all of that work with every block cloned from it.
#[derive(Debug, Clone)]
pub struct BlockEncoder {
    k: usize,
    ctx: LagrangeCtx,
    rows: Vec<Vec<Gf256>>,
    rows_built: usize,
}

impl BlockEncoder {
    /// Creates an encoder for blocks of `k` data packets.
    pub fn new(k: usize) -> Result<Self, RseError> {
        if k == 0 || k >= MAX_SYMBOLS {
            return Err(RseError::InvalidBlockSize(k));
        }
        Ok(BlockEncoder {
            k,
            ctx: LagrangeCtx::alpha_consecutive(k),
            rows: Vec::new(),
            rows_built: 0,
        })
    }

    /// The block size `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Maximum number of distinct parity packets this block admits.
    pub fn max_parities(&self) -> usize {
        MAX_SYMBOLS - self.k
    }

    /// Number of coefficient rows constructed so far.
    ///
    /// Row construction happens at most once per distinct parity index
    /// for the lifetime of the encoder (clones included); tests use this
    /// counter to pin the no-recompute guarantee down.
    pub fn rows_built(&self) -> usize {
        self.rows_built
    }

    /// Pre-builds the coefficient rows for parity indices `0 .. count`,
    /// so clones of this encoder start with a warm cache.
    pub fn warm(&mut self, count: usize) -> Result<(), RseError> {
        if count == 0 {
            return Ok(());
        }
        self.ensure_row(count - 1)
    }

    /// Makes sure `rows[0 ..= parity_index]` exist.
    fn ensure_row(&mut self, parity_index: usize) -> Result<(), RseError> {
        let max = self.max_parities();
        if parity_index >= max {
            return Err(RseError::IndexOutOfRange {
                index: parity_index,
                max: max - 1,
            });
        }
        while self.rows.len() <= parity_index {
            let j = self.rows.len();
            self.rows.push(self.ctx.row(point(self.k + j)));
            self.rows_built += 1;
        }
        Ok(())
    }

    /// Checks that `data` is exactly `k` equal-length packets; returns
    /// that length.
    fn check_data<D: AsRef<[u8]>>(&self, data: &[D]) -> Result<usize, RseError> {
        if data.len() != self.k {
            return Err(RseError::WrongDataCount {
                got: data.len(),
                need: self.k,
            });
        }
        let len = data[0].as_ref().len();
        for d in data {
            if d.as_ref().len() != len {
                return Err(RseError::LengthMismatch {
                    expected: len,
                    got: d.as_ref().len(),
                });
            }
        }
        Ok(len)
    }

    /// Encodes parity packet `parity_index` over the `k` data packets.
    ///
    /// All data packets must share one length (the protocol zero-pads ENC
    /// packets to a fixed length for exactly this reason).
    pub fn parity<D: AsRef<[u8]>>(
        &mut self,
        parity_index: usize,
        data: &[D],
    ) -> Result<Vec<u8>, RseError> {
        let len = self.check_data(data)?;
        let mut out = vec![0u8; len];
        self.accumulate(parity_index, data, &mut out)?;
        Ok(out)
    }

    /// Encodes parity packet `parity_index` into a caller-provided
    /// buffer, avoiding the output allocation of [`parity`].
    ///
    /// `out` must match the data packet length; its prior contents are
    /// overwritten.
    ///
    /// With a warm row cache (see [`BlockEncoder::warm`]) this path is
    /// allocation-free; the `no_alloc_marks` integration test pins it
    /// under the `xcheck-rt` counting allocator.
    ///
    /// [`parity`]: BlockEncoder::parity
    // xcheck: no_alloc
    pub fn parity_into<D: AsRef<[u8]>>(
        &mut self,
        parity_index: usize,
        data: &[D],
        out: &mut [u8],
    ) -> Result<(), RseError> {
        let len = self.check_data(data)?;
        if out.len() != len {
            return Err(RseError::LengthMismatch {
                expected: len,
                got: out.len(),
            });
        }
        out.fill(0);
        self.accumulate(parity_index, data, out)
    }

    /// XORs the parity for `parity_index` into `out` (assumed zeroed),
    /// borrowing the cached row in place. Allocation-free once the row
    /// cache is warm (cold calls build missing rows via `ensure_row`).
    // xcheck: no_alloc
    fn accumulate<D: AsRef<[u8]>>(
        &mut self,
        parity_index: usize,
        data: &[D],
        out: &mut [u8],
    ) -> Result<(), RseError> {
        let _span = obs::span("rse.parity");
        let rows_before = self.rows.len();
        self.ensure_row(parity_index)?;
        if self.rows.len() == rows_before {
            obs::counter_add("rse.row_cache_hits", 1);
        } else {
            obs::counter_add("rse.rows_built", (self.rows.len() - rows_before) as u64);
        }
        // `ensure_row` ended the mutable borrow, so the cached row can be
        // borrowed directly — this is the fix for the old per-packet
        // `row(..)?.to_vec()` clone on the hottest server path.
        let row = &self.rows[parity_index];
        for (coeff, d) in row.iter().zip(data) {
            bulk::mul_acc_slice_wide(*coeff, d.as_ref(), out);
        }
        Ok(())
    }

    /// Encodes a consecutive run of parity packets
    /// `first .. first + count`.
    pub fn parities<D: AsRef<[u8]>>(
        &mut self,
        first: usize,
        count: usize,
        data: &[D],
    ) -> Result<Vec<Vec<u8>>, RseError> {
        (first..first + count)
            .map(|j| self.parity(j, data))
            .collect()
    }
}

/// Reusable decoder for blocks of size `k`.
///
/// Holds the barycentric Lagrange context and the duplicate-detection
/// table across calls, so a receiver decoding a stream of blocks pays the
/// O(k²) setup and the `MAX_SYMBOLS`-slot allocation once instead of per
/// packet-loss event. The free function [`decode`] remains as a thin
/// one-shot wrapper.
#[derive(Debug, Clone)]
pub struct Decoder {
    k: usize,
    ctx: LagrangeCtx,
    seen: Vec<bool>,
}

impl Decoder {
    /// Creates a decoder for blocks of `k` data packets.
    pub fn new(k: usize) -> Result<Self, RseError> {
        if k == 0 || k >= MAX_SYMBOLS {
            return Err(RseError::InvalidBlockSize(k));
        }
        Ok(Decoder {
            k,
            ctx: LagrangeCtx::alpha_consecutive(k),
            seen: vec![false; MAX_SYMBOLS],
        })
    }

    /// The block size `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Reconstructs the `k` original data packets from any `k` distinct
    /// shares.
    ///
    /// Only the first `k` usable shares are validated and consumed;
    /// shares beyond them are ignored entirely, so a corrupt trailing
    /// share that would not participate in reconstruction cannot fail
    /// the decode. The cost is dominated by a `k x k` matrix inversion
    /// plus `k²` multiply-accumulate passes; when all surviving shares
    /// are data packets the inversion short-circuits to a copy.
    pub fn decode(&mut self, shares: &[Share]) -> Result<Vec<Vec<u8>>, RseError> {
        let _span = obs::span("rse.decode");
        // Select the first k shares, validating only what we select. The
        // `seen` table is persistent: every slot set here is cleared
        // before returning (on success and error alike).
        let mut chosen: Vec<&Share> = Vec::with_capacity(self.k);
        let mut len: Option<usize> = None;
        let mut failure: Option<RseError> = None;
        for share in shares {
            if chosen.len() == self.k {
                break;
            }
            if share.index >= MAX_SYMBOLS {
                failure = Some(RseError::IndexOutOfRange {
                    index: share.index,
                    max: MAX_SYMBOLS - 1,
                });
                break;
            }
            if self.seen[share.index] {
                failure = Some(RseError::DuplicateShare(share.index));
                break;
            }
            match len {
                None => len = Some(share.data.len()),
                Some(expected) => {
                    if share.data.len() != expected {
                        failure = Some(RseError::LengthMismatch {
                            expected,
                            got: share.data.len(),
                        });
                        break;
                    }
                }
            }
            self.seen[share.index] = true;
            chosen.push(share);
        }
        for share in &chosen {
            self.seen[share.index] = false;
        }
        if let Some(err) = failure {
            return Err(err);
        }
        if chosen.len() < self.k {
            return Err(RseError::NotEnoughShares {
                got: chosen.len(),
                need: self.k,
            });
        }
        // k >= 1 was checked at construction, so at least one share set `len`.
        let len = len.unwrap_or(0);

        // Fast path: all data shares present among the chosen.
        if chosen.iter().all(|s| s.index < self.k) {
            let mut out = vec![Vec::new(); self.k];
            for s in &chosen {
                out[s.index] = s.data.clone();
            }
            return Ok(out);
        }

        // General path: rows of the generator matrix for the received
        // indices. A data share i < k contributes the unit vector e_i; a
        // parity at global index j contributes the Lagrange row at x_j.
        // Each row is built once (O(k) via the barycentric context), not
        // once per matrix cell.
        let gen_rows: Vec<Vec<Gf256>> = chosen
            .iter()
            .map(|s| {
                if s.index < self.k {
                    let mut unit = vec![Gf256::ZERO; self.k];
                    unit[s.index] = Gf256::ONE;
                    unit
                } else {
                    self.ctx.row(point(s.index))
                }
            })
            .collect();
        let gen = Matrix::from_fn(self.k, self.k, |r, c| gen_rows[r][c]);
        let inv = gen.inverse().ok_or(RseError::SingularMatrix)?;

        let mut out = vec![vec![0u8; len]; self.k];
        for (i, out_pkt) in out.iter_mut().enumerate() {
            for (r, share) in chosen.iter().enumerate() {
                bulk::mul_acc_slice_wide(inv[(i, r)], &share.data, out_pkt);
            }
        }
        Ok(out)
    }
}

/// One-shot reconstruction of the `k` original data packets from any `k`
/// distinct shares.
///
/// Thin wrapper constructing a fresh [`Decoder`] per call; loops that
/// decode repeatedly at the same `k` should hold a [`Decoder`] instead to
/// amortize its setup.
pub fn decode(k: usize, shares: &[Share]) -> Result<Vec<Vec<u8>>, RseError> {
    Decoder::new(k)?.decode(shares)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| (0..len).map(|b| (i * 37 + b * 11 + 5) as u8).collect())
            .collect()
    }

    #[test]
    fn block_size_bounds() {
        assert!(matches!(
            BlockEncoder::new(0),
            Err(RseError::InvalidBlockSize(0))
        ));
        assert!(matches!(
            BlockEncoder::new(255),
            Err(RseError::InvalidBlockSize(255))
        ));
        assert!(BlockEncoder::new(1).is_ok());
        assert!(BlockEncoder::new(254).is_ok());
    }

    #[test]
    fn no_loss_fast_path() {
        let k = 4;
        let data = block(k, 32);
        let shares: Vec<Share> = data
            .iter()
            .enumerate()
            .map(|(i, d)| Share {
                index: i,
                data: d.clone(),
            })
            .collect();
        assert_eq!(decode(k, &shares).unwrap(), data);
    }

    #[test]
    fn single_parity_repairs_single_loss() {
        let k = 5;
        let data = block(k, 64);
        let mut enc = BlockEncoder::new(k).unwrap();
        let p = enc.parity(0, &data).unwrap();
        for lost in 0..k {
            let mut shares: Vec<Share> = (0..k)
                .filter(|&i| i != lost)
                .map(|i| Share {
                    index: i,
                    data: data[i].clone(),
                })
                .collect();
            shares.push(Share {
                index: k,
                data: p.clone(),
            });
            assert_eq!(decode(k, &shares).unwrap(), data, "lost = {lost}");
        }
    }

    #[test]
    fn all_parities_no_data() {
        let k = 6;
        let data = block(k, 16);
        let mut enc = BlockEncoder::new(k).unwrap();
        let shares: Vec<Share> = (0..k)
            .map(|j| Share {
                index: k + j,
                data: enc.parity(j, &data).unwrap(),
            })
            .collect();
        assert_eq!(decode(k, &shares).unwrap(), data);
    }

    #[test]
    fn late_parities_compose_with_early_ones() {
        // Reactive rounds: parities 0..2 sent proactively, 5..7 later.
        let k = 4;
        let data = block(k, 48);
        let mut enc = BlockEncoder::new(k).unwrap();
        let shares = vec![
            Share {
                index: k + 1,
                data: enc.parity(1, &data).unwrap(),
            },
            Share {
                index: k + 5,
                data: enc.parity(5, &data).unwrap(),
            },
            Share {
                index: 2,
                data: data[2].clone(),
            },
            Share {
                index: k + 6,
                data: enc.parity(6, &data).unwrap(),
            },
        ];
        assert_eq!(decode(k, &shares).unwrap(), data);
    }

    #[test]
    fn extra_shares_are_ignored() {
        let k = 3;
        let data = block(k, 8);
        let mut enc = BlockEncoder::new(k).unwrap();
        let mut shares: Vec<Share> = (0..k)
            .map(|i| Share {
                index: i,
                data: data[i].clone(),
            })
            .collect();
        shares.push(Share {
            index: k,
            data: enc.parity(0, &data).unwrap(),
        });
        assert_eq!(decode(k, &shares).unwrap(), data);
    }

    #[test]
    fn corrupt_trailing_share_is_ignored() {
        // Regression: shares past the first k used to be validated (and a
        // bad one failed the whole decode) even though they could never
        // participate in reconstruction.
        let k = 3;
        let data = block(k, 8);
        let mut shares: Vec<Share> = (0..k)
            .map(|i| Share {
                index: i,
                data: data[i].clone(),
            })
            .collect();
        // Wrong length, duplicate index, and out-of-field index — each
        // arrives after k usable shares, so none may fail the decode.
        shares.push(Share {
            index: k,
            data: vec![0u8; 3],
        });
        shares.push(Share {
            index: 0,
            data: data[0].clone(),
        });
        shares.push(Share {
            index: 255,
            data: data[0].clone(),
        });
        assert_eq!(decode(k, &shares).unwrap(), data);
    }

    #[test]
    fn not_enough_shares() {
        let k = 4;
        let data = block(k, 8);
        let shares: Vec<Share> = (0..k - 1)
            .map(|i| Share {
                index: i,
                data: data[i].clone(),
            })
            .collect();
        assert_eq!(
            decode(k, &shares),
            Err(RseError::NotEnoughShares { got: 3, need: 4 })
        );
    }

    #[test]
    fn duplicate_share_rejected() {
        let k = 2;
        let data = block(k, 8);
        let shares = vec![
            Share {
                index: 0,
                data: data[0].clone(),
            },
            Share {
                index: 0,
                data: data[0].clone(),
            },
        ];
        assert_eq!(decode(k, &shares), Err(RseError::DuplicateShare(0)));
    }

    #[test]
    fn length_mismatch_rejected() {
        let k = 2;
        let shares = vec![
            Share {
                index: 0,
                data: vec![1, 2, 3],
            },
            Share {
                index: 1,
                data: vec![1, 2],
            },
        ];
        assert_eq!(
            decode(k, &shares),
            Err(RseError::LengthMismatch {
                expected: 3,
                got: 2
            })
        );
    }

    #[test]
    fn parity_index_limit() {
        let k = 250;
        let data = block(k, 4);
        let mut enc = BlockEncoder::new(k).unwrap();
        assert_eq!(enc.max_parities(), 5);
        assert!(enc.parity(4, &data).is_ok());
        assert_eq!(
            enc.parity(5, &data),
            Err(RseError::IndexOutOfRange { index: 5, max: 4 })
        );
    }

    #[test]
    fn wrong_data_count_rejected() {
        let mut enc = BlockEncoder::new(4).unwrap();
        let data = block(3, 8);
        assert_eq!(
            enc.parity(0, &data),
            Err(RseError::WrongDataCount { got: 3, need: 4 })
        );
    }

    #[test]
    fn k_equals_one_duplicates_packet() {
        // With k = 1 every parity is a copy of the single data packet
        // (evaluations of a constant polynomial).
        let data = block(1, 8);
        let mut enc = BlockEncoder::new(1).unwrap();
        for j in 0..10 {
            assert_eq!(enc.parity(j, &data).unwrap(), data[0]);
        }
    }

    #[test]
    fn share_index_out_of_field_rejected() {
        let shares = vec![Share {
            index: 255,
            data: vec![0],
        }];
        assert_eq!(
            decode(1, &shares),
            Err(RseError::IndexOutOfRange {
                index: 255,
                max: 254
            })
        );
    }

    #[test]
    fn rows_are_built_once_across_calls() {
        let k = 8;
        let data = block(k, 64);
        let mut enc = BlockEncoder::new(k).unwrap();
        assert_eq!(enc.rows_built(), 0);
        let first = enc.parities(0, 3, &data).unwrap();
        assert_eq!(enc.rows_built(), 3, "one row per distinct parity index");
        // Re-encoding the same indices (same or different data) must not
        // rebuild or clone any row.
        let again = enc.parities(0, 3, &data).unwrap();
        assert_eq!(enc.rows_built(), 3, "no recompute across parities() calls");
        assert_eq!(first, again);
        let other = block(k, 64)
            .into_iter()
            .map(|mut p| {
                p.iter_mut().for_each(|b| *b = b.wrapping_add(1));
                p
            })
            .collect::<Vec<_>>();
        enc.parity(1, &other).unwrap();
        assert_eq!(enc.rows_built(), 3);
        // A new index builds exactly one more row.
        enc.parity(3, &data).unwrap();
        assert_eq!(enc.rows_built(), 4);
    }

    #[test]
    fn warm_prebuilds_rows_and_clones_share_them() {
        let k = 8;
        let data = block(k, 32);
        let mut proto = BlockEncoder::new(k).unwrap();
        proto.warm(5).unwrap();
        assert_eq!(proto.rows_built(), 5);
        let mut clone = proto.clone();
        clone.parities(0, 5, &data).unwrap();
        assert_eq!(clone.rows_built(), 5, "warm rows reused, none rebuilt");
        assert!(matches!(
            BlockEncoder::new(250).unwrap().warm(6),
            Err(RseError::IndexOutOfRange { index: 5, max: 4 })
        ));
    }

    #[test]
    fn parity_into_matches_parity() {
        let k = 6;
        let data = block(k, 48);
        let mut enc = BlockEncoder::new(k).unwrap();
        let expect = enc.parity(2, &data).unwrap();
        let mut out = vec![0xFFu8; 48];
        enc.parity_into(2, &data, &mut out).unwrap();
        assert_eq!(out, expect, "prior buffer contents are overwritten");
        let mut short = vec![0u8; 47];
        assert_eq!(
            enc.parity_into(2, &data, &mut short),
            Err(RseError::LengthMismatch {
                expected: 48,
                got: 47
            })
        );
    }

    #[test]
    fn decoder_is_reusable_across_calls_and_errors() {
        let k = 4;
        let data = block(k, 24);
        let mut enc = BlockEncoder::new(k).unwrap();
        let mut dec = Decoder::new(k).unwrap();
        assert_eq!(dec.k(), k);

        let all_data: Vec<Share> = data
            .iter()
            .enumerate()
            .map(|(i, d)| Share {
                index: i,
                data: d.clone(),
            })
            .collect();
        assert_eq!(dec.decode(&all_data).unwrap(), data);

        // A failed decode must not poison the persistent seen-table.
        let dup = vec![all_data[0].clone(), all_data[0].clone()];
        assert_eq!(dec.decode(&dup), Err(RseError::DuplicateShare(0)));

        let mut with_parity: Vec<Share> = all_data[1..].to_vec();
        with_parity.push(Share {
            index: k + 2,
            data: enc.parity(2, &data).unwrap(),
        });
        assert_eq!(dec.decode(&with_parity).unwrap(), data);
        // And again, to prove slots from the successful run were cleared.
        assert_eq!(dec.decode(&all_data).unwrap(), data);
    }

    #[test]
    fn error_display_is_informative() {
        let msgs = [
            RseError::InvalidBlockSize(0).to_string(),
            RseError::DuplicateShare(7).to_string(),
            RseError::NotEnoughShares { got: 1, need: 3 }.to_string(),
        ];
        assert!(msgs[0].contains("block size"));
        assert!(msgs[1].contains('7'));
        assert!(msgs[2].contains("need 3"));
    }
}
