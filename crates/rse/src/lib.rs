//! A systematic Reed–Solomon **erasure** coder over GF(2^8).
//!
//! This is the FEC substrate of the rekey transport protocol. The paper
//! uses L. Rizzo's RSE coder; this crate reimplements the same class of
//! code from scratch:
//!
//! * **Systematic** — the first `k` code symbols *are* the data packets, so
//!   a user that receives its specific `ENC` packet never decodes.
//! * **MDS / any-k-of-n** — any `k` received packets out of the `n` sent
//!   reconstruct the whole block.
//! * **Incrementally extensible** — parity packets are indexed `0, 1, 2, …`
//!   and can be generated on demand round after round (the server sends
//!   `ceil((rho-1) * k)` proactive parities, then `amax[i]` fresh reactive
//!   parities per round); all parities ever generated for a block remain
//!   mutually compatible, up to the field limit of `255 - k`.
//!
//! The construction views the `k` data packets as the values of a degree
//! `< k` polynomial (per byte position) at evaluation points
//! `x_i = alpha^i`; parity `j` is the evaluation at `x_{k+j}`. Encoding a
//! parity packet costs `k` multiply-accumulate passes over the packet body,
//! i.e. time linear in `k` for fixed packet length — exactly the cost model
//! the paper's "FEC encoding time vs block size" figure assumes.
//!
//! # Example
//!
//! ```
//! use rse::{BlockEncoder, decode, Share};
//!
//! let data: Vec<Vec<u8>> = vec![b"pkt-0".to_vec(), b"pkt-1".to_vec(), b"pkt-2".to_vec()];
//! let mut enc = BlockEncoder::new(3).unwrap();
//! let p0 = enc.parity(0, &data).unwrap();
//! let p1 = enc.parity(1, &data).unwrap();
//!
//! // Lose data packets 0 and 2; keep data 1 plus the two parities.
//! let shares = vec![
//!     Share { index: 1, data: data[1].clone() },
//!     Share { index: 3, data: p0 },  // parity j has share index k + j
//!     Share { index: 4, data: p1 },
//! ];
//! let recovered = decode(3, &shares).unwrap();
//! assert_eq!(recovered, data);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assembler;
mod coder;
/// Encode/decode operation-count models used by the figure experiments.
pub mod cost;
/// Deep encode→erase→decode self-checks (tests / `--features sanitize`).
#[cfg(any(test, feature = "sanitize"))]
pub mod sanitize;

pub use assembler::Assembler;
pub use coder::{decode, BlockEncoder, Decoder, RseError, Share, MAX_SYMBOLS};
