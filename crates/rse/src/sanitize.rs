//! Deep self-checks for the erasure coder (tests and the `sanitize`
//! feature).
//!
//! [`verify_block_roundtrip`] takes the *actual* packet bodies of one FEC
//! block and proves, by construction, that the code laid over them is
//! recoverable: it re-encodes parities, erases data shares in several
//! patterns, decodes from what survives, and demands the original bodies
//! back byte for byte. The sim/driver runs it on every block of every
//! rekey message when built with `--features sanitize`.

use crate::coder::{decode, BlockEncoder, Share};

/// Turns the `k` data bodies into data shares with indices `0..k`.
fn data_shares(bodies: &[Vec<u8>]) -> Vec<Share> {
    bodies
        .iter()
        .enumerate()
        .map(|(i, b)| Share {
            index: i,
            data: b.clone(),
        })
        .collect()
}

/// Decodes `shares` and demands exactly `bodies` back.
fn decode_and_compare(
    k: usize,
    shares: &[Share],
    bodies: &[Vec<u8>],
    what: &str,
) -> Result<(), String> {
    let recovered = decode(k, shares).map_err(|e| format!("{what}: decode failed: {e}"))?;
    if recovered != bodies {
        return Err(format!("{what}: decoded bodies differ from originals"));
    }
    Ok(())
}

/// Encode→erase→decode round trip over one block's data bodies.
///
/// Checks, with up to `parities` freshly encoded parity shares:
///
/// 1. decoding from the data shares alone is the identity;
/// 2. erasing the **first** `p` data shares and substituting the parities
///    still recovers every body;
/// 3. erasing the **last** `p` data shares likewise (a different
///    Vandermonde submatrix, so this is not redundant with 2).
///
/// `p` is `parities` capped at both `k` and the field limit. Returns the
/// first violation as text; the caller decides whether to panic.
pub fn verify_block_roundtrip(k: usize, bodies: &[Vec<u8>], parities: usize) -> Result<(), String> {
    if bodies.len() != k {
        return Err(format!(
            "block has {} bodies, expected k = {k}",
            bodies.len()
        ));
    }
    let mut enc = BlockEncoder::new(k).map_err(|e| format!("bad block size: {e}"))?;
    let p = parities.min(k).min(enc.max_parities());
    let parity_shares: Vec<Share> = (0..p)
        .map(|j| {
            enc.parity(j, bodies)
                .map(|data| Share { index: k + j, data })
        })
        .collect::<Result<_, _>>()
        .map_err(|e| format!("parity encoding failed: {e}"))?;

    let data = data_shares(bodies);
    decode_and_compare(k, &data, bodies, "data-only identity")?;

    // Erase the first p data shares.
    let mut head_erased: Vec<Share> = data[p..].to_vec();
    head_erased.extend(parity_shares.iter().cloned());
    decode_and_compare(k, &head_erased, bodies, "head erasure")?;

    // Erase the last p data shares.
    let mut tail_erased: Vec<Share> = data[..k - p].to_vec();
    tail_erased.extend(parity_shares.iter().cloned());
    decode_and_compare(k, &tail_erased, bodies, "tail erasure")?;

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bodies(k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|i| (0..len).map(|j| (i * 31 + j * 7) as u8).collect())
            .collect()
    }

    #[test]
    fn roundtrip_accepts_consistent_blocks() {
        for k in [1, 2, 5, 8] {
            verify_block_roundtrip(k, &bodies(k, 64), 3).unwrap();
        }
    }

    #[test]
    fn roundtrip_rejects_wrong_body_count() {
        let err = verify_block_roundtrip(4, &bodies(3, 16), 2).unwrap_err();
        assert!(err.contains("expected k"), "{err}");
    }

    #[test]
    fn roundtrip_rejects_ragged_bodies() {
        let mut b = bodies(4, 16);
        b[2].push(0xFF);
        assert!(verify_block_roundtrip(4, &b, 2).is_err());
    }

    #[test]
    fn roundtrip_with_zero_parities_is_identity_only() {
        verify_block_roundtrip(5, &bodies(5, 8), 0).unwrap();
    }
}
