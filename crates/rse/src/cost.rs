//! Analytic cost model for FEC encoding/decoding time.
//!
//! The paper's Figure 8 (right) reports *relative* overall FEC encoding
//! time, normalising the cost of producing one parity packet for block size
//! `k` to `k` time units (L. Rizzo's coder: one parity packet costs `k`
//! multiply-accumulate passes over the packet body). This module captures
//! that model so the benchmark binaries can report encoding time in the
//! same units as the paper, independent of host speed, alongside measured
//! wall-clock times from the criterion benches.

/// Cost, in multiply-accumulate passes over one packet body, of encoding
/// one parity packet for a block of `k` data packets.
pub fn parity_packet_units(k: usize) -> u64 {
    k as u64
}

/// Total encoding cost (same units) for producing `parities_per_block[i]`
/// parity packets for block `i`.
///
/// Duplicated ENC packets in a short final block cost nothing — the caller
/// should simply not include them.
pub fn total_encoding_units(k: usize, parities_per_block: &[u64]) -> u64 {
    parities_per_block
        .iter()
        .map(|&p| p * parity_packet_units(k))
        .sum()
}

/// Decoding cost model for one user: reconstructing a block from `r`
/// received data packets and `k - r` parities costs a `k x k` matrix solve
/// (only counted when parities are actually used) plus `k` multiply-
/// accumulate passes per missing packet.
pub fn decode_units(k: usize, data_received: usize) -> u64 {
    let missing = k.saturating_sub(data_received);
    if missing == 0 {
        return 0;
    }
    // Matrix inversion ~ k^3 field ops amortised over len-byte packets is
    // negligible next to the k passes per recovered packet for realistic
    // packet sizes; we follow the paper in counting passes only.
    (missing as u64) * (k as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_cost_is_linear_in_k() {
        assert_eq!(parity_packet_units(1), 1);
        assert_eq!(parity_packet_units(10), 10);
        assert_eq!(parity_packet_units(50), 50);
    }

    #[test]
    fn total_cost_sums_blocks() {
        // 3 blocks needing 2, 0, 5 parities at k = 10.
        assert_eq!(total_encoding_units(10, &[2, 0, 5]), 70);
        assert_eq!(total_encoding_units(10, &[]), 0);
    }

    #[test]
    fn decode_free_when_all_data_received() {
        assert_eq!(decode_units(10, 10), 0);
        assert_eq!(decode_units(10, 12), 0);
    }

    #[test]
    fn decode_cost_scales_with_missing() {
        assert_eq!(decode_units(10, 9), 10);
        assert_eq!(decode_units(10, 0), 100);
    }
}
