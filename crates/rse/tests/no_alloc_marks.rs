//! Dynamic half of the `// xcheck: no_alloc` contract for
//! [`BlockEncoder::parity_into`]: once the coefficient-row cache is warm,
//! encoding a parity packet into a caller-provided buffer must perform
//! zero heap allocations.

use rse::BlockEncoder;

#[global_allocator]
static ALLOC: xcheck_rt::CountingAlloc = xcheck_rt::CountingAlloc;

#[test]
fn parity_into_is_allocation_free_with_a_warm_row_cache() {
    xcheck_rt::assert_counting();

    let k = 16;
    let len = 128;
    let data: Vec<Vec<u8>> = (0..k)
        .map(|i| (0..len).map(|j| (i * 31 + j) as u8).collect())
        .collect();
    let mut out = vec![0u8; len];

    let mut enc = BlockEncoder::new(k).unwrap();
    enc.warm(8).unwrap();
    // One unmeasured call: with `--features obs`, the first parity_into
    // registers its span/counter slots (leaked Boxes + registry pushes).
    enc.parity_into(0, &data, &mut out).unwrap();

    // Steady state: every warmed parity index encodes without touching
    // the heap — both the cache-hit path and the accumulate inner loop.
    for parity_index in 0..8 {
        xcheck_rt::assert_zero_alloc("BlockEncoder::parity_into", || {
            enc.parity_into(parity_index, &data, &mut out).unwrap()
        });
        assert!(out.iter().any(|&b| b != 0), "parity must be non-trivial");
    }

    // A cold index (row not yet built) is allowed to allocate — the
    // no_alloc contract is about the steady state, which is why the mark
    // sits on the warm path. Verify the cold call still works.
    let (allocs, _) = xcheck_rt::count_in(|| enc.parity_into(8, &data, &mut out).unwrap());
    assert!(allocs >= 1, "building a fresh row allocates");
    // ...and is immediately warm afterwards.
    xcheck_rt::assert_zero_alloc("BlockEncoder::parity_into (rewarmed)", || {
        enc.parity_into(8, &data, &mut out).unwrap()
    });
}
