//! Property-based tests: the MDS "any k of n decodes" guarantee under
//! random loss patterns, and robustness of the share-validation layer.

use proptest::prelude::*;
use rse::{decode, BlockEncoder, Share};

/// Deterministic pseudo-random data block derived from a seed.
fn block_from_seed(seed: u64, k: usize, len: usize) -> Vec<Vec<u8>> {
    (0..k)
        .map(|i| {
            (0..len)
                .map(|b| {
                    let x = seed
                        .wrapping_mul(0x9E3779B97F4A7C15)
                        .wrapping_add((i * 1031 + b * 7 + 1) as u64);
                    (x >> 24) as u8
                })
                .collect()
        })
        .collect()
}

/// Fisher–Yates selection of `take` distinct indices out of `0..n`.
fn pick_distinct(n: usize, take: usize, mut state: u64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        idx.swap(i, j);
    }
    idx.truncate(take);
    idx
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any k survivors out of k data + p parity packets reconstruct the
    /// block, regardless of which packets were lost.
    #[test]
    fn any_k_of_n_decodes(
        seed in any::<u64>(),
        k in 1usize..20,
        extra_parities in 0usize..12,
        len in 1usize..128,
        pattern in any::<u64>(),
    ) {
        let data = block_from_seed(seed, k, len);
        let mut enc = BlockEncoder::new(k).unwrap();
        let n = k + extra_parities;

        let mut all: Vec<Share> = Vec::with_capacity(n);
        for (i, d) in data.iter().enumerate() {
            all.push(Share { index: i, data: d.clone() });
        }
        for j in 0..extra_parities {
            all.push(Share { index: k + j, data: enc.parity(j, &data).unwrap() });
        }

        let survivors = pick_distinct(n, k, pattern);
        let shares: Vec<Share> = survivors.iter().map(|&i| all[i].clone()).collect();
        prop_assert_eq!(decode(k, &shares).unwrap(), data);
    }

    /// Fewer than k survivors is always reported as NotEnoughShares, never
    /// a wrong answer.
    #[test]
    fn under_k_survivors_is_an_error(
        seed in any::<u64>(),
        k in 2usize..16,
        len in 1usize..32,
        pattern in any::<u64>(),
    ) {
        let data = block_from_seed(seed, k, len);
        let mut enc = BlockEncoder::new(k).unwrap();
        let mut all: Vec<Share> = data
            .iter()
            .enumerate()
            .map(|(i, d)| Share { index: i, data: d.clone() })
            .collect();
        for j in 0..3 {
            all.push(Share { index: k + j, data: enc.parity(j, &data).unwrap() });
        }
        let survivors = pick_distinct(all.len(), k - 1, pattern);
        let shares: Vec<Share> = survivors.iter().map(|&i| all[i].clone()).collect();
        let failed = matches!(
            decode(k, &shares),
            Err(rse::RseError::NotEnoughShares { .. })
        );
        prop_assert!(failed);
    }

    /// Encoding is deterministic: the same parity index over the same data
    /// always yields the same bytes, across encoder instances.
    #[test]
    fn encoding_is_deterministic(seed in any::<u64>(), k in 1usize..12, j in 0usize..8) {
        let data = block_from_seed(seed, k, 40);
        let mut e1 = BlockEncoder::new(k).unwrap();
        let mut e2 = BlockEncoder::new(k).unwrap();
        // Warm e2's cache differently to show caching doesn't change output.
        let _ = e2.parity(j.saturating_add(1).min(e2.max_parities() - 1), &data);
        prop_assert_eq!(e1.parity(j, &data).unwrap(), e2.parity(j, &data).unwrap());
    }

    /// Parity packets are linear in the data: parity(a ^ b) = parity(a) ^ parity(b).
    #[test]
    fn parity_is_linear(sa in any::<u64>(), sb in any::<u64>(), k in 1usize..10) {
        let a = block_from_seed(sa, k, 24);
        let b = block_from_seed(sb, k, 24);
        let xored: Vec<Vec<u8>> = a
            .iter()
            .zip(&b)
            .map(|(x, y)| x.iter().zip(y).map(|(p, q)| p ^ q).collect())
            .collect();
        let mut enc = BlockEncoder::new(k).unwrap();
        let pa = enc.parity(2.min(enc.max_parities() - 1), &a).unwrap();
        let pb = enc.parity(2.min(enc.max_parities() - 1), &b).unwrap();
        let px = enc.parity(2.min(enc.max_parities() - 1), &xored).unwrap();
        let manual: Vec<u8> = pa.iter().zip(&pb).map(|(x, y)| x ^ y).collect();
        prop_assert_eq!(px, manual);
    }
}
