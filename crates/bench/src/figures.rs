//! One regeneration function per figure/table.
//!
//! Parameter values mirror the paper's captions: N = 4096, d = 4, J = 0,
//! L = N/4, alpha = 20% (p_high = 20%, p_low = 2%, p_source = 1%),
//! send interval 100 ms, 1027-byte ENC packets, k = 10, numNACK = 20 —
//! unless the figure sweeps that parameter.
//!
//! Every function writes to a caller-supplied `Write` and fans its
//! independent grid cells out with [`crate::par`]: each cell owns its
//! seeded network and controller, so the produced bytes are identical to
//! a serial run at any worker count (see `tests/parallel_figures.rs`).

use std::io::{self, Write};

use grouprekey::experiment::{
    encryption_cost_batch, encryption_cost_individual, run_experiment, workload_stats,
    ExperimentParams, ExperimentRun,
};
use grouprekey::MessageReport;
use netsim::NetworkConfig;
use rekeymsg::Layout;
use rekeyproto::ServerConfig;

use crate::{header, mean, par, Mode};

const ALPHAS: [f64; 4] = [0.0, 0.2, 0.4, 1.0];

/// The wire format's 8-bit block ID caps a message at 256 blocks. At
/// k = 1 and N = 16384 the rekey message (~430 ENC packets) cannot be
/// addressed — a real limit of the paper's packet format that the
/// experiment honours by skipping the combination.
fn wire_feasible(k: usize, n: u32) -> bool {
    !(k == 1 && n > 8192)
}

fn params_for(
    n: u32,
    alpha: f64,
    proto: ServerConfig,
    messages: usize,
    seed: u64,
) -> ExperimentParams {
    ExperimentParams {
        protocol: proto,
        net: NetworkConfig {
            alpha,
            ..NetworkConfig::default()
        },
        messages,
        seed,
        ..ExperimentParams::default()
    }
    .with_n(n)
}

/// Runs a grid of independent adaptive trajectories (one persistent
/// [`ExperimentRun`] per cell) and returns each cell's full report
/// sequence, in cell order.
fn trajectories(cells: &[ExperimentParams], messages: usize) -> Vec<Vec<MessageReport>> {
    par(cells, |&params| {
        let mut run = ExperimentRun::new(params);
        (0..messages).map(|_| run.step()).collect()
    })
}

/// Figure 6 (middle): average # ENC packets as a function of J and L
/// (N = 4096); (right): as a function of N for three (J, L) mixes.
pub fn fig06(mode: Mode, out: &mut dyn Write) -> io::Result<()> {
    header(
        out,
        "Figure 6 (middle)",
        "avg # ENC packets vs (J, L), N = 4096, d = 4",
    )?;
    let steps = [0usize, 512, 1024, 2048, 3072, 4096];
    let cells: Vec<(usize, usize)> = steps
        .iter()
        .flat_map(|&j| steps.iter().map(move |&l| (j, l)))
        .collect();
    let grid = par(&cells, |&(j, l)| {
        workload_stats(
            4096,
            4,
            j,
            l,
            mode.runs,
            600 + j as u64 * 31 + l as u64,
            &Layout::DEFAULT,
        )
    });
    write!(out, "{:>6}", "J\\L")?;
    for &l in &steps {
        write!(out, "{l:>9}")?;
    }
    writeln!(out)?;
    for (ji, &j) in steps.iter().enumerate() {
        write!(out, "{j:>6}")?;
        for li in 0..steps.len() {
            write!(out, "{:>9.1}", grid[ji * steps.len() + li].enc_packets)?;
        }
        writeln!(out)?;
    }

    header(out, "Figure 6 (right)", "avg # ENC packets vs N")?;
    writeln!(
        out,
        "{:>6} {:>16} {:>16} {:>16}",
        "N", "J=0,L=N/4", "J=N/4,L=N/4", "J=N/4,L=0"
    )?;
    let ns = [64u32, 256, 1024, 4096, 16384];
    let cells: Vec<(u32, usize, usize, u64)> = ns
        .iter()
        .flat_map(|&n| {
            let q = (n / 4) as usize;
            [(n, 0, q, 61), (n, q, q, 62), (n, q, 0, 63)]
        })
        .collect();
    let grid = par(&cells, |&(n, j, l, seed)| {
        workload_stats(n, 4, j, l, mode.runs, seed, &Layout::DEFAULT).enc_packets
    });
    for (ni, &n) in ns.iter().enumerate() {
        writeln!(
            out,
            "{:>6} {:>16.1} {:>16.1} {:>16.1}",
            n,
            grid[3 * ni],
            grid[3 * ni + 1],
            grid[3 * ni + 2]
        )?;
    }
    Ok(())
}

/// Figure 7: UKA duplication overhead vs (J, L) and vs N.
pub fn fig07(mode: Mode, out: &mut dyn Write) -> io::Result<()> {
    header(
        out,
        "Figure 7 (left)",
        "avg duplication overhead vs (J, L), N = 4096",
    )?;
    let steps = [0usize, 512, 1024, 2048, 3072, 4096];
    let cells: Vec<(usize, usize)> = steps
        .iter()
        .flat_map(|&j| steps.iter().map(move |&l| (j, l)))
        .collect();
    let grid = par(&cells, |&(j, l)| {
        workload_stats(
            4096,
            4,
            j,
            l,
            mode.runs,
            700 + j as u64 * 17 + l as u64,
            &Layout::DEFAULT,
        )
        .duplication
    });
    write!(out, "{:>6}", "J\\L")?;
    for &l in &steps {
        write!(out, "{l:>9}")?;
    }
    writeln!(out)?;
    for (ji, &j) in steps.iter().enumerate() {
        write!(out, "{j:>6}")?;
        for li in 0..steps.len() {
            write!(out, "{:>9.4}", grid[ji * steps.len() + li])?;
        }
        writeln!(out)?;
    }

    header(
        out,
        "Figure 7 (right)",
        "avg duplication overhead vs N (bound (log_d N - 1)/46)",
    )?;
    writeln!(
        out,
        "{:>6} {:>12} {:>14} {:>12} {:>10}",
        "N", "J=0,L=N/4", "J=N/4,L=N/4", "J=N/4,L=0", "bound"
    )?;
    let ns = [32u32, 128, 512, 2048, 8192];
    let cells: Vec<(u32, usize, usize, u64)> = ns
        .iter()
        .flat_map(|&n| {
            let q = (n / 4) as usize;
            [(n, 0, q, 71), (n, q, q, 72), (n, q, 0, 73)]
        })
        .collect();
    let grid = par(&cells, |&(n, j, l, seed)| {
        workload_stats(n, 4, j, l, mode.runs, seed, &Layout::DEFAULT).duplication
    });
    for (ni, &n) in ns.iter().enumerate() {
        let bound = ((n as f64).log(4.0) - 1.0) / 46.0;
        writeln!(
            out,
            "{:>6} {:>12.4} {:>14.4} {:>12.4} {:>10.4}",
            n,
            grid[3 * ni],
            grid[3 * ni + 1],
            grid[3 * ni + 2],
            bound
        )?;
    }
    Ok(())
}

/// Figure 8: server bandwidth overhead (left) and relative FEC encoding
/// time (right) vs block size k, at fixed rho = 1.
pub fn fig08(mode: Mode, out: &mut dyn Write) -> io::Result<()> {
    let ks = [1usize, 2, 5, 10, 20, 30, 40, 50];
    let cells: Vec<(usize, f64)> = ks
        .iter()
        .flat_map(|&k| ALPHAS.iter().map(move |&a| (k, a)))
        .collect();
    let grid = par(&cells, |&(k, alpha)| {
        let proto = ServerConfig {
            block_size: k,
            initial_rho: 1.0,
            adapt_rho: false,
            ..ServerConfig::default()
        };
        let reports = run_experiment(
            params_for(4096, alpha, proto, mode.messages, 800 + k as u64).multicast_only(),
        );
        let bw = mean(reports.iter().map(|r| r.bandwidth_overhead));
        let units = mean(reports.iter().map(|r| r.encoding_units as f64));
        (bw, units)
    });

    header(
        out,
        "Figure 8 (left)",
        "avg server bandwidth overhead vs k (rho = 1, reactive only)",
    )?;
    write!(out, "{:>4}", "k")?;
    for a in ALPHAS {
        write!(out, "  alpha={a:<6}")?;
    }
    writeln!(out)?;
    for (ki, &k) in ks.iter().enumerate() {
        write!(out, "{k:>4}")?;
        for ai in 0..ALPHAS.len() {
            let (bw, _) = grid[ki * ALPHAS.len() + ai];
            write!(out, "  {bw:<12.3}")?;
        }
        writeln!(out)?;
    }

    header(
        out,
        "Figure 8 (right)",
        "relative overall FEC encoding time vs k (k units per parity packet)",
    )?;
    write!(out, "{:>4}", "k")?;
    for a in ALPHAS {
        write!(out, "  alpha={a:<6}")?;
    }
    writeln!(out)?;
    for (ki, &k) in ks.iter().enumerate() {
        write!(out, "{k:>4}")?;
        for ai in 0..ALPHAS.len() {
            let (_, units) = grid[ki * ALPHAS.len() + ai];
            write!(out, "  {units:<12.0}")?;
        }
        writeln!(out)?;
    }
    Ok(())
}

/// Figure 9: first-round NACKs (left) and rounds-to-all-users (right) vs
/// the proactivity factor.
pub fn fig09(mode: Mode, out: &mut dyn Write) -> io::Result<()> {
    let rhos = [1.0, 1.2, 1.4, 1.6, 1.8, 2.0, 2.4, 3.0];
    let cells: Vec<(usize, f64, f64)> = rhos
        .iter()
        .enumerate()
        .flat_map(|(ri, &rho)| ALPHAS.iter().map(move |&a| (ri, rho, a)))
        .collect();
    let grid = par(&cells, |&(ri, rho, alpha)| {
        let proto = ServerConfig {
            initial_rho: rho,
            adapt_rho: false,
            ..ServerConfig::default()
        };
        let reports = run_experiment(
            params_for(4096, alpha, proto, mode.messages, 900 + ri as u64).multicast_only(),
        );
        let nacks = mean(reports.iter().map(|r| r.nacks_round1 as f64));
        let rounds = mean(reports.iter().map(|r| r.rounds_all_users() as f64));
        (nacks, rounds)
    });

    header(
        out,
        "Figure 9 (left)",
        "avg # NACKs after round 1 vs rho (k = 10)",
    )?;
    write!(out, "{:>5}", "rho")?;
    for a in ALPHAS {
        write!(out, "  alpha={a:<8}")?;
    }
    writeln!(out)?;
    for (ri, &rho) in rhos.iter().enumerate() {
        write!(out, "{rho:>5.1}")?;
        for ai in 0..ALPHAS.len() {
            let (nacks, _) = grid[ri * ALPHAS.len() + ai];
            write!(out, "  {nacks:<14.2}")?;
        }
        writeln!(out)?;
    }

    header(
        out,
        "Figure 9 (right)",
        "avg # rounds until every user has its encryptions vs rho",
    )?;
    write!(out, "{:>5}", "rho")?;
    for a in ALPHAS {
        write!(out, "  alpha={a:<8}")?;
    }
    writeln!(out)?;
    for (ri, &rho) in rhos.iter().enumerate() {
        write!(out, "{rho:>5.1}")?;
        for ai in 0..ALPHAS.len() {
            let (_, rounds) = grid[ri * ALPHAS.len() + ai];
            write!(out, "  {rounds:<14.2}")?;
        }
        writeln!(out)?;
    }
    Ok(())
}

/// Figure 10: per-round success distribution (left) and bandwidth
/// overhead vs rho (right), alpha = 20%.
pub fn fig10(mode: Mode, out: &mut dyn Write) -> io::Result<()> {
    header(
        out,
        "Figure 10 (left)",
        "fraction of users needing r rounds (alpha = 20%)",
    )?;
    writeln!(
        out,
        "{:>5} {:>12} {:>12} {:>12} {:>12}",
        "rho", "r=1", "r=2", "r=3", "r>=4"
    )?;
    let left_rhos = [1.0, 1.6, 2.0];
    let left = par(&left_rhos, |&rho| {
        let proto = ServerConfig {
            initial_rho: rho,
            adapt_rho: false,
            ..ServerConfig::default()
        };
        let reports =
            run_experiment(params_for(4096, 0.2, proto, mode.messages, 1000).multicast_only());
        let mut dist = [0.0f64; 4];
        let mut total = 0.0;
        for r in &reports {
            for (i, &n) in r.rounds_histogram.iter().enumerate() {
                dist[i.min(3)] += n as f64;
                total += n as f64;
            }
        }
        (dist, total)
    });
    for (&rho, (dist, total)) in left_rhos.iter().zip(&left) {
        writeln!(
            out,
            "{:>5.1} {:>12.6} {:>12.6} {:>12.6} {:>12.6}",
            rho,
            dist[0] / total,
            dist[1] / total,
            dist[2] / total,
            dist[3] / total
        )?;
    }

    header(
        out,
        "Figure 10 (right)",
        "avg server bandwidth overhead vs rho",
    )?;
    write!(out, "{:>5}", "rho")?;
    for a in ALPHAS {
        write!(out, "  alpha={a:<8}")?;
    }
    writeln!(out)?;
    let right_rhos = [1.0, 1.4, 1.8, 2.2, 2.6, 3.0];
    let cells: Vec<(f64, f64)> = right_rhos
        .iter()
        .flat_map(|&rho| ALPHAS.iter().map(move |&a| (rho, a)))
        .collect();
    let grid = par(&cells, |&(rho, alpha)| {
        let proto = ServerConfig {
            initial_rho: rho,
            adapt_rho: false,
            ..ServerConfig::default()
        };
        let reports =
            run_experiment(params_for(4096, alpha, proto, mode.messages, 1010).multicast_only());
        mean(reports.iter().map(|r| r.bandwidth_overhead))
    });
    for (ri, &rho) in right_rhos.iter().enumerate() {
        write!(out, "{rho:>5.1}")?;
        for ai in 0..ALPHAS.len() {
            write!(out, "  {:<14.3}", grid[ri * ALPHAS.len() + ai])?;
        }
        writeln!(out)?;
    }
    Ok(())
}

/// Figures 12 and 13: the adaptive rho trajectory and the controlled
/// first-round NACK counts, from initial rho = 1 and 2.
pub fn fig12_13(mode: Mode, out: &mut dyn Write) -> io::Result<()> {
    for initial in [1.0f64, 2.0] {
        header(
            out,
            "Figures 12–13",
            &format!("adaptive rho + NACK control (initial rho = {initial}, numNACK = 20)"),
        )?;
        write!(out, "{:>4}", "msg")?;
        for a in ALPHAS {
            write!(out, "  rho(a={a:<4})  nacks")?;
        }
        writeln!(out)?;
        let cells: Vec<ExperimentParams> = ALPHAS
            .iter()
            .map(|&alpha| {
                let proto = ServerConfig {
                    initial_rho: initial,
                    initial_num_nack: 20,
                    adapt_num_nack: false,
                    ..ServerConfig::default()
                };
                params_for(4096, alpha, proto, mode.trajectory, 1200).multicast_only()
            })
            .collect();
        let runs = trajectories(&cells, mode.trajectory);
        for msg in 1..=mode.trajectory {
            write!(out, "{msg:>4}")?;
            for reports in &runs {
                let r = &reports[msg - 1];
                write!(out, "  {:>10.2}  {:>5}", r.rho, r.nacks_round1)?;
            }
            writeln!(out)?;
        }
    }
    Ok(())
}

/// Figure 14: NACK control across numNACK targets (alpha = 20%).
pub fn fig14(mode: Mode, out: &mut dyn Write) -> io::Result<()> {
    let targets = [0usize, 5, 10, 40, 100];
    header(
        out,
        "Figure 14",
        "first-round NACKs per message for numNACK in {0,5,10,40,100} (initial rho = 1)",
    )?;
    write!(out, "{:>4}", "msg")?;
    for t in targets {
        write!(out, "  target={t:<4}")?;
    }
    writeln!(out)?;
    let cells: Vec<ExperimentParams> = targets
        .iter()
        .map(|&t| {
            let proto = ServerConfig {
                initial_rho: 1.0,
                initial_num_nack: t,
                adapt_num_nack: false,
                ..ServerConfig::default()
            };
            params_for(4096, 0.2, proto, mode.trajectory, 1400).multicast_only()
        })
        .collect();
    let runs = trajectories(&cells, mode.trajectory);
    for msg in 1..=mode.trajectory {
        write!(out, "{msg:>4}")?;
        for reports in &runs {
            write!(out, "  {:>10}", reports[msg - 1].nacks_round1)?;
        }
        writeln!(out)?;
    }
    Ok(())
}

/// Figure 15: NACK fluctuation across block sizes (adaptive rho).
pub fn fig15(mode: Mode, out: &mut dyn Write) -> io::Result<()> {
    let ks = [1usize, 5, 10, 30, 50];
    header(
        out,
        "Figure 15",
        "first-round NACKs per message for k in {1,5,10,30,50} (numNACK = 20)",
    )?;
    write!(out, "{:>4}", "msg")?;
    for k in ks {
        write!(out, "  k={k:<8}")?;
    }
    writeln!(out)?;
    let cells: Vec<ExperimentParams> = ks
        .iter()
        .map(|&k| {
            let proto = ServerConfig {
                block_size: k,
                initial_rho: 1.0,
                initial_num_nack: 20,
                adapt_num_nack: false,
                ..ServerConfig::default()
            };
            params_for(4096, 0.2, proto, mode.trajectory, 1500).multicast_only()
        })
        .collect();
    let runs = trajectories(&cells, mode.trajectory);
    for msg in 1..=mode.trajectory {
        write!(out, "{msg:>4}")?;
        for reports in &runs {
            write!(out, "  {:>10}", reports[msg - 1].nacks_round1)?;
        }
        writeln!(out)?;
    }
    Ok(())
}

/// Figure 16: bandwidth overhead vs k under adaptive rho, across alpha
/// (left) and across N (right).
pub fn fig16(mode: Mode, out: &mut dyn Write) -> io::Result<()> {
    let ks = [1usize, 2, 5, 10, 20, 30, 40, 50];
    header(
        out,
        "Figure 16 (left)",
        "avg server bandwidth overhead vs k (adaptive rho, numNACK = 20)",
    )?;
    write!(out, "{:>4}", "k")?;
    for a in ALPHAS {
        write!(out, "  alpha={a:<6}")?;
    }
    writeln!(out)?;
    let cells: Vec<(usize, f64)> = ks
        .iter()
        .flat_map(|&k| ALPHAS.iter().map(move |&a| (k, a)))
        .collect();
    let grid = par(&cells, |&(k, alpha)| {
        let proto = ServerConfig {
            block_size: k,
            initial_rho: 1.0,
            adapt_num_nack: false,
            ..ServerConfig::default()
        };
        let reports = run_experiment(
            params_for(4096, alpha, proto, mode.messages, 1600 + k as u64).multicast_only(),
        );
        mean(reports.iter().map(|r| r.bandwidth_overhead))
    });
    for (ki, &k) in ks.iter().enumerate() {
        write!(out, "{k:>4}")?;
        for ai in 0..ALPHAS.len() {
            write!(out, "  {:<12.3}", grid[ki * ALPHAS.len() + ai])?;
        }
        writeln!(out)?;
    }

    header(
        out,
        "Figure 16 (right)",
        "same, across group size (alpha = 20%)",
    )?;
    let ns = [1024u32, 4096, 8192, 16384];
    write!(out, "{:>4}", "k")?;
    for n in ns {
        write!(out, "  N={n:<8}")?;
    }
    writeln!(out)?;
    let cells: Vec<(usize, u32)> = ks
        .iter()
        .flat_map(|&k| ns.iter().map(move |&n| (k, n)))
        .collect();
    let grid = par(&cells, |&(k, n)| {
        if !wire_feasible(k, n) {
            return None;
        }
        let proto = ServerConfig {
            block_size: k,
            initial_rho: 1.0,
            adapt_num_nack: false,
            ..ServerConfig::default()
        };
        let reports = run_experiment(
            params_for(n, 0.2, proto, mode.messages, 1650 + k as u64).multicast_only(),
        );
        Some(mean(reports.iter().map(|r| r.bandwidth_overhead)))
    });
    for (ki, &k) in ks.iter().enumerate() {
        write!(out, "{k:>4}")?;
        for ni in 0..ns.len() {
            match grid[ki * ns.len() + ni] {
                Some(bw) => write!(out, "  {bw:<10.3}")?,
                None => write!(out, "  {:<10}", "n/a")?,
            }
        }
        writeln!(out)?;
    }
    Ok(())
}

/// Figure 17: delivery latency (rounds) vs k under adaptive rho.
pub fn fig17(mode: Mode, out: &mut dyn Write) -> io::Result<()> {
    let ks = [1usize, 2, 5, 10, 20, 30, 40, 50];
    header(
        out,
        "Figure 17",
        "avg rounds until all users done / avg rounds per user vs k (adaptive rho)",
    )?;
    write!(out, "{:>4}", "k")?;
    for a in ALPHAS {
        write!(out, "  all(a={a:<4}) user")?;
    }
    writeln!(out)?;
    let cells: Vec<(usize, f64)> = ks
        .iter()
        .flat_map(|&k| ALPHAS.iter().map(move |&a| (k, a)))
        .collect();
    let grid = par(&cells, |&(k, alpha)| {
        let proto = ServerConfig {
            block_size: k,
            initial_rho: 1.0,
            adapt_num_nack: false,
            ..ServerConfig::default()
        };
        let reports = run_experiment(
            params_for(4096, alpha, proto, mode.messages, 1700 + k as u64).multicast_only(),
        );
        let all = mean(reports.iter().map(|r| r.rounds_all_users() as f64));
        let per = mean(reports.iter().map(|r| r.avg_user_rounds()));
        (all, per)
    });
    for (ki, &k) in ks.iter().enumerate() {
        write!(out, "{k:>4}")?;
        for ai in 0..ALPHAS.len() {
            let (all, per) = grid[ki * ALPHAS.len() + ai];
            write!(out, "  {all:>10.2} {per:>5.3}")?;
        }
        writeln!(out)?;
    }
    Ok(())
}

/// Figure 18: per-user rounds (left) and bandwidth overhead (right) as a
/// function of the numNACK target.
pub fn fig18(mode: Mode, out: &mut dyn Write) -> io::Result<()> {
    let targets = [0usize, 5, 10, 20, 40, 60, 80, 100];
    header(
        out,
        "Figure 18",
        "avg rounds per user / avg server bandwidth overhead vs numNACK",
    )?;
    write!(out, "{:>8}", "numNACK")?;
    for a in ALPHAS {
        write!(out, "  rounds(a={a:<4})  bw")?;
    }
    writeln!(out)?;
    let cells: Vec<(usize, f64)> = targets
        .iter()
        .flat_map(|&t| ALPHAS.iter().map(move |&a| (t, a)))
        .collect();
    let grid = par(&cells, |&(t, alpha)| {
        let proto = ServerConfig {
            initial_rho: 1.0,
            initial_num_nack: t,
            adapt_num_nack: false,
            ..ServerConfig::default()
        };
        let reports = run_experiment(
            params_for(4096, alpha, proto, mode.messages, 1800 + t as u64).multicast_only(),
        );
        let rounds = mean(reports.iter().map(|r| r.avg_user_rounds()));
        let bw = mean(reports.iter().map(|r| r.bandwidth_overhead));
        (rounds, bw)
    });
    for (ti, &t) in targets.iter().enumerate() {
        write!(out, "{t:>8}")?;
        for ai in 0..ALPHAS.len() {
            let (rounds, bw) = grid[ti * ALPHAS.len() + ai];
            write!(out, "  {rounds:>13.4}  {bw:>5.2}")?;
        }
        writeln!(out)?;
    }
    Ok(())
}

/// Figures 19–20: extra bandwidth of adaptive proactive FEC versus the
/// reactive-only baseline (rho = 1), across alpha and across N.
pub fn fig19_20(mode: Mode, out: &mut dyn Write) -> io::Result<()> {
    let ks = [1usize, 2, 5, 10, 20, 30, 40, 50];
    let overhead = |k: usize, n: u32, alpha: f64, adaptive: bool, seed: u64| -> f64 {
        let proto = ServerConfig {
            block_size: k,
            initial_rho: 1.0,
            adapt_rho: adaptive,
            adapt_num_nack: false,
            ..ServerConfig::default()
        };
        let reports =
            run_experiment(params_for(n, alpha, proto, mode.messages, seed).multicast_only());
        mean(reports.iter().map(|r| r.bandwidth_overhead))
    };

    header(
        out,
        "Figure 19",
        "server bandwidth overhead: adaptive rho vs rho = 1, by alpha (N = 4096)",
    )?;
    write!(out, "{:>4}", "k")?;
    let f19_alphas = [0.0, 0.2, 1.0];
    for a in f19_alphas {
        write!(out, "  a={a:<4} adap  rho1")?;
    }
    writeln!(out)?;
    let cells: Vec<(usize, f64)> = ks
        .iter()
        .flat_map(|&k| f19_alphas.iter().map(move |&a| (k, a)))
        .collect();
    let grid = par(&cells, |&(k, alpha)| {
        let ad = overhead(k, 4096, alpha, true, 1900 + k as u64);
        let fx = overhead(k, 4096, alpha, false, 1900 + k as u64);
        (ad, fx)
    });
    for (ki, &k) in ks.iter().enumerate() {
        write!(out, "{k:>4}")?;
        for ai in 0..f19_alphas.len() {
            let (ad, fx) = grid[ki * f19_alphas.len() + ai];
            write!(out, "  {ad:>10.2} {fx:>5.2}")?;
        }
        writeln!(out)?;
    }

    header(
        out,
        "Figure 20",
        "server bandwidth overhead: adaptive rho vs rho = 1, by N (alpha = 20%)",
    )?;
    write!(out, "{:>4}", "k")?;
    let f20_ns = [1024u32, 8192, 16384];
    for n in f20_ns {
        write!(out, "  N={n:<5} adap  rho1")?;
    }
    writeln!(out)?;
    let cells: Vec<(usize, u32)> = ks
        .iter()
        .flat_map(|&k| f20_ns.iter().map(move |&n| (k, n)))
        .collect();
    let grid = par(&cells, |&(k, n)| {
        if !wire_feasible(k, n) {
            return None;
        }
        let ad = overhead(k, n, 0.2, true, 2000 + k as u64);
        let fx = overhead(k, n, 0.2, false, 2000 + k as u64);
        Some((ad, fx))
    });
    for (ki, &k) in ks.iter().enumerate() {
        write!(out, "{k:>4}")?;
        for ni in 0..f20_ns.len() {
            match grid[ki * f20_ns.len() + ni] {
                Some((ad, fx)) => write!(out, "  {ad:>11.2} {fx:>5.2}")?,
                None => write!(out, "  {:>11} {:>5}", "n/a", "n/a")?,
            }
        }
        writeln!(out)?;
    }
    Ok(())
}

/// Figure 21: deadline misses and the numNACK trajectory with deadline =
/// 2 rounds, initial numNACK = 200. A single persistent trajectory, so it
/// runs serially.
pub fn fig21(mode: Mode, out: &mut dyn Write) -> io::Result<()> {
    header(
        out,
        "Figure 21",
        "users missing a 2-round deadline + numNACK adaptation (initial numNACK = 200)",
    )?;
    let proto = ServerConfig {
        initial_rho: 1.0,
        initial_num_nack: 200,
        max_nack: 200,
        adapt_num_nack: true,
        max_multicast_rounds: 2,
        ..ServerConfig::default()
    };
    let mut params = params_for(4096, 0.2, proto, mode.trajectory * 4, 2100);
    params.sim.deadline_rounds = 2;
    let messages = params.messages;
    let mut run = ExperimentRun::new(params);
    writeln!(
        out,
        "{:>4} {:>10} {:>9} {:>8} {:>8}",
        "msg", "missed", "numNACK", "rho", "usrPkts"
    )?;
    for msg in 1..=messages {
        let r = run.step();
        writeln!(
            out,
            "{:>4} {:>10} {:>9} {:>8.2} {:>8}",
            msg, r.missed_deadline, r.num_nack, r.rho, r.usr_packets
        )?;
    }
    Ok(())
}

/// SIGCOMM axis: encryption cost vs key-tree degree.
pub fn sigcomm_degree(mode: Mode, out: &mut dyn Write) -> io::Result<()> {
    header(
        out,
        "T-deg [SIGCOMM axis]",
        "avg encryptions per rekey message vs tree degree d (N = 4096)",
    )?;
    writeln!(
        out,
        "{:>4} {:>14} {:>14} {:>14}",
        "d", "J=0,L=N/4", "J=N/8,L=N/8", "J=N/4,L=0"
    )?;
    let ds = [2u32, 3, 4, 8, 16];
    let cells: Vec<(u32, usize, usize, u64)> = ds
        .iter()
        .flat_map(|&d| [(d, 0, 1024, 2200), (d, 512, 512, 2201), (d, 1024, 0, 2202)])
        .collect();
    let grid = par(&cells, |&(d, j, l, seed)| {
        encryption_cost_batch(4096, d, j, l, mode.runs, seed)
    });
    for (di, &d) in ds.iter().enumerate() {
        writeln!(
            out,
            "{:>4} {:>14.1} {:>14.1} {:>14.1}",
            d,
            grid[3 * di],
            grid[3 * di + 1],
            grid[3 * di + 2]
        )?;
    }
    Ok(())
}

/// SIGCOMM axis: batch versus individual rekeying cost.
pub fn sigcomm_batch(mode: Mode, out: &mut dyn Write) -> io::Result<()> {
    header(
        out,
        "T-batch [SIGCOMM axis]",
        "encryptions per interval: batch vs individual rekeying (N = 4096, d = 4)",
    )?;
    writeln!(
        out,
        "{:>6} {:>6} {:>12} {:>14} {:>9}",
        "J", "L", "batch", "individual", "saving"
    )?;
    let mixes = [
        (0usize, 256usize),
        (0, 1024),
        (256, 256),
        (1024, 1024),
        (1024, 0),
    ];
    let grid = par(&mixes, |&(j, l)| {
        let b = encryption_cost_batch(4096, 4, j, l, mode.runs.min(3), 2300);
        let i = encryption_cost_individual(4096, 4, j, l, 1, 2300);
        (b, i)
    });
    for (&(j, l), &(b, i)) in mixes.iter().zip(&grid) {
        writeln!(
            out,
            "{j:>6} {l:>6} {b:>12.1} {i:>14.1} {:>8.1}x",
            i / b.max(1.0)
        )?;
    }
    Ok(())
}

/// SIGCOMM axis: the closed-form expected-encryptions model vs the real
/// marking algorithm.
pub fn sigcomm_model(mode: Mode, out: &mut dyn Write) -> io::Result<()> {
    header(
        out,
        "T-model [SIGCOMM axis]",
        "closed-form E[encryptions] vs measured marking algorithm (d = 4, N = 4096)",
    )?;
    writeln!(
        out,
        "{:>6} {:>12} {:>12} {:>8}",
        "L", "model", "measured", "err%"
    )?;
    let ls = [1usize, 64, 256, 1024, 2048, 3584];
    let grid = par(&ls, |&l| {
        encryption_cost_batch(4096, 4, 0, l, mode.runs, 2500 + l as u64)
    });
    for (&l, &measured) in ls.iter().zip(&grid) {
        let model = keytree::analysis::expected_encryptions_leave_only(4, 6, l as u64);
        let err = if model > 0.0 {
            100.0 * (measured - model) / model
        } else {
            0.0
        };
        writeln!(out, "{l:>6} {model:>12.1} {measured:>12.1} {err:>7.1}%")?;
    }
    Ok(())
}

/// SIGCOMM axis: sparseness of the rekey workload.
pub fn sigcomm_sparseness(mode: Mode, out: &mut dyn Write) -> io::Result<()> {
    header(
        out,
        "T-sparse [SIGCOMM axis]",
        "rekey message size vs per-user needs (J = 0, L = N/4, d = 4)",
    )?;
    writeln!(
        out,
        "{:>6} {:>14} {:>14} {:>10}",
        "N", "encryptions", "per-user need", "ratio"
    )?;
    let ns = [64u32, 256, 1024, 4096, 16384];
    let grid = par(&ns, |&n| {
        workload_stats(n, 4, 0, (n / 4) as usize, mode.runs, 2400, &Layout::DEFAULT)
    });
    for (&n, p) in ns.iter().zip(&grid) {
        writeln!(
            out,
            "{:>6} {:>14.1} {:>14.2} {:>10.1}",
            n,
            p.encryptions,
            p.per_user_need,
            p.encryptions / p.per_user_need.max(1e-9)
        )?;
    }
    Ok(())
}
